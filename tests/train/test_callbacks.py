"""Trainer event API: callback dispatch, verbose shim, empty-history guard."""

import io

import pytest

from repro import make_optimizer
from repro.train import Callback, ConsoleCallback, JsonlCallback, Trainer
from repro.train.trainer import TrainResult


class Recorder(Callback):
    """Logs every hook invocation in order."""

    def __init__(self):
        self.events = []

    def on_train_begin(self, trainer):
        self.events.append(("train_begin", trainer))

    def on_step_end(self, info):
        self.events.append(("step", info))

    def on_eval(self, record):
        self.events.append(("eval", record))

    def on_epoch_end(self, record):
        self.events.append(("epoch_end", record))

    def on_train_end(self, result):
        self.events.append(("train_end", result))


@pytest.fixture()
def trainer(cu_model, cu_dataset):
    opt = make_optimizer("fekf", cu_model, blocksize=1024, fused_update=True,
                         fused_env=True)
    return Trainer(cu_model, opt, cu_dataset, None, batch_size=8, seed=0,
                   eval_frames=4)


class TestDispatch:
    def test_event_order_and_counts(self, trainer):
        rec = Recorder()
        result = trainer.run(max_epochs=2, callbacks=[rec])
        kinds = [k for k, _ in rec.events]
        assert kinds[0] == "train_begin"
        assert kinds[-1] == "train_end"
        # the loader drops the last partial batch
        n_batches = trainer.train_set.n_frames // trainer.batch_size
        assert kinds.count("step") == 2 * n_batches
        # one end-of-epoch eval per epoch; each fires on_eval then on_epoch_end
        assert kinds.count("eval") == 2
        assert kinds.count("epoch_end") == 2
        assert rec.events[0][1] is trainer
        assert rec.events[-1][1] is result

    def test_step_info_contents(self, trainer):
        rec = Recorder()
        trainer.run(max_epochs=1, callbacks=[rec])
        infos = [e for k, e in rec.events if k == "step"]
        assert [i.batch_index for i in infos] == list(range(1, len(infos) + 1))
        first = infos[0]
        assert first.epoch == 1
        assert first.n_batches == len(infos)
        assert first.step_seconds > 0
        assert "lambda" in first.stats  # FEKF per-batch diagnostics

    def test_mid_epoch_evals_fire_on_eval_not_epoch_end(self, cu_model, cu_dataset):
        opt = make_optimizer("fekf", cu_model, blocksize=1024,
                             fused_update=True, fused_env=True)
        t = Trainer(cu_model, opt, cu_dataset, None, batch_size=4, seed=0,
                    eval_frames=4, evals_per_epoch=2)
        rec = Recorder()
        t.run(max_epochs=1, callbacks=[rec])
        kinds = [k for k, _ in rec.events]
        assert kinds.count("eval") == 2  # mid-epoch + end-of-epoch
        assert kinds.count("epoch_end") == 1

    def test_run_without_callbacks_unchanged(self, trainer):
        result = trainer.run(max_epochs=1)
        assert len(result.history) == 1


class TestConsoleShim:
    def test_verbose_equals_console_callback(self, cu_model, cu_dataset):
        opt = make_optimizer("fekf", cu_model, blocksize=1024,
                             fused_update=True, fused_env=True)
        lines = []
        cb = ConsoleCallback(printer=lines.append)
        Trainer(cu_model, opt, cu_dataset, None, batch_size=8, seed=0,
                eval_frames=4).run(max_epochs=1, callbacks=[cb])
        assert len(lines) == 1
        assert lines[0].startswith("epoch    1  train E/F rmse ")

    def test_verbose_true_appends_console(self, trainer, capsys):
        trainer.run(max_epochs=1, verbose=True)
        out = capsys.readouterr().out
        assert "train E/F rmse" in out


class TestJsonlCallback:
    def test_streams_every_eval(self, trainer):
        import json

        buf = io.StringIO()
        trainer.run(max_epochs=2, callbacks=[JsonlCallback(buf)])
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert len(lines) == 2
        assert lines[0]["type"] == "eval"
        assert lines[0]["epoch"] == 1
        assert lines[1]["epoch"] == 2


class TestEmptyHistory:
    """Regression: .final / .best_total on a run that never evaluated used
    to raise a bare IndexError / ValueError from deep inside."""

    def test_final_raises_clear_error(self):
        with pytest.raises(RuntimeError, match="no evaluations recorded"):
            TrainResult().final

    def test_best_total_raises_clear_error(self):
        with pytest.raises(RuntimeError, match="no evaluations recorded"):
            TrainResult().best_total()

    def test_zero_epoch_run_raises_on_final(self, trainer):
        result = trainer.run(max_epochs=0)
        assert result.history == []
        with pytest.raises(RuntimeError, match="no evaluations recorded"):
            result.final
