"""Trainer: convergence targets, history, eval cadence, timing."""

import numpy as np
import pytest

from repro.model import DeePMD
from repro.optim import FEKF, KalmanConfig
from repro.train import TargetCriterion, Trainer
from repro.train.trainer import EpochRecord


def _rec(e=1, te=0.1, tf=0.2):
    return EpochRecord(
        epoch=e,
        train_energy_rmse=te,
        train_force_rmse=tf,
        test_energy_rmse=te,
        test_force_rmse=tf,
        wall_time=0.0,
        train_time=0.0,
    )


class TestTargetCriterion:
    def test_total_metric(self):
        assert TargetCriterion(0.31, "total").met(_rec())
        assert not TargetCriterion(0.29, "total").met(_rec())

    def test_energy_metric(self):
        assert TargetCriterion(0.15, "energy").met(_rec())
        assert not TargetCriterion(0.05, "energy").met(_rec())

    def test_force_metric(self):
        assert TargetCriterion(0.25, "force").met(_rec())
        assert not TargetCriterion(0.15, "force").met(_rec())


@pytest.fixture()
def trainer_parts(cu_dataset, small_cfg):
    train, test = cu_dataset.split(0.75, seed=0)
    model = DeePMD.for_dataset(train, small_cfg, seed=1)
    opt = FEKF(model, KalmanConfig(blocksize=1024, fused_update=True), fused_env=True)
    return model, opt, train, test


class TestRun:
    def test_history_per_epoch(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4)
        res = tr.run(max_epochs=3)
        assert [r.epoch for r in res.history] == [1, 2, 3]
        assert res.total_wall_time > 0
        assert res.total_train_time > 0
        assert res.total_train_time <= res.total_wall_time

    def test_stops_at_target(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4)
        res = tr.run(max_epochs=10, target=TargetCriterion(1e9, "total"))
        assert res.converged and res.epochs_to_target == 1

    def test_not_converged_flag(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4)
        res = tr.run(max_epochs=2, target=TargetCriterion(1e-9, "total"))
        assert not res.converged and res.epochs_to_target is None

    def test_eval_every_skips_epochs(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4, eval_every=2)
        res = tr.run(max_epochs=4)
        assert [r.epoch for r in res.history] == [2, 4]

    def test_eval_every_always_evaluates_last(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4, eval_every=2)
        res = tr.run(max_epochs=3)
        assert res.history[-1].epoch == 3

    def test_evals_per_epoch_fractional(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=2, evals_per_epoch=2)
        res = tr.run(max_epochs=1)
        epochs = [r.epoch for r in res.history]
        assert any(0 < e < 1 for e in epochs)
        assert epochs[-1] == 1

    def test_fractional_target_stop(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=2, evals_per_epoch=4)
        res = tr.run(max_epochs=3, target=TargetCriterion(1e9, "total"))
        assert res.converged and res.epochs_to_target < 1.0

    def test_without_test_set_mirrors_train(self, trainer_parts):
        model, opt, train, _ = trainer_parts
        tr = Trainer(model, opt, train, None, batch_size=4)
        res = tr.run(max_epochs=1)
        rec = res.history[0]
        assert rec.test_energy_rmse == rec.train_energy_rmse

    def test_best_total_and_final(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4)
        res = tr.run(max_epochs=3)
        assert res.best_total("train") <= res.history[0].train_total
        assert res.final is res.history[-1]

    def test_training_improves_rmse(self, trainer_parts):
        model, opt, train, test = trainer_parts
        tr = Trainer(model, opt, train, test, batch_size=4)
        res = tr.run(max_epochs=6)
        assert res.best_total("train") < res.history[0].train_total
