"""Metrics export/import and epochs-to-error queries."""

import numpy as np
import pytest

from repro.train import TrainResult
from repro.train.metrics import epochs_to_error, read_history, summarize, write_history
from repro.train.trainer import EpochRecord


def _result():
    res = TrainResult()
    for e, te, tf in [(1, 0.5, 1.0), (2, 0.2, 0.6), (3, 0.05, 0.3), (4, 0.06, 0.25)]:
        res.history.append(
            EpochRecord(
                epoch=e, train_energy_rmse=te, train_force_rmse=tf,
                test_energy_rmse=te * 1.1, test_force_rmse=tf * 1.1,
                wall_time=float(e), train_time=float(e) * 0.8,
            )
        )
    res.total_train_time = 3.2
    res.total_wall_time = 4.0
    return res


class TestHistoryIO:
    def test_roundtrip(self, tmp_path):
        res = _result()
        path = str(tmp_path / "epoch_train.dat")
        write_history(res, path)
        back = read_history(path)
        assert len(back.history) == 4
        for a, b in zip(res.history, back.history):
            assert a.train_energy_rmse == pytest.approx(b.train_energy_rmse)
            assert a.train_time == pytest.approx(b.train_time, abs=1e-4)

    def test_header_comment(self, tmp_path):
        path = str(tmp_path / "h.dat")
        write_history(_result(), path)
        first = open(path).readline()
        assert first.startswith("#") and "train_energy_rmse" in first

    def test_single_row_file(self, tmp_path):
        res = TrainResult()
        res.history.append(EpochRecord(1, 0.1, 0.2, 0.1, 0.2, 1.0, 0.5))
        path = str(tmp_path / "one.dat")
        write_history(res, path)
        assert len(read_history(path).history) == 1


class TestQueries:
    def test_epochs_to_error(self):
        res = _result()
        assert epochs_to_error(res, 0.21, "energy") == 2
        assert epochs_to_error(res, 0.05, "energy") == 3
        assert epochs_to_error(res, 0.01, "energy") is None
        assert epochs_to_error(res, 0.3, "force") == 3

    def test_test_split_query(self):
        res = _result()
        assert epochs_to_error(res, 0.3, "energy", split="test") == 2

    def test_summarize(self):
        s = summarize(_result())
        assert s["best_epoch"] == 4  # 0.06+0.25 < 0.05+0.30
        assert s["best_train_total"] == pytest.approx(0.31)
        assert s["generalization_gap"] == pytest.approx(0.031)
        assert s["epochs"] == 4
