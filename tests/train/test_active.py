"""Ensemble uncertainty + the active-learning loop."""

import numpy as np
import pytest

from repro.data import SYSTEMS
from repro.model import DeePMD, DeePMDConfig, ModelEnsemble, make_batch
from repro.train import ActiveLearner, ActiveLearningConfig


@pytest.fixture(scope="module")
def ensemble(cu_dataset, small_cfg):
    return ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=3, seed=1)


class TestEnsemble:
    def test_needs_models(self):
        with pytest.raises(ValueError):
            ModelEnsemble([])

    def test_mixed_architectures_rejected(self, cu_dataset, small_cfg, tiny_cfg):
        a = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        b = DeePMD.for_dataset(cu_dataset, tiny_cfg, seed=2)
        with pytest.raises(ValueError):
            ModelEnsemble([a, b])

    def test_prediction_shapes(self, ensemble, cu_dataset, small_cfg):
        batch = make_batch(cu_dataset, np.arange(3), small_cfg)
        out = ensemble.predict(batch)
        assert out.energy.shape == (3,)
        assert out.forces.shape == batch.coords.shape
        assert out.max_force_dev.shape == (3,)

    def test_mean_is_member_average(self, ensemble, cu_dataset, small_cfg):
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        out = ensemble.predict(batch)
        members = np.stack([m.predict(batch, fused_env=True).energy for m in ensemble.models])
        assert np.allclose(out.energy, members.mean(axis=0))

    def test_identical_members_zero_deviation(self, cu_dataset, small_cfg):
        m = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        twin = DeePMD.for_dataset(cu_dataset, small_cfg, seed=2)
        twin.load_state_dict(m.state_dict())
        ens = ModelEnsemble([m, twin])
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        out = ens.predict(batch)
        assert np.allclose(out.max_force_dev, 0.0, atol=1e-12)
        assert np.allclose(out.energy_std, 0.0, atol=1e-12)

    def test_different_members_positive_deviation(self, ensemble, cu_dataset, small_cfg):
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        assert np.all(ensemble.max_force_deviation(batch) > 0)


class TestActiveLearner:
    @pytest.fixture()
    def learner(self, cu_dataset, small_cfg):
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        spec = SYSTEMS["Cu"]
        pos, cell, sp, pot = spec.build("small")
        return ActiveLearner(
            ens, pot, sp, spec.masses(sp), cell,
            ActiveLearningConfig(md_steps=30, sample_every=10, epochs_per_round=1,
                                 max_new_frames=4),
            initial_data=cu_dataset,
            seed=0,
        )

    def test_warm_start_trains_on_initial_data(self, learner, cu_dataset):
        assert learner.labeled is cu_dataset
        assert all(opt.kalman.updates > 0 for opt in learner.optimizers)

    def test_round_accumulates_labeled_data(self, learner, cu_dataset):
        before = learner.labeled.n_frames
        stats = learner.run_round(cu_dataset.positions[0], 400.0)
        assert learner.labeled.n_frames == before + stats.n_selected
        assert stats.n_candidates == 3

    def test_selection_respects_cap(self, learner, cu_dataset):
        stats = learner.run_round(cu_dataset.positions[0], 400.0)
        assert stats.n_selected <= 4

    def test_labels_come_from_reference(self, learner, cu_dataset):
        learner.run_round(cu_dataset.positions[0], 400.0)
        new = learner.labeled
        t = new.n_frames - 1
        e, f = learner.reference.energy_forces(new.positions[t], learner.cell)
        assert new.energies[t] == pytest.approx(e)
        assert np.allclose(new.forces[t], f)

    def test_history_grows(self, learner, cu_dataset):
        learner.run_round(cu_dataset.positions[0], 400.0)
        learner.run_round(cu_dataset.positions[1], 600.0)
        assert [s.round_index for s in learner.history] == [1, 2]
        assert learner.history[1].temperature == 600.0

    def test_select_scoring_bit_identical_to_batch_path(
        self, ensemble, cu_dataset, small_cfg
    ):
        """The protocol-based _select must score candidates bit-identically
        to the retired hand-built DescriptorBatch path (regression guard
        for the InferenceSession rewrite)."""
        from repro.model import frames_to_batch

        frames = cu_dataset.positions[:4]
        preds = ensemble.predict_many(frames, cu_dataset.species, cu_dataset.cell)
        batch = frames_to_batch(
            frames, cu_dataset.species, cu_dataset.cell, small_cfg
        )
        devs = ensemble.max_force_deviation(batch)
        assert [p.max_force_dev for p in preds] == [float(d) for d in devs]

    def test_served_scorer_matches_committee(self, ensemble, cu_dataset):
        """An InferenceService wrapping the same ensemble is a drop-in
        scorer: selection signals are bit-identical to the direct path."""
        from repro.serve import InferenceService, ServeConfig

        frames = cu_dataset.positions[:4]
        direct = ensemble.predict_many(frames, cu_dataset.species, cu_dataset.cell)
        with InferenceService(ensemble, ServeConfig(max_batch=4)) as svc:
            served = svc.predict_many(frames, cu_dataset.species, cu_dataset.cell)
        for d, s in zip(direct, served):
            assert d.energy == s.energy
            assert d.max_force_dev == s.max_force_dev
            assert np.array_equal(d.forces, s.forces)

    def test_selection_band_filters(self, cu_dataset, small_cfg):
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        spec = SYSTEMS["Cu"]
        pos, cell, sp, pot = spec.build("small")
        # impossible band -> nothing selected, nothing labeled
        al = ActiveLearner(
            ens, pot, sp, spec.masses(sp), cell,
            ActiveLearningConfig(md_steps=20, sample_every=10, select_lo=1e9,
                                 select_hi=2e9, epochs_per_round=1),
            initial_data=cu_dataset, seed=0,
        )
        before = al.labeled.n_frames
        stats = al.run_round(cu_dataset.positions[0], 300.0)
        assert stats.n_selected == 0
        assert al.labeled.n_frames == before
