"""Backward-engine semantics: accumulation, grad modes, error paths."""

import numpy as np
import pytest

from repro.autograd import Tensor, enable_grad, grad, no_grad, ops


class TestConstruction:
    def test_float32_promoted_to_float64(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float64

    def test_int_tensor_allowed_without_grad(self):
        t = Tensor(np.arange(3))
        assert t.dtype.kind == "i"

    def test_int_tensor_rejects_requires_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.arange(3), requires_grad=True)

    @pytest.mark.parametrize("data", [
        np.arange(3),                      # int64
        np.arange(3, dtype=np.int32),
        np.arange(3, dtype=np.uint8),
        np.zeros(3, dtype=bool),
        np.zeros(3, dtype=np.complex128),
        [1, 2, 3],                         # python ints infer integer dtype
    ])
    def test_non_float_rejects_requires_grad(self, data):
        """Every non-float dtype must refuse requires_grad loudly (bool
        and complex used to slip through the integer-only guard)."""
        with pytest.raises(TypeError, match="only float tensors"):
            Tensor(data, requires_grad=True)

    @pytest.mark.parametrize("data", [
        np.zeros(3, dtype=bool),
        np.arange(3, dtype=np.uint8),
        np.zeros(3, dtype=np.complex128),
    ])
    def test_non_float_still_allowed_without_grad(self, data):
        t = Tensor(data)
        assert t.dtype == data.dtype  # constants keep their dtype

    def test_explicit_float_cast_is_the_remedy(self):
        t = Tensor(np.arange(3).astype(float), requires_grad=True)
        assert t.dtype == np.float64 and t.requires_grad

    def test_nested_list(self):
        assert Tensor([[1.0, 2.0]]).shape == (1, 2)

    def test_properties(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.ndim == 2 and t.size == 6 and len(t) == 2

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad and y.is_leaf()


class TestBackward:
    def test_scalar_backward_seeds_ones(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad.data, 3.0)

    def test_nonscalar_backward_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_nonscalar_backward_with_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(Tensor(np.array([1.0, 0.0, 2.0])))
        assert np.allclose(x.grad.data, [2.0, 0.0, 4.0])

    def test_backward_on_leaf_raises(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 1.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad.data, 3.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 1.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        y = (a + a).sum()  # two paths through a
        (g,) = grad(y, [x])
        assert g.item() == pytest.approx(6.0)

    def test_shared_subexpression(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        t = x.tanh()
        y = (t * t).sum()
        (g,) = grad(y, [x])
        expect = 2 * np.tanh(1.5) * (1 - np.tanh(1.5) ** 2)
        assert g.item() == pytest.approx(expect)


class TestFunctionalGrad:
    def test_grad_does_not_touch_dot_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        grad((x * 2.0).sum(), [x])
        assert x.grad is None

    def test_unused_input_returns_zeros(self):
        x = Tensor(np.ones(2), requires_grad=True)
        z = Tensor(np.ones(3), requires_grad=True)
        gs = grad((x * 2.0).sum(), [x, z])
        assert np.allclose(gs[1].data, 0.0)

    def test_unused_input_raises_when_disallowed(self):
        x = Tensor(np.ones(2), requires_grad=True)
        z = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            grad((x * 2.0).sum(), [x, z], allow_unused=False)

    def test_grad_output_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (g,) = grad(x * 2.0, [x], grad_output=Tensor(np.array([1.0, 2.0, 3.0])))
        assert np.allclose(g.data, [2.0, 4.0, 6.0])


class TestGradModes:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_nesting_restores(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with no_grad():
            with enable_grad():
                y = x * 2.0
            z = x * 2.0
        assert y.requires_grad and not z.requires_grad
        assert (x * 1.0).requires_grad

    def test_constant_inputs_build_no_graph(self):
        y = Tensor(np.ones(2)) * Tensor(np.ones(2))
        assert y.is_leaf() and not y.requires_grad


class TestTopologicalOrder:
    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.array([0.1]), requires_grad=True)
        y = x
        for _ in range(2000):  # deeper than the default recursion limit
            y = y * 1.001
        (g,) = grad(y.sum(), [x])
        assert g.item() == pytest.approx(1.001**2000, rel=1e-9)

    def test_wide_fanout(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        total = ops.tsum(ops.concat([x * float(i) for i in range(50)], axis=0))
        (g,) = grad(total, [x])
        assert g.item() == pytest.approx(sum(range(50)))
