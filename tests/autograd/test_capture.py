"""The unified ``autograd.capture`` surface: kinds, composition, shims."""

import warnings

import numpy as np
import pytest

from repro.autograd import Tensor, capture, grad, no_grad, ops
from repro.autograd.capture import Sanitizer, SanitizerError, TapeRecorder
from repro.autograd.instrument import KernelCounter
from repro.telemetry.trace import Tracer


def _forward():
    a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
    b = ops.mul(ops.add(a, a), a)
    return a, ops.tsum(ops.tanh(b))


class TestKinds:
    def test_tape_records_op_outputs(self):
        with capture("tape") as tape:
            _, out = _forward()
        assert isinstance(tape, TapeRecorder)
        assert [e.op for e in tape.entries] == ["add", "mul", "tanh", "sum"]
        assert len(tape) == 4
        assert tape.entries[-1].tensor is out

    def test_count_counts_launches(self):
        with capture("count") as kc:
            _forward()
        assert isinstance(kc, KernelCounter)
        assert kc.total_launches == 4
        assert kc.launches["tanh"] == 1

    def test_sanitize_raises_on_nonfinite(self):
        with pytest.raises(SanitizerError, match="non-finite"):
            with capture("sanitize"):
                ops.div(Tensor(np.ones(3)), Tensor(np.zeros(3)))

    def test_sanitize_collect_reports(self):
        with capture("sanitize", mode="collect") as san:
            ops.div(Tensor(np.ones(3)), Tensor(np.zeros(3)))
        assert isinstance(san, Sanitizer)
        rep = san.report()
        assert not rep.ok
        assert rep.findings[0].context["op"] == "div"

    def test_profile_with_explicit_tracer(self):
        with Tracer(keep_events=True) as tr:
            with capture("profile", tracer=tr) as prof:
                _forward()
        assert tr.profiler is prof
        assert [ev.name for ev in prof.events] == ["add", "mul", "tanh", "sum"]

    def test_profile_owns_private_tracer(self):
        with capture("profile") as prof:
            _forward()
        assert len(prof.events) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown capture kind"):
            capture("trace")

    def test_arg_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="graph=True"):
            capture("count", graph=True)
        with pytest.raises(ValueError, match="tracer="):
            capture("tape", tracer=object())


class TestComposition:
    def test_nested_captures_observe_same_ops(self):
        with capture("count") as outer:
            with capture("tape") as tape:
                with capture("count") as inner:
                    _forward()
        assert outer.total_launches == inner.total_launches == 4
        assert len(tape) == 4

    def test_exit_removes_only_own_sink(self):
        with capture("count") as outer:
            with capture("count"):
                _forward()
            before = outer.total_launches
            _forward()
        assert outer.total_launches == 2 * before

    def test_tape_graph_wires_parents_under_no_grad(self):
        with no_grad():
            with capture("tape", graph=True) as tape:
                _, out = _forward()
            assert tape.entries[-1].tensor._parents  # edges despite no_grad
        with no_grad():
            with capture("tape") as plain:
                _, out = _forward()
            assert not plain.entries[-1].tensor._parents

    def test_graph_capture_does_not_enable_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with capture("tape", graph=True):
            out = ops.tsum(ops.mul(a, a))
        (g,) = grad(out, [a])
        assert np.array_equal(g.data, 2 * np.ones(3))

    def test_tape_crc_tracks_structure_and_values(self):
        with capture("tape") as t1:
            _forward()
        with capture("tape") as t2:
            _forward()
        assert t1.crc() == t2.crc()
        with capture("tape") as t3:
            a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
            ops.tsum(ops.tanh(ops.mul(ops.add(a, a), Tensor(2 * np.ones((2, 3))))))
        assert t3.crc() != t1.crc()

    def test_entry_mutation_detected(self):
        with capture("tape") as tape:
            _forward()
        entry = tape.entries[1]
        assert not entry.mutated()
        entry.tensor.data[0, 0] += 1.0
        assert entry.mutated()


class TestDeprecatedShims:
    def test_record_tape_warns_and_still_works(self):
        from repro.analysis.graphlint import record_tape

        with pytest.warns(DeprecationWarning, match="capture"):
            cm = record_tape()
        with cm as tape:
            _forward()
        assert len(tape) == 4

    def test_sanitizer_direct_context_manager_still_works(self):
        # the historical surface: Sanitizer() used directly as a CM
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # numpy's log-of-zero warning
            warnings.simplefilter("error", DeprecationWarning)
            with Sanitizer(mode="collect") as san:
                ops.log(Tensor(np.zeros(2)))
        assert len(san.findings) == 1
