"""Gradient checks and semantics for every autograd primitive."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, grad, ops

rng = np.random.default_rng(42)


def _r(*shape, scale=1.0):
    return rng.normal(size=shape) * scale


class TestElementwise:
    def test_add_gradcheck(self):
        check_gradients(lambda a, b: ops.tsum(ops.add(a, b)), [_r(3, 4), _r(3, 4)])

    def test_add_broadcast_gradcheck(self):
        check_gradients(lambda a, b: ops.tsum(ops.add(a, b)), [_r(3, 4), _r(4)])

    def test_add_scalar_operand(self):
        x = Tensor(_r(5), requires_grad=True)
        y = ops.tsum(ops.add(x, 3.0))
        (g,) = grad(y, [x])
        assert np.allclose(g.data, 1.0)

    def test_sub_gradcheck(self):
        check_gradients(lambda a, b: ops.tsum(ops.sub(a, b)), [_r(2, 3), _r(2, 3)])

    def test_mul_gradcheck(self):
        check_gradients(lambda a, b: ops.tsum(ops.mul(a, b)), [_r(3, 3), _r(3, 3)])

    def test_mul_broadcast_column(self):
        check_gradients(lambda a, b: ops.tsum(ops.mul(a, b)), [_r(3, 4), _r(3, 1)])

    def test_div_gradcheck(self):
        check_gradients(
            lambda a, b: ops.tsum(ops.div(a, b)),
            [_r(3, 3), np.abs(_r(3, 3)) + 1.0],
        )

    def test_neg_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.neg(a)), [_r(4)])

    def test_pow_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.power(a, 3.0)), [np.abs(_r(4)) + 0.5])

    def test_pow_value(self):
        x = Tensor(np.array([2.0]))
        assert ops.power(x, 2.0).item() == pytest.approx(4.0)

    def test_exp_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.exp(a)), [_r(4, 2, scale=0.5)])

    def test_log_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.log(a)), [np.abs(_r(5)) + 1.0])

    def test_tanh_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.tanh(a)), [_r(3, 3)])

    def test_sqrt_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.sqrt(a)), [np.abs(_r(5)) + 0.5])

    def test_abs_gradcheck_away_from_zero(self):
        check_gradients(lambda a: ops.tsum(ops.absolute(a)), [_r(6) + 3.0])

    def test_abs_subgradient_at_zero_is_zero(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        (g,) = grad(ops.tsum(ops.absolute(x)), [x])
        assert np.allclose(g.data, 0.0)

    def test_maximum_gradcheck(self):
        a = _r(5)
        b = a + np.where(rng.random(5) > 0.5, 1.0, -1.0)  # no ties
        check_gradients(lambda x, y: ops.tsum(ops.maximum(x, y)), [a, b])

    def test_where_selects_and_routes_gradient(self):
        mask = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        out = ops.where(mask, a, b)
        assert np.allclose(out.data, [1.0, 20.0, 3.0])
        ga, gb = grad(ops.tsum(out), [a, b])
        assert np.allclose(ga.data, [1.0, 0.0, 1.0])
        assert np.allclose(gb.data, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_all_gradcheck(self):
        check_gradients(lambda a: ops.tsum(a), [_r(2, 3, 4)])

    def test_sum_axis_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.tsum(a, axis=1) ** 2), [_r(3, 4)])

    def test_sum_keepdims_shape(self):
        x = Tensor(_r(3, 4))
        assert ops.tsum(x, axis=1, keepdims=True).shape == (3, 1)

    def test_sum_negative_axis(self):
        x = Tensor(_r(2, 5))
        assert np.allclose(ops.tsum(x, axis=-1).data, x.data.sum(axis=-1))

    def test_mean_matches_numpy(self):
        x = _r(4, 5)
        assert np.allclose(ops.tmean(Tensor(x), axis=0).data, x.mean(axis=0))

    def test_mean_gradcheck(self):
        check_gradients(lambda a: ops.tsum(ops.tmean(a, axis=1) ** 2), [_r(3, 4)])

    def test_broadcast_to_gradcheck(self):
        check_gradients(
            lambda a: ops.tsum(ops.broadcast_to(a, (4, 3)) ** 2), [_r(3)]
        )

    def test_reshape_roundtrip_gradcheck(self):
        check_gradients(
            lambda a: ops.tsum(ops.reshape(a, (6,)) ** 2), [_r(2, 3)]
        )

    def test_transpose_gradcheck(self):
        check_gradients(
            lambda a: ops.tsum(ops.transpose(a, (1, 0)) ** 2), [_r(2, 4)]
        )

    def test_transpose_default_reverses(self):
        x = Tensor(_r(2, 3, 4))
        assert ops.transpose(x).shape == (4, 3, 2)

    def test_swapaxes(self):
        x = Tensor(_r(2, 3, 4))
        assert ops.swapaxes(x, -1, -2).shape == (2, 4, 3)

    def test_concat_gradcheck(self):
        check_gradients(
            lambda a, b: ops.tsum(ops.concat([a, b], axis=1) ** 2),
            [_r(2, 3), _r(2, 2)],
        )

    def test_concat_values(self):
        a, b = _r(2, 2), _r(2, 3)
        out = ops.concat([Tensor(a), Tensor(b)], axis=1)
        assert np.allclose(out.data, np.concatenate([a, b], axis=1))


class TestIndexing:
    def test_gather_gradcheck(self):
        idx = np.array([0, 2, 1, 2])
        check_gradients(lambda a: ops.tsum(ops.index(a, idx) ** 2), [_r(3)])

    def test_gather_repeated_indices_accumulate(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ops.tsum(ops.index(x, np.array([0, 0, 1])))
        (g,) = grad(y, [x])
        assert np.allclose(g.data, [2.0, 1.0])

    def test_slice_gradcheck(self):
        check_gradients(
            lambda a: ops.tsum(ops.index(a, (slice(None), slice(0, 2))) ** 2),
            [_r(3, 4)],
        )

    def test_getitem_sugar(self):
        x = Tensor(_r(4, 5), requires_grad=True)
        y = x[1:3, ::2]
        assert y.shape == (2, 3)

    def test_scatter_add_gradcheck(self):
        idx = np.array([0, 1, 0])
        check_gradients(
            lambda v: ops.tsum(ops.index_add((2,), idx, v) ** 2), [_r(3)]
        )

    def test_scatter_add_values(self):
        out = ops.index_add((3,), np.array([0, 0, 2]), Tensor(np.array([1.0, 2.0, 5.0])))
        assert np.allclose(out.data, [3.0, 0.0, 5.0])

    def test_multidim_integer_gather(self):
        x = Tensor(_r(6, 3), requires_grad=True)
        idx = np.array([[0, 5], [2, 2]])
        y = ops.index(x, idx)
        assert y.shape == (2, 2, 3)
        (g,) = grad(ops.tsum(y), [x])
        assert g.data[2].sum() == pytest.approx(6.0)  # row 2 gathered twice


class TestMatmul:
    def test_matmul_gradcheck(self):
        check_gradients(lambda a, b: ops.tsum(ops.matmul(a, b)), [_r(3, 4), _r(4, 2)])

    def test_batched_matmul_gradcheck(self):
        check_gradients(
            lambda a, b: ops.tsum(ops.matmul(a, b)), [_r(2, 3, 4), _r(2, 4, 2)]
        )

    def test_broadcast_batched_matmul_gradcheck(self):
        check_gradients(
            lambda a, b: ops.tsum(ops.matmul(a, b)), [_r(2, 3, 4), _r(4, 2)]
        )

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(_r(3)), Tensor(_r(3, 2)))

    def test_matmul_values(self):
        a, b = _r(3, 4), _r(4, 5)
        assert np.allclose(ops.matmul(Tensor(a), Tensor(b)).data, a @ b)


class TestOperatorSugar:
    def test_arith_chain(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ((x * 2.0 + 1.0) / 3.0 - 0.5) ** 2.0
        assert y.shape == (2,)
        y.sum().backward()
        assert x.grad is not None

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0]))
        assert (1.0 - x).item() == pytest.approx(-1.0)
        assert (1.0 / x).item() == pytest.approx(0.5)

    def test_methods(self):
        x = Tensor(np.array([[0.5, -0.5]]))
        assert x.tanh().shape == (1, 2)
        assert x.abs().data.min() == pytest.approx(0.5)
        assert x.reshape(2).shape == (2,)
        assert x.mean().item() == pytest.approx(0.0)
