"""The gradcheck utility itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    check_gradients,
    check_second_order,
    fuse,
    make_op,
    numerical_grad,
    ops,
)


def _broken_square(a: Tensor) -> Tensor:
    """x^2 with a deliberately wrong backward (factor 3 instead of 2)."""
    out = a.data**2

    def backward(g):
        return (ops.mul(g, ops.mul(a, 3.0)),)

    return make_op(out, (a,), backward, "broken_square")


class TestGradcheck:
    def test_accepts_correct_gradients(self):
        check_gradients(lambda a: ops.tsum(ops.power(a, 2.0)), [np.array([1.0, -2.0])])

    def test_rejects_wrong_gradients(self):
        with pytest.raises(AssertionError, match="gradient mismatch"):
            check_gradients(
                lambda a: ops.tsum(_broken_square(a)), [np.array([1.0, -2.0])]
            )

    def test_reports_offending_input_index(self):
        with pytest.raises(AssertionError, match="input 1"):
            check_gradients(
                lambda a, b: ops.tsum(ops.add(a, _broken_square(b))),
                [np.array([1.0]), np.array([2.0])],
            )

    def test_numerical_grad_matches_analytic_form(self):
        x = np.array([0.3, 1.7])
        num = numerical_grad(lambda a: ops.tsum(ops.power(a, 3.0)), [x])
        assert np.allclose(num, 3 * x**2, atol=1e-5)

    def test_numerical_grad_wrt_second_input(self):
        a, b = np.array([1.0]), np.array([2.0])
        num = numerical_grad(lambda x, y: ops.tsum(ops.mul(x, y)), [a, b], wrt=1)
        assert num[0] == pytest.approx(1.0)


def _raw_square(a: Tensor) -> Tensor:
    """x^2 whose backward is correct to first order but records no graph
    (a missing second-order rule)."""
    out = a.data**2

    def backward(g):
        return (Tensor(g.data * 2.0 * a.data),)

    return make_op(out, (a,), backward, "raw_square_gc")


class TestSecondOrder:
    def test_accepts_elementwise_chain(self):
        rng = np.random.default_rng(0)
        check_second_order(
            lambda a: ops.tsum(ops.mul(ops.tanh(a), a)),
            [rng.standard_normal(4) * 0.5],
        )

    def test_accepts_matmul(self):
        rng = np.random.default_rng(1)
        check_second_order(
            lambda x, w: ops.tsum(ops.tanh(ops.matmul(x, w))),
            [rng.standard_normal((3, 4)) * 0.5, rng.standard_normal((4, 2)) * 0.5],
        )

    def test_accepts_fused_layer_dual_path(self):
        """The fused DeePMD layer switches to its composed backward under
        create_graph; the double-backward checker certifies that path."""
        rng = np.random.default_rng(2)
        check_second_order(
            lambda x, W, b: ops.tsum(fuse.residual_linear_tanh_fused(x, W, b)),
            [
                rng.standard_normal((2, 3)) * 0.5,
                rng.standard_normal((3, 3)) * 0.5,
                rng.standard_normal(3) * 0.1,
            ],
        )

    def test_rejects_graphless_backward(self):
        with pytest.raises(AssertionError, match="disconnected"):
            check_second_order(
                lambda a: ops.tsum(_raw_square(a)), [np.array([1.0, 2.0])]
            )

    def test_rejects_frozen_coefficient_backward(self):
        """A backward whose value is right but which detaches half of
        its input dependence (frozen coefficients, the env_fused
        failure mode) must fail on curvature, not connectivity."""

        def frozen(a: Tensor) -> Tensor:
            out = a.data**2

            def backward(g):
                # 2a = a + detached(a): first order exact, but the
                # graph only sees d(2a)/da = 1 instead of 2.
                return (ops.mul(g, ops.add(a, Tensor(a.data))),)

            return make_op(out, (a,), backward, "frozen_square_gc")

        with pytest.raises(AssertionError, match="second-order mismatch"):
            check_second_order(
                lambda a: ops.tsum(frozen(a)), [np.array([1.0, 2.0])]
            )

    def test_explicit_directions(self):
        check_second_order(
            lambda a: ops.tsum(ops.mul(a, a)),
            [np.array([1.0, 2.0])],
            directions=[np.array([1.0, 0.0])],
        )
        with pytest.raises(ValueError, match="one direction"):
            check_second_order(
                lambda a: ops.tsum(ops.mul(a, a)),
                [np.array([1.0, 2.0])],
                directions=[np.ones(2), np.ones(2)],
            )
