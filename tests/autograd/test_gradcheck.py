"""The gradcheck utility itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, make_op, numerical_grad, ops


def _broken_square(a: Tensor) -> Tensor:
    """x^2 with a deliberately wrong backward (factor 3 instead of 2)."""
    out = a.data**2

    def backward(g):
        return (ops.mul(g, ops.mul(a, 3.0)),)

    return make_op(out, (a,), backward, "broken_square")


class TestGradcheck:
    def test_accepts_correct_gradients(self):
        check_gradients(lambda a: ops.tsum(ops.power(a, 2.0)), [np.array([1.0, -2.0])])

    def test_rejects_wrong_gradients(self):
        with pytest.raises(AssertionError, match="gradient mismatch"):
            check_gradients(
                lambda a: ops.tsum(_broken_square(a)), [np.array([1.0, -2.0])]
            )

    def test_reports_offending_input_index(self):
        with pytest.raises(AssertionError, match="input 1"):
            check_gradients(
                lambda a, b: ops.tsum(ops.add(a, _broken_square(b))),
                [np.array([1.0]), np.array([2.0])],
            )

    def test_numerical_grad_matches_analytic_form(self):
        x = np.array([0.3, 1.7])
        num = numerical_grad(lambda a: ops.tsum(ops.power(a, 3.0)), [x])
        assert np.allclose(num, 3 * x**2, atol=1e-5)

    def test_numerical_grad_wrt_second_input(self):
        a, b = np.array([1.0]), np.array([2.0])
        num = numerical_grad(lambda x, y: ops.tsum(ops.mul(x, y)), [a, b], wrt=1)
        assert num[0] == pytest.approx(1.0)
