"""Kernel-launch instrumentation semantics."""

import numpy as np

from repro.autograd import KernelCounter, Tensor, record_launch, ops


class TestKernelCounter:
    def test_counts_primitive_ops(self):
        x = Tensor(np.ones(4))
        with KernelCounter() as kc:
            ops.add(x, x)
            ops.mul(x, x)
            ops.mul(x, x)
        assert kc.launches["add"] == 1
        assert kc.launches["mul"] == 2
        assert kc.total_launches == 3

    def test_records_bytes(self):
        x = Tensor(np.ones(100))
        with KernelCounter() as kc:
            ops.add(x, x)
        assert kc.total_bytes == 800

    def test_nested_counters_both_record(self):
        x = Tensor(np.ones(2))
        with KernelCounter() as outer:
            ops.add(x, x)
            with KernelCounter() as inner:
                ops.add(x, x)
        assert outer.total_launches == 2
        assert inner.total_launches == 1

    def test_no_counter_is_noop(self):
        record_launch("orphan", 8)  # must not raise

    def test_reset(self):
        x = Tensor(np.ones(2))
        with KernelCounter() as kc:
            ops.add(x, x)
            kc.reset()
            ops.add(x, x)
        assert kc.total_launches == 1

    def test_breakdown_sorted(self):
        x = Tensor(np.ones(2))
        with KernelCounter() as kc:
            for _ in range(3):
                ops.mul(x, x)
            ops.add(x, x)
        top = kc.breakdown(2)
        assert top[0] == ("mul", 3)

    def test_backward_ops_counted(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        with KernelCounter() as kc:
            y.backward()
        assert kc.total_launches > 0


class TestThreadLocalSinks:
    """The launch-sink stack is per-thread (like the tracer stacks): a
    counter installed on one thread must never see another thread's ops."""

    def test_counter_blind_to_other_threads(self):
        import threading

        x = Tensor(np.ones(8))
        errors = []

        def worker():
            try:
                # no sink installed on this thread: its ops go nowhere
                ops.add(x, x)
                ops.mul(x, x)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with KernelCounter() as kc:
            ops.add(x, x)
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert not errors
        assert kc.total_launches == 1

    def test_per_thread_counters_independent(self):
        import threading

        x = Tensor(np.ones(8))
        results = {}

        def worker(name, n):
            with KernelCounter() as kc:
                for _ in range(n):
                    ops.add(x, x)
            results[name] = kc.total_launches

        threads = [
            threading.Thread(target=worker, args=(f"t{i}", i + 1))
            for i in range(3)
        ]
        with KernelCounter() as main_kc:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == {"t0": 1, "t1": 2, "t2": 3}
        assert main_kc.total_launches == 0

    def test_counting_under_thread_executor(self, cu_model, cu_batch):
        """Regression: a main-thread KernelCounter used to crash or
        miscount when ThreadExecutor workers launched ops concurrently
        (the sink stack was shared process-wide)."""
        from repro.optim import WorkerSpec
        from repro.parallel import ThreadExecutor

        spec = WorkerSpec(model=cu_model, fused_env=True)
        with ThreadExecutor(2) as ex:
            ex.start(spec)
            ex.broadcast("set_shard", cu_batch)
            with KernelCounter() as kc:
                ops.add(Tensor(np.ones(4)), Tensor(np.ones(4)))
                results = ex.broadcast("energy_task")
        assert len(results) == 2
        # worker-thread ops never leak into the main-thread counter
        assert kc.total_launches == 1
