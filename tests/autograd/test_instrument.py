"""Kernel-launch instrumentation semantics."""

import numpy as np

from repro.autograd import KernelCounter, Tensor, record_launch, ops


class TestKernelCounter:
    def test_counts_primitive_ops(self):
        x = Tensor(np.ones(4))
        with KernelCounter() as kc:
            ops.add(x, x)
            ops.mul(x, x)
            ops.mul(x, x)
        assert kc.launches["add"] == 1
        assert kc.launches["mul"] == 2
        assert kc.total_launches == 3

    def test_records_bytes(self):
        x = Tensor(np.ones(100))
        with KernelCounter() as kc:
            ops.add(x, x)
        assert kc.total_bytes == 800

    def test_nested_counters_both_record(self):
        x = Tensor(np.ones(2))
        with KernelCounter() as outer:
            ops.add(x, x)
            with KernelCounter() as inner:
                ops.add(x, x)
        assert outer.total_launches == 2
        assert inner.total_launches == 1

    def test_no_counter_is_noop(self):
        record_launch("orphan", 8)  # must not raise

    def test_reset(self):
        x = Tensor(np.ones(2))
        with KernelCounter() as kc:
            ops.add(x, x)
            kc.reset()
            ops.add(x, x)
        assert kc.total_launches == 1

    def test_breakdown_sorted(self):
        x = Tensor(np.ones(2))
        with KernelCounter() as kc:
            for _ in range(3):
                ops.mul(x, x)
            ops.add(x, x)
        top = kc.breakdown(2)
        assert top[0] == ("mul", 3)

    def test_backward_ops_counted(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        with KernelCounter() as kc:
            y.backward()
        assert kc.total_launches > 0
