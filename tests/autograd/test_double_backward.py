"""Second- (and third-) order derivative correctness."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad, ops

rng = np.random.default_rng(7)


def _second_order_numeric(f, x0, eps=1e-5):
    """Numeric gradient of z(x) = g(x)^T c where g = df/dx."""
    n = x0.size
    out = np.zeros(n)
    for i in range(n):
        xp = x0.copy()
        xp[i] += eps
        xm = x0.copy()
        xm[i] -= eps
        out[i] = (f(xp) - f(xm)) / (2 * eps)
    return out


class TestGradOfGrad:
    @pytest.mark.parametrize(
        "fn,npfn",
        [
            (lambda t: ops.tanh(t), np.tanh),
            (lambda t: ops.exp(t), np.exp),
            (lambda t: ops.sqrt(t), np.sqrt),
            (lambda t: ops.power(t, 3.0), lambda a: a**3),
            (lambda t: ops.log(t), np.log),
        ],
    )
    def test_elementwise_second_order(self, fn, npfn):
        x0 = np.abs(rng.normal(size=4)) + 0.5
        c = rng.normal(size=4)

        x = Tensor(x0, requires_grad=True)
        y = ops.tsum(fn(x))
        (g,) = grad(y, [x], create_graph=True)
        z = ops.tsum(ops.mul(g, Tensor(c)))
        (gg,) = grad(z, [x])

        def zfun(xv):
            eps = 1e-6
            gnum = np.array(
                [
                    (npfn(xv + eps * np.eye(4)[i]).sum() - npfn(xv - eps * np.eye(4)[i]).sum())
                    / (2 * eps)
                    for i in range(4)
                ]
            )
            return float(gnum @ c)

        num = _second_order_numeric(zfun, x0)
        assert np.allclose(gg.data, num, atol=1e-4, rtol=1e-3)

    def test_matmul_second_order(self):
        a0 = rng.normal(size=(2, 3))
        b0 = rng.normal(size=(3, 2))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        y = ops.tsum(ops.tanh(ops.matmul(a, b)))
        (ga,) = grad(y, [a], create_graph=True)
        z = ops.tsum(ops.mul(ga, ga))
        (gb,) = grad(z, [b])

        def zfun(bv):
            eps = 1e-6
            g = np.zeros_like(a0)
            for i in range(a0.shape[0]):
                for j in range(a0.shape[1]):
                    ap = a0.copy(); ap[i, j] += eps
                    am = a0.copy(); am[i, j] -= eps
                    g[i, j] = (np.tanh(ap @ bv).sum() - np.tanh(am @ bv).sum()) / (2 * eps)
            return float((g * g).sum())

        num = np.zeros_like(b0)
        eps = 1e-5
        for i in range(b0.shape[0]):
            for j in range(b0.shape[1]):
                bp = b0.copy(); bp[i, j] += eps
                bm = b0.copy(); bm[i, j] -= eps
                num[i, j] = (zfun(bp) - zfun(bm)) / (2 * eps)
        assert np.allclose(gb.data, num, atol=1e-3, rtol=1e-2)

    def test_gather_scatter_second_order(self):
        idx = np.array([0, 2, 1, 0])
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        y = ops.tsum(ops.power(ops.index(x, idx), 3.0))
        (g,) = grad(y, [x], create_graph=True)
        (gg,) = grad(ops.tsum(g), [x])
        # y = 2 x0^3 + x1^3 + x2^3 -> sum(g) = 6x0^2+3x1^2+3x2^2
        assert np.allclose(gg.data, [12.0, 12.0, 18.0])

    def test_third_order(self):
        x = Tensor(np.array([0.7]), requires_grad=True)
        y = ops.power(x, 5.0).sum()
        (g1,) = grad(y, [x], create_graph=True)
        (g2,) = grad(g1.sum(), [x], create_graph=True)
        (g3,) = grad(g2.sum(), [x])
        assert g3.item() == pytest.approx(60.0 * 0.7**2)

    def test_where_second_order_routes(self):
        mask = np.array([True, False])
        x = Tensor(np.array([0.5, 0.5]), requires_grad=True)
        y = ops.tsum(ops.where(mask, ops.power(x, 3.0), ops.power(x, 2.0)))
        (g,) = grad(y, [x], create_graph=True)
        (gg,) = grad(ops.tsum(g), [x])
        assert np.allclose(gg.data, [6 * 0.5, 2.0])

    def test_create_graph_false_grads_are_constants(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        (g,) = grad(ops.tanh(x).sum(), [x], create_graph=False)
        assert not g.requires_grad
