"""Fused kernels: value/gradient equivalence with eager, kernel savings."""

import numpy as np
import pytest

from repro.autograd import KernelCounter, Tensor, fused_kernels, grad, ops
from repro.autograd import fuse

rng = np.random.default_rng(3)


def _layer_inputs(batch_shape=(5,), n_in=4, n_out=4):
    x = rng.normal(size=(*batch_shape, n_in))
    w = rng.normal(size=(n_in, n_out)) * 0.4
    b = rng.normal(size=(n_out,)) * 0.1
    return x, w, b


PAIRS = [
    (fuse.linear_eager, fuse.linear_fused),
    (fuse.linear_tanh_eager, fuse.linear_tanh_fused),
    (fuse.residual_linear_tanh_eager, fuse.residual_linear_tanh_fused),
]


@pytest.mark.parametrize("eager,fused", PAIRS)
class TestEquivalence:
    def test_forward_values_match(self, eager, fused):
        x, w, b = _layer_inputs()
        out_e = eager(Tensor(x), Tensor(w), Tensor(b))
        out_f = fused(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out_e.data, out_f.data, atol=1e-14)

    def test_first_order_grads_match(self, eager, fused):
        x, w, b = _layer_inputs()
        grads = []
        for fn in (eager, fused):
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            y = ops.tsum(ops.power(fn(xt, wt, bt), 2.0))
            grads.append([g.data for g in grad(y, [xt, wt, bt])])
        for ge, gf in zip(*grads):
            assert np.allclose(ge, gf, atol=1e-12)

    def test_second_order_grads_match(self, eager, fused):
        x, w, b = _layer_inputs(batch_shape=(3,))
        results = []
        for fn in (eager, fused):
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            y = ops.tsum(fn(xt, wt, bt))
            (gx,) = grad(y, [xt], create_graph=True)
            z = ops.tsum(ops.mul(gx, gx))
            results.append([g.data for g in grad(z, [wt, bt])])
        for ge, gf in zip(*results):
            assert np.allclose(ge, gf, atol=1e-10)

    def test_batched_3d_input(self, eager, fused):
        x, w, b = _layer_inputs(batch_shape=(2, 3))
        out_e = eager(Tensor(x), Tensor(w), Tensor(b))
        out_f = fused(Tensor(x), Tensor(w), Tensor(b))
        assert np.allclose(out_e.data, out_f.data)


class TestDispatch:
    def test_config_flag_selects_fused(self):
        x, w, b = _layer_inputs()
        with fused_kernels(True), KernelCounter() as kc:
            fuse.linear_tanh(Tensor(x), Tensor(w), Tensor(b))
        assert kc.launches["linear_tanh_fused"] == 1

    def test_config_flag_default_eager(self):
        x, w, b = _layer_inputs()
        with KernelCounter() as kc:
            fuse.linear_tanh(Tensor(x), Tensor(w), Tensor(b))
        assert kc.launches["linear_tanh_fused"] == 0
        assert kc.launches["matmul"] == 1

    def test_fused_reduces_forward_launches(self):
        x, w, b = _layer_inputs()
        with KernelCounter() as eager_kc:
            fuse.residual_linear_tanh_eager(Tensor(x), Tensor(w), Tensor(b))
        with KernelCounter() as fused_kc:
            fuse.residual_linear_tanh_fused(Tensor(x), Tensor(w), Tensor(b))
        assert fused_kc.total_launches < eager_kc.total_launches

    def test_fused_backward_single_launch_without_create_graph(self):
        x, w, b = _layer_inputs()
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        bt = Tensor(b, requires_grad=True)
        y = ops.tsum(fuse.linear_tanh_fused(xt, wt, bt))
        with KernelCounter() as kc:
            grad(y, [xt, wt, bt])
        assert kc.launches["linear_tanh_bwd_fused"] == 1
