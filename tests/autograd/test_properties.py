"""Property-based tests of autograd algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, grad, ops

floats = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


def arrays(max_side=4, max_dims=3):
    return hnp.arrays(
        np.float64,
        hnp.array_shapes(max_dims=max_dims, max_side=max_side),
        elements=floats,
    )


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_sum_equals_numpy(a):
    assert np.allclose(ops.tsum(Tensor(a)).data, a.sum())


@settings(max_examples=40, deadline=None)
@given(arrays(), arrays())
def test_add_commutes_when_broadcastable(a, b):
    try:
        expect = a + b
    except ValueError:
        return
    ab = ops.add(Tensor(a), Tensor(b)).data
    ba = ops.add(Tensor(b), Tensor(a)).data
    assert np.array_equal(ab, expect) and np.array_equal(ab, ba)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_linearity_of_gradient(a):
    """d(sum(c*x))/dx == c everywhere, for any shape."""
    x = Tensor(a, requires_grad=True)
    (g,) = grad(ops.tsum(ops.mul(x, 2.5)), [x])
    assert np.allclose(g.data, 2.5)


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2))
def test_reshape_transpose_roundtrip_gradient_is_identity(a):
    x = Tensor(a, requires_grad=True)
    y = ops.transpose(ops.transpose(x))
    (g,) = grad(ops.tsum(y), [x])
    assert np.allclose(g.data, 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=2), st.integers(0, 1))
def test_sum_axis_then_sum_equals_total(a, axis):
    if a.ndim < 2:
        return
    partial = ops.tsum(ops.tsum(Tensor(a), axis=axis)).item()
    assert np.isclose(partial, a.sum())


@settings(max_examples=40, deadline=None)
@given(arrays(max_dims=1), st.data())
def test_gather_then_scatter_preserves_mass(a, data):
    n = a.shape[0]
    idx = np.array(
        data.draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=6))
    )
    gathered = ops.index(Tensor(a), idx)
    back = ops.index_add((n,), idx, gathered)
    assert np.isclose(back.data.sum(), a[idx].sum())


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float64, (3, 4), elements=floats),
    hnp.arrays(np.float64, (4, 2), elements=floats),
)
def test_matmul_gradient_shapes(a, b):
    at = Tensor(a, requires_grad=True)
    bt = Tensor(b, requires_grad=True)
    ga, gb = grad(ops.tsum(ops.matmul(at, bt)), [at, bt])
    assert ga.shape == a.shape and gb.shape == b.shape
    # analytic: dsum(AB)/dA = ones @ B^T
    assert np.allclose(ga.data, np.ones((3, 2)) @ b.T)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float64, (5,), elements=st.floats(0.1, 3.0)))
def test_chain_rule_log_exp_identity(a):
    """grad of sum(log(exp(x))) is exactly one."""
    x = Tensor(a, requires_grad=True)
    (g,) = grad(ops.tsum(ops.log(ops.exp(x))), [x])
    assert np.allclose(g.data, 1.0, atol=1e-10)
