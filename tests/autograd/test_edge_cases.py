"""Edge cases: negative axes, broadcast masks, degenerate shapes."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, grad, ops

rng = np.random.default_rng(9)


class TestNegativeAxes:
    def test_concat_negative_axis(self):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 2))
        out = ops.concat([Tensor(a), Tensor(b)], axis=-1)
        assert np.allclose(out.data, np.concatenate([a, b], axis=-1))

    def test_concat_negative_axis_gradcheck(self):
        check_gradients(
            lambda a, b: ops.tsum(ops.concat([a, b], axis=-1) ** 2),
            [rng.normal(size=(2, 3)), rng.normal(size=(2, 2))],
        )

    def test_sum_multiple_negative_axes(self):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        out = ops.tsum(x, axis=(-1, -2))
        assert np.allclose(out.data, x.data.sum(axis=(1, 2)))


class TestBroadcastMasks:
    def test_where_with_broadcast_condition(self):
        cond = np.array([[True], [False]])  # (2,1) against (2,3)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)))
        out = ops.where(cond, a, b)
        (g,) = grad(ops.tsum(out), [a])
        assert np.allclose(g.data[0], 1.0)
        assert np.allclose(g.data[1], 0.0)

    def test_where_scalar_branches(self):
        cond = np.array([True, False, True])
        out = ops.where(cond, Tensor(np.ones(3)), 5.0)
        assert np.allclose(out.data, [1.0, 5.0, 1.0])


class TestDegenerateShapes:
    def test_zero_dim_tensor_arithmetic(self):
        x = Tensor(np.array(2.0), requires_grad=True)
        y = (x * 3.0 + 1.0).sum()
        (g,) = grad(y, [x])
        assert g.item() == pytest.approx(3.0)

    def test_empty_tensor_sum(self):
        x = Tensor(np.zeros((0, 3)))
        assert ops.tsum(x).item() == 0.0

    def test_single_element_batch_matmul(self):
        a = Tensor(rng.normal(size=(1, 1, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 1, 1)), requires_grad=True)
        out = ops.matmul(a, b)
        (ga,) = grad(ops.tsum(out), [a])
        assert ga.shape == (1, 1, 1)

    def test_reshape_to_scalar_shape(self):
        x = Tensor(np.array([3.5]), requires_grad=True)
        y = ops.reshape(x, ())
        (g,) = grad(y, [x])
        assert g.shape == (1,)

    def test_gather_empty_index(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        out = ops.index(x, np.array([], dtype=np.int64))
        assert out.shape == (0,)
        (g,) = grad(ops.tsum(out), [x])
        assert np.allclose(g.data, 0.0)


class TestGraphHygiene:
    def test_backward_twice_same_graph(self):
        """Our engine keeps buffers; two backward calls accumulate."""
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).sum()
        y.backward()
        y.backward()
        assert np.allclose(x.grad.data, 4.0)

    def test_grads_are_fresh_tensors(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (g1,) = grad((x * 2.0).sum(), [x])
        (g2,) = grad((x * 2.0).sum(), [x])
        g1.data[:] = 99.0
        assert np.allclose(g2.data, 2.0)

    def test_mutating_leaf_between_forwards(self):
        """Fresh Tensors see updated parameter values (the optimizer
        pattern: params mutate, param_tensors() re-wraps)."""
        arr = np.ones(2)
        t1 = Tensor(arr, requires_grad=True)
        y1 = ops.tsum(ops.mul(t1, 3.0)).item()
        arr *= 2.0  # external update
        t2 = Tensor(arr, requires_grad=True)
        y2 = ops.tsum(ops.mul(t2, 3.0)).item()
        assert y2 == pytest.approx(2 * y1)
