"""Tape compiler: bitwise replay, plan invalidation, fusion telemetry."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad, ops
from repro.autograd.compile import (
    PlanMismatch,
    TraceSession,
    UnsupportedTrace,
    compile_tape,
)

RNG = np.random.default_rng(3)


def _build(x, w, mask, idx):
    """A toy forward+loss with every dynamic construct the FEKF graphs
    use: gather by index, boolean masking via ``where``, an elementwise
    chain, a safe-division guard built from ``ones_like``, view ops, and
    a baked constant leaf."""
    g = ops.index(x, idx)                               # dynamic gather
    mask_t = Tensor(mask)
    denom = ops.add(ops.absolute(g), Tensor(np.full(g.shape, 0.5)))
    safe = ops.where(mask, ops.div(g, denom), ops.zeros_like(g))
    h = ops.tanh(ops.mul(ops.add(safe, safe), Tensor(0.25 * np.ones(g.shape))))
    h2 = ops.reshape(h, (1, -1))                        # view
    y = ops.matmul(h2, ops.reshape(w, (-1, 1)))
    del mask_t
    return ops.tsum(y)


def _eager(xv, wv, maskv, idxv):
    x = Tensor(xv, requires_grad=True)
    w = Tensor(wv, requires_grad=True)
    out = _build(x, w, maskv, idxv)
    gx, gw = grad(out, [x, w])
    return out.data.copy(), gx.data.copy(), gw.data.copy()


def _feeds(n=4, k=3, d=2):
    xv = RNG.normal(size=(n, d))
    wv = RNG.normal(size=(k * d,))
    maskv = RNG.random((k, d)) > 0.3
    idxv = RNG.integers(0, n, size=k)
    return xv, wv, maskv, idxv


def _trace(xv, wv, maskv, idxv):
    x = Tensor(xv, requires_grad=True)
    w = Tensor(wv, requires_grad=True)
    sess = TraceSession(candidates={"mask": maskv, "idx": idxv})
    with sess:
        with sess.section("fwd", inputs={"x": x, "w": w}) as sec:
            out = _build(x, w, maskv, idxv)
            sec.outputs = [out]
        with sess.section("bwd") as sec:
            gx, gw = grad(out, [x, w])
            sec.outputs = [gx, gw]
    return compile_tape(sess)


class TestBitwiseReplay:
    def test_replay_matches_eager_bitwise(self):
        prog = _trace(*_feeds())
        for _ in range(3):
            xv, wv, maskv, idxv = _feeds()
            feeds = {"x": xv, "w": wv, "mask": maskv, "idx": idxv}
            (out,) = prog.run("fwd", feeds)
            gx, gw = prog.run("bwd", feeds)
            ref_out, ref_gx, ref_gw = _eager(xv, wv, maskv, idxv)
            assert np.array_equal(out, ref_out)
            assert np.array_equal(gx, ref_gx)
            assert np.array_equal(gw, ref_gw)

    def test_uniform_trace_values_stay_dynamic(self):
        # trace at a degenerate all-True mask: the compiler must NOT bake
        # it (nor confuse the ones_like guard leaf with its float view) --
        # replaying with a mixed mask still has to hit eager bitwise
        xv, wv, _, idxv = _feeds()
        maskv = np.ones((3, 2), dtype=bool)
        prog = _trace(xv, wv, maskv, idxv)
        mixed = np.array([[True, False]] * 3)
        feeds = {"x": xv, "w": wv, "mask": mixed, "idx": idxv}
        (out,) = prog.run("fwd", feeds)
        gx, _ = prog.run("bwd", feeds)
        ref_out, ref_gx, _ = _eager(xv, wv, mixed, idxv)
        assert np.array_equal(out, ref_out)
        assert np.isfinite(gx).all()
        assert np.array_equal(gx, ref_gx)

    def test_dynamic_index_rebinds(self):
        xv, wv, maskv, idxv = _feeds()
        prog = _trace(xv, wv, maskv, idxv)
        other_idx = np.array([0, 0, 3])
        feeds = {"x": xv, "w": wv, "mask": maskv, "idx": other_idx}
        (out,) = prog.run("fwd", feeds)
        ref_out, _, _ = _eager(xv, wv, maskv, other_idx)
        assert np.array_equal(out, ref_out)


class TestInvalidation:
    def test_shape_divergence_raises_planmismatch(self):
        prog = _trace(*_feeds())
        xv, wv, maskv, idxv = _feeds(n=6)  # different leading dim
        with pytest.raises(PlanMismatch, match="diverged"):
            prog.run("fwd", {"x": xv, "w": wv, "mask": maskv, "idx": idxv})

    def test_dtype_divergence_raises_planmismatch(self):
        prog = _trace(*_feeds())
        xv, wv, maskv, idxv = _feeds()
        with pytest.raises(PlanMismatch, match="diverged"):
            prog.run("fwd", {"x": xv.astype(np.float32), "w": wv,
                             "mask": maskv, "idx": idxv})

    def test_missing_feed_raises_before_any_write(self):
        prog = _trace(*_feeds())
        xv, wv, maskv, idxv = _feeds()
        ok = {"x": xv, "w": wv, "mask": maskv, "idx": idxv}
        (baseline,) = prog.run("fwd", ok)
        baseline = baseline.copy()
        with pytest.raises(PlanMismatch, match="missing feed"):
            prog.run("fwd", {"x": xv, "mask": maskv, "idx": idxv})
        # the failed run must not have disturbed plan state
        (again,) = prog.run("fwd", ok)
        assert np.array_equal(again, baseline)

    def test_unknown_section_raises(self):
        prog = _trace(*_feeds())
        with pytest.raises(PlanMismatch, match="no section"):
            prog.run("nope", {})

    def test_duplicate_section_name_unsupported(self):
        x = Tensor(np.ones(3), requires_grad=True)
        sess = TraceSession()
        with sess:
            for _ in range(2):
                with sess.section("fwd", inputs={"x": x}) as sec:
                    sec.outputs = [ops.tanh(x)]
        with pytest.raises(UnsupportedTrace):
            compile_tape(sess)


class TestTelemetry:
    def test_plan_stats_report_fusion_and_arena(self):
        prog = _trace(*_feeds())
        st = prog.stats
        assert st.traced_ops > 0
        assert st.fused_ops > 0              # the tanh/mul/add chain fused
        assert st.steps < st.traced_ops      # fusion shrank the step count
        assert st.view_elisions >= 1         # reshape became a view
        assert st.baked_consts >= 1          # the 0.25 constant leaf
        assert st.arena_bytes > 0
        assert st.arena_bytes < st.eager_alloc_bytes
        d = st.as_dict()
        assert d["fused_ops"] == st.fused_ops

    def test_replays_counted(self):
        prog = _trace(*_feeds())
        before = prog.stats.replays
        xv, wv, maskv, idxv = _feeds()
        feeds = {"x": xv, "w": wv, "mask": maskv, "idx": idxv}
        prog.run("fwd", feeds)
        prog.run("bwd", feeds)
        assert prog.stats.replays == before + 2

    def test_plan_key_is_crc_plus_signature(self):
        xv, wv, maskv, idxv = _feeds()
        p1 = _trace(xv, wv, maskv, idxv)
        p2 = _trace(xv, wv, maskv, idxv)
        assert p1.key() == p2.key()
        p3 = _trace(*_feeds(n=6))
        assert p3.key() != p1.key()

    def test_fused_chain_launches_observed(self):
        from repro.autograd import capture

        prog = _trace(*_feeds())
        xv, wv, maskv, idxv = _feeds()
        with capture("count") as kc:
            prog.run("fwd", {"x": xv, "w": wv, "mask": maskv, "idx": idxv})
        assert kc.launches.get("fused_chain", 0) > 0
        # far fewer launches than the traced op count for this section
        assert kc.total_launches < prog.stats.traced_ops
