"""DeePMD network: forces, physical invariances, config, state dict."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad, ops
from repro.data import Dataset
from repro.md import Cell
from repro.model import DeePMD, DeePMDConfig, make_batch


class TestConfig:
    def test_paper_sizes(self):
        cfg = DeePMDConfig.paper()
        assert cfg.m == 25 and cfg.m_less == 16
        assert cfg.descriptor_size == 400

    def test_paper_param_count(self, cu_dataset):
        model = DeePMD.for_dataset(cu_dataset, DeePMDConfig.paper(rcut=3.5, nmax=12))
        # embedding 1350 + fitting 25201 (paper reports 26651)
        assert model.num_params == 26551

    def test_mless_bound(self):
        with pytest.raises(ValueError):
            DeePMDConfig(embedding_widths=(8,), m_less=9)

    def test_cutoff_order(self):
        with pytest.raises(ValueError):
            DeePMDConfig(rcut=3.0, rcut_smooth=4.0)

    def test_with_cutoff(self):
        cfg = DeePMDConfig.paper().with_cutoff(4.0, nmax=10)
        assert cfg.rcut == 4.0 and cfg.nmax == 10 and cfg.rcut_smooth == pytest.approx(2.4)


class TestForward:
    def test_energy_shapes(self, cu_model, cu_batch):
        e = cu_model.predict_energy(cu_batch)
        assert e.shape == (cu_batch.batch_size,)

    def test_predict_returns_forces(self, cu_model, cu_batch):
        out = cu_model.predict(cu_batch)
        assert out.forces.shape == cu_batch.coords.shape

    def test_batch_independence(self, cu_model, cu_dataset, small_cfg):
        """Each frame's energy is independent of its batch-mates."""
        b3 = make_batch(cu_dataset, np.arange(3), small_cfg)
        b1 = make_batch(cu_dataset, np.array([1]), small_cfg)
        e3 = cu_model.predict_energy(b3)
        e1 = cu_model.predict_energy(b1)
        assert e3[1] == pytest.approx(e1[0], rel=1e-12)

    def test_fused_env_identical(self, cu_model, cu_batch):
        a = cu_model.predict(cu_batch, fused_env=False)
        b = cu_model.predict(cu_batch, fused_env=True)
        assert np.allclose(a.energy, b.energy, atol=1e-12)
        assert np.allclose(a.forces, b.forces, atol=1e-12)

    def test_energy_bias_shifts_total(self, cu_dataset, small_cfg):
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m2.energy_bias = m1.energy_bias + 0.5
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        e1 = m1.predict_energy(batch)
        e2 = m2.predict_energy(batch)
        assert np.allclose(e2 - e1, 0.5 * cu_dataset.n_atoms)


class TestForces:
    def test_forces_match_numeric_gradient(self, cu_model, cu_dataset, small_cfg):
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        out = cu_model.predict(batch)
        eps = 1e-5
        for (b, i, d) in [(0, 4, 0), (1, 10, 2), (0, 20, 1)]:
            def e_at(delta):
                nb = make_batch(cu_dataset, np.arange(2), small_cfg)
                c = nb.coords.copy()
                c[b, i, d] += delta
                nb.coords = c
                return cu_model.predict_energy(nb, fused_env=False)[b]
            num = -(e_at(eps) - e_at(-eps)) / (2 * eps)
            assert out.forces[b, i, d] == pytest.approx(num, abs=1e-6)

    def test_forces_sum_to_zero(self, cu_model, cu_batch):
        """Translation invariance => total force vanishes."""
        out = cu_model.predict(cu_batch)
        assert np.allclose(out.forces.sum(axis=1), 0.0, atol=1e-9)


class TestInvariances:
    def _energy_of(self, model, dataset, cfg, coords):
        ds = Dataset(
            name="t",
            positions=coords[None],
            energies=np.zeros(1),
            forces=np.zeros_like(coords)[None],
            species=dataset.species,
            cell=dataset.cell,
        )
        batch = make_batch(ds, np.array([0]), cfg)
        return model.predict_energy(batch)[0]

    def test_translation_invariance(self, cu_model, cu_dataset, small_cfg):
        c0 = cu_dataset.positions[0]
        e0 = self._energy_of(cu_model, cu_dataset, small_cfg, c0)
        e1 = self._energy_of(
            cu_model, cu_dataset, small_cfg,
            cu_dataset.cell.wrap(c0 + np.array([0.37, -1.2, 2.9])),
        )
        assert e0 == pytest.approx(e1, abs=1e-8)

    def test_permutation_invariance(self, cu_model, cu_dataset, small_cfg):
        c0 = cu_dataset.positions[0]
        perm = np.random.default_rng(0).permutation(len(c0))
        e0 = self._energy_of(cu_model, cu_dataset, small_cfg, c0)
        e1 = self._energy_of(cu_model, cu_dataset, small_cfg, c0[perm])
        assert e0 == pytest.approx(e1, abs=1e-8)

    def test_rotation_invariance_cluster(self, small_cfg):
        """90-degree lattice rotation of an isolated cluster in a cubic box."""
        rng = np.random.default_rng(1)
        coords = 6.0 + rng.normal(scale=1.0, size=(8, 3))
        cell = Cell([40.0, 40.0, 40.0])
        ds = Dataset("c", coords[None], np.zeros(1), np.zeros((1, 8, 3)),
                     np.zeros(8, dtype=np.int64), cell)
        model = DeePMD.for_dataset(ds, small_cfg, seed=2)
        e0 = model.predict_energy(make_batch(ds, np.array([0]), small_cfg))[0]
        rot = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        center = coords.mean(axis=0)
        coords_r = (coords - center) @ rot.T + center
        ds_r = Dataset("c", coords_r[None], np.zeros(1), np.zeros((1, 8, 3)),
                       np.zeros(8, dtype=np.int64), cell)
        e1 = model.predict_energy(make_batch(ds_r, np.array([0]), small_cfg))[0]
        assert e0 == pytest.approx(e1, abs=1e-8)


class TestWeightGradients:
    def test_energy_gradient_matches_numeric(self, cu_model, cu_batch):
        p = cu_model.param_tensors()
        e = cu_model.energy_graph(Tensor(cu_batch.coords), cu_batch, p=p)
        name = "fit1_W"
        (g,) = grad(ops.tsum(e), [p[name]])
        eps = 1e-6
        idx = (2, 3)
        orig = cu_model.params[name].copy()
        for sgn, store in ((1, []), (-1, [])):
            pass
        w = orig.copy(); w[idx] += eps
        cu_model.params[name] = w
        ep = cu_model.predict_energy(cu_batch).sum()
        w = orig.copy(); w[idx] -= eps
        cu_model.params[name] = w
        em = cu_model.predict_energy(cu_batch).sum()
        cu_model.params[name] = orig
        assert g.data[idx] == pytest.approx((ep - em) / (2 * eps), rel=1e-4, abs=1e-8)

    def test_force_weight_gradient_fused_matches_graph(self, cu_model, cu_batch):
        rng = np.random.default_rng(4)
        proj = rng.normal(size=cu_batch.coords.shape)
        results = []
        for fused in (False, True):
            p = cu_model.param_tensors()
            coords = Tensor(cu_batch.coords, requires_grad=True)
            e = cu_model.energy_graph(coords, cu_batch, p=p, fused_env=fused)
            (gc,) = grad(ops.tsum(e), [coords], create_graph=True)
            scal = ops.tsum(ops.mul(gc, Tensor(proj)))
            gs = grad(scal, [p[n] for n in cu_model.params.names()])
            results.append(np.concatenate([g.data.ravel() for g in gs]))
        assert np.allclose(results[0], results[1], atol=1e-10)


class TestStateDict:
    def test_roundtrip(self, cu_model, cu_batch, cu_dataset, small_cfg):
        e0 = cu_model.predict_energy(cu_batch)
        state = cu_model.state_dict()
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=99)
        assert not np.allclose(other.predict_energy(cu_batch), e0)
        other.load_state_dict(state)
        assert np.allclose(other.predict_energy(cu_batch), e0, atol=1e-14)

    def test_state_dict_is_copy(self, cu_model):
        state = cu_model.state_dict()
        state["emb0_W"][:] = 0.0
        assert not np.allclose(cu_model.params["emb0_W"], 0.0)

    def test_evaluate_rmse_keys(self, cu_model, cu_dataset):
        out = cu_model.evaluate_rmse(cu_dataset, max_frames=4)
        assert set(out) == {"energy_rmse", "force_rmse", "total_rmse"}
        assert out["total_rmse"] == pytest.approx(out["energy_rmse"] + out["force_rmse"])
