"""The unified InferenceSession protocol (PR 5's prediction surface)."""

import numpy as np
import pytest

from repro.md.neighbor import neighbor_table
from repro.model import (
    DeePMD,
    DescriptorBatch,
    InferenceSession,
    ModelEnsemble,
    ModelSession,
    Prediction,
    frame_fingerprint,
    frames_to_batch,
)
from repro.model.calculator import DeePMDCalculator


@pytest.fixture()
def session(cu_model):
    return ModelSession(cu_model)


class TestFramesToBatch:
    def test_matches_hand_built_batch(self, cu_dataset, small_cfg):
        """frames_to_batch must reproduce the exact per-frame assembly the
        active-learning loop used to hand-roll (bit-identity regression)."""
        frames = cu_dataset.positions[:3]
        batch = frames_to_batch(frames, cu_dataset.species, cu_dataset.cell, small_cfg)
        b, n = frames.shape[:2]
        idx = np.zeros((b, n, small_cfg.nmax), dtype=np.int64)
        shift = np.zeros((b, n, small_cfg.nmax, 3))
        mask = np.zeros((b, n, small_cfg.nmax), dtype=bool)
        for t, pos in enumerate(frames):
            table = neighbor_table(pos, cu_dataset.cell, small_cfg.rcut, small_cfg.nmax)
            idx[t], shift[t], mask[t] = table.idx, table.shift, table.mask
        offset = (np.arange(b) * n)[:, None, None]
        assert np.array_equal(batch.coords, frames)
        assert np.array_equal(batch.idx_flat, idx + offset)
        assert np.array_equal(batch.shift, shift)
        assert np.array_equal(batch.mask, mask)

    def test_precomputed_tables_reused(self, cu_dataset, small_cfg):
        frames = cu_dataset.positions[:2]
        tables = [
            neighbor_table(pos, cu_dataset.cell, small_cfg.rcut, small_cfg.nmax)
            for pos in frames
        ]
        via_tables = frames_to_batch(
            frames, cu_dataset.species, cu_dataset.cell, small_cfg, tables=tables
        )
        rebuilt = frames_to_batch(frames, cu_dataset.species, cu_dataset.cell, small_cfg)
        assert np.array_equal(via_tables.idx_flat, rebuilt.idx_flat)
        assert np.array_equal(via_tables.mask, rebuilt.mask)

    def test_rejects_bad_shape(self, cu_dataset, small_cfg):
        with pytest.raises(ValueError):
            frames_to_batch(
                cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell, small_cfg
            )


class TestFingerprint:
    def test_deterministic_and_sensitive(self, cu_dataset, small_cfg):
        pos = cu_dataset.positions[0]
        fp = frame_fingerprint(pos, cu_dataset.cell, small_cfg.rcut, small_cfg.nmax)
        assert fp == frame_fingerprint(
            pos, cu_dataset.cell, small_cfg.rcut, small_cfg.nmax
        )
        moved = pos.copy()
        moved[0, 0] += 1e-9
        assert fp != frame_fingerprint(
            moved, cu_dataset.cell, small_cfg.rcut, small_cfg.nmax
        )
        assert fp != frame_fingerprint(
            pos, cu_dataset.cell, small_cfg.rcut * 1.01, small_cfg.nmax
        )


class TestModelSession:
    def test_single_vs_batched_bit_identical(self, session, cu_dataset):
        """predict() must equal the matching row of predict_many()."""
        frames = cu_dataset.positions[:4]
        many = session.predict_many(frames, cu_dataset.species, cu_dataset.cell)
        for t, pos in enumerate(frames):
            one = session.predict(pos, cu_dataset.species, cu_dataset.cell)
            assert one.energy == many[t].energy
            assert np.array_equal(one.forces, many[t].forces)

    def test_prediction_fields(self, session, cu_dataset):
        pred = session.predict(
            cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        )
        assert isinstance(pred, Prediction)
        assert isinstance(pred.energy, float)
        assert pred.forces.shape == cu_dataset.positions[0].shape
        assert pred.model_version == 0
        assert pred.energy_std is None and pred.max_force_dev is None
        assert not pred.cached

    def test_swap_bumps_version_and_changes_output(
        self, session, cu_dataset, small_cfg
    ):
        pos, sp, cell = cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        before = session.predict(pos, sp, cell)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=99)
        assert session.swap(other.state_dict()) == 1
        after = session.predict(pos, sp, cell)
        assert after.model_version == 1
        assert after.energy != before.energy
        assert session.swap(other.state_dict()) == 2  # monotonic


class TestEnsembleSession:
    def test_protocol_predict_carries_uncertainty(self, cu_dataset, small_cfg):
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        pred = ens.predict(
            cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        )
        assert isinstance(pred, Prediction)
        assert pred.energy_std is not None and pred.energy_std >= 0
        assert pred.max_force_dev is not None and pred.max_force_dev > 0

    def test_protocol_matches_legacy_batch_path(self, cu_dataset, small_cfg):
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        frames = cu_dataset.positions[:3]
        preds = ens.predict_many(frames, cu_dataset.species, cu_dataset.cell)
        batch = frames_to_batch(frames, cu_dataset.species, cu_dataset.cell, small_cfg)
        legacy = ens.predict(batch)
        for t, p in enumerate(preds):
            assert p.energy == float(legacy.energy[t])
            assert np.array_equal(p.forces, legacy.forces[t])
            assert p.max_force_dev == float(legacy.max_force_dev[t])

    def test_positions_without_species_rejected(self, cu_dataset, small_cfg):
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        with pytest.raises(TypeError):
            ens.predict(cu_dataset.positions[0])

    def test_swap_payload_shape_checked(self, cu_dataset, small_cfg):
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        with pytest.raises(ValueError):
            ens.swap([ens.models[0].state_dict()])
        assert ens.swap(ens.state_dicts()) == 1


class TestCalculatorSession:
    def test_implements_protocol(self, cu_model, cu_dataset):
        calc = DeePMDCalculator(cu_model, cu_dataset.species)
        assert isinstance(calc, InferenceSession)
        pred = calc.predict(
            cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        )
        e, f = calc.energy_forces(cu_dataset.positions[0], cu_dataset.cell)
        assert pred.energy == e
        assert np.array_equal(pred.forces, f)

    def test_pinned_species_enforced(self, cu_model, cu_dataset):
        calc = DeePMDCalculator(cu_model, cu_dataset.species)
        wrong = np.zeros(len(cu_dataset.species) + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            calc.predict(cu_dataset.positions[0], wrong, cu_dataset.cell)

    def test_swap_changes_md_forces(self, cu_model, cu_dataset, small_cfg):
        calc = DeePMDCalculator(cu_model, cu_dataset.species)
        _, f_before = calc.energy_forces(cu_dataset.positions[0], cu_dataset.cell)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=7)
        assert calc.swap(other.state_dict()) == 1
        assert calc.model_version == 1
        _, f_after = calc.energy_forces(cu_dataset.positions[0], cu_dataset.cell)
        assert not np.array_equal(f_before, f_after)
