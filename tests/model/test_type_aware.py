"""Type-aware embedding (multi-species descriptor extension)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.autograd import Tensor, grad, ops
from repro.model import DeePMD, DeePMDConfig, make_batch


@pytest.fixture(scope="module")
def ta_cfg():
    return replace(
        DeePMDConfig(
            embedding_widths=(6, 6, 6), m_less=4, fitting_widths=(8, 8, 8),
            rcut=4.0, rcut_smooth=2.4, nmax=14,
        ),
        type_aware=True,
    )


class TestTypeAware:
    def test_embedding_input_width(self, nacl_dataset, ta_cfg):
        model = DeePMD.for_dataset(nacl_dataset, ta_cfg, seed=1)
        assert model.params["emb0_W"].shape[0] == 1 + 2  # s + 2 species

    def test_param_count_exceeds_blind_model(self, nacl_dataset, ta_cfg):
        blind = DeePMD.for_dataset(nacl_dataset, replace(ta_cfg, type_aware=False), seed=1)
        aware = DeePMD.for_dataset(nacl_dataset, ta_cfg, seed=1)
        assert aware.num_params == blind.num_params + 2 * 6

    def test_forces_consistent_with_energy(self, nacl_dataset, ta_cfg):
        model = DeePMD.for_dataset(nacl_dataset, ta_cfg, seed=1)
        batch = make_batch(nacl_dataset, np.arange(2), ta_cfg)
        out = model.predict(batch)
        eps = 1e-5
        for (b, i, d) in [(0, 3, 0), (1, 29, 2)]:
            def e_at(delta):
                nb = make_batch(nacl_dataset, np.arange(2), ta_cfg)
                c = nb.coords.copy(); c[b, i, d] += delta; nb.coords = c
                return model.predict_energy(nb, fused_env=False)[b]
            num = -(e_at(eps) - e_at(-eps)) / (2 * eps)
            assert out.forces[b, i, d] == pytest.approx(num, abs=1e-6)

    def test_distinguishes_species_swap(self, nacl_dataset, ta_cfg):
        """Swapping Na and Cl identities changes the energy for the
        type-aware model but is invisible to the blind one."""
        batch = make_batch(nacl_dataset, np.arange(1), ta_cfg)
        swapped = make_batch(nacl_dataset, np.arange(1), ta_cfg)
        swapped.species = 1 - swapped.species

        aware = DeePMD.for_dataset(nacl_dataset, ta_cfg, seed=1)
        # neutralize the per-species bias so only the descriptor responds
        aware.energy_bias = np.zeros_like(aware.energy_bias)
        e_aware = aware.predict_energy(batch)[0]
        e_aware_swapped = aware.predict_energy(swapped)[0]
        assert e_aware != pytest.approx(e_aware_swapped, abs=1e-9)

        blind_cfg = replace(ta_cfg, type_aware=False)
        blind = DeePMD.for_dataset(nacl_dataset, blind_cfg, seed=1)
        blind.energy_bias = np.zeros_like(blind.energy_bias)
        e_blind = blind.predict_energy(batch)[0]
        e_blind_swapped = blind.predict_energy(swapped)[0]
        assert e_blind == pytest.approx(e_blind_swapped, abs=1e-9)

    def test_fused_env_path_identical(self, nacl_dataset, ta_cfg):
        model = DeePMD.for_dataset(nacl_dataset, ta_cfg, seed=1)
        batch = make_batch(nacl_dataset, np.arange(2), ta_cfg)
        a = model.predict(batch, fused_env=False)
        b = model.predict(batch, fused_env=True)
        assert np.allclose(a.forces, b.forces, atol=1e-12)

    def test_force_weight_gradients_exact(self, nacl_dataset, ta_cfg):
        model = DeePMD.for_dataset(nacl_dataset, ta_cfg, seed=1)
        batch = make_batch(nacl_dataset, np.arange(1), ta_cfg)
        p = model.param_tensors()
        coords = Tensor(batch.coords, requires_grad=True)
        e = model.energy_graph(coords, batch, p=p)
        (gc,) = grad(ops.tsum(e), [coords], create_graph=True)
        scal = ops.tsum(ops.mul(gc, gc))
        (gw,) = grad(scal, [p["emb0_W"]])
        name = "emb0_W"
        eps = 1e-6
        idx = (1, 2)

        def val():
            pp = model.param_tensors()
            cc = Tensor(batch.coords, requires_grad=True)
            ee = model.energy_graph(cc, batch, p=pp)
            (gg,) = grad(ops.tsum(ee), [cc], create_graph=True)
            return ops.tsum(ops.mul(gg, gg)).item()

        orig = model.params[name].copy()
        w = orig.copy(); w[idx] += eps; model.params[name] = w
        vp = val()
        w = orig.copy(); w[idx] -= eps; model.params[name] = w
        vm = val()
        model.params[name] = orig
        assert gw.data[idx] == pytest.approx((vp - vm) / (2 * eps), rel=1e-4, abs=1e-8)
