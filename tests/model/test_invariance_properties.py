"""Property-based physical invariances of the DeePMD descriptor/energy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Dataset
from repro.md import Cell
from repro.model import DeePMD, DeePMDConfig, make_batch

CFG = DeePMDConfig(
    embedding_widths=(6, 6, 6), m_less=4, fitting_widths=(8, 8, 8),
    rcut=3.2, rcut_smooth=2.0, nmax=10,
)


def _cluster_energy(model, coords, n_species_arr):
    cell = Cell([60.0, 60.0, 60.0])
    ds = Dataset(
        "c", coords[None], np.zeros(1), np.zeros_like(coords)[None],
        n_species_arr, cell,
    )
    return model.predict_energy(make_batch(ds, np.array([0]), CFG))[0]


def _random_rotation(rng):
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
        [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
        [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
    ])


@pytest.fixture(scope="module")
def cluster_model():
    rng = np.random.default_rng(0)
    coords = 30.0 + rng.normal(scale=1.2, size=(7, 3))
    ds = Dataset(
        "c", coords[None], np.zeros(1), np.zeros((1, 7, 3)),
        np.zeros(7, dtype=np.int64), Cell([60.0] * 3),
    )
    return DeePMD.for_dataset(ds, CFG, seed=3)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_energy_invariant_under_arbitrary_rotation(cluster_model, seed):
    """The descriptor D = (R~^T G)^T (R~^T G<) is exactly SO(3)-invariant."""
    rng = np.random.default_rng(seed)
    coords = 30.0 + rng.normal(scale=1.2, size=(7, 3))
    species = np.zeros(7, dtype=np.int64)
    rot = _random_rotation(rng)
    center = coords.mean(axis=0)
    rotated = (coords - center) @ rot.T + center
    e0 = _cluster_energy(cluster_model, coords, species)
    e1 = _cluster_energy(cluster_model, rotated, species)
    assert e0 == pytest.approx(e1, abs=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_forces_equivariant_under_rotation(cluster_model, seed):
    """F(Rx) = R F(x)."""
    rng = np.random.default_rng(seed)
    coords = 30.0 + rng.normal(scale=1.2, size=(7, 3))
    species = np.zeros(7, dtype=np.int64)
    rot = _random_rotation(rng)
    center = coords.mean(axis=0)
    rotated = (coords - center) @ rot.T + center

    def forces(c):
        ds = Dataset("c", c[None], np.zeros(1), np.zeros((1, 7, 3)),
                     species, Cell([60.0] * 3))
        return cluster_model.predict(make_batch(ds, np.array([0]), CFG)).forces[0]

    f0 = forces(coords)
    f1 = forces(rotated)
    assert np.allclose(f1, f0 @ rot.T, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_energy_invariant_under_permutation(cluster_model, seed):
    rng = np.random.default_rng(seed)
    coords = 30.0 + rng.normal(scale=1.2, size=(7, 3))
    species = np.zeros(7, dtype=np.int64)
    perm = rng.permutation(7)
    e0 = _cluster_energy(cluster_model, coords, species)
    e1 = _cluster_energy(cluster_model, coords[perm], species)
    assert e0 == pytest.approx(e1, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_energy_extensive_for_far_separated_copies(cluster_model, seed):
    """Two non-interacting copies have (about) twice the energy of one.

    The energy-bias constant is per atom, so extensivity is exact for the
    network part; we compare against the single-cluster energy doubled.
    """
    rng = np.random.default_rng(seed)
    coords = 10.0 + rng.normal(scale=1.0, size=(5, 3))
    single_sp = np.zeros(5, dtype=np.int64)
    pair = np.concatenate([coords, coords + np.array([30.0, 0.0, 0.0])])
    pair_sp = np.zeros(10, dtype=np.int64)
    e1 = _cluster_energy(cluster_model, coords, single_sp)
    e2 = _cluster_energy(cluster_model, pair, pair_sp)
    assert e2 == pytest.approx(2 * e1, rel=1e-9, abs=1e-8)
