"""ParamStore: ordering, flatten/unflatten, layer grouping."""

import numpy as np
import pytest

from repro.model import ParamStore


def _store():
    ps = ParamStore()
    ps.add("w0", np.arange(6, dtype=np.float64).reshape(2, 3), layer=0)
    ps.add("b0", np.array([1.0, 2.0, 3.0]), layer=0)
    ps.add("w1", np.ones((3, 2)), layer=1)
    return ps


class TestBasics:
    def test_num_params(self):
        assert _store().num_params == 15

    def test_duplicate_name_rejected(self):
        ps = _store()
        with pytest.raises(KeyError):
            ps.add("w0", np.zeros(2), layer=2)

    def test_get_set(self):
        ps = _store()
        ps["b0"] = np.array([9.0, 9.0, 9.0])
        assert np.allclose(ps["b0"], 9.0)

    def test_set_unknown_rejected(self):
        with pytest.raises(KeyError):
            _store()["nope"] = np.zeros(1)

    def test_set_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _store()["b0"] = np.zeros(4)

    def test_contains_and_names(self):
        ps = _store()
        assert "w1" in ps and "zz" not in ps
        assert ps.names() == ["w0", "b0", "w1"]


class TestFlattening:
    def test_flatten_order(self):
        flat = _store().flatten()
        assert np.allclose(flat[:6], np.arange(6))
        assert np.allclose(flat[6:9], [1.0, 2.0, 3.0])
        assert np.allclose(flat[9:], 1.0)

    def test_unflatten_roundtrip(self):
        ps = _store()
        flat = ps.flatten()
        ps.unflatten(flat * 2.0)
        assert np.allclose(ps["w0"], np.arange(6).reshape(2, 3) * 2)
        assert np.allclose(ps.flatten(), flat * 2.0)

    def test_unflatten_shape_check(self):
        with pytest.raises(ValueError):
            _store().unflatten(np.zeros(14))

    def test_flatten_grads_with_missing(self):
        ps = _store()
        g = ps.flatten_grads({"b0": np.array([5.0, 5.0, 5.0])})
        assert np.allclose(g[6:9], 5.0)
        assert np.allclose(g[:6], 0.0) and np.allclose(g[9:], 0.0)

    def test_entries_offsets_contiguous(self):
        entries = _store().entries()
        pos = 0
        for e in entries:
            assert e.offset == pos
            pos += e.size


class TestLayers:
    def test_layer_sizes_groups_w_and_b(self):
        assert _store().layer_sizes() == [(0, 9), (1, 6)]

    def test_copy_is_deep(self):
        ps = _store()
        cp = ps.copy()
        cp["b0"] = np.zeros(3)
        assert not np.allclose(ps["b0"], 0.0)
        assert cp.num_params == ps.num_params
