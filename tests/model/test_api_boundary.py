"""API-boundary enforcement: descriptor plumbing stays inside repro.model.

PR 5's contract: every consumer obtains predictions through the
:class:`repro.model.InferenceSession` protocol, and the frame ->
``DescriptorBatch`` assembly happens in exactly one place
(:func:`repro.model.session.frames_to_batch` and the training-side
``make_batch``).  This test walks the AST of every source file and fails
if a ``DescriptorBatch(...)`` constructor call appears outside
``src/repro/model/`` or ``src/repro/serve/`` -- hand-rolled descriptor
plumbing elsewhere (the pre-protocol active.py pattern) is a regression.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: subpackages allowed to construct DescriptorBatch directly
ALLOWED = ("model", "serve")


def _constructor_calls(tree: ast.AST) -> list[int]:
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if name == "DescriptorBatch":
                lines.append(node.lineno)
    return lines


def test_descriptor_batch_constructed_only_in_model_and_serve():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if rel.parts[0] in ALLOWED:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno in _constructor_calls(tree):
            offenders.append(f"{rel}:{lineno}")
    assert not offenders, (
        "DescriptorBatch constructed outside repro.model/repro.serve "
        f"(use InferenceSession.predict_many or model.frames_to_batch): {offenders}"
    )


def test_active_loop_has_no_descriptor_imports():
    """The active-learning loop consumes the session protocol; importing
    neighbor_table or DescriptorBatch there would mean the hand-rolled
    batch assembly crept back in."""
    source = (SRC / "train" / "active.py").read_text()
    tree = ast.parse(source)
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            imported.update(alias.name for alias in node.names)
        elif isinstance(node, ast.Import):
            imported.update(alias.name for alias in node.names)
    assert "DescriptorBatch" not in imported
    assert "neighbor_table" not in imported
    assert "make_batch" not in imported
