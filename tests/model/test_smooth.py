"""Smooth switching function: values, continuity, derivatives, graph parity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, grad, ops
from repro.model.smooth import poly_switch_np, smooth_graph, smooth_np

RCS, RC = 3.0, 5.0


class TestPolySwitch:
    def test_endpoint_values(self):
        p, _ = poly_switch_np(np.array([0.0, 1.0]))
        assert p[0] == pytest.approx(1.0)
        assert p[1] == pytest.approx(0.0)

    def test_endpoint_slopes_zero(self):
        _, dp = poly_switch_np(np.array([0.0, 1.0]))
        assert np.allclose(dp, 0.0)

    def test_monotone_decreasing(self):
        u = np.linspace(0, 1, 200)
        p, _ = poly_switch_np(u)
        assert np.all(np.diff(p) <= 1e-12)

    def test_derivative_matches_numeric(self):
        u = np.linspace(0.05, 0.95, 30)
        _, dp = poly_switch_np(u)
        eps = 1e-7
        num = (poly_switch_np(u + eps)[0] - poly_switch_np(u - eps)[0]) / (2 * eps)
        assert np.allclose(dp, num, atol=1e-6)


class TestSmoothNp:
    def test_inner_region_is_inverse_r(self):
        r = np.array([0.5, 1.0, 2.0, 2.9])
        s, _ = smooth_np(r, RCS, RC)
        assert np.allclose(s, 1.0 / r)

    def test_outside_cutoff_zero(self):
        s, ds = smooth_np(np.array([5.0, 6.0, 100.0]), RCS, RC)
        assert np.allclose(s, 0.0) and np.allclose(ds, 0.0)

    def test_continuity_at_rcs(self):
        s_lo, _ = smooth_np(np.array([RCS - 1e-9]), RCS, RC)
        s_hi, _ = smooth_np(np.array([RCS + 1e-9]), RCS, RC)
        assert s_lo[0] == pytest.approx(s_hi[0], abs=1e-7)

    def test_continuity_at_rc(self):
        s_lo, _ = smooth_np(np.array([RC - 1e-9]), RCS, RC)
        assert s_lo[0] == pytest.approx(0.0, abs=1e-7)

    def test_derivative_continuity_at_boundaries(self):
        for b in (RCS, RC):
            _, d_lo = smooth_np(np.array([b - 1e-9]), RCS, RC)
            _, d_hi = smooth_np(np.array([b + 1e-9]), RCS, RC)
            assert d_lo[0] == pytest.approx(d_hi[0], abs=1e-6)

    def test_derivative_matches_numeric(self):
        r = np.linspace(0.5, 5.5, 60)
        r = r[np.abs(r - RCS) > 1e-3]
        r = r[np.abs(r - RC) > 1e-3]
        _, ds = smooth_np(r, RCS, RC)
        eps = 1e-7
        num = (smooth_np(r + eps, RCS, RC)[0] - smooth_np(r - eps, RCS, RC)[0]) / (2 * eps)
        assert np.allclose(ds, num, atol=1e-6)

    def test_zero_distance_safe(self):
        s, ds = smooth_np(np.array([0.0]), RCS, RC)
        assert np.isfinite(s[0]) and np.isfinite(ds[0])


@settings(max_examples=40, deadline=None)
@given(st.floats(0.1, 7.0))
def test_smooth_nonnegative_and_bounded(r):
    s, _ = smooth_np(np.array([r]), RCS, RC)
    assert 0.0 <= s[0] <= 1.0 / min(r, RCS) + 1e-12


class TestSmoothGraph:
    def test_matches_numpy_implementation(self):
        r = np.linspace(0.4, 6.0, 40)
        mask = np.ones_like(r, dtype=bool)
        s_np, _ = smooth_np(r, RCS, RC)
        s_g = smooth_graph(Tensor(r), RCS, RC, mask)
        assert np.allclose(s_g.data, s_np, atol=1e-12)

    def test_masked_slots_are_zero(self):
        r = np.array([1.0, 2.0, 3.5])
        mask = np.array([True, False, True])
        s_g = smooth_graph(Tensor(r), RCS, RC, mask)
        assert s_g.data[1] == 0.0

    def test_graph_gradient_matches_analytic(self):
        r0 = np.array([1.2, 3.5, 4.7])
        mask = np.ones(3, dtype=bool)
        r = Tensor(r0, requires_grad=True)
        s = smooth_graph(r, RCS, RC, mask)
        (g,) = grad(ops.tsum(s), [r])
        _, ds = smooth_np(r0, RCS, RC)
        assert np.allclose(g.data, ds, atol=1e-10)

    def test_no_nan_gradient_on_padded_zero_distance(self):
        r0 = np.array([0.0, 2.0])
        mask = np.array([False, True])
        r = Tensor(r0, requires_grad=True)
        s = smooth_graph(r, RCS, RC, mask)
        (g,) = grad(ops.tsum(s), [r])
        assert np.all(np.isfinite(g.data))
