"""DeePMDCalculator: the NNMD inference adapter."""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.model.calculator import DeePMDCalculator


@pytest.fixture()
def calc(cu_model, cu_dataset):
    return DeePMDCalculator(cu_model, cu_dataset.species)


class TestCalculator:
    def test_matches_batched_prediction(self, calc, cu_model, cu_dataset, small_cfg):
        pos = cu_dataset.positions[2]
        e, f = calc.energy_forces(pos, cu_dataset.cell)
        batch = make_batch(cu_dataset, np.array([2]), small_cfg)
        ref = cu_model.predict(batch, fused_env=True)
        assert e == pytest.approx(float(ref.energy[0]), rel=1e-12)
        assert np.allclose(f, ref.forces[0], atol=1e-12)

    def test_forces_consistent_with_energy(self, calc, cu_dataset):
        pos = cu_dataset.positions[0]
        cell = cu_dataset.cell
        _, f = calc.energy_forces(pos, cell)
        eps = 1e-5
        for (i, d) in [(3, 0), (17, 2)]:
            p = pos.copy(); p[i, d] += eps
            ep = calc.energy(p, cell)
            p = pos.copy(); p[i, d] -= eps
            em = calc.energy(p, cell)
            assert f[i, d] == pytest.approx(-(ep - em) / (2 * eps), abs=5e-5)

    def test_graph_and_fused_paths_agree(self, cu_model, cu_dataset):
        pos = cu_dataset.positions[1]
        a = DeePMDCalculator(cu_model, cu_dataset.species, fused_env=True)
        b = DeePMDCalculator(cu_model, cu_dataset.species, fused_env=False)
        ea, fa = a.energy_forces(pos, cu_dataset.cell)
        eb, fb = b.energy_forces(pos, cu_dataset.cell)
        assert ea == pytest.approx(eb, rel=1e-12)
        assert np.allclose(fa, fb, atol=1e-12)

    def test_translation_invariant(self, calc, cu_dataset):
        pos = cu_dataset.positions[0]
        cell = cu_dataset.cell
        e0 = calc.energy(pos, cell)
        e1 = calc.energy(cell.wrap(pos + 1.234), cell)
        assert e0 == pytest.approx(e1, abs=1e-9)

    def test_potential_interface(self, calc, cu_dataset):
        pos = cu_dataset.positions[0]
        cell = cu_dataset.cell
        assert calc.energy(pos, cell) == pytest.approx(calc.energy_forces(pos, cell)[0])
        assert calc.forces(pos, cell).shape == pos.shape
