"""Environment matrix: graph/np/fused parity, adjointness, batch slicing."""

import numpy as np
import pytest

from repro.autograd import Tensor, grad, ops
from repro.model import compute_stats, identity_stats, make_batch
from repro.model.environment import (
    _make_env_linear_ops,
    _env_intermediates,
    environment_fused,
    environment_graph,
    environment_np,
)


@pytest.fixture()
def env_setup(cu_dataset, small_cfg):
    batch = make_batch(cu_dataset, np.arange(2), small_cfg)
    stats = compute_stats(cu_dataset, small_cfg)
    return batch, stats, small_cfg


class TestParity:
    def test_graph_equals_numpy(self, env_setup):
        batch, stats, cfg = env_setup
        rn_g = environment_graph(Tensor(batch.coords), batch, cfg, stats)
        rn_np, _ = environment_np(batch.coords, batch, cfg, stats)
        assert np.allclose(rn_g.data, rn_np, atol=1e-12)

    def test_fused_equals_graph(self, env_setup):
        batch, stats, cfg = env_setup
        rn_g = environment_graph(Tensor(batch.coords), batch, cfg, stats)
        rn_f = environment_fused(Tensor(batch.coords), batch, cfg, stats)
        assert np.allclose(rn_g.data, rn_f.data, atol=1e-12)

    def test_padded_rows_zero(self, env_setup):
        batch, stats, cfg = env_setup
        rn, _ = environment_np(batch.coords, batch, cfg, stats)
        assert np.allclose(rn[~batch.mask], 0.0)

    def test_gradients_match_between_paths(self, env_setup):
        batch, stats, cfg = env_setup
        proj = np.random.default_rng(0).normal(size=(batch.batch_size, batch.n_atoms, batch.nmax, 4))
        grads = []
        for fn in (environment_graph, environment_fused):
            coords = Tensor(batch.coords, requires_grad=True)
            rn = fn(coords, batch, cfg, stats)
            (g,) = grad(ops.tsum(ops.mul(rn, Tensor(proj))), [coords])
            grads.append(g.data)
        assert np.allclose(grads[0], grads[1], atol=1e-10)

    def test_fused_gradient_matches_numeric(self, env_setup):
        batch, stats, cfg = env_setup
        rng = np.random.default_rng(1)
        proj = rng.normal(size=(batch.batch_size, batch.n_atoms, batch.nmax, 4))
        coords = Tensor(batch.coords, requires_grad=True)
        rn = environment_fused(coords, batch, cfg, stats)
        (g,) = grad(ops.tsum(ops.mul(rn, Tensor(proj))), [coords])
        eps = 1e-6
        for (b, i, d) in [(0, 3, 1), (1, 7, 0), (0, 0, 2)]:
            cp = batch.coords.copy(); cp[b, i, d] += eps
            cm = batch.coords.copy(); cm[b, i, d] -= eps
            fp = (environment_np(cp, batch, cfg, stats)[0] * proj).sum()
            fm = (environment_np(cm, batch, cfg, stats)[0] * proj).sum()
            assert g.data[b, i, d] == pytest.approx((fp - fm) / (2 * eps), abs=1e-5)


class TestLinearAdjoint:
    def test_vjp_transpose_is_adjoint(self, env_setup):
        """<A u, v> == <u, A^T v> for the env backward linear map."""
        batch, stats, cfg = env_setup
        env = _env_intermediates(batch.coords, batch, cfg)
        vjp_op, adjoint_op = _make_env_linear_ops(env, batch, stats)
        rng = np.random.default_rng(2)
        u = rng.normal(size=(batch.batch_size, batch.n_atoms, batch.nmax, 4))
        v = rng.normal(size=(batch.batch_size, batch.n_atoms, 3))
        au = vjp_op(Tensor(u)).data
        atv = adjoint_op(Tensor(v)).data
        assert float((au * v).sum()) == pytest.approx(float((u * atv).sum()), rel=1e-10)

    def test_mutual_backward_recursion(self, env_setup):
        """The two linear ops are each other's backward (any order)."""
        batch, stats, cfg = env_setup
        env = _env_intermediates(batch.coords, batch, cfg)
        vjp_op, _ = _make_env_linear_ops(env, batch, stats)
        rng = np.random.default_rng(3)
        u = Tensor(
            rng.normal(size=(batch.batch_size, batch.n_atoms, batch.nmax, 4)),
            requires_grad=True,
        )
        out = vjp_op(u)
        w = rng.normal(size=out.shape)
        (g,) = grad(ops.tsum(ops.mul(out, Tensor(w))), [u], create_graph=True)
        # the map is linear, so its gradient is a constant w.r.t. u: the
        # create_graph backward correctly yields a graph-free tensor...
        assert not g.requires_grad
        # ...whose value equals the adjoint applied to the seed
        (_, adjoint) = _make_env_linear_ops(env, batch, stats)
        assert np.allclose(g.data, adjoint(Tensor(w)).data, atol=1e-12)


class TestBatchSlicing:
    def test_frame_slice_selfcontained(self, cu_dataset, small_cfg):
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        sub = batch.frame_slice(2, 4)
        assert sub.batch_size == 2
        assert sub.idx_flat.min() >= 0
        assert sub.idx_flat.max() < 2 * sub.n_atoms
        stats = identity_stats()
        full, _ = environment_np(batch.coords, batch, small_cfg, stats)
        part, _ = environment_np(sub.coords, sub, small_cfg, stats)
        assert np.allclose(part, full[2:4])

    def test_make_batch_label_alignment(self, cu_dataset, small_cfg):
        idx = np.array([3, 0, 5])
        batch = make_batch(cu_dataset, idx, small_cfg)
        assert np.array_equal(batch.energies, cu_dataset.energies[idx])
        assert np.array_equal(batch.forces, cu_dataset.forces[idx])


class TestStats:
    def test_compute_stats_shapes_and_convention(self, cu_dataset, small_cfg):
        stats = compute_stats(cu_dataset, small_cfg)
        assert stats.davg.shape == (4,) and stats.dstd.shape == (4,)
        assert np.allclose(stats.davg[1:], 0.0)  # angular columns unshifted
        assert np.all(stats.dstd > 0)

    def test_normalized_radial_column_standardized(self, cu_dataset, small_cfg):
        stats = compute_stats(cu_dataset, small_cfg)
        batch = make_batch(cu_dataset, np.arange(cu_dataset.n_frames), small_cfg)
        rn, _ = environment_np(batch.coords, batch, small_cfg, stats)
        vals = rn[..., 0][batch.mask]
        assert abs(vals.mean()) < 0.2
        assert vals.std() == pytest.approx(1.0, abs=0.25)
