"""End-to-end integration: data -> train -> evaluate -> save -> NNMD."""

import numpy as np
import pytest

from repro import (
    DeePMD,
    DeePMDCalculator,
    DeePMDConfig,
    FEKF,
    Adam,
    KalmanConfig,
    Trainer,
    generate_dataset,
)
from repro.md import LangevinIntegrator, kinetic_energy
from repro.data import SYSTEMS


@pytest.fixture(scope="module")
def trained():
    """Train a small FEKF model on Cu to a usable accuracy."""
    ds = generate_dataset("Cu", frames_per_temperature=16, size="small",
                          equilibration_steps=15, stride=3)
    train, test = ds.split(0.8, seed=0)
    cfg = DeePMDConfig.scaled_down(rcut=3.5, nmax=16)
    model = DeePMD.for_dataset(train, cfg, seed=1)
    opt = FEKF(model, KalmanConfig(blocksize=2048, fused_update=True), fused_env=True)
    result = Trainer(model, opt, train, test, batch_size=4, seed=0).run(max_epochs=6)
    return model, opt, train, test, result


class TestTrainingPipeline:
    def test_fekf_converges(self, trained):
        _, _, _, _, result = trained
        first, best = result.history[0].train_total, result.best_total("train")
        assert best < first * 0.5

    def test_no_generalization_gap(self, trained):
        """Paper Table 4: train/test RMSE differ by a small margin."""
        _, _, _, _, result = trained
        rec = min(result.history, key=lambda r: r.train_total)
        assert abs(rec.test_total - rec.train_total) < 0.3 * rec.test_total + 0.05

    def test_fekf_beats_adam_in_epochs(self):
        """The paper's headline: FEKF needs far fewer epochs than Adam."""
        ds = generate_dataset("Al", frames_per_temperature=12, size="small",
                              equilibration_steps=10, stride=3)
        train, test = ds.split(0.8, seed=0)
        cfg = DeePMDConfig.scaled_down(rcut=3.9, nmax=16)

        m_f = DeePMD.for_dataset(train, cfg, seed=1)
        fekf = FEKF(m_f, KalmanConfig(blocksize=2048, fused_update=True), fused_env=True)
        res_f = Trainer(m_f, fekf, train, test, batch_size=4, seed=0).run(max_epochs=5)

        m_a = DeePMD.for_dataset(train, cfg, seed=1)
        res_a = Trainer(m_a, Adam(m_a), train, test, batch_size=1, seed=0).run(max_epochs=5)
        assert res_f.best_total("train") < res_a.best_total("train")


class TestModelPersistence:
    def test_state_roundtrip_preserves_rmse(self, trained, tmp_path):
        model, _, _, test, _ = trained
        before = model.evaluate_rmse(test, max_frames=8)
        state = model.state_dict()
        clone = DeePMD.for_dataset(test, model.cfg, seed=123)
        clone.load_state_dict(state)
        after = clone.evaluate_rmse(test, max_frames=8)
        assert after["total_rmse"] == pytest.approx(before["total_rmse"], rel=1e-10)


class TestNNMD:
    def test_calculator_matches_model_predictions(self, trained):
        model, _, train, _, _ = trained
        calc = DeePMDCalculator(model, train.species)
        e, f = calc.energy_forces(train.positions[0], train.cell)
        assert np.isfinite(e)
        assert f.shape == (train.n_atoms, 3)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-8)

    def test_md_with_trained_model_runs_stably(self, trained):
        """Drive NVE MD with the NN potential: energy must stay bounded."""
        model, _, train, _, _ = trained
        calc = DeePMDCalculator(model, train.species)
        masses = SYSTEMS["Cu"].masses(train.species)
        integ = LangevinIntegrator(calc, masses, train.cell, timestep=2.0,
                                   friction=0.0, rng=np.random.default_rng(0))
        st = integ.initialize(train.positions[0], temp=300.0)
        e0 = st.potential_energy + kinetic_energy(st.velocities, masses)
        st = integ.run(st, 25)
        e1 = st.potential_energy + kinetic_energy(st.velocities, masses)
        assert abs(e1 - e0) < 0.05 * abs(e0) + 1.0


class TestOnlineRetraining:
    def test_finetune_on_new_temperature_improves(self, trained):
        """Figure 1's loop: new configurations arrive and the *same* Kalman
        filter keeps running over them -- P and lambda persist, which is
        what makes EKF-style training naturally online."""
        model, opt, _, _, _ = trained
        hot = generate_dataset("Cu", frames_per_temperature=10, size="small",
                               equilibration_steps=15, stride=3, seed=42)
        # restrict to frames from the hottest ladder rung
        hot_frames = np.where(hot.temperatures == max(hot.temperatures))[0]
        hot = hot.subset(hot_frames)
        before = model.evaluate_rmse(hot, max_frames=10)
        Trainer(model, opt, hot, None, batch_size=4, seed=1).run(max_epochs=4)
        after = model.evaluate_rmse(hot, max_frames=10)
        assert after["total_rmse"] < before["total_rmse"]
