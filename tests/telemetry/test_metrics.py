"""MetricRegistry: get-or-create semantics, labels, snapshot, kernel sink."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.telemetry import (
    MetricRegistry,
    disable_kernel_metrics,
    enable_kernel_metrics,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = MetricRegistry()
        c = reg.counter("steps")
        c.inc()
        c.inc(2.5)
        assert reg.counter("steps") is c
        assert c.value == 3.5

    def test_labels_distinguish_instruments(self):
        reg = MetricRegistry()
        reg.counter("kernels", op="matmul").inc(3)
        reg.counter("kernels", op="add").inc(1)
        assert reg.counter("kernels", op="matmul").value == 3
        assert reg.counter("kernels", op="add").value == 1
        # label order must not matter
        a = reg.gauge("g", x=1, y=2)
        assert reg.gauge("g", y=2, x=1) is a

    def test_gauge_last_value_wins(self):
        reg = MetricRegistry()
        g = reg.gauge("lambda")
        assert g.value is None
        g.set(0.98)
        g.set(0.99)
        assert g.value == 0.99

    def test_histogram_summary(self):
        reg = MetricRegistry()
        h = reg.histogram("dt")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5
        assert 1.0 <= s["p50"] <= 4.0

    def test_histogram_bounded_samples_exact_totals(self):
        reg = MetricRegistry()
        h = reg.histogram("dt", max_samples=8)
        for v in range(100):
            h.observe(float(v))
        assert len(h.samples) == 8
        assert h.count == 100
        assert h.total == sum(range(100))
        assert h.max == 99.0


class TestHistogramPercentiles:
    def test_empty_histogram_is_all_zeros(self):
        h = MetricRegistry().histogram("dt")
        assert h.percentile(50) == 0.0
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 0.0
        s = h.summary()
        assert s["min"] == 0.0 and s["max"] == 0.0 and s["p99"] == 0.0

    def test_extreme_quantiles_are_exact_min_max(self):
        h = MetricRegistry().histogram("dt")
        for v in [5.0, 1.0, 3.0]:
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(-3) == 1.0
        assert h.percentile(100) == 5.0
        assert h.percentile(250) == 5.0

    def test_extremes_exact_even_when_reservoir_capped(self):
        # the reservoir keeps the first 4 samples, but min/max are
        # tracked exactly for every observation
        h = MetricRegistry().histogram("dt", max_samples=4)
        for v in range(100):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 99.0

    def test_capped_flag(self):
        h = MetricRegistry().histogram("dt", max_samples=2)
        h.observe(1.0)
        assert h.capped is False
        assert h.summary()["capped"] is False
        h.observe(2.0)
        h.observe(3.0)
        assert h.capped is True
        assert h.summary()["capped"] is True


class TestHistogramMerge:
    def test_merge_lossless_aggregates(self):
        reg = MetricRegistry()
        a = reg.histogram("dt", rank=0)
        b = reg.histogram("dt", rank=1)
        for v in [1.0, 2.0]:
            a.observe(v)
        for v in [10.0, 0.5]:
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == 13.5
        assert a.min == 0.5
        assert a.max == 10.0
        assert sorted(a.samples) == [0.5, 1.0, 2.0, 10.0]

    def test_merge_accepts_as_dict_form(self):
        reg = MetricRegistry()
        a = reg.histogram("dt")
        b = reg.histogram("other")
        b.observe(7.0)
        a.merge(b.as_dict())
        assert a.count == 1 and a.max == 7.0

    def test_merge_empty_is_noop(self):
        a = MetricRegistry().histogram("dt")
        a.observe(1.0)
        a.merge(MetricRegistry().histogram("empty"))
        assert a.count == 1 and a.min == 1.0

    def test_merge_respects_reservoir_cap(self):
        reg = MetricRegistry()
        a = reg.histogram("dt", max_samples=3)
        b = reg.histogram("src")
        for v in range(10):
            b.observe(float(v))
        a.merge(b)
        assert a.count == 10
        assert len(a.samples) == 3
        assert a.capped is True

    def test_registry_merge_histograms(self):
        parent = MetricRegistry()
        worker = MetricRegistry()
        worker.histogram("task_s").observe(0.25)
        worker.histogram("task_s").observe(0.75)
        shipped = {"task_s": worker.histogram("task_s").as_dict()}
        parent.merge_histograms(shipped, rank=1)
        parent.merge_histograms(shipped, rank=1)
        h = parent.histogram("task_s", rank=1)
        assert h.count == 4
        assert h.total == pytest.approx(2.0)


class TestSnapshot:
    def test_snapshot_shape_and_label_strings(self):
        reg = MetricRegistry()
        reg.counter("c", op="matmul").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c{op=matmul}": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset(self):
        reg = MetricRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestKernelMetrics:
    def test_launches_routed_to_registry(self):
        reg = MetricRegistry()
        a = Tensor(np.ones((3, 3)))
        enable_kernel_metrics(reg)
        try:
            (a @ a).sum()
        finally:
            disable_kernel_metrics()
        snap = reg.snapshot()
        per_op = {
            k: v for k, v in snap["counters"].items()
            if k.startswith("autograd.kernel_launches")
        }
        assert sum(per_op.values()) >= 2
        assert snap["counters"]["autograd.kernel_bytes"] > 0
        # after disable, further ops must not report
        before = dict(snap["counters"])
        a @ a
        assert reg.snapshot()["counters"] == before

    def test_disable_without_enable_is_noop(self):
        disable_kernel_metrics()  # must not raise
