"""Span lifecycle: nesting, timing, counters, and the no-op fast path."""

import numpy as np

from repro import telemetry
from repro.autograd import Tensor
from repro.telemetry import NULL_SPAN, Tracer, current_tracer


class TestSpanNesting:
    def test_parent_child_linkage(self):
        with Tracer() as tr:
            with tr.span("outer"):
                with tr.span("inner"):
                    pass
                with tr.span("inner"):
                    pass
        # children close before their parent
        names = [e.name for e in tr.events]
        assert names == ["inner", "inner", "outer"]
        outer = tr.events[-1]
        for inner in tr.events[:2]:
            assert inner.parent_id == outer.span_id
            assert inner.depth == outer.depth + 1
            # ids are assigned at open, so a parent id < its children's
            assert outer.span_id < inner.span_id
        assert outer.parent_id is None
        assert outer.depth == 0

    def test_module_level_span_reports_to_innermost_tracer(self):
        with Tracer() as tr_outer:
            with Tracer() as tr_inner:
                with telemetry.span("work", tag="x"):
                    pass
            with telemetry.span("other"):
                pass
        assert [e.name for e in tr_inner.events] == ["work"]
        assert tr_inner.events[0].attrs == {"tag": "x"}
        assert [e.name for e in tr_outer.events] == ["other"]

    def test_wall_time_contains_children(self):
        with Tracer() as tr:
            with tr.span("outer"):
                with tr.span("inner"):
                    x = 0.0
                    for i in range(5000):
                        x += i
        inner, outer = tr.events
        assert outer.wall_s >= inner.wall_s >= 0.0
        assert outer.cpu_s >= 0.0

    def test_counters_and_attrs(self):
        with Tracer() as tr:
            with tr.span("s", kind="energy") as sp:
                sp.add("updates")
                sp.add("updates", 2)
                sp.set("group", 3)
        ev = tr.events[0]
        assert ev.counters == {"updates": 3}
        assert ev.attrs == {"kind": "energy", "group": 3}


class TestNoOpPath:
    def test_span_without_tracer_is_shared_null(self):
        assert current_tracer() is None
        sp = telemetry.span("anything", k=1)
        assert sp is NULL_SPAN
        with sp as s:
            s.add("x").set("y", 2)  # all no-ops, chainable

    def test_enable_disable(self):
        tr = telemetry.enable()
        try:
            assert current_tracer() is tr
            with telemetry.span("e"):
                pass
        finally:
            popped = telemetry.disable()
        assert popped is tr
        assert current_tracer() is None
        assert [e.name for e in tr.events] == ["e"]


class TestKernelCapture:
    def test_spans_carry_kernel_counts(self):
        a = Tensor(np.ones((4, 4)))
        with Tracer(capture_kernels=True) as tr:
            with tr.span("compute"):
                (a @ a).sum()
        ev = tr.events[0]
        assert ev.counters["kernels"] >= 2  # matmul + sum at minimum
        assert ev.counters["kernel_bytes"] > 0

    def test_parent_counts_include_children(self):
        a = Tensor(np.ones((4, 4)))
        with Tracer(capture_kernels=True) as tr:
            with tr.span("outer"):
                with tr.span("inner"):
                    a @ a
        inner, outer = tr.events
        assert outer.counters["kernels"] >= inner.counters["kernels"] > 0


class TestSinksAndSummary:
    def test_sink_called_per_event(self):
        seen = []
        with Tracer(sinks=[seen.append]) as tr:
            with tr.span("a"):
                pass
            with tr.span("a"):
                pass
        assert [e.name for e in seen] == ["a", "a"]

    def test_keep_events_false_streams_only(self):
        seen = []
        with Tracer(sinks=[seen.append], keep_events=False) as tr:
            with tr.span("a"):
                pass
        assert tr.events == []
        assert len(seen) == 1

    def test_summary_aggregates_by_name(self):
        with Tracer() as tr:
            for _ in range(3):
                with tr.span("step") as sp:
                    sp.add("kernels", 2)
        summ = tr.summary()
        assert summ["step"]["count"] == 3
        assert summ["step"]["counters"]["kernels"] == 6
        assert summ["step"]["wall_s"] >= summ["step"]["max_wall_s"]
