"""Runtime health plane: windows, watchdogs, SLO rules, monitor, dashboard."""

import json
import threading
import time

import pytest

from repro.telemetry import JsonlExporter, read_jsonl
from repro.telemetry.monitor import (
    HealthMonitor,
    HealthSnapshot,
    HeartbeatRegistry,
    SLORule,
    SLOStatus,
    SlidingHistogram,
    WindowedRate,
    default_online_rules,
    default_serve_rules,
    evaluate_rule,
    render,
    render_timeline,
    worst_state,
)
from repro.telemetry.monitor.__main__ import main as monitor_cli


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# sliding windows
# ---------------------------------------------------------------------------
class TestSlidingHistogram:
    def test_window_percentiles(self):
        clk = FakeClock()
        sh = SlidingHistogram(window_s=10.0, buckets=5, clock=clk)
        for v in [1.0, 2.0, 3.0, 4.0]:
            sh.observe(v)
        s = sh.summary()
        assert s["count"] == 4
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["window_s"] == 10.0

    def test_old_observations_age_out(self):
        clk = FakeClock()
        sh = SlidingHistogram(window_s=10.0, buckets=5, clock=clk)
        sh.observe(100.0)
        clk.advance(4.0)
        sh.observe(1.0)
        assert sh.window().count == 2  # both inside the 10s window
        clk.advance(7.0)  # first obs now 11s old, second 7s old
        w = sh.window()
        assert w.count == 1
        assert w.max == 1.0
        clk.advance(10.0)  # everything expired
        assert sh.window().count == 0

    def test_bucket_slots_recycle(self):
        clk = FakeClock()
        sh = SlidingHistogram(window_s=5.0, buckets=5, clock=clk)
        for k in range(25):  # 5 full ring wraps
            sh.observe(float(k))
            clk.advance(1.0)
        # only the live buckets survive (the obs from t=20 is exactly
        # window_s old at t=25 and has aged out with its bucket)
        assert sh.window().count == 4
        assert sh.window().min == 21.0

    def test_merge_worker_histogram_into_current_bucket(self):
        clk = FakeClock()
        sh = SlidingHistogram(window_s=10.0, buckets=5, clock=clk)
        sh.merge({"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                  "samples": [1.0, 2.0, 3.0]})
        assert sh.window().count == 3
        clk.advance(11.0)
        assert sh.window().count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingHistogram(window_s=0.0)
        with pytest.raises(ValueError):
            SlidingHistogram(buckets=0)


class TestWindowedRate:
    def test_windowed_rate_and_errors(self):
        clk = FakeClock()
        wr = WindowedRate(window_s=10.0, buckets=5, clock=clk)
        for _ in range(20):
            wr.mark()
            clk.advance(0.5)
        # 20 events over 10s of elapsed time
        assert wr.rate() == pytest.approx(2.0, rel=0.3)
        assert wr.error_rate() == 0.0
        wr.mark(errors=1.0)
        s = wr.summary()
        assert s["errors"] == 1.0
        assert 0.0 < s["error_rate"] < 0.2

    def test_rate_uses_elapsed_not_window_when_young(self):
        clk = FakeClock(100.0)
        wr = WindowedRate(window_s=30.0, buckets=10, clock=clk)
        for _ in range(10):
            wr.mark()
        clk.advance(2.0)
        # 10 events in ~2s must not be diluted over the full 30s window
        assert wr.rate() > 3.0

    def test_ewma_decays(self):
        clk = FakeClock()
        wr = WindowedRate(window_s=8.0, halflife_s=2.0, clock=clk)
        for _ in range(100):
            wr.mark()
        burst = wr.ewma_rate()
        assert burst > 0.0
        clk.advance(2.0)
        assert wr.ewma_rate() == pytest.approx(burst / 2.0, rel=1e-6)
        clk.advance(20.0)
        assert wr.ewma_rate() < burst / 100.0

    def test_empty(self):
        wr = WindowedRate(clock=FakeClock())
        assert wr.rate() == 0.0
        assert wr.error_rate() == 0.0
        assert wr.ewma_rate() == 0.0


# ---------------------------------------------------------------------------
# watchdog heartbeats
# ---------------------------------------------------------------------------
class TestHeartbeatRegistry:
    def test_beat_resets_age(self):
        clk = FakeClock()
        reg = HeartbeatRegistry(clock=clk)
        reg.register("stage", deadline_s=1.0)
        clk.advance(0.5)
        reg.beat("stage")
        clk.advance(0.4)
        info = reg.ages()["stage"]
        assert info["age_s"] == pytest.approx(0.4)
        assert info["beats"] == 1
        assert not info["stalled"]

    def test_deadline_overrun_is_stalled(self):
        clk = FakeClock()
        reg = HeartbeatRegistry(clock=clk)
        reg.register("stage", deadline_s=1.0)
        clk.advance(1.5)
        assert reg.ages()["stage"]["stalled"]

    def test_dead_thread_is_stalled_until_done(self):
        reg = HeartbeatRegistry()
        t = threading.Thread(target=lambda: None)
        t.start()
        t.join()
        reg.register("worker", thread=t)
        assert reg.ages()["worker"]["stalled"]
        assert not reg.ages()["worker"]["alive"]
        reg.done("worker")
        assert not reg.ages()["worker"]["stalled"]

    def test_no_deadline_never_stalls_by_age(self):
        clk = FakeClock()
        reg = HeartbeatRegistry(clock=clk)
        reg.register("slow")
        clk.advance(1e6)
        assert not reg.ages()["slow"]["stalled"]

    def test_beat_auto_registers(self):
        reg = HeartbeatRegistry(clock=FakeClock())
        reg.beat("adhoc")
        assert "adhoc" in reg
        assert reg.ages()["adhoc"]["beats"] == 1

    def test_health_source_shape(self):
        reg = HeartbeatRegistry(clock=FakeClock())
        reg.register("a")
        assert set(reg.health()) == {"heartbeats"}


# ---------------------------------------------------------------------------
# SLO rules
# ---------------------------------------------------------------------------
class TestSLORules:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SLORule("bad", "nope", 1.0)

    def test_p99_latency_grades(self):
        rule = SLORule("p99", "p99_latency_s", 1.0, min_count=4)
        ok = evaluate_rule(rule, {"latency": {"count": 10, "p99": 0.5}})
        warn = evaluate_rule(rule, {"latency": {"count": 10, "p99": 0.9}})
        breach = evaluate_rule(rule, {"latency": {"count": 10, "p99": 1.5}})
        cold = evaluate_rule(rule, {"latency": {"count": 2, "p99": 9.0}})
        assert [s.state for s in (ok, warn, breach, cold)] == [
            "ok", "warn", "breach", "no_data"
        ]
        assert breach.value == 1.5

    def test_error_rate(self):
        rule = SLORule("err", "error_rate", 0.1, min_count=5)
        data = {"traffic": {"events": 50, "error_rate": 0.2}}
        assert evaluate_rule(rule, data).state == "breach"
        assert evaluate_rule(rule, {"traffic": {"events": 1}}).state == "no_data"

    def test_queue_saturation_names_worst_queue(self):
        rule = SLORule("sat", "queue_saturation", 0.9)
        data = {"queues": {
            "a": {"depth": 1, "capacity": 10},
            "b": {"depth": 10, "capacity": 10},
        }}
        s = evaluate_rule(rule, data)
        assert s.state == "breach"
        assert s.value == 1.0
        assert s.detail == "b"

    def test_queue_saturation_flat_form(self):
        rule = SLORule("sat", "queue_saturation", 0.9)
        s = evaluate_rule(rule, {"queue_depth": 3, "queue_capacity": 10})
        assert s.state == "ok" and s.value == pytest.approx(0.3)

    def test_rmse_nonregression(self):
        rule = SLORule("rmse", "rmse_nonregression", 0.0, warn_ratio=1.0)
        ok = evaluate_rule(rule, {"served_rmse": 0.5, "best_rmse": 0.5})
        breach = evaluate_rule(rule, {"served_rmse": 0.7, "best_rmse": 0.5})
        unmeasured = evaluate_rule(
            rule, {"served_rmse": float("inf"), "best_rmse": float("inf")}
        )
        assert ok.state == "ok"
        assert breach.state == "breach"
        assert unmeasured.state == "no_data"

    def test_swap_staleness(self):
        rule = SLORule("stale", "swap_staleness_s", 10.0)
        assert evaluate_rule(rule, {"swap_age_s": 3.0}).state == "ok"
        assert evaluate_rule(rule, {"swap_age_s": 30.0}).state == "breach"
        assert evaluate_rule(rule, {"swaps": 0}).state == "no_data"

    def test_heartbeat_worst_age_and_dead_thread(self):
        rule = SLORule("hb", "heartbeat_s", 5.0)
        healthy = {"heartbeats": {
            "a": {"age_s": 0.1, "alive": True, "done": False},
            "b": {"age_s": 1.0, "alive": True, "done": False},
        }}
        s = evaluate_rule(rule, healthy)
        assert s.state == "ok" and s.value == 1.0 and s.detail == "b"
        dead = {"heartbeats": {
            "a": {"age_s": 0.1, "alive": False, "done": False},
        }}
        s = evaluate_rule(rule, dead)
        assert s.state == "breach"
        assert "died" in s.detail

    def test_heartbeat_done_entries_ignored(self):
        rule = SLORule("hb", "heartbeat_s", 5.0)
        data = {"heartbeats": {
            "a": {"age_s": 99.0, "alive": False, "done": True},
        }}
        assert evaluate_rule(rule, data).state == "no_data"

    def test_per_entry_deadline_overrides_threshold(self):
        rule = SLORule("hb", "heartbeat_s", 100.0)
        data = {"heartbeats": {
            "fast": {"age_s": 2.0, "alive": True, "done": False,
                     "deadline_s": 1.0},
        }}
        assert evaluate_rule(rule, data).state == "breach"

    def test_missing_source(self):
        rule = SLORule("p99", "p99_latency_s", 1.0)
        assert evaluate_rule(rule, None).state == "no_data"

    def test_default_rule_sets(self):
        serve = default_serve_rules()
        online = default_online_rules()
        assert {r.kind for r in serve} == {
            "p99_latency_s", "error_rate", "queue_saturation", "heartbeat_s"
        }
        assert {r.kind for r in online} == {
            "heartbeat_s", "rmse_nonregression", "swap_staleness_s"
        }
        assert all(r.source == "serve" for r in serve)
        assert all(r.source == "online" for r in online)

    def test_worst_state(self):
        assert worst_state([]) == "ok"
        assert worst_state(["ok", "warn", "no_data"]) == "warn"
        assert worst_state(["warn", "breach"]) == "breach"

    def test_status_round_trips(self):
        s = SLOStatus("r", "error_rate", "serve", "warn", 0.04, 0.05, "d")
        assert SLOStatus.from_dict(s.as_dict()) == s


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------
class TestHealthMonitor:
    def _monitor(self, clk=None):
        clk = clk or FakeClock()
        mon = HealthMonitor(interval_s=0.5, clock=clk)
        state = {"p99": 0.1}
        mon.add_source("serve", lambda: {
            "latency": {"count": 50, "p99": state["p99"]},
        })
        mon.add_rules(SLORule("p99", "p99_latency_s", 1.0, min_count=1))
        return mon, state, clk

    def test_poll_once_records_snapshot(self):
        mon, _, clk = self._monitor()
        clk.advance(2.0)
        snap = mon.poll_once()
        assert snap.seq == 0
        assert snap.t == pytest.approx(2.0)
        assert snap.worst == "ok"
        assert snap.statuses[0].state == "ok"
        assert mon.snapshots == [snap]

    def test_alert_fires_on_transition_only(self):
        mon, state, _ = self._monitor()
        mon.poll_once()
        assert mon.alerts == []
        state["p99"] = 5.0
        s1 = mon.poll_once()
        assert len(s1.alerts) == 1
        assert s1.alerts[0]["from"] == "ok" and s1.alerts[0]["to"] == "breach"
        # stays breached: no repeat alert
        mon.poll_once()
        assert mon.breaches() == 1
        # recovery alert
        state["p99"] = 0.1
        s3 = mon.poll_once()
        assert s3.alerts[0]["to"] == "ok"
        assert len(mon.alerts) == 2

    def test_no_data_never_alerts(self):
        mon = HealthMonitor(clock=FakeClock())
        mon.add_source("serve", lambda: {"latency": {"count": 0}})
        mon.add_rules(SLORule("p99", "p99_latency_s", 1.0, min_count=8))
        mon.poll_once()
        mon.poll_once()
        assert mon.alerts == []

    def test_source_exception_is_contained(self):
        mon = HealthMonitor(clock=FakeClock())

        def broken():
            raise RuntimeError("boom")

        mon.add_source("bad", broken)
        snap = mon.poll_once()
        assert "boom" in snap.sources["bad"]["error"]

    def test_exporter_receives_typed_lines(self, tmp_path):
        path = str(tmp_path / "health.jsonl")
        with JsonlExporter(path) as out:
            mon = HealthMonitor(clock=FakeClock(), exporter=out)
            state = {"p99": 0.1}
            mon.add_source("serve", lambda: {"latency": {"count": 9, "p99": state["p99"]}})
            mon.add_rules(SLORule("p99", "p99_latency_s", 1.0))
            mon.poll_once()
            state["p99"] = 9.0
            mon.poll_once()
        events = read_jsonl(path)
        kinds = [e["type"] for e in events]
        assert kinds.count("health") == 2
        assert kinds.count("alert") == 1
        # snapshot lines round-trip
        snap = HealthSnapshot.from_dict(
            [e for e in events if e["type"] == "health"][-1]
        )
        assert snap.worst == "breach"

    def test_background_thread_samples(self):
        mon = HealthMonitor(interval_s=0.02)
        mon.add_source("serve", lambda: {"latency": {"count": 9, "p99": 0.1}})
        mon.add_rules(SLORule("p99", "p99_latency_s", 1.0))
        with mon:
            time.sleep(0.15)
        assert len(mon.snapshots) >= 3
        assert mon.breaches() == 0
        # stop() is idempotent and the thread is gone
        mon.stop()
        assert not any(
            t.name == "health-monitor" for t in threading.enumerate()
        )

    def test_summary_shape(self):
        mon, state, _ = self._monitor()
        mon.poll_once()
        state["p99"] = 5.0
        mon.poll_once()
        s = mon.summary()
        assert s["snapshots"] == 2
        assert s["breach_alerts"] == 1
        assert s["warn_alerts"] == 0
        assert s["by_rule"]["p99"]["breach"] == 1
        assert s["worst"] == "breach"
        assert s["rules"][0]["kind"] == "p99_latency_s"
        json.dumps(s)  # manifest-ready

    def test_watch_service_and_learner_wire_defaults(self):
        class FakeSvc:
            def health(self):
                return {}

        mon = HealthMonitor(clock=FakeClock())
        mon.watch_service(FakeSvc())
        mon.watch_learner(FakeSvc())
        kinds = {r.kind for r in mon._rules}
        assert "p99_latency_s" in kinds and "rmse_nonregression" in kinds
        snap = mon.poll_once()
        assert {s.state for s in snap.statuses} == {"no_data"}

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(interval_s=0.0)
        mon = HealthMonitor(clock=FakeClock())
        with pytest.raises(TypeError):
            mon.add_source("x", object())


# ---------------------------------------------------------------------------
# dashboard
# ---------------------------------------------------------------------------
class TestDashboard:
    def _snapshot(self) -> dict:
        return {
            "type": "health", "seq": 3, "t": 1.5, "worst": "breach",
            "sources": {"serve": {
                "latency": {"count": 9, "p50": 0.01, "p99": 0.4},
                "traffic": {"events": 9.0, "rate_per_s": 3.0, "error_rate": 0.0},
                "queue_depth": 2, "queue_capacity": 64,
                "heartbeats": {"serve-batcher": {
                    "age_s": 0.01, "alive": True, "done": False,
                    "stalled": False}},
            }},
            "statuses": [
                {"rule": "p99", "kind": "p99_latency_s", "state": "breach",
                 "value": 0.4, "threshold": 0.1, "detail": ""},
            ],
            "alerts": [],
        }

    def test_render_plain(self):
        out = render(self._snapshot(), color=False)
        assert "[BREACH]" in out
        assert "p99" in out
        assert "\x1b[" not in out

    def test_render_color(self):
        assert "\x1b[31" in render(self._snapshot(), color=True)

    def test_render_timeline(self):
        alerts = [{"t": 1.0, "from": "ok", "to": "breach", "rule": "p99",
                   "value": 0.5, "detail": "spike"}]
        out = render_timeline(alerts, color=False)
        assert "ok -> breach" in out and "spike" in out
        assert render_timeline([], color=False).strip() == "(no alerts)"

    def test_cli_renders_file(self, tmp_path, capsys):
        path = str(tmp_path / "h.jsonl")
        with JsonlExporter(path) as out:
            mon = HealthMonitor(clock=FakeClock(), exporter=out)
            mon.add_source("serve", lambda: {"latency": {"count": 9, "p99": 0.1}})
            mon.add_rules(SLORule("p99", "p99_latency_s", 1.0))
            mon.poll_once()
        assert monitor_cli([path, "--no-color"]) == 0
        cap = capsys.readouterr().out
        assert "snapshots: 1" in cap

    def test_cli_demo_covers_all_states(self, capsys):
        assert monitor_cli(["--demo", "--no-color"]) == 0
        out = capsys.readouterr().out
        assert "ok -> warn" in out
        assert "warn -> breach" in out
        assert "[BREACH]" in out and "[OK]" in out
