"""Exporter round-trips: JSONL stream, summarize, table rendering."""

import io
import json

from repro.telemetry import (
    JsonlExporter,
    MetricRegistry,
    Tracer,
    format_table,
    read_jsonl,
    summarize,
)


class TestJsonlRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with JsonlExporter(path) as out, Tracer(sinks=[out]) as tr:
            with tr.span("outer", kind="energy") as sp:
                sp.add("updates", 2)
                with tr.span("inner"):
                    pass
        lines = read_jsonl(path)
        assert [l["name"] for l in lines] == ["inner", "outer"]
        outer = lines[1]
        assert outer["type"] == "span"
        assert outer["attrs"] == {"kind": "energy"}
        assert outer["counters"] == {"updates": 2}
        assert lines[0]["parent_id"] == outer["span_id"]
        assert outer["wall_s"] >= 0.0

    def test_stream_target_and_metrics_line(self):
        buf = io.StringIO()
        reg = MetricRegistry()
        reg.counter("optim.steps").inc(4)
        with JsonlExporter(buf) as out, Tracer(sinks=[out]) as tr:
            with tr.span("s"):
                pass
            out.write_metrics(reg)
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert lines[0]["type"] == "span"
        assert lines[1] == {
            "type": "metrics",
            "data": {
                "counters": {"optim.steps": 4},
                "gauges": {},
                "histograms": {},
            },
        }
        # exporter does not close a stream it does not own
        buf.write("x")

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "gap.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "span", "name": "a"}\n\n\n{"type": "span", "name": "b"}\n')
        assert [l["name"] for l in read_jsonl(path)] == ["a", "b"]


class TestSummarize:
    def _events(self):
        with Tracer() as tr:
            for i in range(3):
                with tr.span("fekf.update") as sp:
                    sp.add("kernels", 10 + i)
            with tr.span("train.eval"):
                pass
        return tr.events

    def test_aggregation(self):
        summ = summarize(self._events())
        upd = summ["fekf.update"]
        assert upd["count"] == 3
        assert upd["counters"]["kernels"] == 33
        assert upd["min_wall_s"] <= upd["mean_wall_s"] <= upd["max_wall_s"]
        assert summ["train.eval"]["count"] == 1

    def test_format_table(self):
        text = format_table(summarize(self._events()))
        lines = text.splitlines()
        assert lines[0].split()[:2] == ["span", "count"]
        assert any("fekf.update" in l and "33" in l for l in lines)
        assert any("train.eval" in l for l in lines)

    def test_empty_summary_renders(self):
        assert "span" in format_table(summarize([]))


class TestReReadFidelity:
    def test_summary_from_reread_file_matches_live(self, tmp_path):
        """JsonlExporter -> read_jsonl -> summarize must agree with the
        live tracer summary, including with non-span lines interleaved."""
        path = str(tmp_path / "run.jsonl")
        reg = MetricRegistry()
        reg.counter("optim.steps").inc(2)
        with JsonlExporter(path) as out, Tracer(sinks=[out]) as tr:
            for i in range(3):
                with tr.span("fekf.update", kind="energy") as sp:
                    sp.add("kernels", 5 + i)
            with tr.span("train.eval"):
                pass
            out.write_metrics(reg)  # a non-span line summarize must skip
        live = summarize(tr.events)
        reread = summarize(read_jsonl(path))
        assert reread == live
        assert reread["fekf.update"]["counters"]["kernels"] == 18
