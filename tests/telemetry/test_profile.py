"""Op-level profiler: timelines, phase attribution, FLOPs, Chrome traces."""

import json
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd import instrument as _instrument
from repro.telemetry import (
    OpEvent,
    Tracer,
    format_ops_table,
    summarize_ops,
    summarize_phases,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.profile import classify_phase, estimate_flops


@dataclass
class _FakeSpan:
    name: str
    attrs: dict = field(default_factory=dict)


class TestClassifyPhase:
    def test_empty_stack_untracked(self):
        assert classify_phase([]) == "untracked"

    def test_gradient_is_backward(self):
        stack = [_FakeSpan("fekf.update", {"kind": "energy"}), _FakeSpan("fekf.gradient")]
        assert classify_phase(stack) == "backward"

    def test_kalman_flavours(self):
        assert classify_phase([_FakeSpan("fekf.kalman")]) == "kf_update"
        assert classify_phase([_FakeSpan("parallel.kalman")]) == "kf_update"

    def test_comm_is_reduce(self):
        assert classify_phase([_FakeSpan("parallel.comm", {"kind": "energy"})]) == "reduce"

    def test_forward_by_update_kind(self):
        energy = [_FakeSpan("fekf.update", {"kind": "energy"}), _FakeSpan("fekf.forward")]
        force = [_FakeSpan("fekf.update", {"kind": "force"}), _FakeSpan("fekf.forward")]
        assert classify_phase(energy) == "forward_energy"
        assert classify_phase(force) == "forward_force"

    def test_bare_forward_is_force_graph(self):
        assert classify_phase([_FakeSpan("fekf.forward")]) == "force_graph"

    def test_worker_task_kind(self):
        worker_e = [
            _FakeSpan("worker.task", {"method": "energy_task", "kind": "energy"}),
            _FakeSpan("fekf.forward"),
        ]
        worker_g = [
            _FakeSpan("worker.task", {"method": "graph_task"}),
            _FakeSpan("fekf.forward"),
        ]
        assert classify_phase(worker_e) == "forward_energy"
        assert classify_phase(worker_g) == "force_graph"

    def test_other_span_passes_through(self):
        assert classify_phase([_FakeSpan("train.eval")]) == "train.eval"


class TestEstimateFlops:
    def test_matmul_2mkn(self):
        assert estimate_flops("matmul", (4, 8), ((4, 16), (16, 8))) == 2 * 16 * 32

    def test_elementwise_one_per_element(self):
        assert estimate_flops("add", (10,), ((10,), (10,))) == 10

    def test_transcendental_budget(self):
        assert estimate_flops("tanh", (10,), ((10,),)) == 80

    def test_movement_free(self):
        assert estimate_flops("reshape", (4, 4), ((16,),)) == 0.0

    def test_reduction_counts_inputs(self):
        assert estimate_flops("sum", (), ((5, 7),)) == 35

    def test_unknown_shape_is_zero(self):
        assert estimate_flops("p_update_fused", None, None) == 0.0


class TestOpEventRoundTrip:
    def test_as_dict_from_dict(self):
        ev = OpEvent(
            name="matmul", t_start=0.5, dur_s=0.001, nbytes=256, flops=1024.0,
            span="fekf.forward", phase="forward_energy", span_id=3, rank=1, pid=42,
        )
        d = ev.as_dict()
        assert d["type"] == "op"
        assert OpEvent.from_dict(json.loads(json.dumps(d))) == ev


class TestProfilerRecording:
    def test_ops_recorded_with_span_attribution(self):
        with Tracer(profile=True) as tr:
            x = Tensor(np.ones((4, 4)))
            with tr.span("fekf.update", kind="energy"):
                with tr.span("fekf.forward"):
                    ops.matmul(x, x)
        events = tr.profiler.events
        assert [e.name for e in events] == ["matmul"]
        ev = events[0]
        assert ev.span == "fekf.forward"
        assert ev.phase == "forward_energy"
        assert ev.nbytes == 128
        assert ev.flops == 2 * 4 * 16
        assert ev.dur_s >= 0.0 and ev.t_start >= 0.0
        assert ev.rank is None

    def test_timeline_is_ordered(self):
        with Tracer(profile=True) as tr:
            x = Tensor(np.ones(16))
            with tr.span("s"):
                for _ in range(5):
                    ops.add(x, x)
        starts = [e.t_start for e in tr.profiler.events]
        assert starts == sorted(starts)

    def test_no_recording_outside_scope(self):
        tr = Tracer(profile=True)
        x = Tensor(np.ones(4))
        ops.add(x, x)  # tracer not installed
        assert tr.profiler.events == []
        assert not _instrument.shapes_wanted()

    def test_shape_gate_restored_after_scope(self):
        with Tracer(profile=True):
            assert _instrument.shapes_wanted()
        assert not _instrument.shapes_wanted()

    def test_nested_tracer_owns_the_ops(self):
        """A worker's nested profiling tracer records; the outer one
        stays silent (no double counting under SerialExecutor)."""
        x = Tensor(np.ones(4))
        with Tracer(profile=True) as outer:
            with Tracer(profile=True) as inner:
                ops.add(x, x)
        assert len(inner.profiler.events) == 1
        assert outer.profiler.events == []

    def test_max_events_cap(self):
        with Tracer(profile=True) as tr:
            tr.profiler.max_events = 3
            x = Tensor(np.ones(2))
            for _ in range(5):
                ops.add(x, x)
        assert len(tr.profiler.events) == 3
        assert tr.profiler.dropped == 2

    def test_emit_foreign_tags_rank_and_pid(self):
        with Tracer(profile=True) as tr:
            pass
        payload = [
            OpEvent(name="matmul", t_start=0.0, dur_s=0.1, nbytes=8, flops=2.0,
                    span="fekf.forward", phase="forward_energy", span_id=7).as_dict()
        ]
        tr.profiler.emit_foreign(payload, rank=1, pid=999)
        (ev,) = tr.profiler.events
        assert (ev.rank, ev.pid) == (1, 999)
        assert ev.span_id is None  # foreign ids are meaningless here


class TestSummaries:
    def _events(self):
        with Tracer(profile=True) as tr:
            x = Tensor(np.ones((8, 8)))
            with tr.span("fekf.update", kind="energy"):
                with tr.span("fekf.forward"):
                    ops.matmul(x, x)
                    ops.tanh(x)
                with tr.span("fekf.gradient"):
                    ops.add(x, x)
        return tr

    def test_phase_kernel_counts(self):
        tr = self._events()
        assert tr.profiler.phase_kernel_counts() == {
            "forward_energy": 2, "backward": 1,
        }

    def test_phase_summary_fields(self):
        summary = self._events().profiler.phase_summary()
        fwd = summary["forward_energy"]
        assert fwd["kernels"] == 2
        assert fwd["bytes"] == 2 * 8 * 8 * 8
        assert fwd["flops"] > 0 and fwd["wall_s"] >= 0.0

    def test_summarize_phases_accepts_dicts(self):
        tr = self._events()
        as_dicts = [e.as_dict() for e in tr.profiler.events]
        assert summarize_phases(as_dicts) == tr.profiler.phase_summary()

    def test_ops_table_renders(self):
        tr = self._events()
        table = format_ops_table(tr.profiler.events, top=2)
        lines = table.splitlines()
        assert lines[0].split()[:2] == ["op", "launches"]
        assert len(lines) == 4  # header, rule, two rows
        summary = summarize_ops(tr.profiler.events)
        assert summary["matmul"]["count"] == 1


class TestPhaseSpanTimes:
    def _traced(self):
        from repro.telemetry.profile import phase_span_times

        with Tracer(keep_events=True) as tr:
            with tr.span("fekf.update", kind="force"):
                with tr.span("fekf.forward"):
                    pass
                with tr.span("fekf.gradient"):
                    pass
                with tr.span("fekf.kalman"):
                    pass
            with tr.span("fekf.forward"):
                pass
        return phase_span_times, tr

    def test_spans_classified_through_reconstructed_stacks(self):
        phase_span_times, tr = self._traced()
        pt = phase_span_times(tr.events)
        assert {"forward_force", "backward", "kf_update",
                "force_graph", "fekf.update"} <= set(pt)
        assert all(v >= 0.0 for v in pt.values())
        # the parent span keeps its own time: canonical phases only hold
        # the spans that classify into them, with no double counting
        assert pt["fekf.update"] >= pt["forward_force"]

    def test_accepts_dict_events(self):
        phase_span_times, tr = self._traced()
        as_dicts = [e.as_dict() for e in tr.events]
        assert phase_span_times(as_dicts) == phase_span_times(tr.events)


class TestChromeTrace:
    def _traced(self):
        with Tracer(profile=True) as tr:
            x = Tensor(np.ones(8))
            with tr.span("train.step", step=0):
                ops.add(x, x)
        return tr

    def test_export_and_validate(self):
        tr = self._traced()
        trace = tr.chrome_trace()
        report = validate_chrome_trace(trace)
        assert report["pids"] == [1]
        assert report["rank_tracks"] == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"process_name", "thread_name", "train.step", "add"} <= names
        # spans on tid 0, ops on tid 1
        tids = {e["name"]: e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert tids["train.step"] == 0 and tids["add"] == 1

    def test_rank_tracks_from_foreign_ops(self):
        tr = self._traced()
        for rank, pid in ((0, 100), (1, 101)):
            tr.profiler.emit_foreign(
                [OpEvent(name="mul", t_start=0.0, dur_s=0.1, nbytes=8,
                         flops=1.0).as_dict()],
                rank=rank, pid=pid,
            )
        report = validate_chrome_trace(tr.chrome_trace())
        assert report["rank_tracks"] == ["rank 0 (pid 100)", "rank 1 (pid 101)"]
        assert len(report["pids"]) == 3

    def test_write_is_loadable_json(self, tmp_path):
        tr = self._traced()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tracer=tr)
        assert validate_chrome_trace(json.load(open(path)))["events"] > 0

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"foo": 1})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": "soon"}
                ]}
            )
