"""Property-based invariants of the data pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Dataset
from repro.md import Cell
from repro.model import DeePMDConfig, make_batch

CFG = DeePMDConfig(
    embedding_widths=(4, 4, 4), m_less=2, fitting_widths=(6, 6, 6),
    rcut=3.0, rcut_smooth=1.8, nmax=8,
)


def _dataset(n_frames, n_atoms, seed):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="p",
        positions=rng.uniform(0, 7, size=(n_frames, n_atoms, 3)),
        energies=rng.normal(size=n_frames),
        forces=rng.normal(size=(n_frames, n_atoms, 3)),
        species=np.zeros(n_atoms, dtype=np.int64),
        cell=Cell([7.0, 7.0, 7.0]),
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 10), st.integers(2, 8), st.integers(0, 1000), st.data())
def test_batch_labels_follow_frame_selection(n_frames, n_atoms, seed, data):
    ds = _dataset(n_frames, n_atoms, seed)
    idx = np.array(
        data.draw(st.lists(st.integers(0, n_frames - 1), min_size=1, max_size=5))
    )
    batch = make_batch(ds, idx, CFG)
    assert np.array_equal(batch.energies, ds.energies[idx])
    assert np.array_equal(batch.forces, ds.forces[idx])
    assert np.array_equal(batch.coords, ds.positions[idx])


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 10), st.integers(0, 1000), st.data())
def test_frame_slice_matches_direct_batch(n_frames, seed, data):
    ds = _dataset(n_frames, 5, seed)
    lo = data.draw(st.integers(0, n_frames - 2))
    hi = data.draw(st.integers(lo + 1, n_frames))
    full = make_batch(ds, np.arange(n_frames), CFG)
    sliced = full.frame_slice(lo, hi)
    direct = make_batch(ds, np.arange(lo, hi), CFG)
    assert np.array_equal(sliced.coords, direct.coords)
    assert np.array_equal(sliced.idx_flat, direct.idx_flat)
    assert np.array_equal(sliced.mask, direct.mask)
    assert np.array_equal(sliced.energies, direct.energies)


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 12), st.floats(0.1, 0.9), st.integers(0, 1000))
def test_split_is_a_partition(n_frames, frac, seed):
    ds = _dataset(n_frames, 4, seed)
    tr, te = ds.split(frac, seed=seed)
    assert tr.n_frames + te.n_frames == n_frames
    merged = np.concatenate([tr.energies, te.energies])
    assert sorted(merged.tolist()) == sorted(ds.energies.tolist())


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(0, 500))
def test_neighbor_mask_consistent_with_cutoff(n_atoms, seed):
    ds = _dataset(3, n_atoms, seed)
    nb = ds.ensure_neighbors(CFG.rcut, CFG.nmax)
    for t in range(3):
        pos = ds.positions[t]
        for a in range(n_atoms):
            for k in range(CFG.nmax):
                if nb.mask[t, a, k]:
                    rij = pos[nb.idx[t, a, k]] + nb.shift[t, a, k] - pos[a]
                    assert np.linalg.norm(rij) < CFG.rcut + 1e-9
