"""python -m repro.data dataset-generation CLI."""

import numpy as np

from repro.data import open_source, read_npz
from repro.data.__main__ import main


class TestDataCLI:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = str(tmp_path / "al.npz")
        assert main(["Al", "--frames", "2", "--size", "tiny", "--out", out]) == 0
        assert "Saving npy file done" in capsys.readouterr().out
        ds = read_npz(out)
        assert ds.name == "Al" and ds.n_frames == 8  # 2 x 4 temperatures

    def test_neighbors_flag(self, tmp_path, capsys):
        out = str(tmp_path / "cu.npz")
        assert main(
            ["Cu", "--frames", "1", "--size", "tiny", "--out", out, "--neighbors"]
        ) == 0
        ds = read_npz(out)
        assert ds.cached_neighbors is not None

    def test_seed_reproducible(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        main(["Mg", "--frames", "1", "--size", "tiny", "--seed", "5", "--out", a])
        main(["Mg", "--frames", "1", "--size", "tiny", "--seed", "5", "--out", b])
        assert np.array_equal(read_npz(a).positions, read_npz(b).positions)

    def test_store_ingest(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cu_store")
        assert main(
            [
                "Cu",
                "--frames",
                "2",
                "--size",
                "tiny",
                "--store",
                store_dir,
                "--shard-capacity",
                "4",
            ]
        ) == 0
        assert "ingested 6 frames" in capsys.readouterr().out  # 2 x 3 temps
        with open_source(store_dir) as src:
            assert src.n_frames == 6
            # 6 frames at 4 per shard -> one sealed + one active shard
            assert len(src.shards) == 2
            frames = src.get_frames(np.arange(6))
            assert frames.positions.shape[0] == 6
