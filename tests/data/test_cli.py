"""python -m repro.data dataset-generation CLI."""

import numpy as np

from repro.data import load_dataset
from repro.data.__main__ import main


class TestDataCLI:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = str(tmp_path / "al.npz")
        assert main(["Al", "--frames", "2", "--size", "tiny", "--out", out]) == 0
        assert "Saving npy file done" in capsys.readouterr().out
        ds = load_dataset(out)
        assert ds.name == "Al" and ds.n_frames == 8  # 2 x 4 temperatures

    def test_neighbors_flag(self, tmp_path, capsys):
        out = str(tmp_path / "cu.npz")
        assert main(
            ["Cu", "--frames", "1", "--size", "tiny", "--out", out, "--neighbors"]
        ) == 0
        ds = load_dataset(out)
        assert ds._neighbors is not None

    def test_seed_reproducible(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        main(["Mg", "--frames", "1", "--size", "tiny", "--seed", "5", "--out", a])
        main(["Mg", "--frames", "1", "--size", "tiny", "--seed", "5", "--out", b])
        assert np.array_equal(load_dataset(a).positions, load_dataset(b).positions)
