"""FrameSource protocol surface: windowed_order and open_source."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    Dataset,
    ShardedFrameStore,
    open_source,
    windowed_order,
    write_npz,
)


class TestWindowedOrder:
    def test_none_window_replays_historic_shuffle(self):
        """window=None must be bit-exactly the pre-FrameSource loader
        shuffle: default_rng(seed + 7919*epoch).permutation(n)."""
        for n, seed, epoch in [(10, 0, 0), (37, 5, 3), (128, 11, 7)]:
            legacy = np.random.default_rng(seed + 7919 * epoch).permutation(n)
            assert np.array_equal(windowed_order(n, None, seed, epoch), legacy)

    def test_deterministic(self):
        a = windowed_order(100, 16, seed=3, epoch=2)
        b = windowed_order(100, 16, seed=3, epoch=2)
        assert np.array_equal(a, b)

    def test_epochs_differ(self):
        a = windowed_order(100, 16, seed=3, epoch=0)
        b = windowed_order(100, 16, seed=3, epoch=1)
        assert not np.array_equal(a, b)

    def test_window_locality(self):
        """Each contiguous run of the order stays inside one window, so
        an LRU shard cache sized for one window serves the whole epoch."""
        n, w = 96, 16
        order = windowed_order(n, w, seed=0, epoch=0)
        for lo in range(0, n, w):
            chunk = order[lo : lo + w]
            assert chunk.min() // w == chunk.max() // w

    def test_window_covers_all_frames(self):
        order = windowed_order(100, 7, seed=9, epoch=4)
        assert sorted(order.tolist()) == list(range(100))

    def test_oversized_window_equals_none(self):
        a = windowed_order(20, 50, seed=1, epoch=0)
        b = windowed_order(20, None, seed=1, epoch=0)
        assert np.array_equal(a, b)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_order(10, 0, seed=0, epoch=0)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 60), st.integers(1, 20), st.integers(0, 50))
def test_windowed_order_is_permutation(n, window, seed):
    order = windowed_order(n, window, seed, epoch=0)
    assert sorted(order.tolist()) == list(range(n))


class TestOpenSource:
    def test_dataset_passes_through(self, cu_dataset):
        assert open_source(cu_dataset) is cu_dataset

    def test_store_passes_through(self, cu_dataset, tmp_path):
        with ShardedFrameStore.ingest(
            str(tmp_path / "s"), cu_dataset, shard_capacity=8
        ) as store:
            assert open_source(store) is store

    def test_npz_path_loads_dataset(self, cu_dataset, tmp_path):
        path = str(tmp_path / "cu.npz")
        write_npz(cu_dataset, path)
        src = open_source(path)
        assert isinstance(src, Dataset)
        assert np.array_equal(src.positions, cu_dataset.positions)

    def test_store_dir_opens_read_only(self, cu_dataset, tmp_path):
        path = str(tmp_path / "store")
        with ShardedFrameStore.ingest(path, cu_dataset, shard_capacity=8):
            pass
        with open_source(path) as src:
            assert isinstance(src, ShardedFrameStore)
            assert src.mode == "r"
            assert src.n_frames == cu_dataset.n_frames

    def test_dir_without_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            open_source(str(tmp_path))

    def test_unknown_path_rejected(self, tmp_path):
        bad = tmp_path / "frames.csv"
        bad.write_text("x")
        with pytest.raises(ValueError):
            open_source(str(bad))

    def test_kwargs_only_for_paths(self, cu_dataset):
        with pytest.raises(TypeError):
            open_source(cu_dataset, mode="r")

    def test_non_source_rejected(self):
        with pytest.raises(TypeError):
            open_source(42)
