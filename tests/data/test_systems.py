"""The eight canonical systems: builds, label consistency, Table 3 rows."""

import numpy as np
import pytest

from repro.data import SYSTEMS, generate_dataset, table3_rows


class TestRegistry:
    def test_all_eight_present(self):
        assert set(SYSTEMS) == {"Cu", "Al", "Si", "NaCl", "Mg", "H2O", "CuO", "HfO2"}

    @pytest.mark.parametrize("name", list(SYSTEMS))
    def test_build_paper_size(self, name):
        spec = SYSTEMS[name]
        pos, cell, sp, pot = spec.build("paper")
        assert pos.shape[1] == 3
        assert len(sp) == len(pos)
        assert sp.max() + 1 == len(spec.elements)
        e, f = pot.energy_forces(pos, cell)
        assert np.isfinite(e)
        assert f.shape == pos.shape

    def test_paper_atom_counts_near_table3(self):
        # Mg: paper uses 36; our orthorhombic hcp cell needs (3,2,2)=48
        # atoms to keep the first shell inside the minimum-image radius
        targets = {"Cu": 108, "Al": 32, "Si": 72, "NaCl": 64, "Mg": 48,
                   "H2O": 48, "CuO": 64, "HfO2": 98}
        for name, n_paper in targets.items():
            pos, _, _, _ = SYSTEMS[name].build("paper")
            assert abs(len(pos) - n_paper) <= 8, name

    @pytest.mark.parametrize("name", ["Cu", "NaCl", "H2O"])
    def test_build_small_and_tiny(self, name):
        for size in ("small", "tiny"):
            pos, cell, sp, pot = SYSTEMS[name].build(size)
            assert len(pos) > 0
            assert np.isfinite(pot.energy(pos, cell))

    def test_masses_lookup(self):
        spec = SYSTEMS["NaCl"]
        _, _, sp, _ = spec.build("tiny")
        m = spec.masses(sp)
        assert np.all(m[sp == 0] == pytest.approx(22.990))
        assert np.all(m[sp == 1] == pytest.approx(35.453))

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            generate_dataset("Unobtainium", 1)


class TestGeneratedData:
    @pytest.mark.parametrize("name", ["Al", "Mg"])
    def test_generate_dataset_labels_consistent(self, name):
        ds = generate_dataset(name, frames_per_temperature=2, size="small",
                              equilibration_steps=5, stride=2)
        spec = SYSTEMS[name]
        _, cell, _, pot = spec.build("small")
        for t in range(ds.n_frames):
            e, f = pot.energy_forces(ds.positions[t], cell)
            assert ds.energies[t] == pytest.approx(e)
            assert np.allclose(ds.forces[t], f)

    def test_frame_count_scales_with_temperatures(self):
        ds = generate_dataset("Al", frames_per_temperature=3, size="tiny",
                              equilibration_steps=3, stride=1)
        assert ds.n_frames == 3 * len(SYSTEMS["Al"].temperatures)

    def test_temperature_metadata(self):
        ds = generate_dataset("Cu", frames_per_temperature=2, size="tiny",
                              equilibration_steps=3, stride=1)
        assert set(ds.temperatures.tolist()) == set(SYSTEMS["Cu"].temperatures)

    def test_seed_reproducibility(self):
        kw = dict(frames_per_temperature=2, size="tiny", equilibration_steps=3, stride=1)
        a = generate_dataset("Mg", seed=7, **kw)
        b = generate_dataset("Mg", seed=7, **kw)
        assert np.array_equal(a.positions, b.positions)

    def test_table3_rows_complete(self):
        rows = table3_rows("paper")
        assert len(rows) == 8
        assert all({"system", "temperatures_K", "time_step_fs", "atom_number"} <= set(r) for r in rows)
