"""ShardedFrameStore: round-trips, crash safety, residency, identity.

The crash-safety contract under test: opening a store whose files were
torn mid-write (truncated tail shard, clipped footer index, flipped
payload bytes, stale manifest CRCs) raises the typed
:class:`FrameStoreCorrupt` -- never silently serves bad frames -- and
``recover=True`` reopens the longest valid prefix of shards, counting
what it dropped in ``recovered_frames``.
"""

import json
import os
import pickle

import numpy as np
import pytest

from repro.data import (
    Dataset,
    FrameSource,
    FrameStoreCorrupt,
    ShardedFrameStore,
    open_source,
)


@pytest.fixture()
def store_dir(cu_dataset, tmp_path):
    """A fresh store holding cu_dataset: 4 sealed shards + active tail."""
    path = str(tmp_path / "store")
    with ShardedFrameStore.ingest(path, cu_dataset, shard_capacity=4):
        pass
    return path


def _shard_path(store_dir, index):
    return os.path.join(store_dir, f"shard-{index:05d}.rfs")


def _manifest(store_dir):
    with open(os.path.join(store_dir, "manifest.json")) as fh:
        return json.load(fh)


class TestRoundtrip:
    def test_frames_round_trip_bit_exact(self, cu_dataset, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            assert store.n_frames == cu_dataset.n_frames
            assert store.n_atoms == cu_dataset.n_atoms
            idx = np.array([0, 5, 17, 3])
            frames = store.get_frames(idx)
            assert np.array_equal(frames.positions, cu_dataset.positions[idx])
            assert np.array_equal(frames.forces, cu_dataset.forces[idx])
            assert np.array_equal(frames.energies, cu_dataset.energies[idx])
            assert np.array_equal(
                frames.temperatures, cu_dataset.temperatures[idx]
            )

    def test_implements_frame_source(self, store_dir, cu_dataset):
        with ShardedFrameStore.open(store_dir) as store:
            assert isinstance(store, FrameSource)
        assert isinstance(cu_dataset, FrameSource)

    def test_energy_stats_match_dataset(self, cu_dataset, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            assert store.energy_per_atom_stats() == \
                cu_dataset.energy_per_atom_stats()

    def test_neighbor_tables_match_dataset(self, cu_dataset, store_dir):
        idx = np.array([2, 9, 14])
        ref = cu_dataset.neighbor_tables(idx, 3.2, 14)
        with ShardedFrameStore.open(store_dir) as store:
            got = store.neighbor_tables(idx, 3.2, 14)
            assert np.array_equal(got.idx, ref.idx)
            assert np.array_equal(got.shift, ref.shift)
            assert np.array_equal(got.mask, ref.mask)
            # second ask hits the per-frame cache, same arrays
            again = store.neighbor_tables(idx, 3.2, 14)
            assert np.array_equal(again.idx, ref.idx)

    def test_to_dataset_slice(self, cu_dataset, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            ds = store.to_dataset(np.arange(6))
            assert isinstance(ds, Dataset)
            assert np.array_equal(ds.positions, cu_dataset.positions[:6])

    def test_verify_passes_on_clean_store(self, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            store.verify()

    def test_read_only_refuses_append(self, store_dir, cu_dataset):
        with ShardedFrameStore.open(store_dir, mode="r") as store:
            with pytest.raises(PermissionError):
                store.append_dataset(cu_dataset)

    def test_append_resumes_across_reopen(self, cu_dataset, tmp_path):
        path = str(tmp_path / "resume")
        with ShardedFrameStore.ingest(path, cu_dataset, shard_capacity=4):
            pass
        with ShardedFrameStore.open(path, mode="a") as store:
            n = store.append_dataset(cu_dataset.subset(np.arange(3)))
            assert n == cu_dataset.n_frames + 3
        with ShardedFrameStore.open(path) as store:
            frames = store.get_frames([cu_dataset.n_frames + 2])
            assert np.array_equal(
                frames.positions[0], cu_dataset.positions[2]
            )
            store.verify()

    def test_index_out_of_range(self, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            with pytest.raises(IndexError):
                store.get_frames([store.n_frames])

    def test_geometry_mismatch_rejected(self, store_dir, nacl_dataset):
        with ShardedFrameStore.open(store_dir, mode="a") as store:
            with pytest.raises(ValueError):
                store.append_dataset(nacl_dataset)


class TestCrashSafety:
    def test_torn_tail_shard_fails_closed(self, store_dir):
        path = _shard_path(store_dir, 4)  # active tail (2 frames)
        os.truncate(path, os.path.getsize(path) - 16)
        with pytest.raises(FrameStoreCorrupt, match="torn shard"):
            ShardedFrameStore.open(store_dir)

    def test_truncated_footer_index_fails_closed(self, store_dir):
        path = _shard_path(store_dir, 2)  # sealed shard
        os.truncate(path, os.path.getsize(path) - 8)
        with pytest.raises(FrameStoreCorrupt):
            ShardedFrameStore.open(store_dir)

    def test_footer_bytes_corrupt_fails_closed(self, store_dir):
        # flip a byte inside the footer CRC table of a sealed shard --
        # the file keeps its size, so only the table CRC catches it
        path = _shard_path(store_dir, 1)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 24)
            byte = fh.read(1)
            fh.seek(size - 24)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(FrameStoreCorrupt):
            ShardedFrameStore.open(store_dir)

    def test_manifest_crc_mismatch_fails_closed(self, store_dir):
        manifest = _manifest(store_dir)
        manifest["shards"][0]["payload_crc"] ^= 1
        with open(os.path.join(store_dir, "manifest.json"), "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(FrameStoreCorrupt, match="CRC mismatch"):
            ShardedFrameStore.open(store_dir)

    def test_unreadable_manifest_fails_closed(self, store_dir):
        with open(os.path.join(store_dir, "manifest.json"), "w") as fh:
            fh.write("{not json")
        with pytest.raises(FrameStoreCorrupt, match="manifest"):
            ShardedFrameStore.open(store_dir)

    def test_unknown_schema_fails_closed(self, store_dir):
        manifest = _manifest(store_dir)
        manifest["schema"] = "repro.framestore/v999"
        with open(os.path.join(store_dir, "manifest.json"), "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(FrameStoreCorrupt, match="schema"):
            ShardedFrameStore.open(store_dir)

    def test_missing_store_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardedFrameStore.open(str(tmp_path / "nothing"))

    def test_payload_flip_caught_on_read(self, cu_dataset, store_dir):
        # keep the file size and footer intact; flip one payload byte.
        # open() is structural and passes, but fetching the frame trips
        # the per-frame CRC check (fail-closed at read time).
        path = _shard_path(store_dir, 0)
        with open(path, "r+b") as fh:
            fh.seek(48 + 100)  # inside frame 0's record
            byte = fh.read(1)
            fh.seek(48 + 100)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with ShardedFrameStore.open(store_dir) as store:
            with pytest.raises(FrameStoreCorrupt, match="CRC mismatch"):
                store.get_frames([0])
            with pytest.raises(FrameStoreCorrupt):
                store.verify()

    def test_recover_trims_to_last_complete_shard(self, cu_dataset, store_dir):
        # tear shard 3 (sealed) -- recovery must keep shards 0..2 (12
        # frames) and drop the torn shard plus the tail behind it
        path = _shard_path(store_dir, 3)
        os.truncate(path, os.path.getsize(path) - 40)
        with ShardedFrameStore.open(store_dir, mode="a", recover=True) as store:
            assert store.n_frames == 12
            assert store.recovered_frames == cu_dataset.n_frames - 12
            frames = store.get_frames(np.arange(12))
            assert np.array_equal(
                frames.positions, cu_dataset.positions[:12]
            )
        # recovery rewrote the manifest: a plain reopen is now clean
        with ShardedFrameStore.open(store_dir) as store:
            assert store.n_frames == 12
            store.verify()

    def test_recover_then_append_continues(self, cu_dataset, store_dir):
        os.truncate(
            _shard_path(store_dir, 4),
            os.path.getsize(_shard_path(store_dir, 4)) - 16,
        )
        with ShardedFrameStore.open(store_dir, mode="a", recover=True) as store:
            assert store.n_frames == 16
            store.append_dataset(cu_dataset.subset(np.arange(2)))
            assert store.n_frames == 18
        with ShardedFrameStore.open(store_dir) as store:
            store.verify()


class TestResidency:
    def test_lru_bounds_open_shards(self, store_dir):
        with ShardedFrameStore.open(store_dir, max_open_shards=2) as store:
            for lo in range(0, store.n_frames, 4):
                store.get_frames(np.arange(lo, min(lo + 4, store.n_frames)))
                assert store.cache_stats()["open_shards"] <= 2
            # the bound held while every shard was visited
            assert len(store.shards) == 5

    def test_neighbor_cache_is_bounded(self, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            store.neighbor_cache_frames = 4
            store.neighbor_tables(np.arange(10), 3.2, 14)
            assert store.cache_stats()["neighbor_cache_frames"] <= 4

    def test_close_releases_mappings(self, store_dir):
        store = ShardedFrameStore.open(store_dir)
        store.get_frames(np.arange(8))
        store.close()
        assert store.cache_stats()["open_shards"] == 0


class TestIdentity:
    def test_fingerprint_stable_across_reopen(self, store_dir):
        with ShardedFrameStore.open(store_dir) as a:
            fp = a.fingerprint()
        with ShardedFrameStore.open(store_dir) as b:
            assert b.fingerprint() == fp

    def test_equal_ingests_fingerprint_equal(self, cu_dataset, tmp_path):
        fps = []
        for name in ("a", "b"):
            with ShardedFrameStore.ingest(
                str(tmp_path / name), cu_dataset, shard_capacity=4
            ) as store:
                fps.append(store.fingerprint())
        assert fps[0] == fps[1]

    def test_append_changes_fingerprint(self, cu_dataset, store_dir):
        with ShardedFrameStore.open(store_dir, mode="a") as store:
            before = store.fingerprint()
            store.append_dataset(cu_dataset.subset(np.arange(1)))
            assert store.fingerprint() != before

    def test_pickle_ships_handle_not_data(self, cu_dataset, store_dir):
        with ShardedFrameStore.open(store_dir) as store:
            blob = pickle.dumps(store)
            # far smaller than the frame payload: only the path travels
            assert len(blob) < 1024
            clone = pickle.loads(blob)
        try:
            assert clone.fingerprint() == ShardedFrameStore.open(
                store_dir
            ).fingerprint()
            frames = clone.get_frames([1, 7])
            assert np.array_equal(
                frames.positions, cu_dataset.positions[[1, 7]]
            )
        finally:
            clone.close()

    def test_open_source_opens_store_dir(self, store_dir):
        with open_source(store_dir) as src:
            assert isinstance(src, ShardedFrameStore)
            assert src.mode == "r"
