"""Batch loader: coverage, determinism, drop semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import BatchLoader, Dataset
from repro.md import Cell


def _ds(f):
    return Dataset(
        name="t",
        positions=np.zeros((f, 2, 3)),
        energies=np.arange(f, dtype=np.float64),
        forces=np.zeros((f, 2, 3)),
        species=np.zeros(2, dtype=np.int64),
        cell=Cell([5.0] * 3),
    )


class TestLoader:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchLoader(_ds(4), 0)

    def test_len_drop_last(self):
        assert len(BatchLoader(_ds(10), 3)) == 3
        assert len(BatchLoader(_ds(10), 3, drop_last=False)) == 4

    def test_epoch_covers_all_frames_without_drop(self):
        loader = BatchLoader(_ds(10), 3, drop_last=False)
        seen = np.concatenate(list(loader.epoch(0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_drop_last_drops_remainder(self):
        loader = BatchLoader(_ds(10), 3)
        batches = list(loader.epoch(0))
        assert len(batches) == 3 and all(len(b) == 3 for b in batches)

    def test_same_epoch_index_same_order(self):
        loader = BatchLoader(_ds(12), 4, seed=5)
        a = np.concatenate(list(loader.epoch(2)))
        b = np.concatenate(list(loader.epoch(2)))
        assert np.array_equal(a, b)

    def test_different_epochs_shuffle_differently(self):
        loader = BatchLoader(_ds(12), 4, seed=5)
        a = np.concatenate(list(loader.epoch(0)))
        b = np.concatenate(list(loader.epoch(1)))
        assert not np.array_equal(a, b)

    def test_no_shuffle_preserves_order(self):
        loader = BatchLoader(_ds(9), 3, shuffle=False)
        seen = np.concatenate(list(loader.epoch(0)))
        assert np.array_equal(seen, np.arange(9))

    def test_iter_advances_epochs(self):
        loader = BatchLoader(_ds(8), 2, seed=0)
        a = np.concatenate(list(iter(loader)))
        b = np.concatenate(list(iter(loader)))
        assert not np.array_equal(a, b)

    def test_iter_replays_explicit_epoch_sequence(self):
        """Consecutive full passes over the loader are reproducible via
        epoch(0), epoch(1), ... -- the cursor is the only iterator state."""
        loader = BatchLoader(_ds(8), 2, seed=3)
        ref = BatchLoader(_ds(8), 2, seed=3)
        a = np.concatenate(list(loader))
        b = np.concatenate(list(loader))
        assert np.array_equal(a, np.concatenate(list(ref.epoch(0))))
        assert np.array_equal(b, np.concatenate(list(ref.epoch(1))))

    def test_epoch_query_does_not_mutate_cursor(self):
        """Neither epoch(i), epoch(), nor an unconsumed iter() advances
        the cursor; only exhausting an iterator does."""
        loader = BatchLoader(_ds(8), 2, seed=3)
        ref = BatchLoader(_ds(8), 2, seed=3)
        list(loader.epoch(5))   # explicit index: pure
        list(loader.epoch())    # cursor read: pure
        it = iter(loader)       # created but not consumed: pure
        next(it)                # even partially consumed: pure
        a = np.concatenate(list(loader))
        assert np.array_equal(a, np.concatenate(list(ref.epoch(0))))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 30), st.integers(1, 8), st.integers(0, 100))
def test_loader_invariants(frames, bs, seed):
    loader = BatchLoader(_ds(frames), bs, seed=seed, drop_last=False)
    batches = list(loader.epoch(0))
    seen = np.concatenate(batches) if batches else np.array([])
    assert len(set(seen.tolist())) == len(seen)  # no duplicates
    assert sorted(seen.tolist()) == list(range(frames))  # full coverage
    assert all(len(b) <= bs for b in batches)


class TestWindowedLoader:
    def test_default_window_is_historic_shuffle(self):
        """window=None (the default) replays the pre-FrameSource order."""
        loader = BatchLoader(_ds(12), 4, seed=5)
        legacy = np.random.default_rng(5 + 7919 * 2).permutation(12)
        assert np.array_equal(np.concatenate(list(loader.epoch(2))), legacy)

    def test_window_bounds_batch_locality(self):
        loader = BatchLoader(_ds(32), 4, seed=1, window=8)
        for batch in loader.epoch(0):
            assert batch.max() - batch.min() < 8

    def test_window_still_covers_epoch(self):
        loader = BatchLoader(_ds(30), 5, seed=2, window=10, drop_last=False)
        seen = np.concatenate(list(loader.epoch(0)))
        assert sorted(seen.tolist()) == list(range(30))

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            BatchLoader(_ds(8), 2, window=0)


class TestMakeLoader:
    def test_plain_loader_by_default(self):
        from repro.data import StreamingLoader, make_loader

        loader = make_loader(_ds(8), 2, seed=1)
        assert type(loader) is BatchLoader
        assert not isinstance(loader, StreamingLoader)

    def test_prefetch_returns_streaming(self, cu_dataset, small_cfg):
        from repro.data import StreamingLoader, make_loader

        loader = make_loader(
            cu_dataset, 4, cfg=small_cfg, prefetch=True, executor="serial"
        )
        try:
            assert isinstance(loader, StreamingLoader)
        finally:
            loader.close()

    def test_prefetch_without_cfg_rejected(self):
        from repro.data import make_loader

        with pytest.raises(TypeError):
            make_loader(_ds(8), 2, prefetch=True)

    def test_same_params_same_batches(self):
        from repro.data import make_loader

        a = make_loader(_ds(20), 4, seed=7, window=8)
        b = make_loader(_ds(20), 4, seed=7, window=8)
        assert all(
            np.array_equal(x, y)
            for x, y in zip(a.epoch(1), b.epoch(1))
        )


class TestStreamingEquivalence:
    """StreamingLoader yields the synchronous loader's exact batch
    sequence -- the bit-identity contract of the prefetch path."""

    def test_streaming_matches_sync_batches(self, cu_dataset, small_cfg):
        from repro.data import StreamingLoader

        sync = BatchLoader(cu_dataset, 4, seed=3)
        ref = [
            (idx, batch) for idx, batch in sync.iter_batches(small_cfg, 0)
        ]
        with StreamingLoader(
            cu_dataset, 4, cfg=small_cfg, seed=3, executor="serial"
        ) as stream:
            got = list(stream.iter_batches(epoch_index=0))
        assert len(got) == len(ref)
        for (ri, rb), (gi, gb) in zip(ref, got):
            assert np.array_equal(ri, gi)
            assert np.array_equal(rb.energies, gb.energies)
            assert np.array_equal(rb.coords, gb.coords)
            assert np.array_equal(rb.idx_flat, gb.idx_flat)

    def test_streaming_counts_batches(self, cu_dataset, small_cfg):
        from repro.data import StreamingLoader

        with StreamingLoader(
            cu_dataset, 4, cfg=small_cfg, seed=3, executor="serial"
        ) as stream:
            stream.warm_up()
            n = sum(1 for _ in stream.iter_batches(epoch_index=0))
            assert stream.stats["batches"] == n
            assert stream.stats["hits"] + stream.stats["stalls"] == n


class TestDeprecatedLoaderSurface:
    def test_dataset_kwarg_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="make_loader"):
            loader = BatchLoader(dataset=_ds(8), batch_size=2)
        assert loader.source.n_frames == 8

    def test_dataset_property_warns(self):
        loader = BatchLoader(_ds(8), 2)
        with pytest.warns(DeprecationWarning, match="source"):
            assert loader.dataset is loader.source

    def test_both_source_and_dataset_rejected(self):
        ds = _ds(4)
        with pytest.raises(TypeError):
            BatchLoader(ds, 2, dataset=ds)

    def test_no_source_rejected(self):
        with pytest.raises(TypeError):
            BatchLoader(batch_size=2)
