"""Batch loader: coverage, determinism, drop semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import BatchLoader, Dataset
from repro.md import Cell


def _ds(f):
    return Dataset(
        name="t",
        positions=np.zeros((f, 2, 3)),
        energies=np.arange(f, dtype=np.float64),
        forces=np.zeros((f, 2, 3)),
        species=np.zeros(2, dtype=np.int64),
        cell=Cell([5.0] * 3),
    )


class TestLoader:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchLoader(_ds(4), 0)

    def test_len_drop_last(self):
        assert len(BatchLoader(_ds(10), 3)) == 3
        assert len(BatchLoader(_ds(10), 3, drop_last=False)) == 4

    def test_epoch_covers_all_frames_without_drop(self):
        loader = BatchLoader(_ds(10), 3, drop_last=False)
        seen = np.concatenate(list(loader.epoch(0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_drop_last_drops_remainder(self):
        loader = BatchLoader(_ds(10), 3)
        batches = list(loader.epoch(0))
        assert len(batches) == 3 and all(len(b) == 3 for b in batches)

    def test_same_epoch_index_same_order(self):
        loader = BatchLoader(_ds(12), 4, seed=5)
        a = np.concatenate(list(loader.epoch(2)))
        b = np.concatenate(list(loader.epoch(2)))
        assert np.array_equal(a, b)

    def test_different_epochs_shuffle_differently(self):
        loader = BatchLoader(_ds(12), 4, seed=5)
        a = np.concatenate(list(loader.epoch(0)))
        b = np.concatenate(list(loader.epoch(1)))
        assert not np.array_equal(a, b)

    def test_no_shuffle_preserves_order(self):
        loader = BatchLoader(_ds(9), 3, shuffle=False)
        seen = np.concatenate(list(loader.epoch(0)))
        assert np.array_equal(seen, np.arange(9))

    def test_iter_advances_epochs(self):
        loader = BatchLoader(_ds(8), 2, seed=0)
        a = np.concatenate(list(iter(loader)))
        b = np.concatenate(list(iter(loader)))
        assert not np.array_equal(a, b)

    def test_iter_replays_explicit_epoch_sequence(self):
        """Consecutive full passes over the loader are reproducible via
        epoch(0), epoch(1), ... -- the cursor is the only iterator state."""
        loader = BatchLoader(_ds(8), 2, seed=3)
        ref = BatchLoader(_ds(8), 2, seed=3)
        a = np.concatenate(list(loader))
        b = np.concatenate(list(loader))
        assert np.array_equal(a, np.concatenate(list(ref.epoch(0))))
        assert np.array_equal(b, np.concatenate(list(ref.epoch(1))))

    def test_epoch_query_does_not_mutate_cursor(self):
        """Neither epoch(i), epoch(), nor an unconsumed iter() advances
        the cursor; only exhausting an iterator does."""
        loader = BatchLoader(_ds(8), 2, seed=3)
        ref = BatchLoader(_ds(8), 2, seed=3)
        list(loader.epoch(5))   # explicit index: pure
        list(loader.epoch())    # cursor read: pure
        it = iter(loader)       # created but not consumed: pure
        next(it)                # even partially consumed: pure
        a = np.concatenate(list(loader))
        assert np.array_equal(a, np.concatenate(list(ref.epoch(0))))


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 30), st.integers(1, 8), st.integers(0, 100))
def test_loader_invariants(frames, bs, seed):
    loader = BatchLoader(_ds(frames), bs, seed=seed, drop_last=False)
    batches = list(loader.epoch(0))
    seen = np.concatenate(batches) if batches else np.array([])
    assert len(set(seen.tolist())) == len(seen)  # no duplicates
    assert sorted(seen.tolist()) == list(range(frames))  # full coverage
    assert all(len(b) <= bs for b in batches)
