"""Dataset container: validation, splitting, neighbor caching, stats."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.md import Cell


def _toy(f=6, n=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="toy",
        positions=rng.uniform(0, 8, size=(f, n, 3)),
        energies=rng.normal(size=f),
        forces=rng.normal(size=(f, n, 3)),
        species=np.zeros(n, dtype=np.int64),
        cell=Cell([8.0, 8.0, 8.0]),
    )


class TestValidation:
    def test_shape_mismatch_energy(self):
        ds = _toy()
        with pytest.raises(ValueError):
            Dataset("x", ds.positions, ds.energies[:-1], ds.forces, ds.species, ds.cell)

    def test_shape_mismatch_forces(self):
        ds = _toy()
        with pytest.raises(ValueError):
            Dataset("x", ds.positions, ds.energies, ds.forces[:, :-1], ds.species, ds.cell)

    def test_shape_mismatch_species(self):
        ds = _toy()
        with pytest.raises(ValueError):
            Dataset("x", ds.positions, ds.energies, ds.forces, ds.species[:-1], ds.cell)

    def test_basic_properties(self):
        ds = _toy(f=5, n=3)
        assert ds.n_frames == 5 and ds.n_atoms == 3 and len(ds) == 5
        assert ds.n_species == 1


class TestSubsetSplit:
    def test_subset_selects_frames(self):
        ds = _toy()
        sub = ds.subset(np.array([1, 3]))
        assert sub.n_frames == 2
        assert np.array_equal(sub.positions[0], ds.positions[1])
        assert np.array_equal(sub.energies, ds.energies[[1, 3]])

    def test_split_partitions(self):
        ds = _toy(f=10)
        tr, te = ds.split(0.7, seed=1)
        assert tr.n_frames == 7 and te.n_frames == 3
        together = np.concatenate([tr.energies, te.energies])
        assert sorted(together.tolist()) == sorted(ds.energies.tolist())

    def test_split_deterministic(self):
        ds = _toy(f=10)
        a, _ = ds.split(0.5, seed=3)
        b, _ = ds.split(0.5, seed=3)
        assert np.array_equal(a.energies, b.energies)

    def test_split_seed_changes_partition(self):
        ds = _toy(f=10)
        a, _ = ds.split(0.5, seed=1)
        b, _ = ds.split(0.5, seed=2)
        assert not np.array_equal(a.energies, b.energies)

    def test_subset_carries_neighbors(self):
        ds = _toy()
        ds.ensure_neighbors(3.0, 6)
        sub = ds.subset(np.array([0, 2]))
        assert sub._neighbors is not None
        assert sub._neighbors.idx.shape[0] == 2


class TestNeighborsCache:
    def test_cache_hit_same_params(self):
        ds = _toy()
        nb1 = ds.ensure_neighbors(3.0, 6)
        nb2 = ds.ensure_neighbors(3.0, 6)
        assert nb1 is nb2

    def test_cache_miss_on_different_cutoff(self):
        ds = _toy()
        nb1 = ds.ensure_neighbors(3.0, 6)
        nb2 = ds.ensure_neighbors(2.0, 6)
        assert nb1 is not nb2 and nb2.rcut == 2.0

    def test_neighbor_shapes(self):
        ds = _toy(f=4, n=5)
        nb = ds.ensure_neighbors(3.0, 7)
        assert nb.idx.shape == (4, 5, 7)
        assert nb.shift.shape == (4, 5, 7, 3)
        assert nb.mask.shape == (4, 5, 7)
        assert nb.nmax == 7


class TestStats:
    def test_energy_per_atom_stats(self):
        ds = _toy(f=8, n=4)
        mean, std = ds.energy_per_atom_stats()
        assert mean == pytest.approx((ds.energies / 4).mean())
        assert std == pytest.approx((ds.energies / 4).std())
