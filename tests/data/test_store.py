"""npz persistence round-trips."""

import numpy as np

from repro.data import load_dataset, save_dataset


class TestRoundtrip:
    def test_basic_roundtrip(self, cu_dataset, tmp_path):
        path = str(tmp_path / "cu.npz")
        save_dataset(cu_dataset, path)
        back = load_dataset(path)
        assert back.name == cu_dataset.name
        assert np.array_equal(back.positions, cu_dataset.positions)
        assert np.array_equal(back.energies, cu_dataset.energies)
        assert np.array_equal(back.forces, cu_dataset.forces)
        assert np.array_equal(back.species, cu_dataset.species)
        assert np.array_equal(back.cell.lengths, cu_dataset.cell.lengths)
        assert np.array_equal(back.temperatures, cu_dataset.temperatures)

    def test_neighbors_roundtrip(self, cu_dataset, tmp_path):
        cu_dataset.ensure_neighbors(3.2, 10)
        path = str(tmp_path / "cu_nb.npz")
        save_dataset(cu_dataset, path)
        back = load_dataset(path)
        assert back._neighbors is not None
        assert np.array_equal(back._neighbors.idx, cu_dataset._neighbors.idx)
        assert back._neighbors.rcut == 3.2

    def test_no_neighbors_loads_none(self, cu_dataset, tmp_path):
        ds = cu_dataset.subset(np.arange(3))
        ds._neighbors = None
        path = str(tmp_path / "plain.npz")
        save_dataset(ds, path)
        assert load_dataset(path)._neighbors is None

    def test_creates_directories(self, cu_dataset, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "cu.npz")
        save_dataset(cu_dataset.subset(np.arange(2)), path)
        assert load_dataset(path).n_frames == 2
