"""npz persistence round-trips (write_npz/read_npz + deprecated shims)."""

import numpy as np
import pytest

from repro.data import load_dataset, read_npz, save_dataset, write_npz


class TestRoundtrip:
    def test_basic_roundtrip(self, cu_dataset, tmp_path):
        path = str(tmp_path / "cu.npz")
        write_npz(cu_dataset, path)
        back = read_npz(path)
        assert back.name == cu_dataset.name
        assert np.array_equal(back.positions, cu_dataset.positions)
        assert np.array_equal(back.energies, cu_dataset.energies)
        assert np.array_equal(back.forces, cu_dataset.forces)
        assert np.array_equal(back.species, cu_dataset.species)
        assert np.array_equal(back.cell.lengths, cu_dataset.cell.lengths)
        assert np.array_equal(back.temperatures, cu_dataset.temperatures)

    def test_neighbors_roundtrip(self, cu_dataset, tmp_path):
        cu_dataset.ensure_neighbors(3.2, 10)
        path = str(tmp_path / "cu_nb.npz")
        write_npz(cu_dataset, path)
        back = read_npz(path)
        assert back.cached_neighbors is not None
        assert np.array_equal(
            back.cached_neighbors.idx, cu_dataset.cached_neighbors.idx
        )
        assert back.cached_neighbors.rcut == 3.2

    def test_no_neighbors_loads_none(self, cu_dataset, tmp_path):
        ds = cu_dataset.subset(np.arange(3))
        ds.cached_neighbors = None
        path = str(tmp_path / "plain.npz")
        write_npz(ds, path)
        assert read_npz(path).cached_neighbors is None

    def test_creates_directories(self, cu_dataset, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "cu.npz")
        write_npz(cu_dataset.subset(np.arange(2)), path)
        assert read_npz(path).n_frames == 2


class TestDeprecatedShims:
    def test_save_dataset_warns_and_delegates(self, cu_dataset, tmp_path):
        path = str(tmp_path / "old.npz")
        with pytest.warns(DeprecationWarning, match="write_npz"):
            save_dataset(cu_dataset, path)
        assert np.array_equal(read_npz(path).positions, cu_dataset.positions)

    def test_load_dataset_warns_and_delegates(self, cu_dataset, tmp_path):
        path = str(tmp_path / "old2.npz")
        write_npz(cu_dataset, path)
        with pytest.warns(DeprecationWarning, match="read_npz"):
            back = load_dataset(path)
        assert np.array_equal(back.positions, cu_dataset.positions)
