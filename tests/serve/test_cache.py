"""LRU cache primitive used by the serve layer."""

import pytest

from repro.serve import LRUCache


class TestLRUCache:
    def test_put_get_roundtrip(self):
        c = LRUCache(4)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("b") is None
        assert c.hits == 1 and c.misses == 1

    def test_eviction_is_least_recently_used(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a; b is now LRU
        c.put("c", 3)
        assert "b" not in c and "a" in c and "c" in c
        assert c.evictions == 1

    def test_overwrite_refreshes(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # refresh + overwrite
        c.put("c", 3)
        assert c.get("a") == 10
        assert "b" not in c

    def test_clear_keeps_lifetime_stats(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0
        assert c.hits == 1
        assert c.get("a") is None  # miss after clear
        assert c.stats()["misses"] == 1

    def test_hit_rate(self):
        c = LRUCache(2)
        assert c.hit_rate == 0.0
        c.put("a", 1)
        c.get("a")
        c.get("x")
        assert c.hit_rate == pytest.approx(0.5)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)
