"""The shared admission-control primitives (repro.serve.admission)."""

import threading

import pytest

from repro.serve import (
    AdmissionController,
    BoundedWorkQueue,
    QueueClosed,
    ServeOverloaded,
)


class TestAdmissionController:
    def test_admits_below_limit(self):
        ctrl = AdmissionController(2)
        assert ctrl.admits(0)
        assert ctrl.admits(1)
        assert not ctrl.admits(2)
        assert not ctrl.admits(3)

    def test_check_raises_at_capacity(self):
        ctrl = AdmissionController(1, name="test queue")
        ctrl.check(0)
        with pytest.raises(ServeOverloaded, match="test queue"):
            ctrl.check(1)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestBoundedWorkQueue:
    def test_fifo_order(self):
        q = BoundedWorkQueue(4)
        for x in "abc":
            assert q.put(x)
        assert [q.get(), q.get(), q.get()] == ["a", "b", "c"]

    def test_block_policy_times_out_when_full(self):
        q = BoundedWorkQueue(1, policy="block")
        assert q.put("x")
        assert not q.put("y", timeout=0.1)
        assert len(q) == 1

    def test_block_policy_respects_stop_event(self):
        q = BoundedWorkQueue(1, policy="block")
        q.put("x")
        stop = threading.Event()
        stop.set()
        assert not q.put("y", stop=stop)

    def test_block_policy_applies_backpressure(self):
        q = BoundedWorkQueue(1, policy="block")
        q.put("first")
        admitted = threading.Event()

        def producer():
            q.put("second", timeout=5.0)
            admitted.set()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        assert not admitted.wait(timeout=0.15)  # stuck until a consumer
        assert q.get() == "first"
        assert admitted.wait(timeout=5.0)
        t.join()
        assert q.get() == "second"

    def test_reject_policy_raises(self):
        q = BoundedWorkQueue(1, policy="reject", name="gate feed")
        q.put("x")
        with pytest.raises(ServeOverloaded, match="gate feed"):
            q.put("y")
        assert q.stats()["rejected"] == 1

    def test_drop_oldest_policy_evicts_head(self):
        q = BoundedWorkQueue(2, policy="drop_oldest")
        q.put("a")
        q.put("b")
        q.put("c")
        assert [q.get(), q.get()] == ["b", "c"]
        assert q.stats()["dropped"] == 1

    def test_put_after_close_raises(self):
        q = BoundedWorkQueue(2)
        q.put("x")
        q.close()
        with pytest.raises(QueueClosed):
            q.put("y")

    def test_get_drains_then_none_after_close(self):
        q = BoundedWorkQueue(2)
        q.put("x")
        q.close()
        assert not q.drained()
        assert q.get() == "x"
        assert q.get() is None
        assert q.drained()

    def test_get_timeout_on_empty_open_queue(self):
        q = BoundedWorkQueue(2)
        assert q.get(timeout=0.1) is None
        assert not q.drained()

    def test_iteration_ends_at_close(self):
        q = BoundedWorkQueue(4)
        for x in range(3):
            q.put(x)
        q.close()
        assert list(q) == [0, 1, 2]

    def test_producer_consumer_pipeline(self):
        """A bounded queue between two threads moves every item exactly
        once, in order, under capacity pressure."""
        q = BoundedWorkQueue(2)
        items = list(range(50))
        received = []

        def producer():
            for x in items:
                assert q.put(x, timeout=10.0)
            q.close()

        def consumer():
            for x in q:
                received.append(x)

        threads = [
            threading.Thread(target=producer, daemon=True),
            threading.Thread(target=consumer, daemon=True),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert received == items
        stats = q.stats()
        assert stats["put"] == stats["got"] == 50

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            BoundedWorkQueue(2, policy="spill")

    def test_service_exceptions_are_shared(self):
        """The service raises the same classes the queues do (one
        exception family across the serve layer)."""
        from repro.serve import service as service_mod
        from repro.serve import admission as admission_mod

        assert service_mod.ServeOverloaded is admission_mod.ServeOverloaded
        assert service_mod.ServiceStopped is admission_mod.ServiceStopped
