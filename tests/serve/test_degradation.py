"""Graceful degradation: backpressure, timeouts, crashes, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.model import ModelSession
from repro.model.session import InferenceSession
from repro.optim import FaultInjector
from repro.serve import (
    InferenceService,
    ServeConfig,
    ServeOverloaded,
    ServeTimeout,
    ServiceStopped,
)


class GatedSession(InferenceSession):
    """Blocks every forward until ``gate`` is set.  Exposes no ``model``
    attribute, so the service runs it through the serial fallback path --
    which makes the batcher deterministically controllable from a test."""

    def __init__(self, inner, gate):
        self._inner = inner
        self.gate = gate

    @property
    def cfg(self):
        return self._inner.cfg

    def predict_descriptor_batch(self, batch):
        assert self.gate.wait(timeout=30.0), "test gate never opened"
        return self._inner.predict_descriptor_batch(batch)

    def _load_state(self, state):
        self._inner._load_state(state)


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture()
def system(cu_dataset):
    return cu_dataset.positions, cu_dataset.species, cu_dataset.cell


class TestBackpressure:
    def test_full_queue_rejects_with_overloaded(self, cu_model, system):
        frames, species, cell = system
        gate = threading.Event()
        cfg = ServeConfig(max_batch=1, max_delay_s=0.0, max_queue=2)
        svc = InferenceService(GatedSession(ModelSession(cu_model), gate), cfg)
        with svc:
            background = []
            for k in range(3):  # 1 occupies the batcher, 2 fill the queue
                t = threading.Thread(
                    target=lambda i=k: svc.predict(frames[i], species, cell)
                )
                t.start()
                background.append(t)
                if k == 0:  # the batcher must collect the first request
                    # before the fillers enqueue, or a *filler* rejects
                    assert _wait_until(
                        lambda: svc.stats()["requests"] >= 1
                        and svc.stats()["queue_depth"] == 0
                    ), "batcher never collected the gated request"
            assert _wait_until(
                lambda: svc.stats()["queue_depth"] >= cfg.max_queue
            ), "queue never filled"
            with pytest.raises(ServeOverloaded):
                svc.predict(frames[3], species, cell)
            assert svc.stats()["rejected"] == 1
            gate.set()
            for t in background:
                t.join()
            assert svc.stats()["responses"] == 3


class TestTimeout:
    def test_request_expires_while_batcher_busy(self, cu_model, system):
        frames, species, cell = system
        gate = threading.Event()
        cfg = ServeConfig(max_batch=1, max_delay_s=0.0, request_timeout_s=0.2)
        svc = InferenceService(GatedSession(ModelSession(cu_model), gate), cfg)
        with svc:
            with pytest.raises(ServeTimeout):
                svc.predict(frames[0], species, cell)
            assert svc.stats()["timeouts"] == 1
            gate.set()  # let the in-flight batch finish; its requester is
            # gone, which must not crash the batcher
            pred = svc.predict(frames[1], species, cell, timeout=10.0)
        assert pred.energy == ModelSession(cu_model).predict(
            frames[1], species, cell
        ).energy

    def test_per_call_timeout_overrides_config(self, cu_model, system):
        frames, species, cell = system
        gate = threading.Event()
        cfg = ServeConfig(max_batch=1, max_delay_s=0.0, request_timeout_s=60.0)
        svc = InferenceService(GatedSession(ModelSession(cu_model), gate), cfg)
        with svc:
            t0 = time.perf_counter()
            with pytest.raises(ServeTimeout):
                svc.predict(frames[0], species, cell, timeout=0.1)
            assert time.perf_counter() - t0 < 10.0
            gate.set()


class TestWorkerCrash:
    def test_crashed_pool_falls_back_serially(self, cu_model, system):
        """A rank failing its task twice must not lose the batch: the
        service heals the pool and computes the batch locally (mirroring
        the data-parallel trainer's retry-then-serial semantics)."""
        frames, species, cell = system
        direct = ModelSession(cu_model).predict(frames[0], species, cell)
        cfg = ServeConfig(
            executor="serial", world_size=1,
            cache_predictions=False, cache_neighbors=False,
        )
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            svc._executor.broadcast(
                "set_fault", FaultInjector("predict_task", times=2)
            )
            crashed = svc.predict(frames[0], species, cell)
            healed = svc.predict(frames[0], species, cell)
            stats = svc.stats()
        assert stats["fallbacks"] == 1
        assert crashed.energy == direct.energy  # fallback, bit-identical
        assert np.array_equal(crashed.forces, direct.forces)
        assert healed.energy == direct.energy  # pool healed and serving
        assert stats["responses"] == 2

    def test_single_fault_absorbed_by_retry(self, cu_model, system):
        """One injected failure is absorbed by the executor's retry --
        no fallback, no error at the client."""
        frames, species, cell = system
        cfg = ServeConfig(executor="serial", world_size=1, cache_predictions=False)
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            svc._executor.broadcast(
                "set_fault", FaultInjector("predict_task", times=1)
            )
            pred = svc.predict(frames[0], species, cell)
            stats = svc.stats()
        assert stats["fallbacks"] == 0
        assert pred.energy == ModelSession(cu_model).predict(
            frames[0], species, cell
        ).energy


class TestShutdown:
    def test_predict_after_stop_raises(self, cu_model, system):
        frames, species, cell = system
        svc = InferenceService(ModelSession(cu_model), ServeConfig())
        svc.start()
        svc.stop()
        with pytest.raises(ServiceStopped):
            svc.predict(frames[0], species, cell)

    def test_stop_without_drain_fails_queued_requests(self, cu_model, system):
        frames, species, cell = system
        gate = threading.Event()
        cfg = ServeConfig(max_batch=1, max_delay_s=0.0, max_queue=8)
        svc = InferenceService(GatedSession(ModelSession(cu_model), gate), cfg)
        svc.start()
        outcomes: list = []

        def client(i):
            try:
                outcomes.append(("ok", svc.predict(frames[i], species, cell)))
            except ServiceStopped:
                outcomes.append(("stopped", None))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        assert _wait_until(lambda: svc.stats()["requests"] == 3)
        stopper = threading.Thread(target=lambda: svc.stop(drain=False))
        stopper.start()
        gate.set()  # release the in-flight batch so the batcher can exit
        stopper.join()
        for t in threads:
            t.join()
        kinds = sorted(k for k, _ in outcomes)
        # the in-flight request completes; the queued ones are failed fast
        assert len(outcomes) == 3
        assert "stopped" in kinds

    def test_drain_completes_queued_requests(self, cu_model, system):
        frames, species, cell = system
        cfg = ServeConfig(max_batch=4, max_delay_s=0.05)
        svc = InferenceService(ModelSession(cu_model), cfg)
        svc.start()
        preds = svc.predict_many(frames[:3], species, cell)
        svc.stop(drain=True)
        assert len(preds) == 3
