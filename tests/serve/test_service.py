"""InferenceService basics: bit-identity, micro-batching, caching."""

import threading

import numpy as np
import pytest

from repro.model import ModelEnsemble, ModelSession
from repro.serve import InferenceService, ServeConfig

pytestmark = pytest.mark.usefixtures("cu_dataset")


@pytest.fixture()
def system(cu_dataset):
    return cu_dataset.positions, cu_dataset.species, cu_dataset.cell


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("world_size", [1, 2])
    def test_served_equals_direct(self, cu_model, system, backend, world_size):
        """The batched, sharded server must return bit-identical energies
        and forces to a direct predict_many on the wrapped session."""
        frames, species, cell = system
        direct = ModelSession(cu_model).predict_many(frames[:5], species, cell)
        cfg = ServeConfig(
            max_batch=3, executor=backend, world_size=world_size,
            cache_predictions=False,
        )
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            served = svc.predict_many(frames[:5], species, cell)
        for d, s in zip(direct, served):
            assert d.energy == s.energy
            assert np.array_equal(d.forces, s.forces)

    def test_single_predict_equals_many(self, cu_model, system):
        frames, species, cell = system
        with InferenceService(ModelSession(cu_model), ServeConfig()) as svc:
            one = svc.predict(frames[0], species, cell)
            many = svc.predict_many(frames[:1], species, cell)
        assert one.energy == many[0].energy
        assert np.array_equal(one.forces, many[0].forces)

    def test_ensemble_uncertainty_served(self, cu_dataset, small_cfg, system):
        frames, species, cell = system
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        direct = ens.predict_many(frames[:3], species, cell)
        with InferenceService(ens, ServeConfig(max_batch=3)) as svc:
            served = svc.predict_many(frames[:3], species, cell)
        for d, s in zip(direct, served):
            assert d.energy == s.energy
            assert d.energy_std == s.energy_std
            assert d.max_force_dev == s.max_force_dev


class TestMicroBatching:
    def test_concurrent_clients_share_batches(self, cu_model, system):
        """Eight concurrent clients with a generous deadline must produce
        fewer forward batches than requests (i.e. real co-batching)."""
        frames, species, cell = system
        cfg = ServeConfig(max_batch=8, max_delay_s=0.1, cache_predictions=False)
        results = {}
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            barrier = threading.Barrier(8)

            def client(k):
                barrier.wait()
                results[k] = svc.predict(frames[k % len(frames)], species, cell)

            threads = [threading.Thread(target=client, args=(k,)) for k in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = svc.stats()
        assert len(results) == 8
        assert stats["responses"] == 8
        assert stats["batches"] < 8
        assert stats["batch_occupancy"]["max"] > 1

    def test_incompatible_frames_batched_separately(
        self, cu_model, cu_dataset, nacl_dataset
    ):
        """Requests for different systems must never co-batch; both still
        get answered (the NaCl model here is the Cu model -- only shapes
        matter for grouping)."""
        cfg = ServeConfig(max_batch=4, max_delay_s=0.05)
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            cu = svc.predict(
                cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
            )
            direct = ModelSession(cu_model).predict(
                cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
            )
            assert cu.energy == direct.energy


class TestCaching:
    def test_repeat_frame_served_from_cache(self, cu_model, system):
        frames, species, cell = system
        with InferenceService(ModelSession(cu_model), ServeConfig()) as svc:
            first = svc.predict(frames[0], species, cell)
            second = svc.predict(frames[0], species, cell)
            stats = svc.stats()
        assert not first.cached
        assert second.cached
        assert second.energy == first.energy
        assert np.array_equal(second.forces, first.forces)
        assert stats["cache_hits"] == 1
        assert stats["batches"] == 1  # no second forward pass

    def test_neighbor_cache_hits_across_duplicate_frames(self, cu_model, system):
        frames, species, cell = system
        cfg = ServeConfig(cache_predictions=False, max_batch=1)
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            svc.predict(frames[0], species, cell)
            svc.predict(frames[0], species, cell)
            stats = svc.stats()
        assert stats["neighbor_cache"]["hits"] == 1
        assert stats["batches"] == 2  # prediction cache off: both computed

    def test_caches_disabled(self, cu_model, system):
        frames, species, cell = system
        cfg = ServeConfig(cache_predictions=False, cache_neighbors=False)
        with InferenceService(ModelSession(cu_model), cfg) as svc:
            a = svc.predict(frames[0], species, cell)
            b = svc.predict(frames[0], species, cell)
            stats = svc.stats()
        assert not a.cached and not b.cached
        assert a.energy == b.energy
        assert stats["neighbor_cache"]["hits"] == 0


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_s": -1.0},
            {"max_queue": 0},
            {"request_timeout_s": 0.0},
            {"world_size": 0},
            {"cache_capacity": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)
