"""Hot model swap: version monotonicity, drain correctness, cache purge."""

import threading

import numpy as np
import pytest

from repro.model import DeePMD, ModelSession
from repro.serve import InferenceService, ServeConfig


@pytest.fixture()
def two_models(cu_dataset, small_cfg):
    return (
        DeePMD.for_dataset(cu_dataset, small_cfg, seed=1),
        DeePMD.for_dataset(cu_dataset, small_cfg, seed=2),
    )


class TestSwapBasics:
    def test_swap_bumps_version_and_output(self, two_models, cu_dataset):
        m1, m2 = two_models
        pos, sp, cell = cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        expected_v1 = ModelSession(m2).predict(pos, sp, cell)
        with InferenceService(ModelSession(m1), ServeConfig()) as svc:
            before = svc.predict(pos, sp, cell)
            assert svc.swap(m2.state_dict()) == 1
            after = svc.predict(pos, sp, cell)
        assert before.model_version == 0
        assert after.model_version == 1
        assert after.energy == expected_v1.energy
        assert np.array_equal(after.forces, expected_v1.forces)

    def test_swap_purges_prediction_cache(self, two_models, cu_dataset):
        m1, m2 = two_models
        pos, sp, cell = cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        with InferenceService(ModelSession(m1), ServeConfig()) as svc:
            svc.predict(pos, sp, cell)
            warm = svc.predict(pos, sp, cell)
            assert warm.cached
            svc.swap(m2.state_dict())
            fresh = svc.predict(pos, sp, cell)
            stats = svc.stats()
        assert not fresh.cached  # the warm entry was for version 0
        assert fresh.model_version == 1
        assert fresh.energy != warm.energy
        assert stats["prediction_cache"]["size"] >= 1  # repopulated at v1

    def test_workers_resynced_lazily(self, two_models, cu_dataset):
        """With a multi-rank pool, the swap payload must reach every
        replica before the next dispatch (served == direct at v1)."""
        m1, m2 = two_models
        pos, sp, cell = cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        expected = ModelSession(m2).predict(pos, sp, cell)
        cfg = ServeConfig(executor="thread", world_size=2, cache_predictions=False)
        with InferenceService(ModelSession(m1), cfg) as svc:
            svc.predict(pos, sp, cell)  # workers serve v0 once
            svc.swap(m2.state_dict())
            after = svc.predict_many(cu_dataset.positions[:2], sp, cell)
        assert after[0].model_version == 1
        assert after[0].energy == expected.energy
        assert np.array_equal(after[0].forces, expected.forces)


class TestConcurrentSwap:
    N_CLIENTS = 4
    N_REQUESTS = 6
    N_SWAPS = 3

    def test_no_lost_and_no_mixed_version_responses(self, cu_dataset, small_cfg):
        """Clients hammer the service while another thread swaps weights
        repeatedly.  Every response must (a) arrive, (b) carry a version
        from the swap sequence, (c) be *consistent*: its energy must equal
        the direct prediction of exactly the version it claims -- a batch
        computed partly under v and partly under v+1 would violate this.
        """
        models = [
            DeePMD.for_dataset(cu_dataset, small_cfg, seed=10 + v)
            for v in range(self.N_SWAPS + 1)
        ]
        pos, sp, cell = cu_dataset.positions[0], cu_dataset.species, cu_dataset.cell
        pool = [np.ascontiguousarray(cu_dataset.positions[t]) for t in range(3)]
        # ground truth per version per pool frame
        expected = [
            [ModelSession(m).predict(p, sp, cell).energy for p in pool]
            for m in models
        ]
        cfg = ServeConfig(max_batch=4, max_delay_s=0.005)
        responses: list = []
        errors: list = []
        with InferenceService(ModelSession(models[0]), cfg) as svc:
            barrier = threading.Barrier(self.N_CLIENTS + 2)

            def client(k):
                got = []
                barrier.wait()
                for j in range(self.N_REQUESTS):
                    idx = (k + j) % len(pool)
                    try:
                        got.append((idx, svc.predict(pool[idx], sp, cell)))
                    except Exception as exc:  # pragma: no cover - fail below
                        errors.append(exc)
                responses.append(got)

            def swapper():
                barrier.wait()
                for v in range(1, self.N_SWAPS + 1):
                    assert svc.swap(models[v].state_dict()) == v

            threads = [
                threading.Thread(target=client, args=(k,))
                for k in range(self.N_CLIENTS)
            ] + [threading.Thread(target=swapper)]
            for t in threads:
                t.start()
            barrier.wait()
            for t in threads:
                t.join()

        assert not errors
        total = sum(len(got) for got in responses)
        assert total == self.N_CLIENTS * self.N_REQUESTS  # nothing lost
        for got in responses:
            versions = [p.model_version for _, p in got]
            # a single client's versions never go backwards
            assert versions == sorted(versions)
            for idx, p in got:
                assert 0 <= p.model_version <= self.N_SWAPS
                # the stamped version is the one that actually computed it
                assert p.energy == expected[p.model_version][idx]
