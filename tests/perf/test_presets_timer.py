"""Optimization presets and the Figure 7 profiler."""

import numpy as np
import pytest

from repro.autograd.config import config as ag_config
from repro.model import make_batch
from repro.optim import FEKF
from repro.perf import PRESET_ORDER, PRESETS, profile_update


class TestPresets:
    def test_four_levels_ordered(self):
        assert PRESET_ORDER == ["baseline", "opt1", "opt2", "opt3"]

    def test_monotone_feature_enablement(self):
        flags = [
            (p.fused_env, p.fused_layers, p.fused_p_update)
            for p in (PRESETS[n] for n in PRESET_ORDER)
        ]
        for a, b in zip(flags, flags[1:]):
            assert all(x <= y for x, y in zip(a, b))

    def test_context_toggles_layer_fusion(self):
        assert not ag_config.fused_elementwise
        with PRESETS["opt2"].context():
            assert ag_config.fused_elementwise
        assert not ag_config.fused_elementwise

    def test_kalman_config_override(self):
        cfg = PRESETS["opt3"].kalman_config(blocksize=512)
        assert cfg.fused_update and cfg.blocksize == 512
        assert not PRESETS["opt1"].kalman_config().fused_update


class TestProfiler:
    @pytest.fixture()
    def profile_pair(self, cu_dataset, small_cfg, cu_model):
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        out = {}
        for name in ("baseline", "opt3"):
            preset = PRESETS[name]
            opt = FEKF(cu_model, preset.kalman_config(blocksize=1024),
                       fused_env=preset.fused_env)
            out[name] = profile_update(cu_model, opt, batch, preset)
        return out

    def test_kernel_counts_drop(self, profile_pair):
        base, opt3 = profile_pair["baseline"], profile_pair["opt3"]
        assert opt3.energy.total_kernels < base.energy.total_kernels
        assert opt3.force.total_kernels < base.force.total_kernels
        assert opt3.total_iteration_kernels() < base.total_iteration_kernels()

    def test_force_update_costs_more_than_energy(self, profile_pair):
        base = profile_pair["baseline"]
        assert base.force.total_kernels > base.energy.total_kernels

    def test_phase_totals_consistent(self, profile_pair):
        prof = profile_pair["baseline"]
        for phase in (prof.energy, prof.force):
            assert phase.total_s == pytest.approx(
                phase.forward_s + phase.gradient_s + phase.kalman_s
            )
            assert phase.total_kernels == (
                phase.forward_kernels + phase.gradient_kernels + phase.kalman_kernels
            )

    def test_iteration_convention(self, profile_pair):
        prof = profile_pair["baseline"]
        assert prof.total_iteration_kernels(4) == (
            prof.energy.total_kernels + 4 * prof.force.total_kernels
        )


class TestProfilerReconciliation:
    """The op-level profiler and the span-derived Figure 7(b) query are
    two views of the same launch stream; on a profiled FEKF step they
    must agree *exactly*, per preset."""

    @pytest.mark.parametrize("preset_name", ["baseline", "opt1", "opt2", "opt3"])
    def test_phase_counts_match_span_counts(
        self, cu_dataset, small_cfg, cu_model, preset_name
    ):
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        # 32 Cu atoms / 4 splits: equal groups, so the 4 force updates are
        # identical and the single-update force profile scales exactly
        assert batch.n_atoms % 4 == 0
        preset = PRESETS[preset_name]
        opt = FEKF(cu_model, preset.kalman_config(blocksize=1024),
                   fused_env=preset.fused_env)
        prof = profile_update(cu_model, opt, batch, preset)
        pk = prof.phase_kernels
        assert pk["forward_energy"] == prof.energy.forward_kernels
        assert pk["forward_force"] == 4 * prof.force.forward_kernels
        assert pk["backward"] == (
            prof.energy.gradient_kernels + 4 * prof.force.gradient_kernels
        )
        assert pk["kf_update"] == (
            prof.energy.kalman_kernels + 4 * prof.force.kalman_kernels
        )
        # nothing escaped phase attribution: the live totals equal the
        # paper's 1-energy + 4-force iteration count
        assert sum(pk.values()) == prof.total_iteration_kernels()
