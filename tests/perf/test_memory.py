"""Memory accounting: the Sec. 5.3 arithmetic and measured transients."""

import numpy as np
import pytest

from repro.perf import footprint_report, measured_update_peak, paper_layer_sizes


class TestPaperArithmetic:
    def test_paper_block_structure(self):
        rep = footprint_report(paper_layer_sizes(), 10240)
        assert rep.num_params == 26551  # paper reports 26651
        assert rep.block_shapes[0] == 1350
        assert rep.block_shapes[1] == 10240
        assert len(rep.block_shapes) == 4

    def test_p_resident_near_paper_value(self):
        rep = footprint_report(paper_layer_sizes(), 10240)
        assert rep.p_resident_mb == pytest.approx(1755, rel=0.02)  # paper: 1755 MB

    def test_naive_peak_near_paper_value(self):
        rep = footprint_report(paper_layer_sizes(), 10240)
        assert rep.naive_peak_mb == pytest.approx(3405, rel=0.05)  # paper: ~3405 MB

    def test_fused_peak_near_paper_value(self):
        rep = footprint_report(paper_layer_sizes(), 10240)
        assert rep.fused_peak_mb == pytest.approx(1805, rel=0.05)  # paper: 1805 MB

    def test_peak_ordering(self):
        rep = footprint_report(paper_layer_sizes(), 10240)
        assert rep.fused_peak_mb < rep.naive_peak_mb
        assert rep.p_resident_mb < rep.fused_peak_mb

    def test_rows_rendering(self):
        rep = footprint_report(paper_layer_sizes(), 10240)
        labels = [k for k, _ in rep.rows()]
        assert "P resident" in labels


class TestMeasuredTransients:
    LAYERS = [(0, 700), (1, 300), (2, 64)]

    def test_naive_transient_scales_with_block_sq(self):
        peak = measured_update_peak(self.LAYERS, 512, fused=False)
        # at least one 512x512 float64 temporary = 2 MB
        assert peak > 512 * 512 * 8 / (1024 * 1024)

    def test_fused_transient_tiny(self):
        naive = measured_update_peak(self.LAYERS, 512, fused=False)
        fused = measured_update_peak(self.LAYERS, 512, fused=True)
        assert fused < naive / 5

    def test_footprint_scales_with_blocksize(self):
        small = footprint_report(self.LAYERS, 128)
        large = footprint_report(self.LAYERS, 1024)
        assert small.p_resident_mb < large.p_resident_mb
