"""The ``python -m repro.analysis`` CLI: exit codes, rendering, JSON,
and the manifest side-channel."""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
REPRO_SRC = Path(__file__).parent.parent.parent / "src" / "repro"


class TestLintCommand:
    def test_repo_lints_clean(self, capsys):
        assert main(["lint", str(REPRO_SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_default_target_is_the_package(self, capsys):
        assert main(["lint"]) == 0

    def test_violation_fixture_fails_with_location(self, capsys):
        path = FIXTURES / "ast" / "wallclock_violation.py"
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "wallclock_violation.py:" in out
        assert "[wallclock-time]" in out

    def test_json_output(self, capsys):
        path = FIXTURES / "ast" / "unseeded_random_violation.py"
        assert main(["lint", "--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "astlint"
        assert payload["ok"] is False
        assert all(f["rule"] == "unseeded-random" for f in payload["findings"])


class TestGraphCommand:
    def test_clean_fixture_passes(self, capsys):
        assert main(["graph", str(FIXTURES / "graph" / "clean_graph.py")]) == 0

    @pytest.mark.parametrize("name,rule", [
        ("dtype_violation.py", "dtype-invariant"),
        ("backward_shape_violation.py", "backward-shape"),
        ("alias_violation.py", "alias-hazard"),
        ("mutation_violation.py", "buffer-mutation"),
        ("unreachable_violation.py", "unreachable-node"),
        ("unregistered_op_violation.py", "unregistered-op"),
    ])
    def test_each_check_fires(self, capsys, name, rule):
        assert main(["graph", str(FIXTURES / "graph" / name)]) == 1
        out = capsys.readouterr().out
        assert f"[{rule}]" in out

    def test_second_order_gate_is_opt_in(self, capsys):
        path = str(FIXTURES / "graph" / "second_order_violation.py")
        assert main(["graph", path]) == 0
        assert main(["graph", "--second-order", path]) == 1
        assert "[second-order-unsafe]" in capsys.readouterr().out

    def test_sanitizer_gate_is_opt_in(self, capsys):
        path = str(FIXTURES / "graph" / "nonfinite_violation.py")
        assert main(["graph", path]) == 0
        assert main(["graph", "--sanitize", path]) == 1
        out = capsys.readouterr().out
        assert "[non-finite]" in out and "'log'" in out

    def test_unloadable_fixture_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.py"
        assert main(["graph", str(missing)]) == 2
        no_build = tmp_path / "nobuild.py"
        no_build.write_text("x = 1\n")
        assert main(["graph", str(no_build)]) == 2


class TestDeterminismCommand:
    def test_two_backend_audit_with_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "fresh" / "nested"  # must be created on demand
        rc = main([
            "determinism", "--world-size", "2", "--steps", "2",
            "--backends", "serial,thread", "--manifest-dir", str(out_dir),
        ])
        assert rc == 0
        manifest_path = out_dir / "BENCH_determinism_audit.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == "repro.bench/v1"
        assert manifest["config"]["backends"] == ["serial", "thread"]
        assert manifest["metrics"]["ok"] is True
        assert manifest["metrics"]["fingerprints_compared"] == 2

    def test_unknown_backend_is_usage_error(self, capsys):
        assert main(["determinism", "--backends", "gpu"]) == 2
