"""Graph fixture: an op whose output aliases its input buffer without a
``may_view`` registration -- an in-place update waiting to happen."""

import numpy as np

from repro.autograd import Tensor, make_op, ops, register_op

register_op("sneaky_identity")  # note: may_view NOT declared


def _identity_view(x):
    def backward(g):
        return (g,)

    return make_op(x.data, (x,), backward, "sneaky_identity")  # no copy!


def build():
    x = Tensor(np.ones(4), requires_grad=True)
    return ops.tsum(_identity_view(x))
