"""Graph fixture: a float32 buffer smuggled into the graph.

The Tensor constructor normalizes float inputs to float64, so the only
way to break the invariant is mutating ``.data`` behind autograd's back
-- which is exactly what the linter must catch.
"""

import numpy as np

from repro.autograd import Tensor, ops


def build():
    x = Tensor(np.ones(4), requires_grad=True)
    y = ops.exp(x)
    y.data = y.data.astype(np.float32)
    return ops.tsum(y)
