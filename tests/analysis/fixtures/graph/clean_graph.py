"""Graph fixture: a well-behaved graph every check passes."""

import numpy as np

from repro.autograd import Tensor, ops


def build():
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
    w = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
    return ops.tsum(ops.tanh(ops.matmul(x, w)))
