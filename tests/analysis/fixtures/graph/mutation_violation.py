"""Graph fixture: a recorded activation mutated in place after use
(write-after-read on a shared graph buffer)."""

import numpy as np

from repro.autograd import Tensor, ops


def build():
    x = Tensor(np.ones(4), requires_grad=True)
    h = ops.exp(x)
    out = ops.tsum(ops.mul(h, h))
    h.data[:] = 0.0  # backward would now see zeros instead of exp(x)
    return out
