"""Graph fixture: a backward closure returning a wrong-shaped gradient."""

import numpy as np

from repro.autograd import Tensor, make_op, ops, register_op

register_op("broken_bwd_op")


def _broken(x):
    def backward(g):
        # drops the last element: gradient no longer matches x's shape
        return (Tensor(g.data[:-1]),)

    return make_op(x.data * 2.0, (x,), backward, "broken_bwd_op")


def build():
    x = Tensor(np.ones(5), requires_grad=True)
    return ops.tsum(_broken(x))
