"""Graph fixture: an op producing non-finite values (run with
``--sanitize`` to catch it as it happens)."""

import numpy as np

from repro.autograd import Tensor, ops


def build():
    with np.errstate(divide="ignore"):
        x = Tensor(np.array([1.0, 0.0, 2.0]), requires_grad=True)
        y = ops.log(x)  # log(0) = -inf
        return ops.tsum(y)
