"""Graph fixture: a kernel launched under a name absent from the
instrument op table."""

import numpy as np

from repro.autograd import Tensor, make_op, ops


def _rogue(x):
    def backward(g):
        return (g,)

    return make_op(x.data + 1.0, (x,), backward, "rogue_unregistered_kernel")


def build():
    x = Tensor(np.ones(4), requires_grad=True)
    return ops.tsum(_rogue(x))
