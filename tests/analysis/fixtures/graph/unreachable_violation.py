"""Graph fixture: dead compute -- an op whose result never reaches the
graph root."""

import numpy as np

from repro.autograd import Tensor, ops


def build():
    x = Tensor(np.ones(4), requires_grad=True)
    ops.exp(x)  # computed, recorded, never used
    return ops.tsum(ops.tanh(x))
