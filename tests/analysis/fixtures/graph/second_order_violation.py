"""Graph fixture: an op declared second_order=False appearing in a graph
that will be differentiated twice (lint with ``--second-order``)."""

import numpy as np

from repro.autograd import Tensor, make_op, ops, register_op

register_op("raw_square", second_order=False)


def _raw_square(x):
    def backward(g):
        # raw-numpy backward: correct to first order, no graph behind it
        return (Tensor(g.data * 2.0 * x.data),)

    return make_op(x.data ** 2, (x,), backward, "raw_square")


def build():
    x = Tensor(np.ones(4), requires_grad=True)
    return ops.tsum(_raw_square(x))
