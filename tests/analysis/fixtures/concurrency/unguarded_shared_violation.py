"""Seeded violation: a field written from two thread entry points where
one write site holds no lock -> ``unguarded-shared-field``."""

import threading


class Pipeline:
    def __init__(self):
        self._lock = threading.Lock()
        self.processed = 0
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._worker)
        self._thread.start()

    def _worker(self):
        with self._lock:
            self.processed += 1

    def reset(self):
        # unguarded write racing the worker thread's guarded one
        self.processed = 0
