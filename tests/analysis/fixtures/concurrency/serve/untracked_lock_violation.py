"""Seeded violation: a bare ``threading.Lock()`` in a ``serve``-scoped
path -> ``untracked-lock`` (the recorder cannot observe it)."""

import threading


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def submit(self, item):
        with self._lock:
            self._pending.append(item)
