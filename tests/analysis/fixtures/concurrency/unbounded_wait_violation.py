"""Seeded violation: zero-timeout ``join()`` on a non-daemon thread and a
bare ``queue.get()`` -> ``unbounded-wait`` (twice)."""

import queue
import threading


def drain(work_queue: "queue.Queue"):
    worker = threading.Thread(target=work_queue.join)
    worker.start()
    item = work_queue.get()  # blocks forever if the producer died
    worker.join()  # and so does this if the worker wedged
    return item
