"""Seeded violation: sleep-polling a flag in a while loop instead of
blocking on a Condition/Event -> ``sleep-poll``."""

import time


def wait_for(state):
    while not state.ready:
        time.sleep(0.05)  # burns a core and wakes up to 50 ms late
    return state.value
