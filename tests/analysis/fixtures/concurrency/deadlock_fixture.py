"""Deadlock-prone two-lock scenario: thread 1 nests A -> B, thread 2
nests B -> A.  The acquisitions are serialized with an Event so the
fixture itself never hangs, but the recorded lock-order graph contains
the A->B->A cycle -- exactly the inversion a real interleaving would
deadlock on.  ``run_scenario`` on this file must report a
``lock-order-cycle`` finding.
"""

import threading

from repro.analysis.concurrency import TrackedLock


def run():
    a = TrackedLock("fixture.A")
    b = TrackedLock("fixture.B")
    first_done = threading.Event()

    def ab():
        with a:
            with b:
                pass
        first_done.set()

    def ba():
        first_done.wait(timeout=5.0)
        with b:
            with a:
                pass

    t1 = threading.Thread(target=ab)
    t2 = threading.Thread(target=ba)
    t1.start()
    t2.start()
    t1.join(timeout=5.0)
    t2.join(timeout=5.0)
    return {"locks": 2}
