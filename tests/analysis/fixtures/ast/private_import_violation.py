"""Fixture: cross-subpackage private imports (parsed only, never run)."""

from repro.autograd.tensor import _GRAD_DTYPE  # flagged: private, cross-package
from repro.autograd.tensor import GRAD_DTYPE   # public: NOT flagged
