"""Fixture: reductions folded in completion order (parsed only)."""

import concurrent.futures
from concurrent.futures import as_completed


def reduce_results(pool, tasks):
    futs = [pool.submit(t) for t in tasks]
    total = 0.0
    for fut in as_completed(futs):               # flagged
        total += fut.result()
    for fut in concurrent.futures.as_completed(futs):  # flagged
        total += fut.result()
    for fut in futs:                              # rank order: NOT flagged
        total += fut.result()
    return total
