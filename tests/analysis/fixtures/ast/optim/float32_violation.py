"""Fixture: float32 casts in a hot-path subsystem (the ``optim`` path
component marks this file hot).  Parsed only, never run."""

import numpy as np


def degrade(p):
    a = p.astype(np.float32)     # flagged
    b = p.astype("float32")      # flagged
    c = np.float32(0.5)          # flagged
    d = p.astype(np.float64)     # NOT flagged
    return a, b, c, d
