"""Fixture: kernel-name literals with no register_op() declaration.

Parsed only.  ``declared_kernel`` is registered right here, so only the
two bogus names fire.
"""

from repro.autograd.instrument import record_launch, register_op
from repro.autograd.tensor import make_op

register_op("declared_kernel", kind="fused")


def launch(data, parents, backward):
    record_launch("bogus_kernel", 128)              # flagged
    record_launch("declared_kernel", 128)           # NOT flagged
    return make_op(data, parents, backward, "mystery_op")  # flagged
