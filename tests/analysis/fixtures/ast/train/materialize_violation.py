"""Fixture: full-corpus materialization inside a streaming hot path.

This file lives under a ``train/`` directory on purpose -- the
``in-memory-materialize`` rule is scoped to the streaming hot paths
(train/online), where a frame source may be an out-of-core store.
"""

import numpy as np


def bad_full_slices(source):
    pos = source.positions[:]          # violation: whole-corpus read
    f = source.forces[:]               # violation
    e = source.energies[:]             # violation
    return pos, f, e


def bad_to_dataset(store):
    return store.to_dataset()          # violation: materializes the store


def ok_patterns(source, store, indices):
    # windowed reads through the FrameSource API are the sanctioned path
    frames = source.get_frames(indices)
    subset = store.to_dataset(indices)          # explicit indices: fine
    window = source.positions[:10]              # bounded slice: fine
    first = source.energies[0]                  # scalar read: fine
    buf = np.zeros(3)
    buf[:] = 1.0                                # store context: fine
    other = source.weights[:]                   # not a frame array: fine
    # lint: disable=in-memory-materialize
    suppressed = source.temperatures[:]
    return frames, subset, window, first, buf, other, suppressed
