"""Fixture: wall-clock reads outside harness/manifest.py (parsed only)."""

import time


def stamp():
    t = time.time()              # flagged
    tn = time.time_ns()          # flagged
    ok = time.perf_counter()     # measurement clock: NOT flagged
    return t, tn, ok


def suppressed():
    return time.time()  # lint: disable=wallclock-time
