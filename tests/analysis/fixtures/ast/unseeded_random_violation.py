"""Fixture: every flavor of unseeded randomness the rule must catch.

Never imported -- parsed by the AST linter only.
"""

import numpy as np


def draw():
    np.random.seed(0)            # legacy global state: flagged even when "seeded"
    a = np.random.randn(3)       # legacy draw
    rng = np.random.default_rng()  # zero-arg: OS entropy
    ok = np.random.default_rng(1234)  # seeded Generator: NOT flagged
    return a, rng.random(), ok.random()
