"""The concurrency analysis pillar: lock-discipline lint (tree clean +
every rule fires on its fixture), TrackedLock semantics, the lock-order
recorder's cycle detection, the Guarded race checker, and the scenario
certification CLI."""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.concurrency import (
    CONCURRENCY_RULES,
    GLOBAL_REGISTRY,
    Guarded,
    LockOrderRecorder,
    RaceChecker,
    TrackedLock,
    TrackedRLock,
    current_held,
    install_checker,
    install_recorder,
    lint_concurrency,
    run_scenario,
    uninstall_checker,
    uninstall_recorder,
)
from repro.autograd.capture import capture

FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"
REPRO_SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def _rules_in(path: Path) -> dict:
    report = lint_concurrency([path])
    by_rule: dict = {}
    for f in report.findings:
        by_rule.setdefault(f.rule, []).append(f)
    return by_rule


# ---------------------------------------------------------------------------
# static lint
# ---------------------------------------------------------------------------
class TestTreeClean:
    def test_repro_package_lints_clean(self):
        report = lint_concurrency([REPRO_SRC])
        assert report.ok, report.render()
        assert report.metrics["files_scanned"] > 50

    def test_all_rules_registered_as_checks(self):
        report = lint_concurrency([REPRO_SRC])
        for rule in CONCURRENCY_RULES:
            assert rule in report.checks_run


class TestRulesFire:
    def test_unguarded_shared_field(self):
        by_rule = _rules_in(FIXTURES / "unguarded_shared_violation.py")
        findings = by_rule["unguarded-shared-field"]
        assert len(findings) == 1
        assert "self.processed" in findings[0].message
        assert findings[0].context["attr"] == "processed"

    def test_untracked_lock_in_serve_path(self):
        by_rule = _rules_in(FIXTURES / "serve" / "untracked_lock_violation.py")
        assert len(by_rule["untracked-lock"]) == 1

    def test_untracked_lock_is_scope_limited(self, tmp_path):
        # the same bare Lock outside serve/online/monitor paths is fine
        src = (FIXTURES / "serve" / "untracked_lock_violation.py").read_text()
        other = tmp_path / "elsewhere" / "dispatcher.py"
        other.parent.mkdir()
        other.write_text(src)
        by_rule = _rules_in(other)
        assert "untracked-lock" not in by_rule

    def test_unbounded_wait(self):
        by_rule = _rules_in(FIXTURES / "unbounded_wait_violation.py")
        msgs = [f.message for f in by_rule["unbounded-wait"]]
        assert len(msgs) == 2  # bare queue.get() + bare join()
        assert any(".get()" in m for m in msgs)
        assert any(".join()" in m for m in msgs)

    def test_sleep_poll(self):
        by_rule = _rules_in(FIXTURES / "sleep_poll_violation.py")
        assert len(by_rule["sleep-poll"]) == 1

    def test_suppression_comment_works(self, tmp_path):
        src = (FIXTURES / "sleep_poll_violation.py").read_text()
        src = src.replace("time.sleep(0.05)",
                          "time.sleep(0.05)  # lint: disable=sleep-poll")
        clean = tmp_path / "suppressed.py"
        clean.write_text(src)
        assert lint_concurrency([clean]).ok


# ---------------------------------------------------------------------------
# tracked locks
# ---------------------------------------------------------------------------
class TestTrackedLock:
    def test_basic_acquire_release(self):
        lock = TrackedLock("test.basic")
        assert not lock.locked()
        with lock:
            assert lock.locked()
            assert lock.held_by_current_thread()
            assert lock in current_held()
        assert not lock.locked()
        assert lock not in current_held()

    def test_rlock_reentrancy(self):
        lock = TrackedRLock("test.rlock")
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.locked()

    def test_plain_lock_rejects_reentry(self):
        lock = TrackedLock("test.noreent")
        with lock:
            assert not lock.acquire(blocking=False)

    def test_registry_uniquifies_names(self):
        a = TrackedLock("test.dup")
        b = TrackedLock("test.dup")
        assert a.name == "test.dup"
        assert b.name.startswith("test.dup#")
        assert a.name in GLOBAL_REGISTRY.health()

    def test_condition_protocol(self):
        lock = TrackedRLock("test.cond")
        cond = threading.Condition(lock)
        hits = []

        def waiter():
            with cond:
                cond.wait(timeout=5.0)
                hits.append(lock.held_by_current_thread())

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        with cond:
            cond.notify()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert hits == [True]  # lock reacquired after wait
        assert not lock.locked()  # and fully released after the with


# ---------------------------------------------------------------------------
# lock-order recorder
# ---------------------------------------------------------------------------
class TestLockOrderRecorder:
    def test_records_nesting_edges(self):
        a, b = TrackedLock("edge.A"), TrackedLock("edge.B")
        rec = LockOrderRecorder()
        install_recorder(rec)
        try:
            with a:
                with b:
                    pass
        finally:
            uninstall_recorder(rec)
        graph = rec.graph()
        assert graph["schema"] == "repro.lockgraph/v1"
        edges = {(e["src"], e["dst"]) for e in graph["edges"]}
        assert ("edge.A", "edge.B") in edges
        assert rec.cycles() == []
        assert rec.report().ok

    def test_detects_inversion_cycle(self):
        a, b = TrackedLock("cyc.A"), TrackedLock("cyc.B")
        rec = LockOrderRecorder()
        install_recorder(rec)
        try:
            with a:
                with b:
                    pass
            done = threading.Event()

            def reversed_order():
                with b:
                    with a:
                        pass
                done.set()

            t = threading.Thread(target=reversed_order)
            t.start()
            t.join(timeout=5.0)
            assert done.is_set()
        finally:
            uninstall_recorder(rec)
        cycles = rec.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"cyc.A", "cyc.B"}
        report = rec.report()
        assert not report.ok
        assert report.findings[0].rule == "lock-order-cycle"

    def test_capture_kind_locks(self):
        a = TrackedLock("cap.A")
        with capture("locks") as rec:
            with a:
                pass
        events = rec.graph()["events"]
        assert events >= 1
        with a:  # outside the capture: unobserved
            pass
        assert rec.graph()["events"] == events

    def test_held_too_long_warning(self):
        a = TrackedLock("slow.A")
        with capture("locks", held_threshold_s=0.001) as rec:
            with a:
                time.sleep(0.01)
        report = rec.report()
        assert report.ok  # warnings do not fail the report
        assert any(f.rule == "lock-held-too-long" for f in report.findings)


# ---------------------------------------------------------------------------
# guarded fields / race checker
# ---------------------------------------------------------------------------
class TestGuarded:
    def test_requires_tracked_lock(self):
        with pytest.raises(TypeError):
            Guarded(0, threading.Lock(), name="bad")

    def test_get_set_swap(self):
        lock = TrackedLock("g.lock")
        field = Guarded(1, lock, name="g.field")
        assert field.get() == 1
        field.set(2)
        assert field.swap(3) == 2
        assert field.get() == 3

    def test_checker_flags_unlocked_access(self):
        lock = TrackedLock("g2.lock")
        field = Guarded(0, lock, name="g2.field")
        chk = RaceChecker()
        install_checker(chk)
        try:
            with lock:
                field.set(1)  # guarded: fine
            field.get()  # unguarded: violation
        finally:
            uninstall_checker(chk)
        assert not chk.ok
        report = chk.report()
        assert len(report.findings) == 1
        assert report.findings[0].rule == "guarded-race"
        assert report.findings[0].context["mode"] == "read"

    def test_capture_kind_races_clean_when_disciplined(self):
        lock = TrackedLock("g3.lock")
        field = Guarded(0, lock, name="g3.field")
        with capture("races") as chk:
            with lock:
                field.set(4)
                assert field.get() == 4
        assert chk.ok
        assert chk.report().metrics["guarded_accesses"] == 2


# ---------------------------------------------------------------------------
# scenarios + CLI
# ---------------------------------------------------------------------------
class TestScenarios:
    def test_queues_scenario_certifies_clean(self):
        report, graph = run_scenario("queues")
        assert report.ok, report.render()
        assert report.metrics["cycles"] == 0
        assert report.metrics["race_violations"] == 0
        assert report.metrics["queues.items"] == 200
        assert graph["cycles"] == []
        assert graph["events"] > 0

    def test_deadlock_fixture_is_flagged(self):
        report, graph = run_scenario(str(FIXTURES / "deadlock_fixture.py"))
        assert not report.ok
        assert any(f.rule == "lock-order-cycle" for f in report.findings)
        assert len(graph["cycles"]) == 1

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            run_scenario("no-such-scenario")


class TestCLI:
    def test_help_lists_all_four_subcommands(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for cmd in ("lint", "graph", "determinism", "concurrency"):
            assert cmd in out

    def test_tree_exits_zero(self, capsys):
        assert main(["concurrency", str(REPRO_SRC)]) == 0

    @pytest.mark.parametrize("fixture", [
        "unguarded_shared_violation.py",
        "serve/untracked_lock_violation.py",
        "unbounded_wait_violation.py",
        "sleep_poll_violation.py",
    ])
    def test_each_fixture_exits_one(self, fixture, capsys):
        assert main(["concurrency", str(FIXTURES / fixture)]) == 1

    def test_json_output(self, capsys):
        path = FIXTURES / "sleep_poll_violation.py"
        assert main(["concurrency", "--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "concurrency"
        assert all(f["rule"] == "sleep-poll" for f in payload["findings"])

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["concurrency", "--scenario", "nope",
                     str(FIXTURES / "sleep_poll_violation.py")]) == 2

    def test_graph_out_artifact(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        code = main([
            "concurrency", str(FIXTURES / "sleep_poll_violation.py"),
            "--scenario", str(FIXTURES / "deadlock_fixture.py"),
            "--graph-out", str(out),
        ])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.lockgraph/v1"
        (graph,) = payload["scenarios"].values()
        assert len(graph["cycles"]) == 1
