"""AST project lint: the tree is clean, and every rule fires on its
seeded-violation fixture."""

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.astlint import RULES, ProjectLinter

FIXTURES = Path(__file__).parent / "fixtures" / "ast"
REPRO_SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def _rules_in(path: Path) -> dict:
    report = lint_paths([path])
    by_rule: dict = {}
    for f in report.findings:
        by_rule.setdefault(f.rule, []).append(f)
    return by_rule


class TestTreeClean:
    def test_repro_package_lints_clean(self):
        report = lint_paths([REPRO_SRC])
        assert report.ok, report.render()
        assert report.metrics["files_scanned"] > 50

    def test_default_root_is_the_repro_package(self):
        report = ProjectLinter().run()
        assert report.ok, report.render()


class TestRulesFire:
    def test_unseeded_random(self):
        by_rule = _rules_in(FIXTURES / "unseeded_random_violation.py")
        msgs = [f.message for f in by_rule["unseeded-random"]]
        assert len(msgs) == 3  # seed(), randn(), zero-arg default_rng()
        assert any("default_rng" in m for m in msgs)
        assert any("randn" in m for m in msgs)

    def test_wallclock_time(self):
        by_rule = _rules_in(FIXTURES / "wallclock_violation.py")
        # time.time() + time.time_ns(); the suppressed call stays silent
        assert len(by_rule["wallclock-time"]) == 2

    def test_wallclock_suppression_comment(self):
        by_rule = _rules_in(FIXTURES / "wallclock_violation.py")
        lines = {f.line for f in by_rule["wallclock-time"]}
        text = (FIXTURES / "wallclock_violation.py").read_text().splitlines()
        for ln in lines:
            assert "disable" not in text[ln - 1]

    def test_private_import(self):
        by_rule = _rules_in(FIXTURES / "private_import_violation.py")
        findings = by_rule["private-import"]
        assert len(findings) == 1
        assert "_GRAD_DTYPE" in findings[0].message

    def test_float32_cast_in_hot_path(self):
        by_rule = _rules_in(FIXTURES / "optim" / "float32_violation.py")
        assert len(by_rule["float32-cast"]) == 3

    def test_float32_ignored_outside_hot_paths(self, tmp_path):
        cold = tmp_path / "cold_module.py"
        cold.write_text(
            "import numpy as np\n"
            "def f(p):\n"
            "    return p.astype(np.float32)\n"
        )
        report = lint_paths([cold])
        assert report.ok, report.render()

    def test_unregistered_op(self):
        by_rule = _rules_in(FIXTURES / "unregistered_op_violation.py")
        ops = {f.context["op"] for f in by_rule["unregistered-op"]}
        assert ops == {"bogus_kernel", "mystery_op"}

    def test_unordered_reduction(self):
        by_rule = _rules_in(FIXTURES / "unordered_reduction_violation.py")
        assert len(by_rule["unordered-reduction"]) == 2

    def test_in_memory_materialize(self):
        by_rule = _rules_in(FIXTURES / "train" / "materialize_violation.py")
        findings = by_rule["in-memory-materialize"]
        # three full slices + one zero-arg to_dataset(); the bounded
        # slice, store-context fill, non-frame attr and suppressed line
        # all stay silent
        assert len(findings) == 4
        attrs = {f.context.get("attr") for f in findings if f.context.get("attr")}
        assert attrs == {"positions", "forces", "energies"}
        assert any("to_dataset" in f.message for f in findings)

    def test_materialize_ignored_outside_streaming_paths(self, tmp_path):
        cold = tmp_path / "cold_analysis.py"
        cold.write_text(
            "def summarize(source):\n"
            "    return source.positions[:], source.to_dataset()\n"
        )
        report = lint_paths([cold])
        assert report.ok, report.render()

    @pytest.mark.parametrize("name", [
        "unseeded_random_violation.py",
        "wallclock_violation.py",
        "private_import_violation.py",
        "optim/float32_violation.py",
        "unregistered_op_violation.py",
        "unordered_reduction_violation.py",
        "train/materialize_violation.py",
    ])
    def test_every_fixture_fails_the_gate(self, name):
        report = lint_paths([FIXTURES / name])
        assert not report.ok
        assert report.exit_code == 1

    def test_findings_carry_file_and_line(self):
        report = lint_paths([FIXTURES / "wallclock_violation.py"])
        for f in report.findings:
            assert f.file and f.file.endswith("wallclock_violation.py")
            assert f.line and f.line > 0
            rendered = f.render()
            assert f"{f.file}:{f.line}:" in rendered
            assert f"[{f.rule}]" in rendered


class TestSuppression:
    def test_preceding_line_suppression(self, tmp_path):
        mod = tmp_path / "sup.py"
        mod.write_text(
            "import time\n"
            "# lint: disable=wallclock-time\n"
            "T = time.time()\n"
        )
        assert lint_paths([mod]).ok

    def test_suppression_is_rule_specific(self, tmp_path):
        mod = tmp_path / "sup2.py"
        mod.write_text(
            "import time\n"
            "T = time.time()  # lint: disable=unseeded-random\n"
        )
        report = lint_paths([mod])
        assert not report.ok  # wrong rule name: finding stands

    def test_rules_tuple_matches_checks_run(self):
        report = ProjectLinter().run()
        assert set(RULES) <= set(report.checks_run)
