"""Determinism auditor: clean certification on the real stack, and each
probe fires on a seeded violation."""

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import audit_determinism, run_backend, state_fingerprint
from repro.analysis import determinism as det
from repro.analysis.determinism import (
    BackendTrace,
    SharedStateProbe,
    _probe_rank_order,
    _probe_sink_leak,
)
from repro.autograd.instrument import KernelCounter, push_sink, remove_sink
from repro.optim.worker import TaskResult, WorkerTelemetry


class TestAuditClean:
    def test_three_backends_certified(self, cu_dataset, small_cfg):
        report = audit_determinism(
            world_size=2, steps=3, dataset=cu_dataset, cfg=small_cfg
        )
        assert report.ok, report.render()
        assert report.metrics["fingerprints_compared"] == 6
        assert report.metrics["write_epochs"] > 0
        assert set(report.checks_run) == {
            "bit-identical-p", "rank-order", "replica-sync",
            "single-writer-p", "sink-leak",
        }

    def test_fingerprints_reproducible_and_seed_sensitive(
        self, cu_dataset, small_cfg
    ):
        a = run_backend("serial", cu_dataset, small_cfg, world_size=2, steps=2)
        b = run_backend("serial", cu_dataset, small_cfg, world_size=2, steps=2)
        c = run_backend("serial", cu_dataset, small_cfg, world_size=2, steps=2,
                        seed=11)
        assert a.fingerprints == b.fingerprints
        assert a.fingerprints != c.fingerprints

    def test_compiled_replay_matches_eager_fingerprints(
        self, cu_dataset, small_cfg
    ):
        """The tape-compiled engine must walk the exact eager trajectory:
        same per-step state fingerprints, bit for bit (fused_env pinned
        so both runs use the graph descriptor path)."""
        eager = run_backend("serial", cu_dataset, small_cfg, world_size=2,
                            steps=2, fused_env=False)
        comp = run_backend("serial", cu_dataset, small_cfg, world_size=2,
                           steps=2, compiled=True)
        assert eager.fingerprints == comp.fingerprints

    def test_compiled_audit_certifies(self, cu_dataset, small_cfg):
        report = audit_determinism(
            world_size=2, steps=2, backends=("serial", "thread"),
            dataset=cu_dataset, cfg=small_cfg, compiled=True,
        )
        assert report.ok, report.render()
        assert report.metrics["compiled"] == 1


class TestProbesFire:
    def test_divergence_detected(self, cu_dataset, small_cfg, monkeypatch):
        """A perturbed fingerprint trace must surface as bit-identical-p
        with the first diverging step named."""
        real = det.run_backend

        def tampered(backend, *args, **kwargs):
            trace = real("serial", *args, **kwargs)
            trace.backend = backend
            if backend == "thread":
                trace.fingerprints[1] = "deadbeef" * 8
            return trace

        monkeypatch.setattr(det, "run_backend", tampered)
        report = audit_determinism(
            world_size=2, steps=2, backends=("serial", "thread"),
            dataset=cu_dataset, cfg=small_cfg,
        )
        findings = [f for f in report.findings if f.rule == "bit-identical-p"]
        assert len(findings) == 1
        assert findings[0].context == {"backend": "thread", "step": 1}
        assert report.exit_code == 1

    def test_rank_order_violation_detected(self):
        results = [
            TaskResult(payload=np.zeros(3), telemetry=WorkerTelemetry(rank=1)),
            TaskResult(payload=np.zeros(3), telemetry=WorkerTelemetry(rank=0)),
        ]
        dist = SimpleNamespace(
            executor=SimpleNamespace(broadcast=lambda m: results),
            model=SimpleNamespace(
                params=SimpleNamespace(flatten=lambda: np.zeros(3))
            ),
        )
        trace = BackendTrace(backend="stub")
        _probe_rank_order(dist, trace, step=0)
        assert {f.rule for f in trace.findings} == {"rank-order"}

    def test_replica_divergence_detected(self):
        results = [
            TaskResult(payload=np.ones(3), telemetry=WorkerTelemetry(rank=0)),
        ]
        dist = SimpleNamespace(
            executor=SimpleNamespace(broadcast=lambda m: results),
            model=SimpleNamespace(
                params=SimpleNamespace(flatten=lambda: np.zeros(3))
            ),
        )
        trace = BackendTrace(backend="stub")
        _probe_rank_order(dist, trace, step=4)
        assert {f.rule for f in trace.findings} == {"replica-sync"}
        assert trace.findings[0].context["step"] == 4

    def test_multi_writer_detected(self):
        # both writers are held inside update() at once, so the thread
        # ids are necessarily distinct and the write epochs overlap
        barrier = threading.Barrier(2, timeout=10)
        kalman = SimpleNamespace(update=lambda g, e, s: barrier.wait())
        probe = SharedStateProbe(kalman)
        threads = [
            threading.Thread(target=kalman.update, args=(None, 0.0, 1.0))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        probe.uninstall()
        assert len(probe.writer_threads) == 2
        assert probe.write_epochs == 2
        assert probe.overlaps >= 1

    def test_sink_leak_detected(self):
        leaked = KernelCounter()
        push_sink(leaked)
        try:
            trace = BackendTrace(backend="stub")
            _probe_sink_leak(trace)
        finally:
            remove_sink(leaked)
        assert {f.rule for f in trace.findings} == {"sink-leak"}
        clean = BackendTrace(backend="stub")
        _probe_sink_leak(clean)
        assert not clean.findings


class TestFingerprint:
    def test_covers_optimizer_state_and_weights(self, cu_dataset, small_cfg):
        from repro.model import DeePMD
        from repro.optim import FEKF, KalmanConfig

        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = FEKF(model, kalman_cfg=KalmanConfig(blocksize=1024), seed=7)
        fp0 = state_fingerprint(opt, model)
        assert fp0 == state_fingerprint(opt, model)  # pure
        opt.kalman.lam *= 0.5  # perturb one scalar of filter state
        assert state_fingerprint(opt, model) != fp0
