"""Graph linter: clean tapes pass, every check fires on its seeded
violation, and the sanitizer attributes NaNs to op + span."""

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import (
    GraphLinter,
    Sanitizer,
    SanitizerError,
    record_tape,
    verify_second_order,
)
from repro.autograd import Tensor, fuse, make_op, ops, register_op
from repro.autograd.instrument import tensors_wanted


def _rules(report):
    return sorted({f.rule for f in report.findings})


class TestCleanGraphs:
    def test_elementwise_matmul_chain(self):
        with record_tape() as tape:
            x = Tensor(np.ones((2, 3)), requires_grad=True)
            w = Tensor(np.ones((3, 2)), requires_grad=True)
            y = ops.tsum(ops.tanh(ops.matmul(x, w)))
        report = GraphLinter(tape).lint(roots=[y])
        assert report.ok, report.render()
        assert report.metrics["tape_length"] == len(tape.entries) > 0

    def test_fused_layer_clean_even_for_second_order(self):
        rng = np.random.default_rng(0)
        with record_tape() as tape:
            x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
            W = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
            b = Tensor(rng.standard_normal(4), requires_grad=True)
            y = ops.tsum(fuse.residual_linear_tanh_fused(x, W, b))
        report = GraphLinter(tape).lint(roots=[y], require_second_order=True)
        assert report.ok, report.render()

    def test_view_ops_not_flagged_as_aliasing(self):
        with record_tape() as tape:
            x = Tensor(np.ones((2, 6)), requires_grad=True)
            y = ops.tsum(ops.transpose(ops.reshape(x, (3, 4)), (1, 0)))
        report = GraphLinter(tape).lint(roots=[y])
        assert report.ok, report.render()

    def test_tape_recording_leaves_no_global_state(self):
        assert not tensors_wanted()
        with record_tape():
            ops.exp(Tensor(np.ones(2), requires_grad=True))
            assert tensors_wanted()
        assert not tensors_wanted()


class TestChecksFire:
    def test_dtype_invariant(self):
        with record_tape() as tape:
            x = Tensor(np.ones(3), requires_grad=True)
            y = ops.exp(x)
            y.data = y.data.astype(np.float32)
            z = ops.tsum(y)
        report = GraphLinter(tape).lint(roots=[z])
        assert "dtype-invariant" in _rules(report)
        assert report.exit_code == 1

    def test_backward_shape(self):
        register_op("test_broken_bwd")

        def broken(x):
            def backward(g):
                return (Tensor(g.data[:-1]),)

            return make_op(x.data * 2.0, (x,), backward, "test_broken_bwd")

        with record_tape() as tape:
            x = Tensor(np.ones(5), requires_grad=True)
            y = ops.tsum(broken(x))
        report = GraphLinter(tape).lint(roots=[y])
        assert "backward-shape" in _rules(report)

    def test_alias_hazard(self):
        register_op("test_alias_op")  # may_view intentionally False

        def identity_view(x):
            def backward(g):
                return (g,)

            return make_op(x.data, (x,), backward, "test_alias_op")

        with record_tape() as tape:
            x = Tensor(np.ones(4), requires_grad=True)
            y = ops.tsum(identity_view(x))
        report = GraphLinter(tape).lint(roots=[y])
        assert "alias-hazard" in _rules(report)

    def test_buffer_mutation(self):
        with record_tape() as tape:
            x = Tensor(np.ones(4), requires_grad=True)
            h = ops.exp(x)
            y = ops.tsum(ops.mul(h, h))
            h.data[:] = 0.0
        report = GraphLinter(tape).lint(roots=[y])
        assert "buffer-mutation" in _rules(report)

    def test_unreachable_node(self):
        with record_tape() as tape:
            x = Tensor(np.ones(4), requires_grad=True)
            ops.exp(x)  # dead compute
            y = ops.tsum(ops.tanh(x))
        report = GraphLinter(tape).lint(roots=[y])
        findings = [f for f in report.findings if f.rule == "unreachable-node"]
        assert findings and findings[0].context["op"] == "exp"

    def test_unregistered_op(self):
        def rogue(x):
            def backward(g):
                return (g,)

            return make_op(x.data + 1.0, (x,), backward, "test_rogue_kernel_xyz")

        with record_tape() as tape:
            x = Tensor(np.ones(4), requires_grad=True)
            y = ops.tsum(rogue(x))
        report = GraphLinter(tape).lint(roots=[y])
        assert "unregistered-op" in _rules(report)

    def test_second_order_unsafe(self):
        register_op("test_raw_first_order", second_order=False)

        def raw(x):
            def backward(g):
                return (Tensor(g.data * 2.0 * x.data),)

            return make_op(x.data ** 2, (x,), backward, "test_raw_first_order")

        with record_tape() as tape:
            x = Tensor(np.ones(4), requires_grad=True)
            y = ops.tsum(raw(x))
        clean = GraphLinter(tape).lint(roots=[y])
        assert "second-order-unsafe" not in _rules(clean)  # opt-in check
        strict = GraphLinter(tape).lint(roots=[y], require_second_order=True)
        assert "second-order-unsafe" in _rules(strict)


class TestSanitizer:
    def test_raises_on_first_nonfinite(self):
        with np.errstate(divide="ignore"):
            with pytest.raises(SanitizerError, match="log"):
                with Sanitizer():
                    ops.log(Tensor(np.array([1.0, 0.0]), requires_grad=True))
        assert not tensors_wanted()

    def test_collect_mode_attributes_span(self):
        with np.errstate(divide="ignore", invalid="ignore"):
            with Sanitizer(mode="collect") as san:
                with telemetry.Tracer():
                    with telemetry.span("unit.test.phase"):
                        x = Tensor(np.array([0.0, 2.0]), requires_grad=True)
                        ops.div(Tensor(np.ones(2)), x)
        report = san.report()
        assert not report.ok
        assert report.findings[0].context["span"] == "unit.test.phase"
        assert report.findings[0].context["op"] == "div"
        assert san.ops_checked > 0

    def test_clean_run_collects_nothing(self):
        with Sanitizer(mode="collect") as san:
            ops.tanh(Tensor(np.ones(8), requires_grad=True))
        assert san.report().ok


class TestVerifySecondOrder:
    def _force_path_fn(self, model, batch, fused_env):
        """Scalar energy as a function of (coords-subspace coefficients,
        output-layer bias) -- the derivative structure force training
        exercises under create_graph=True."""
        base = batch.coords
        rng = np.random.default_rng(3)
        d0 = Tensor(rng.standard_normal(base.shape) * 0.01)
        d1 = Tensor(rng.standard_normal(base.shape) * 0.01)

        def energy(alpha, wb):
            coords = ops.add(
                Tensor(base),
                ops.add(ops.mul(d0, alpha[0:1]), ops.mul(d1, alpha[1:2])),
            )
            p = model.param_tensors()
            p["fit_out_b"] = wb
            e = model.energy_graph(coords, batch, p=p, fused_env=fused_env)
            return ops.tsum(e)

        return energy

    def test_force_path_double_backward_certified(self, cu_model, cu_batch):
        """With the primitive-composed environment the whole force path
        is exact to any order: double backward matches central
        differences along coords *and* weight directions."""
        energy = self._force_path_fn(cu_model, cu_batch, fused_env=False)
        report = verify_second_order(
            energy, [np.zeros(2), cu_model.params["fit_out_b"]],
            label="force-path", eps=1e-5, atol=1e-5, rtol=1e-2,
        )
        assert report.ok, report.render()

    def test_fused_env_coord_curvature_caught(self, cu_model, cu_batch):
        """The fused Opt1 environment's hand-derived backward freezes its
        linear-map coefficients at the base coordinates: exact along
        weight directions (the training use), inexact for d2E/dcoords2.
        The dynamic checker must catch that boundary when probed along
        coordinate directions."""
        energy = self._force_path_fn(cu_model, cu_batch, fused_env=True)
        report = verify_second_order(
            energy, [np.zeros(2), cu_model.params["fit_out_b"]],
            label="fused-env", eps=1e-5, atol=1e-5, rtol=1e-2,
        )
        assert not report.ok
        assert report.findings[0].rule == "second-order-mismatch"

    def test_mismatch_becomes_finding(self):
        register_op("test_raw_sq2", second_order=False)

        def raw(x):
            def backward(g):
                return (Tensor(g.data * 2.0 * x.data),)

            return make_op(x.data ** 2, (x,), backward, "test_raw_sq2")

        def f(x):
            return ops.tsum(raw(x))

        report = verify_second_order(f, [np.ones(3)], label="raw")
        assert not report.ok
        assert report.findings[0].rule == "second-order-mismatch"
