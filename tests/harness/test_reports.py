"""Report rendering and the experiment registry."""

import pytest

from repro.harness import EXPERIMENTS, Report
from repro.harness.common import parse_systems


class TestReport:
    def _report(self):
        r = Report("T", "demo", ["a", "b"])
        r.add_row("x", 1.5)
        r.add_row("long-name", 0.00012)
        r.notes.append("hello")
        return r

    def test_format_table_contains_everything(self):
        text = self._report().format_table()
        assert "T: demo" in text
        assert "long-name" in text
        assert "note: hello" in text

    def test_column_alignment(self):
        lines = self._report().format_table().splitlines()
        header = next(l for l in lines if l.startswith("a"))
        sep = lines[lines.index(header) + 1]
        assert set(sep) == {"-"}

    def test_markdown_table(self):
        md = self._report().markdown()
        assert "| a | b |" in md
        assert "| x | 1.5 |" in md
        assert "> hello" in md

    def test_float_formatting(self):
        r = Report("T", "t", ["v"])
        r.add_row(1234567.0)
        r.add_row(0.00001)
        r.add_row(0.25)
        text = r.format_table()
        assert "1.23e+06" in text
        assert "1e-05" in text
        assert "0.25" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table3", "table4", "table5", "figure4",
            "figure7a", "figure7b", "figure7c", "memory", "scaling",
            "scaling_walltime",
            "figure1", "ablations", "ablation_lambda_nu", "ablation_dataflow",
            "ablation_force_graph", "profile", "serve-bench", "compile",
            "online", "framestore",
        }
        assert set(EXPERIMENTS) == expected

    def test_parse_systems_quick(self):
        assert parse_systems(None) == ("Cu",)
        assert parse_systems("quick") == ("Cu",)

    def test_parse_systems_all(self):
        assert len(parse_systems("all")) == 8

    def test_parse_systems_list(self):
        assert parse_systems("Cu, Al") == ["Cu", "Al"]

    def test_parse_systems_unknown(self):
        with pytest.raises(KeyError):
            parse_systems("Xx")
