"""The one-command report generator."""

from repro.harness.report import LIGHT_PLAN, TRAINING_PLAN, generate
from repro.harness import EXPERIMENTS


class TestReportGenerator:
    def test_plans_reference_registered_experiments(self):
        for name, _ in LIGHT_PLAN + TRAINING_PLAN:
            assert name in EXPERIMENTS

    def test_generates_markdown_for_subplan(self, tmp_path):
        out = str(tmp_path / "r.md")
        messages = []
        reports = generate(
            out, plan=[("table3", {}), ("scaling", {})],
            progress=messages.append,
        )
        text = open(out).read()
        assert len(reports) == 2
        assert "Table 3" in text and "Sec 5.3 scaling" in text
        assert any("table3" in m for m in messages)

    def test_systems_forwarded(self, tmp_path):
        out = str(tmp_path / "r.md")
        generate(out, systems="Al", plan=[("table3", {})])  # table3 has no systems kwarg
        assert "Al" in open(out).read()
