"""The python -m repro.harness command-line interface."""

import pytest

from repro.harness.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure7b" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "Sec 5.3 scaling" in out
        assert "completed in" in out

    def test_markdown_flag(self, capsys):
        assert main(["table3", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| System |" in out

    def test_frames_override_forwarded(self, capsys):
        assert main(["table3", "--frames", "7"]) == 0
        out = capsys.readouterr().out
        assert "21" in out  # 7 frames x 3 temperatures for Cu


class TestTraceOut:
    def _check_bundle(self, tmp_path, trace_name, experiment):
        import json

        from repro.telemetry import validate_chrome_trace

        trace_path = tmp_path / trace_name
        assert trace_path.exists()
        report = validate_chrome_trace(json.loads(trace_path.read_text()))
        assert report["events"] > 0
        jsonl = tmp_path / (trace_path.stem + ".spans.jsonl")
        assert jsonl.exists()
        lines = [json.loads(l) for l in jsonl.read_text().splitlines() if l]
        assert any(l.get("type") == "span" for l in lines)
        assert lines[-1]["type"] == "metrics"
        manifest = json.loads((tmp_path / f"BENCH_{experiment}.json").read_text())
        assert manifest["schema"] == "repro.bench/v1"
        assert manifest["name"] == experiment
        assert "profile" in manifest
        assert manifest["spans"]
        assert f"{experiment}.seconds" in manifest["metrics"]
        return manifest

    def test_trace_out_flag_writes_bundle(self, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["profile", "--frames", "4", "--trace-out", trace]) == 0
        out = capsys.readouterr().out
        assert "op-level profile" in out
        assert "trace written to" in out
        manifest = self._check_bundle(tmp_path, "trace.json", "profile")
        # the profile experiment ran under the CLI's ambient tracer, so
        # its per-phase breakdown reached the manifest
        assert manifest["profile"]["phases"].get("backward", {}).get("kernels", 0) > 0
        assert manifest["profile"]["top_ops"]

    def test_trace_out_env_var(self, tmp_path, capsys, monkeypatch):
        trace = str(tmp_path / "envtrace.json")
        monkeypatch.setenv("REPRO_TRACE_OUT", trace)
        assert main(["scaling"]) == 0
        capsys.readouterr()
        self._check_bundle(tmp_path, "envtrace.json", "scaling")

    def test_profile_experiment_standalone(self, capsys):
        """Without --trace-out the profile experiment scopes its own
        tracer and still reports every FEKF phase."""
        assert main(["profile", "--frames", "4"]) == 0
        out = capsys.readouterr().out
        for phase in ("forward_energy", "backward", "kf_update"):
            assert phase in out
