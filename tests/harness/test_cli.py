"""The python -m repro.harness command-line interface."""

import pytest

from repro.harness.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure7b" in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_cheap_experiment(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "Sec 5.3 scaling" in out
        assert "completed in" in out

    def test_markdown_flag(self, capsys):
        assert main(["table3", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| System |" in out

    def test_frames_override_forwarded(self, capsys):
        assert main(["table3", "--frames", "7"]) == 0
        out = capsys.readouterr().out
        assert "21" in out  # 7 frames x 3 temperatures for Cu
