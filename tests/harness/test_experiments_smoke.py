"""Tiny-scale smoke runs of every experiment harness.

These verify the full regeneration pipelines execute and produce
well-formed reports; scientific-scale runs live in benchmarks/ and the
CLI.  Marked slow-ish but kept under ~2 minutes total.
"""

import numpy as np
import pytest

from repro.harness import EXPERIMENTS, figure4, figure7, memory, scaling, table1, table3, table4, table5


class TestCheapExperiments:
    def test_table3(self):
        rep = table3.run(size="tiny", frames_per_temperature=2)
        assert len(rep.rows) == 8

    def test_memory(self):
        rep = memory.run(measure_blocksize=256)
        assert any("P resident" in str(r[0]) for r in rep.rows)

    def test_scaling(self):
        rep = scaling.run(gpu_counts=(2, 4))
        assert len(rep.rows) == 2
        # FEKF gradient traffic stays ~sub-MB while Naive-EKF P move is GBs
        assert float(rep.rows[0][1]) < 1.0
        assert float(rep.rows[0][3]) > 100.0


class TestTrainingExperiments:
    def test_figure7b_counts_decrease(self):
        rep = figure7.run_7b(batch_size=4, frames_per_temperature=3)
        totals = [row[3] for row in rep.rows]
        assert totals[-1] < totals[0]

    def test_figure7c_rows(self):
        rep = figure7.run_7c(batch_size=4, frames_per_temperature=3)
        assert [row[0] for row in rep.rows] == ["baseline", "opt1", "opt2", "opt3"]

    def test_figure4_smoke(self):
        rep = figure4.run(batch_size=4, epochs=2, frames_per_temperature=4)
        assert [row[0] for row in rep.rows] == ["1", "sqrt(bs)", "bs"]

    def test_table4_smoke(self):
        rep = table4.run(
            systems="Cu", batch_size=4, adam_epochs=2, fekf_epochs=2,
            frames_per_temperature=4,
        )
        assert len(rep.rows) == 1
        assert rep.rows[0][0] == "Cu"

    def test_table1_smoke(self):
        rep = table1.run(
            systems="Cu", batch_sizes=(1, 2, 4), frames_per_temperature=3,
            base_epochs=2, max_epochs_large=4,
        )
        assert rep.rows[0][0] == "Cu"

    def test_figure7a_smoke(self):
        rep = figure7.run_7a(
            systems="Cu", batch_size=4, adam_epochs=2, ekf_epochs=2,
            frames_per_temperature=3,
        )
        assert len(rep.rows) == 1

    def test_table5_smoke(self):
        rep = table5.run(
            configs=((4, 1), (8, 2)), frames_per_temperature=4,
            rlekf_epochs=1, fekf_epochs=2,
        )
        assert len(rep.rows) == 3  # RLEKF + two ladder configs
