"""Cluster topology graphs and cost-model derivation."""

import networkx as nx
import pytest

from repro.parallel import (
    ClusterSpec,
    build_fat_tree,
    cluster_for_gpus,
    cost_model_for,
    ring_hops,
    ring_order,
)


class TestFatTree:
    def test_node_and_gpu_counts(self):
        g = build_fat_tree(3, gpus_per_node=4)
        gpus = [n for n, d in g.nodes(data=True) if d["kind"] == "gpu"]
        switches = [n for n, d in g.nodes(data=True) if d["kind"] == "switch"]
        assert len(gpus) == 12
        assert len(switches) == 4  # 3 leaf + 1 core

    def test_connected(self):
        assert nx.is_connected(build_fat_tree(4))

    def test_intra_node_distance(self):
        g = build_fat_tree(2)
        assert nx.shortest_path_length(g, "gpu0.0", "gpu0.1") == 2

    def test_inter_node_distance(self):
        g = build_fat_tree(2)
        assert nx.shortest_path_length(g, "gpu0.0", "gpu1.0") == 4

    def test_cluster_for_gpus_trims(self):
        g = cluster_for_gpus(6)
        assert len(ring_order(g)) == 6

    def test_cluster_for_gpus_exact_nodes(self):
        g = cluster_for_gpus(16)
        assert len(ring_order(g)) == 16


class TestRing:
    def test_ring_order_fills_nodes_first(self):
        order = ring_order(build_fat_tree(2))
        assert order[:4] == ["gpu0.0", "gpu0.1", "gpu0.2", "gpu0.3"]

    def test_ring_hops_single_node(self):
        hops = ring_hops(cluster_for_gpus(4))
        assert max(hops) == 2  # never leaves the node switch

    def test_ring_hops_multi_node(self):
        hops = ring_hops(cluster_for_gpus(8))
        assert max(hops) == 4  # crosses the core


class TestCostDerivation:
    def test_single_node_uses_fast_links(self):
        spec = ClusterSpec()
        cm = cost_model_for(cluster_for_gpus(4), spec)
        assert cm.bandwidth_Bps == spec.intra_node_bandwidth_Bps

    def test_multi_node_uses_fabric(self):
        spec = ClusterSpec()
        cm = cost_model_for(cluster_for_gpus(16), spec)
        assert cm.bandwidth_Bps == spec.inter_node_bandwidth_Bps

    def test_latency_scales_with_hops(self):
        spec = ClusterSpec()
        cm4 = cost_model_for(cluster_for_gpus(4), spec)
        cm16 = cost_model_for(cluster_for_gpus(16), spec)
        assert cm16.latency_s > cm4.latency_s
