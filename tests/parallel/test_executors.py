"""Executor backends: bitwise determinism, crash robustness, telemetry
merge, and the optim/parallel layering contract."""

import re
from pathlib import Path

import numpy as np
import pytest

import repro.parallel as parallel_pkg
from repro.model import DeePMD, make_batch
from repro.optim import FaultInjector, KalmanConfig, WorkerSpec
from repro.parallel import (
    EXECUTOR_NAMES,
    DistributedFEKF,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCrash,
    make_executor,
)
from repro.telemetry import Tracer
from repro.telemetry import metrics as _metrics


def _kcfg():
    return KalmanConfig(blocksize=1024, fused_update=True)


def _counter(name, **labels):
    return _metrics.REGISTRY.counter(name, **labels).value


def _train(cu_dataset, small_cfg, executor, world=2, steps=2, fault=None,
           fault_rank=1):
    """Run a short training and return (weights, checksum trace, abe trace)."""
    model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
    dist = DistributedFEKF(
        model, world_size=world, kalman_cfg=_kcfg(), seed=7, executor=executor
    )
    if fault is not None:
        dist.inject_fault(fault_rank, fault)
    batch = make_batch(cu_dataset, np.arange(4), small_cfg)
    checksums, abes = [], []
    for _ in range(steps):
        stats = dist.step_batch(batch)
        checksums.append(dist.kalman.checksum())
        abes.append(stats["force_abe"])
    weights = model.params.flatten()
    dist.close()
    return weights, checksums, abes


class TestDeterminism:
    """Property: per-rank compute is a pure function of (weights, shard)
    and results reduce in rank order, so every backend is bit-identical."""

    @pytest.mark.parametrize("kind", ["thread", "process"])
    @pytest.mark.parametrize("world", [2, 3])
    def test_training_bitwise_matches_serial(self, cu_dataset, small_cfg, kind, world):
        w_ref, cks_ref, abe_ref = _train(cu_dataset, small_cfg, "serial", world)
        w, cks, abe = _train(cu_dataset, small_cfg, kind, world)
        assert np.array_equal(w_ref, w)  # bitwise, not allclose
        assert cks == cks_ref  # full KalmanState.checksum() trace
        assert abe == abe_ref  # reduced ABEs identical

    @pytest.mark.parametrize("kind", EXECUTOR_NAMES)
    def test_shard_results_bitwise_identical(self, cu_dataset, small_cfg, kind):
        """The raw per-rank reduced gradients/ABEs coming back from an
        executor round are bit-identical to in-process evaluation."""
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        spec = WorkerSpec(model=model, fused_env=True)
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        shards = [batch.frame_slice(0, 2), batch.frame_slice(2, 4)]
        ref = [spec.build(rank=r) for r in range(2)]
        expected = []
        for r, shard in enumerate(shards):
            ref[r].set_shard(shard)
            expected.append(ref[r].energy_task())
        with make_executor(kind, 2) as ex:
            ex.start(spec)
            ex.submit([("set_shard", (s,)) for s in shards])
            results = ex.submit([("energy_task", ())] * 2)
        for res, exp in zip(results, expected):
            assert np.array_equal(res.payload.grad, exp.grad)
            assert res.payload.abe_sum == exp.abe_sum
            assert res.payload.count == exp.count


class TestCrashRobustness:
    @pytest.mark.parametrize("kind", EXECUTOR_NAMES)
    def test_single_failure_retried_in_place(self, cu_dataset, small_cfg, kind):
        """One injected failure is absorbed by the in-place retry: no
        fallback, and the result is bit-identical to a clean run."""
        retries0 = _counter("parallel.worker_retries")
        fallbacks0 = _counter("parallel.serial_fallbacks")
        w_ref, cks_ref, _ = _train(cu_dataset, small_cfg, kind)
        w, cks, _ = _train(
            cu_dataset, small_cfg, kind, fault=FaultInjector("energy_task", times=1)
        )
        assert np.array_equal(w_ref, w)
        assert cks == cks_ref
        assert _counter("parallel.worker_retries") == retries0 + 1
        assert _counter("parallel.serial_fallbacks") == fallbacks0

    @pytest.mark.parametrize("kind", EXECUTOR_NAMES)
    @pytest.mark.parametrize("method", ["energy_task", "force_task"])
    def test_double_failure_falls_back_to_serial(
        self, cu_dataset, small_cfg, kind, method
    ):
        """A rank failing its task twice triggers the serial fallback for
        that step; training completes with bit-identical final weights
        and the telemetry counters record fallback + heal."""
        fallbacks0 = _counter("parallel.serial_fallbacks")
        heals0 = _counter("parallel.executor_heals")
        w_ref, cks_ref, abe_ref = _train(cu_dataset, small_cfg, kind)
        w, cks, abe = _train(
            cu_dataset, small_cfg, kind, fault=FaultInjector(method, times=2)
        )
        assert np.array_equal(w_ref, w)
        assert cks == cks_ref
        assert abe == abe_ref
        assert _counter("parallel.serial_fallbacks") == fallbacks0 + 1
        assert _counter("parallel.executor_heals") == heals0 + 1

    def test_dead_process_crashes_then_heals(self, cu_dataset, small_cfg):
        """A killed worker process surfaces as WorkerCrash; heal()
        respawns it and the executor serves tasks again."""
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        spec = WorkerSpec(model=model, fused_env=True)
        with ProcessExecutor(2) as ex:
            ex.start(spec)
            ex._procs[1].terminate()
            ex._procs[1].join()
            with pytest.raises(WorkerCrash):
                ex.broadcast("get_weights")
            ex.heal(spec, model.params.flatten())
            results = ex.broadcast("get_weights")
            for res in results:
                assert np.array_equal(res.payload, model.params.flatten())


class TestTelemetryMerge:
    @pytest.mark.parametrize("kind", EXECUTOR_NAMES)
    def test_worker_spans_and_counters_reach_parent(
        self, cu_dataset, small_cfg, kind
    ):
        tasks0 = _counter("parallel.worker_tasks", executor=kind)
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(
            model, world_size=2, kalman_cfg=_kcfg(), seed=7, executor=kind
        )
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        with Tracer() as tracer:
            dist.step_batch(batch)
        dist.close()
        # worker-local spans were captured and merged into the parent
        # stream, tagged with their rank and nested under the parent's
        # parallel.compute span
        by_name = {}
        for ev in tracer.events:
            by_name.setdefault(ev.name, []).append(ev)
        assert "fekf.forward" in by_name
        ranks = {ev.attrs.get("rank") for ev in by_name["fekf.forward"]}
        assert ranks == {0, 1}
        # ... nested (via the worker.task wrapper) under parallel.compute
        compute_ids = {ev.span_id for ev in by_name["parallel.compute"]}
        parent_of = {ev.span_id: ev.parent_id for ev in tracer.events}
        for ev in by_name["fekf.forward"]:
            pid = ev.parent_id
            while pid is not None and pid not in compute_ids:
                pid = parent_of.get(pid)
            assert pid in compute_ids
        # worker task counters merged into the parent registry, labeled
        # by executor backend
        assert _counter("parallel.worker_tasks", executor=kind) > tasks0


class TestLayering:
    def test_no_private_imports_from_optim(self):
        """repro.parallel must consume repro.optim through its public
        surface only -- no underscore-prefixed imports."""
        pkg_dir = Path(parallel_pkg.__file__).parent
        import_re = re.compile(
            r"from\s+(?:repro\.optim|\.\.optim)[\w.]*\s+import\s+"
            r"(\([^)]*\)|[^\n]*)"
        )
        offenders = []
        for src_file in sorted(pkg_dir.glob("*.py")):
            for m in import_re.finditer(src_file.read_text()):
                for raw in re.split(r"[,\s()]+", m.group(1)):
                    name = raw.split("#")[0].strip()
                    if name.startswith("_"):
                        offenders.append(f"{src_file.name}: {name}")
        assert not offenders, f"private optim imports in repro.parallel: {offenders}"


class TestMakeExecutor:
    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert isinstance(make_executor(None, 2), ThreadExecutor)
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert isinstance(make_executor(None, 2), SerialExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            make_executor("mpi", 2)

    def test_instance_passthrough_checks_world_size(self):
        ex = SerialExecutor(2)
        assert make_executor(ex, 2) is ex
        with pytest.raises(ValueError):
            make_executor(ex, 4)


class TestProfilerMerge:
    def test_process_executor_rank_tracks(self, cu_dataset, small_cfg):
        """Under Tracer(profile=True) + ProcessExecutor, worker op
        timelines merge back rank/pid-tagged: >=2 distinct rank tracks in
        the exported Chrome trace, no span-id collisions, and counters
        merged under the executor label."""
        from repro.telemetry import Tracer as _Tracer, validate_chrome_trace

        tasks0 = _counter("parallel.worker_tasks", executor="process")
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(
            model, world_size=2, kalman_cfg=_kcfg(), seed=7, executor="process"
        )
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        with _Tracer(capture_kernels=True, profile=True) as tracer:
            dist.step_batch(batch)
        dist.close()

        # span ids stay unique after the foreign merge
        ids = [ev.span_id for ev in tracer.events]
        assert len(ids) == len(set(ids))

        prof = tracer.profiler
        op_ranks = {ev.rank for ev in prof.events if ev.rank is not None}
        assert op_ranks == {0, 1}
        # process workers report their own pids, distinct from the parent
        import os
        worker_pids = {ev.pid for ev in prof.events if ev.rank is not None}
        assert len(worker_pids) == 2
        assert os.getpid() not in worker_pids
        # worker ops arrive phase-classified (fekf spans live rank-side)
        phases = prof.phase_kernel_counts()
        assert phases.get("forward_energy", 0) > 0
        assert phases.get("backward", 0) > 0
        # the parent's own timeline records the Kalman/comm phases
        main_phases = {ev.phase for ev in prof.events if ev.rank is None}
        assert "kf_update" in main_phases

        trace = tracer.chrome_trace()
        report = validate_chrome_trace(trace)
        assert len(report["rank_tracks"]) >= 2
        # counters merged under the executor label
        assert _counter("parallel.worker_tasks", executor="process") > tasks0

    def test_thread_executor_rank_tracks(self, cu_dataset, small_cfg):
        """Thread workers share the parent pid but still land on their own
        rank tracks."""
        from repro.telemetry import Tracer as _Tracer, validate_chrome_trace

        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(
            model, world_size=2, kalman_cfg=_kcfg(), seed=7, executor="thread"
        )
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        with _Tracer(profile=True) as tracer:
            dist.step_batch(batch)
        dist.close()
        report = validate_chrome_trace(tracer.chrome_trace())
        assert len(report["rank_tracks"]) == 2
