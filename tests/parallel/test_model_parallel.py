"""Model-parallel Kalman sharding (the paper's future-work extension)."""

import numpy as np
import pytest

from repro.optim import KalmanConfig, KalmanState
from repro.optim.blocks import Block
from repro.parallel import ModelParallelKalman, shard_blocks

LAYERS = [(0, 30), (1, 120), (2, 50), (3, 50), (4, 10)]
N = sum(s for _, s in LAYERS)


class TestSharding:
    def test_all_blocks_assigned_once(self):
        blocks = [Block(0, 10), Block(10, 40), Block(40, 45), Block(45, 60)]
        shards = shard_blocks(blocks, 2)
        flat = sorted(i for s in shards for i in s)
        assert flat == [0, 1, 2, 3]

    def test_balances_quadratic_cost(self):
        blocks = [Block(0, 100), Block(100, 110), Block(110, 120), Block(120, 130)]
        shards = shard_blocks(blocks, 2)
        # the giant block must sit alone; the three small ones together
        sizes = [[blocks[i].size for i in s] for s in shards]
        assert [100] in sizes

    def test_more_ranks_than_blocks(self):
        blocks = [Block(0, 5), Block(5, 10)]
        shards = shard_blocks(blocks, 4)
        assert sum(len(s) for s in shards) == 2


class TestModelParallelKalman:
    def _cfg(self, **kw):
        return KalmanConfig(blocksize=64, fused_update=True, **kw)

    def test_matches_serial_layerwise(self):
        rng = np.random.default_rng(0)
        serial = KalmanState(N, LAYERS, self._cfg())
        mp = ModelParallelKalman(N, LAYERS, self._cfg(), world_size=3)
        for _ in range(12):
            g = rng.normal(size=N) * 0.3
            dw_s = serial.update(g, 0.1, 2.0)
            dw_p = mp.update(g, 0.1, 2.0)
            assert np.allclose(dw_s, dw_p, atol=1e-12)
        assert serial.checksum() == pytest.approx(mp.checksum(), rel=1e-12)

    def test_rejects_coupled_gain(self):
        with pytest.raises(ValueError):
            ModelParallelKalman(N, LAYERS, self._cfg(coupled_gain=True), 2)

    def test_memory_sharded_across_ranks(self):
        mp = ModelParallelKalman(N, LAYERS, self._cfg(), world_size=2)
        per_rank = mp.p_memory_bytes_per_rank()
        total = sum(p.nbytes for p in mp._state.p_mats)
        assert sum(per_rank) == total
        assert max(per_rank) < total  # genuinely split

    def test_parallel_efficiency_bounded(self):
        mp = ModelParallelKalman(N, LAYERS, self._cfg(), world_size=2)
        assert 0.0 < mp.parallel_efficiency() <= 1.0

    def test_allgather_traffic_is_order_n(self):
        mp = ModelParallelKalman(N, LAYERS, self._cfg(), world_size=4)
        mp.update(np.random.default_rng(1).normal(size=N), 0.1, 1.0)
        # per update: one ring pass over the N-element increment
        assert mp.comm.ledger.bytes_sent_per_rank < 2 * N * 8

    def test_gradient_shape_checked(self):
        mp = ModelParallelKalman(N, LAYERS, self._cfg(), world_size=2)
        with pytest.raises(ValueError):
            mp.update(np.zeros(N + 1), 0.1, 1.0)
