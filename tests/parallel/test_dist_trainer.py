"""Distributed FEKF: serial equivalence, replica consistency, accounting."""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig
from repro.parallel import DistributedFEKF


def _kcfg():
    return KalmanConfig(blocksize=1024, fused_update=True)


class TestSerialEquivalence:
    @pytest.mark.parametrize("world", [2, 3])
    def test_matches_serial_fekf(self, cu_dataset, small_cfg, world):
        m_serial = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m_dist = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        serial = FEKF(m_serial, _kcfg(), fused_env=True, seed=7)
        dist = DistributedFEKF(
            m_dist, world_size=world, kalman_cfg=_kcfg(), seed=7
        )
        batch_s = make_batch(cu_dataset, np.arange(6), small_cfg)
        batch_d = make_batch(cu_dataset, np.arange(6), small_cfg)
        for _ in range(2):
            serial.step_batch(batch_s)
            dist.step_batch(batch_d)
        assert np.allclose(
            m_serial.params.flatten(), m_dist.params.flatten(), atol=1e-10
        )

    def test_replica_verification_passes(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(
            model, world_size=2, kalman_cfg=_kcfg(), verify_replicas=True, seed=0
        )
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)  # raises if any replica diverges
        assert dist.kalman.updates == 5


class TestSharding:
    def test_batch_smaller_than_world_degrades_gracefully(self, cu_dataset, small_cfg):
        """batch_size < world_size: surplus ranks get empty shards whose
        zero-count results drop out of the count-weighted reduction, so
        the update matches a serial FEKF step on the same batch."""
        m_dist = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m_serial = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(m_dist, world_size=4, kalman_cfg=_kcfg(), seed=7)
        serial = FEKF(m_serial, _kcfg(), fused_env=True, seed=7)
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        shards = dist._shards(batch)
        assert len(shards) == 4
        assert sum(s.batch_size for s in shards) == 2
        assert sum(1 for s in shards if s.batch_size == 0) == 2
        stats = dist.step_batch(batch)
        serial.step_batch(make_batch(cu_dataset, np.arange(2), small_cfg))
        assert stats["force_abe"] > 0
        assert np.allclose(
            m_serial.params.flatten(), m_dist.params.flatten(), atol=1e-10
        )

    def test_empty_batch_rejected(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=2, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        with pytest.raises(ValueError):
            dist._shards(batch.frame_slice(0, 0))

    def test_uneven_shards_allowed(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=3, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(5), small_cfg)
        stats = dist.step_batch(batch)
        assert stats["force_abe"] > 0


class TestAccounting:
    def test_comm_volume_scales_with_updates(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=2, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)
        after_one = dist.comm.ledger.bytes_sent_per_rank
        dist.step_batch(batch)
        assert dist.comm.ledger.bytes_sent_per_rank == pytest.approx(2 * after_one)

    def test_timing_components_populated(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=2, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        stats = dist.step_batch(batch)
        assert dist.timing.compute_s > 0
        assert dist.timing.comm_s > 0
        assert dist.timing.kalman_s > 0
        assert dist.timing.total_s == pytest.approx(
            dist.timing.compute_s + dist.timing.comm_s + dist.timing.kalman_s
        )
        # the real clock runs alongside the modeled one and covers at
        # least the (measured) compute it contains
        assert stats["wall_time_s"] == pytest.approx(dist.timing.wall_s)
        assert dist.timing.wall_s >= dist.timing.compute_s

    def test_gradient_traffic_never_includes_p(self, cu_dataset, small_cfg):
        """Sec. 3.3: only gradients + ABE scalars move, never P."""
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=4, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)
        # upper bound: 5 gradient allreduces + 5 scalar allreduces
        from repro.parallel import allreduce_volume_bytes

        grad_vol = allreduce_volume_bytes(model.num_params, 4)
        p_vol = allreduce_volume_bytes(dist.kalman.p_memory_bytes() // 8, 4)
        total = dist.comm.ledger.bytes_sent_per_rank
        assert total < 5 * grad_vol + 1000
        assert total < p_vol  # far below what moving P would need


class TestCheckpointResume:
    def test_state_roundtrip_with_replica_verification(self, cu_dataset, small_cfg):
        """state_dict/load_state_dict round-trip: the shadow P is
        re-cloned on load, so checksum verification keeps passing after a
        resume and both trainers continue bit-identically."""
        kcfg = _kcfg()
        m_a = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        a = DistributedFEKF(
            m_a, world_size=2, kalman_cfg=kcfg, verify_replicas=True, seed=3
        )
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        a.step_batch(batch)
        state = {k: v.copy() for k, v in a.state_dict().items()}

        m_b = DeePMD.for_dataset(cu_dataset, small_cfg, seed=99)  # different init
        b = DistributedFEKF(
            m_b, world_size=2, kalman_cfg=kcfg, verify_replicas=True, seed=3
        )
        # a resume restores weights (checkpoint layer) + filter state;
        # load_state_dict must also re-sync every rank replica, or the
        # workers would keep computing at the seed-99 init weights
        m_b.params.unflatten(m_a.params.flatten().copy())
        b.load_state_dict(state)
        assert np.array_equal(m_a.params.flatten(), m_b.params.flatten())
        assert a.kalman.checksum() == b.kalman.checksum()

        # both continue (shadow verification raises on any divergence)
        a.step_batch(batch)
        b.step_batch(batch)
        assert np.array_equal(m_a.params.flatten(), m_b.params.flatten())
        assert a.kalman.checksum() == b.kalman.checksum()
