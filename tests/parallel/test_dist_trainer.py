"""Distributed FEKF: serial equivalence, replica consistency, accounting."""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig
from repro.parallel import DistributedFEKF


def _kcfg():
    return KalmanConfig(blocksize=1024, fused_update=True)


class TestSerialEquivalence:
    @pytest.mark.parametrize("world", [2, 3])
    def test_matches_serial_fekf(self, cu_dataset, small_cfg, world):
        m_serial = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m_dist = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        serial = FEKF(m_serial, _kcfg(), fused_env=True, seed=7)
        dist = DistributedFEKF(
            m_dist, world_size=world, kalman_cfg=_kcfg(), seed=7
        )
        batch_s = make_batch(cu_dataset, np.arange(6), small_cfg)
        batch_d = make_batch(cu_dataset, np.arange(6), small_cfg)
        for _ in range(2):
            serial.step_batch(batch_s)
            dist.step_batch(batch_d)
        assert np.allclose(
            m_serial.params.flatten(), m_dist.params.flatten(), atol=1e-10
        )

    def test_replica_verification_passes(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(
            model, world_size=2, kalman_cfg=_kcfg(), verify_replicas=True, seed=0
        )
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)  # raises if any replica diverges
        assert dist.kalman.updates == 5


class TestSharding:
    def test_batch_smaller_than_world_rejected(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=4, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(2), small_cfg)
        with pytest.raises(ValueError):
            dist.step_batch(batch)

    def test_uneven_shards_allowed(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=3, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(5), small_cfg)
        stats = dist.step_batch(batch)
        assert stats["force_abe"] > 0


class TestAccounting:
    def test_comm_volume_scales_with_updates(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=2, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)
        after_one = dist.comm.ledger.bytes_sent_per_rank
        dist.step_batch(batch)
        assert dist.comm.ledger.bytes_sent_per_rank == pytest.approx(2 * after_one)

    def test_timing_components_populated(self, cu_dataset, small_cfg):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=2, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)
        assert dist.timing.compute_s > 0
        assert dist.timing.comm_s > 0
        assert dist.timing.kalman_s > 0
        assert dist.timing.total_s == pytest.approx(
            dist.timing.compute_s + dist.timing.comm_s + dist.timing.kalman_s
        )

    def test_gradient_traffic_never_includes_p(self, cu_dataset, small_cfg):
        """Sec. 3.3: only gradients + ABE scalars move, never P."""
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        dist = DistributedFEKF(model, world_size=4, kalman_cfg=_kcfg())
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        dist.step_batch(batch)
        # upper bound: 5 gradient allreduces + 5 scalar allreduces
        from repro.parallel import allreduce_volume_bytes

        grad_vol = allreduce_volume_bytes(model.num_params, 4)
        p_vol = allreduce_volume_bytes(dist.kalman.p_memory_bytes() // 8, 4)
        total = dist.comm.ledger.bytes_sent_per_rank
        assert total < 5 * grad_vol + 1000
        assert total < p_vol  # far below what moving P would need
