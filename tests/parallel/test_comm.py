"""Simulated communicator: ring-allreduce correctness and accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    CostModel,
    SimCommunicator,
    allreduce_volume_bytes,
    broadcast_volume_bytes,
)


class TestRingAllreduce:
    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5, 8])
    def test_matches_direct_sum(self, world):
        rng = np.random.default_rng(world)
        bufs = [rng.normal(size=23) for _ in range(world)]
        comm = SimCommunicator(world)
        out = comm.ring_allreduce(bufs)
        ref = np.sum(bufs, axis=0)
        assert len(out) == world
        for o in out:
            assert np.allclose(o, ref, atol=1e-12)

    def test_replicas_bit_identical(self):
        rng = np.random.default_rng(0)
        bufs = [rng.normal(size=50) for _ in range(4)]
        out = SimCommunicator(4).ring_allreduce(bufs)
        for o in out[1:]:
            assert np.array_equal(out[0], o)

    def test_preserves_shape(self):
        bufs = [np.ones((3, 4)) for _ in range(3)]
        out = SimCommunicator(3).ring_allreduce(bufs)
        assert out[0].shape == (3, 4)
        assert np.allclose(out[0], 3.0)

    def test_buffer_count_validated(self):
        with pytest.raises(ValueError):
            SimCommunicator(3).ring_allreduce([np.ones(4)] * 2)

    def test_buffer_size_validated(self):
        with pytest.raises(ValueError):
            SimCommunicator(2).ring_allreduce([np.ones(4), np.ones(5)])

    def test_single_rank_is_copy(self):
        buf = np.arange(5.0)
        out = SimCommunicator(1).ring_allreduce([buf])
        assert np.array_equal(out[0], buf)
        assert out[0] is not buf

    @pytest.mark.parametrize("world", [2, 4, 7])
    def test_ledger_matches_closed_form(self, world):
        comm = SimCommunicator(world)
        comm.ring_allreduce([np.ones(100) for _ in range(world)])
        closed = allreduce_volume_bytes(100, world)
        assert comm.ledger.bytes_sent_per_rank == pytest.approx(closed, rel=1e-9)
        assert comm.ledger.steps == 2 * (world - 1)
        assert comm.ledger.calls == 1


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(1, 60), st.integers(0, 10**6))
def test_ring_allreduce_property(world, n, seed):
    rng = np.random.default_rng(seed)
    bufs = [rng.normal(size=n) for _ in range(world)]
    out = SimCommunicator(world).ring_allreduce(bufs)
    assert np.allclose(out[0], np.sum(bufs, axis=0), atol=1e-10)


class TestOtherCollectives:
    def test_scalar_allreduce(self):
        comm = SimCommunicator(4)
        assert comm.allreduce_scalar([1.0, 2.0, 3.0, 4.0]) == pytest.approx(10.0)
        assert comm.ledger.calls == 1

    def test_scalar_allreduce_validates(self):
        with pytest.raises(ValueError):
            SimCommunicator(3).allreduce_scalar([1.0])

    def test_broadcast_replicates(self):
        comm = SimCommunicator(3)
        out = comm.broadcast(np.arange(4.0))
        assert len(out) == 3
        assert all(np.array_equal(o, np.arange(4.0)) for o in out)
        out[0][0] = 99.0
        assert out[1][0] == 0.0  # independent copies

    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5, 8, 16])
    def test_broadcast_ledger_matches_closed_form(self, world):
        """A binomial-tree broadcast delivers the payload to each of the
        r-1 non-root ranks exactly once: (r-1)/r * nbytes per rank on
        average, over ceil(log2 r) steps."""
        n = 100
        comm = SimCommunicator(world)
        comm.broadcast(np.ones(n))
        closed = broadcast_volume_bytes(n, world)
        assert closed == pytest.approx((world - 1) / world * n * 8.0)
        assert comm.ledger.bytes_sent_per_rank == pytest.approx(closed, rel=1e-9)
        expected_steps = 0 if world == 1 else int(np.ceil(np.log2(world)))
        assert comm.ledger.steps == expected_steps
        assert comm.ledger.calls == 1


class TestCostModel:
    def test_alpha_beta_formula(self):
        cm = CostModel(latency_s=1e-5, bandwidth_Bps=1e9)
        assert cm.time(1e6, 10) == pytest.approx(10e-5 + 1e-3)

    def test_modeled_time_accumulates(self):
        comm = SimCommunicator(4, CostModel(latency_s=1e-6, bandwidth_Bps=1e9))
        before = comm.modeled_time_s
        comm.ring_allreduce([np.ones(1000) for _ in range(4)])
        assert comm.modeled_time_s > before

    def test_volume_zero_for_single_rank(self):
        assert allreduce_volume_bytes(1000, 1) == 0.0

    def test_volume_monotone_in_world_size(self):
        vols = [allreduce_volume_bytes(1000, r) for r in (2, 4, 8, 16)]
        assert vols == sorted(vols)
        # asymptotically approaches 2 * payload
        assert vols[-1] < 2 * 8000
