"""Pin the FEKF update to a hand-computed Algorithm 1 trace.

Every line of the paper's Algorithm 1 is evaluated by hand for a 2-weight
single-block filter and compared against both kernel backends.
"""

import numpy as np
import pytest

from repro.optim import KalmanConfig, KalmanState
from repro.optim.ekf import _signs


def _unguarded(fused):
    return KalmanState(
        2,
        [(0, 2)],
        KalmanConfig(
            blocksize=4, fused_update=fused,
            p_trace_cap=np.inf, max_step_norm=np.inf,
        ),
    )


@pytest.mark.parametrize("fused", [False, True], ids=["naive", "fused"])
class TestAlgorithm1:
    G = np.array([0.6, -0.8])
    ABE = 0.5
    LAM0, NU = 0.98, 0.9987

    def _hand(self):
        """Lines 8-13 of Algorithm 1 with P=I."""
        g, lam = self.G, self.LAM0
        a = 1.0 / (lam + g @ g)  # line 8
        k = a * g  # line 9
        p = (np.eye(2) - a * np.outer(g, g)) / lam  # line 10
        p = (p + p.T) / 2  # line 11
        lam_next = lam * self.NU + 1 - self.NU  # line 12
        dw = np.sqrt(4) * self.ABE * k  # line 13 (bs=4)
        return dw, p, lam_next

    def test_first_update_matches_hand_trace(self, fused):
        dw_hand, p_hand, lam_hand = self._hand()
        state = _unguarded(fused)
        dw = state.update(self.G, self.ABE, np.sqrt(4))
        assert np.allclose(dw, dw_hand, atol=1e-14)
        assert np.allclose(state.p_dense(0), p_hand, atol=1e-14)
        assert state.lam == pytest.approx(lam_hand)

    def test_second_update_uses_updated_p(self, fused):
        _, p1, lam1 = self._hand()
        state = _unguarded(fused)
        state.update(self.G, self.ABE, 2.0)
        g2 = np.array([1.0, 0.5])
        pg = p1 @ g2
        a2 = 1.0 / (lam1 + g2 @ pg)
        dw2_hand = 2.0 * self.ABE * a2 * pg
        dw2 = state.update(g2, self.ABE, 2.0)
        assert np.allclose(dw2, dw2_hand, atol=1e-13)


class TestSignAlignment:
    def test_lines_3_to_5(self):
        """'if Y_hat >= Y then Y_hat = -Y_hat': errors err = Y - Y_hat."""
        y_hat = np.array([1.0, 3.0, 2.0])
        y = np.array([2.0, 1.0, 2.0])
        signs = _signs(y - y_hat)
        # pred below label -> keep (+); pred at/above label -> flip (-)
        assert np.array_equal(signs, [1.0, -1.0, -1.0])
