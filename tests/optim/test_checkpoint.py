"""Model+optimizer checkpointing for cross-session online learning."""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig, load_state, save_state


def _opt(model, fused=True):
    return FEKF(
        model, KalmanConfig(blocksize=1024, fused_update=fused), fused_env=True, seed=9
    )


class TestCheckpoint:
    def test_model_only_roundtrip(self, cu_model, cu_batch, cu_dataset, small_cfg, tmp_path):
        path = str(tmp_path / "m.npz")
        save_state(path, cu_model)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=77)
        load_state(path, other)
        assert np.allclose(
            other.predict_energy(cu_batch), cu_model.predict_energy(cu_batch)
        )

    def test_loading_optimizer_from_model_only_file_raises(
        self, cu_model, cu_dataset, small_cfg, tmp_path
    ):
        path = str(tmp_path / "m.npz")
        save_state(path, cu_model)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=3)
        with pytest.raises(KeyError):
            load_state(path, other, _opt(other))

    @pytest.mark.parametrize("fused", [True, False])
    def test_resume_continues_identical_trajectory(
        self, cu_dataset, small_cfg, tmp_path, fused
    ):
        """Resuming from a checkpoint continues the exact trajectory."""
        batch = make_batch(cu_dataset, np.arange(3), small_cfg)

        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = _opt(m1, fused)
        for _ in range(2):
            o1.step_batch(batch)
        path = str(tmp_path / "ck.npz")
        save_state(path, m1, o1)

        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=55)
        o2 = _opt(m2, fused)
        load_state(path, m2, o2)
        # the force-group shuffling rng must be re-synced for bitwise
        # continuation; re-seed both to the same stream state
        o2._rng = np.random.default_rng(123)
        o1._rng = np.random.default_rng(123)
        for _ in range(2):
            o1.step_batch(batch)
            o2.step_batch(batch)
        assert np.allclose(m1.params.flatten(), m2.params.flatten(), atol=1e-12)
        assert o1.kalman.checksum() == pytest.approx(o2.kalman.checksum(), rel=1e-12)

    def test_layout_mismatch_rejected(self, cu_dataset, small_cfg, tmp_path):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = _opt(model, fused=True)
        path = str(tmp_path / "ck.npz")
        save_state(path, model, opt)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        with pytest.raises(ValueError):
            load_state(path, other, _opt(other, fused=False))

    def test_lambda_and_update_count_restored(self, cu_dataset, small_cfg, cu_batch, tmp_path):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = _opt(model)
        for _ in range(3):
            opt.step_batch(cu_batch)
        path = str(tmp_path / "ck.npz")
        save_state(path, model, opt)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=2)
        o2 = _opt(m2)
        load_state(path, m2, o2)
        assert o2.kalman.lam == pytest.approx(opt.kalman.lam)
        assert o2.kalman.updates == opt.kalman.updates


class TestLegacyLayout:
    """Files written before the ``Optimizer`` protocol existed carry only
    the original key set; they must stay loadable verbatim."""

    LEGACY_KEYS = (
        "kalman/lam", "kalman/updates", "kalman/p_scales", "kalman/fused",
    )

    def _write_legacy(self, path, model, opt):
        """Re-write a checkpoint keeping only the pre-protocol keys
        (no kalman/step_count, no kalman/rng)."""
        payload = {f"model/{k}": v for k, v in model.state_dict().items()}
        state = opt.state_dict()
        for key in self.LEGACY_KEYS:
            payload[key] = state[key]
        for key in state:
            if key.startswith("kalman/p") and key[8:].isdigit():
                payload[key] = state[key]
        np.savez_compressed(path, **payload)
        return state

    def test_pre_protocol_file_roundtrips(self, cu_dataset, small_cfg, cu_batch, tmp_path):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = _opt(model)
        for _ in range(2):
            opt.step_batch(cu_batch)
        path = str(tmp_path / "legacy.npz")
        old_state = self._write_legacy(path, model, opt)

        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=42)
        o2 = _opt(m2)
        step_count_before = o2.step_count
        load_state(path, m2, o2)
        assert np.allclose(m2.params.flatten(), model.params.flatten())
        assert o2.kalman.lam == pytest.approx(opt.kalman.lam)
        assert o2.kalman.updates == opt.kalman.updates
        for i, p in enumerate(o2.kalman.p_mats):
            assert np.array_equal(p, old_state[f"kalman/p{i}"])
        # the optional keys were absent: their state is simply untouched
        assert o2.step_count == step_count_before

    def test_missing_optional_keys_do_not_raise(self, cu_dataset, small_cfg, tmp_path):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = _opt(model)
        path = str(tmp_path / "legacy.npz")
        self._write_legacy(path, model, opt)
        with np.load(path) as z:
            assert "kalman/step_count" not in z.files
            assert "kalman/rng" not in z.files
        load_state(path, model, opt)

    def test_model_prefixed_optimizer_key_rejected(self, cu_model, tmp_path):
        """An optimizer whose state keys spill into the model/ namespace
        would silently corrupt the weight payload; save must refuse."""

        class EvilOpt:
            def state_dict(self):
                return {"model/fit_out_b": np.zeros(1)}

        with pytest.raises(ValueError, match="collide"):
            save_state(str(tmp_path / "x.npz"), cu_model, EvilOpt())
