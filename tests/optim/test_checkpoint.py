"""Model+optimizer checkpointing for cross-session online learning."""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig, load_checkpoint, save_checkpoint


def _opt(model, fused=True):
    return FEKF(
        model, KalmanConfig(blocksize=1024, fused_update=fused), fused_env=True, seed=9
    )


class TestCheckpoint:
    def test_model_only_roundtrip(self, cu_model, cu_batch, cu_dataset, small_cfg, tmp_path):
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, cu_model)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=77)
        load_checkpoint(path, other)
        assert np.allclose(
            other.predict_energy(cu_batch), cu_model.predict_energy(cu_batch)
        )

    def test_loading_optimizer_from_model_only_file_raises(
        self, cu_model, cu_dataset, small_cfg, tmp_path
    ):
        path = str(tmp_path / "m.npz")
        save_checkpoint(path, cu_model)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=3)
        with pytest.raises(KeyError):
            load_checkpoint(path, other, _opt(other))

    @pytest.mark.parametrize("fused", [True, False])
    def test_resume_continues_identical_trajectory(
        self, cu_dataset, small_cfg, tmp_path, fused
    ):
        """Resuming from a checkpoint continues the exact trajectory."""
        batch = make_batch(cu_dataset, np.arange(3), small_cfg)

        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = _opt(m1, fused)
        for _ in range(2):
            o1.step_batch(batch)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, m1, o1)

        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=55)
        o2 = _opt(m2, fused)
        load_checkpoint(path, m2, o2)
        # the force-group shuffling rng must be re-synced for bitwise
        # continuation; re-seed both to the same stream state
        o2._rng = np.random.default_rng(123)
        o1._rng = np.random.default_rng(123)
        for _ in range(2):
            o1.step_batch(batch)
            o2.step_batch(batch)
        assert np.allclose(m1.params.flatten(), m2.params.flatten(), atol=1e-12)
        assert o1.kalman.checksum() == pytest.approx(o2.kalman.checksum(), rel=1e-12)

    def test_layout_mismatch_rejected(self, cu_dataset, small_cfg, tmp_path):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = _opt(model, fused=True)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, model, opt)
        other = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        with pytest.raises(ValueError):
            load_checkpoint(path, other, _opt(other, fused=False))

    def test_lambda_and_update_count_restored(self, cu_dataset, small_cfg, cu_batch, tmp_path):
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        opt = _opt(model)
        for _ in range(3):
            opt.step_batch(cu_batch)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, model, opt)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=2)
        o2 = _opt(m2)
        load_checkpoint(path, m2, o2)
        assert o2.kalman.lam == pytest.approx(opt.kalman.lam)
        assert o2.kalman.updates == opt.kalman.updates
