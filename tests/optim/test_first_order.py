"""Adam/SGD: schedule, prefactors, descent behaviour."""

import numpy as np
import pytest

from repro.model import make_batch
from repro.optim import Adam, SGD, ExponentialDecay, LossConfig


class TestSchedule:
    def test_staircase_decay(self):
        sch = ExponentialDecay(lr0=1e-3, rate=0.5, steps=10)
        assert sch.lr(0) == 1e-3
        assert sch.lr(9) == 1e-3
        assert sch.lr(10) == pytest.approx(5e-4)
        assert sch.lr(25) == pytest.approx(2.5e-4)

    def test_prefactors_endpoints(self):
        lc = LossConfig()
        pe0, pf0 = lc.prefactors(1.0)
        assert (pe0, pf0) == (0.02, 1000.0)
        pe1, pf1 = lc.prefactors(0.0)
        assert (pe1, pf1) == (1.0, 1.0)

    def test_prefactors_interpolate(self):
        pe, pf = LossConfig().prefactors(0.5)
        assert pe == pytest.approx(0.51)
        assert pf == pytest.approx(500.5)

    def test_prefactors_clamped(self):
        pe, _ = LossConfig().prefactors(2.0)
        assert pe == 0.02


class TestLossAndGrads:
    def test_loss_components(self, cu_model, cu_batch):
        adam = Adam(cu_model)
        loss, grads, stats = adam.loss_and_grads(cu_batch)
        assert loss > 0
        assert set(grads) == set(cu_model.params.names())
        assert stats["force_rmse"] > 0

    def test_gradients_match_numeric(self, cu_model, cu_batch):
        adam = Adam(cu_model)
        _, grads, _ = adam.loss_and_grads(cu_batch)
        name, idx = "fit0_b", (3,)
        eps = 1e-6
        orig = cu_model.params[name].copy()
        w = orig.copy(); w[idx] += eps
        cu_model.params[name] = w
        lp = Adam(cu_model).loss_and_grads(cu_batch)[0]
        w = orig.copy(); w[idx] -= eps
        cu_model.params[name] = w
        lm = Adam(cu_model).loss_and_grads(cu_batch)[0]
        cu_model.params[name] = orig
        assert grads[name][idx] == pytest.approx((lp - lm) / (2 * eps), rel=1e-4)


class TestSteps:
    def test_adam_decreases_loss_on_fixed_batch(self, cu_model, cu_batch):
        adam = Adam(cu_model)
        first = adam.step_batch(cu_batch)["loss"]
        for _ in range(25):
            last = adam.step_batch(cu_batch)["loss"]
        assert last < first

    def test_sgd_decreases_loss_on_fixed_batch(self, cu_model, cu_batch):
        sgd = SGD(cu_model, schedule=ExponentialDecay(lr0=1e-6), batch_scale_lr=False)
        first = sgd.step_batch(cu_batch)["loss"]
        for _ in range(25):
            last = sgd.step_batch(cu_batch)["loss"]
        assert last < first

    def test_sgd_momentum_accumulates(self, cu_model, cu_batch):
        sgd = SGD(cu_model, momentum=0.9, schedule=ExponentialDecay(lr0=1e-5))
        sgd.step_batch(cu_batch)
        v1 = {k: v.copy() for k, v in sgd._velocity.items()}
        sgd.step_batch(cu_batch)
        assert any(
            np.linalg.norm(sgd._velocity[k]) > np.linalg.norm(v1[k]) for k in v1
        )

    def test_batch_lr_scaling_applied(self, cu_model, cu_dataset, small_cfg):
        adam = Adam(cu_model, batch_scale_lr=True)
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        stats = adam.step_batch(batch)
        assert stats["lr"] == pytest.approx(1e-3 * 2.0)

    def test_batch_lr_scaling_disabled(self, cu_model, cu_dataset, small_cfg):
        adam = Adam(cu_model, batch_scale_lr=False)
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        assert adam.step_batch(batch)["lr"] == pytest.approx(1e-3)

    def test_step_count_advances_schedule(self, cu_model, cu_batch):
        adam = Adam(
            cu_model,
            schedule=ExponentialDecay(lr0=1e-3, rate=0.5, steps=2),
            batch_scale_lr=False,
        )
        lrs = [adam.step_batch(cu_batch)["lr"] for _ in range(4)]
        assert lrs[0] == lrs[1] == pytest.approx(1e-3)
        assert lrs[2] == lrs[3] == pytest.approx(5e-4)

    def test_adam_updates_all_parameters(self, cu_model, cu_batch):
        before = {n: cu_model.params[n].copy() for n in cu_model.params.names()}
        Adam(cu_model).step_batch(cu_batch)
        changed = [n for n in before if not np.array_equal(before[n], cu_model.params[n])]
        assert len(changed) == len(before)
