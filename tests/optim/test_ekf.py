"""EKF optimizers: protocol semantics, convergence, variants."""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig, NaiveEKF, RLEKF
from repro.optim.ekf import _signs


def _kcfg(**kw):
    return KalmanConfig(blocksize=1024, fused_update=True, **kw)


class TestSignTrick:
    def test_signs_follow_algorithm1(self):
        errs = np.array([0.5, -0.5, 0.0])
        assert np.array_equal(_signs(errs), [1.0, -1.0, -1.0])


class TestFEKFStep:
    def test_step_changes_weights(self, cu_model, cu_batch):
        opt = FEKF(cu_model, _kcfg())
        before = cu_model.params.flatten()
        opt.step_batch(cu_batch)
        assert not np.allclose(before, cu_model.params.flatten())

    def test_update_count_per_step(self, cu_model, cu_batch):
        opt = FEKF(cu_model, _kcfg(), n_force_splits=4)
        opt.step_batch(cu_batch)
        assert opt.kalman.updates == 5  # 1 energy + 4 force

    def test_custom_force_splits(self, cu_model, cu_batch):
        opt = FEKF(cu_model, _kcfg(), n_force_splits=2)
        opt.step_batch(cu_batch)
        assert opt.kalman.updates == 3

    def test_force_groups_partition_atoms(self, cu_model):
        opt = FEKF(cu_model, _kcfg(), n_force_splits=4)
        groups = opt._force_groups(32)
        joined = np.concatenate(groups)
        assert sorted(joined.tolist()) == list(range(32))

    def test_stats_returned(self, cu_model, cu_batch):
        stats = FEKF(cu_model, _kcfg()).step_batch(cu_batch)
        assert {"energy_abe", "force_abe", "lambda", "updates"} <= set(stats)
        assert stats["energy_abe"] > 0

    def test_deterministic_given_seed(self, cu_dataset, small_cfg, cu_batch):
        outs = []
        for _ in range(2):
            model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
            opt = FEKF(model, _kcfg(), seed=11)
            opt.step_batch(cu_batch)
            outs.append(model.params.flatten())
        assert np.array_equal(outs[0], outs[1])

    def test_fused_env_same_trajectory(self, cu_dataset, small_cfg, cu_batch):
        outs = []
        for fused in (False, True):
            model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
            opt = FEKF(model, _kcfg(), fused_env=fused, seed=3)
            for _ in range(2):
                opt.step_batch(cu_batch)
            outs.append(model.params.flatten())
        assert np.allclose(outs[0], outs[1], atol=1e-9)

    def test_step_scale_overrides_sqrt_bs(self, cu_dataset, small_cfg, cu_batch):
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        base = m1.params.flatten()
        # tiny scale so the trust-region clip stays inactive for both
        FEKF(m1, _kcfg(), step_scale=1e-4, seed=3).step_batch(cu_batch)
        FEKF(m2, _kcfg(), step_scale=2e-4, seed=3).step_batch(cu_batch)
        d1 = np.linalg.norm(m1.params.flatten() - base)
        d2 = np.linalg.norm(m2.params.flatten() - base)
        assert d2 > d1 * 1.3

    def test_overfits_single_batch(self, cu_dataset, small_cfg):
        """The paper's core claim at miniature scale: FEKF fits energies
        and forces in a handful of updates."""
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        batch = make_batch(cu_dataset, np.arange(4), small_cfg)
        opt = FEKF(model, _kcfg(), fused_env=True)

        def rmse():
            out = model.predict(batch, fused_env=True)
            e = np.sqrt(np.mean(((out.energy - batch.energies) / batch.n_atoms) ** 2))
            f = np.sqrt(np.mean((out.forces - batch.forces) ** 2))
            return e, f

        e0, f0 = rmse()
        for _ in range(40):
            opt.step_batch(batch)
        e1, f1 = rmse()
        # energy starts near-fit thanks to the bias init; forces must halve
        assert e1 < e0
        assert f1 < f0 * 0.5


class TestRLEKF:
    def test_rejects_multi_sample_batches(self, cu_model, cu_batch):
        with pytest.raises(ValueError):
            RLEKF(cu_model, _kcfg()).step_batch(cu_batch)

    def test_accepts_single_sample(self, cu_model, cu_dataset, small_cfg):
        batch = make_batch(cu_dataset, np.array([0]), small_cfg)
        stats = RLEKF(cu_model, _kcfg()).step_batch(batch)
        assert stats["updates"] == 5


class TestNaiveEKF:
    def test_p_replicas_grow_with_batch(self, cu_model, cu_batch):
        opt = NaiveEKF(cu_model, _kcfg())
        single = opt.kalman.p_memory_bytes()
        opt.step_batch(cu_batch)
        assert opt.p_memory_bytes() == cu_batch.batch_size * single

    def test_replicas_diverge(self, cu_model, cu_batch):
        opt = NaiveEKF(cu_model, _kcfg())
        opt.step_batch(cu_batch)
        sums = {round(r.checksum(), 12) for r in opt._replicas}
        assert len(sums) > 1  # per-sample P matrices drift apart

    def test_update_counts(self, cu_model, cu_batch):
        opt = NaiveEKF(cu_model, _kcfg(), n_force_splits=2)
        opt.step_batch(cu_batch)
        # every replica did 1 energy + 2 force updates
        assert all(r.updates == 3 for r in opt._replicas)

    def test_step_changes_weights(self, cu_model, cu_batch):
        opt = NaiveEKF(cu_model, _kcfg())
        before = cu_model.params.flatten()
        opt.step_batch(cu_batch)
        assert not np.allclose(before, cu_model.params.flatten())

    def test_matches_fekf_at_batch_size_one(self, cu_dataset, small_cfg):
        """Fusiform and funnel coincide when there is nothing to aggregate."""
        batch = make_batch(cu_dataset, np.array([2]), small_cfg)
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        # fresh force forwards on both sides (Naive-EKF always refreshes)
        FEKF(m1, _kcfg(), reuse_force_graph=False, seed=4).step_batch(batch)
        NaiveEKF(m2, _kcfg(), seed=4).step_batch(batch)
        assert np.allclose(m1.params.flatten(), m2.params.flatten(), atol=1e-12)


class TestForceGraphReuse:
    def test_reuse_and_fresh_similar_but_not_identical(self, cu_dataset, small_cfg, cu_batch):
        results = []
        for reuse in (True, False):
            model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
            opt = FEKF(model, _kcfg(), reuse_force_graph=reuse, seed=5)
            for _ in range(2):
                opt.step_batch(cu_batch)
            results.append(model.params.flatten())
        diff = np.linalg.norm(results[0] - results[1])
        norm = np.linalg.norm(results[1])
        assert diff > 0  # stale vs fresh H do differ...
        assert diff < 0.15 * norm  # ...but only slightly
