"""Block splitting: tiling invariants and the paper's shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim import Block, block_shapes, p_memory_bytes, split_blocks, validate_blocks
from repro.perf.memory import paper_layer_sizes


class TestSplitting:
    def test_gather_small_layers(self):
        blocks = split_blocks([(0, 10), (1, 20), (2, 30)], blocksize=100)
        assert block_shapes(blocks) == [60]

    def test_gather_until_would_exceed(self):
        blocks = split_blocks([(0, 40), (1, 40), (2, 40)], blocksize=100)
        assert block_shapes(blocks) == [80, 40]

    def test_split_oversized_layer(self):
        blocks = split_blocks([(0, 250)], blocksize=100)
        assert block_shapes(blocks) == [100, 100, 50]

    def test_mixed_gather_and_split(self):
        blocks = split_blocks([(0, 30), (1, 250), (2, 20), (3, 20)], blocksize=100)
        assert block_shapes(blocks) == [30, 100, 100, 50, 40]

    def test_exact_fit(self):
        blocks = split_blocks([(0, 50), (1, 50)], blocksize=100)
        assert block_shapes(blocks) == [100]

    def test_blocksize_one(self):
        blocks = split_blocks([(0, 3)], blocksize=1)
        assert block_shapes(blocks) == [1, 1, 1]

    def test_invalid_blocksize(self):
        with pytest.raises(ValueError):
            split_blocks([(0, 4)], 0)

    def test_paper_network_shapes(self):
        """The Sec. 5.3 block structure at blocksize 10240."""
        blocks = split_blocks(paper_layer_sizes(), 10240)
        shapes = block_shapes(blocks)
        assert shapes[0] == 1350  # gathered embedding
        assert shapes[1] == 10240  # first chunk of the big fitting layer
        assert len(shapes) == 4
        assert sum(shapes) == 26551


class TestValidation:
    def test_validate_accepts_tiling(self):
        blocks = split_blocks([(0, 30), (1, 70)], 50)
        validate_blocks(blocks, 100)

    def test_validate_rejects_gap(self):
        with pytest.raises(AssertionError):
            validate_blocks([Block(0, 10), Block(20, 30)], 30)

    def test_validate_rejects_short_cover(self):
        with pytest.raises(AssertionError):
            validate_blocks([Block(0, 10)], 20)

    def test_p_memory(self):
        blocks = [Block(0, 10), Block(10, 30)]
        assert p_memory_bytes(blocks) == (100 + 400) * 8


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(1, 500), min_size=1, max_size=12),
    st.integers(1, 300),
)
def test_split_properties(sizes, blocksize):
    layers = list(enumerate(sizes))
    blocks = split_blocks(layers, blocksize)
    total = sum(sizes)
    validate_blocks(blocks, total)  # exact tiling, ordered, non-empty
    assert all(b.size <= max(blocksize, 1) for b in blocks)
