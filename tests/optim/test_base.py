"""The unified optimizer surface: protocol, factory parity, state_dict."""

import numpy as np
import pytest

from repro.model import DeePMD
from repro.optim import (
    FEKF,
    Adam,
    KalmanConfig,
    Optimizer,
    OPTIMIZER_NAMES,
    RLEKF,
    make_optimizer,
)
from repro.optim.first_order import ExponentialDecay


def _trajectory(model, opt, batch, steps=3):
    for _ in range(steps):
        opt.step_batch(batch)
    return model.params.flatten()


class TestFactoryParity:
    """make_optimizer must build the exact optimizer direct construction does."""

    def test_fekf(self, cu_dataset, small_cfg, cu_batch):
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = FEKF(m1, KalmanConfig(blocksize=1024, fused_update=True),
                  fused_env=True, seed=7)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o2 = make_optimizer("fekf", m2, blocksize=1024, fused_update=True,
                            fused_env=True, seed=7)
        assert np.array_equal(
            _trajectory(m1, o1, cu_batch), _trajectory(m2, o2, cu_batch)
        )

    def test_rlekf(self, cu_dataset, small_cfg):
        from repro.model import make_batch

        batch = make_batch(cu_dataset, np.arange(1), small_cfg)  # RLEKF is bs=1
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = RLEKF(m1, KalmanConfig(blocksize=1024, fused_update=True), seed=3)
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o2 = make_optimizer("rlekf", m2, blocksize=1024, fused_update=True,
                            seed=3)
        assert np.array_equal(
            _trajectory(m1, o1, batch, steps=2),
            _trajectory(m2, o2, batch, steps=2),
        )

    def test_adam(self, cu_dataset, small_cfg, cu_batch):
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = Adam(m1, schedule=ExponentialDecay(lr0=1e-3, rate=0.9, steps=50))
        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o2 = make_optimizer("adam", m2, lr0=1e-3, decay_rate=0.9,
                            decay_steps=50)
        assert np.array_equal(
            _trajectory(m1, o1, cu_batch), _trajectory(m2, o2, cu_batch)
        )

    def test_every_name_satisfies_protocol(self, cu_model):
        for name in OPTIMIZER_NAMES:
            kw = {"world_size": 2} if name == "distributed_fekf" else {}
            opt = make_optimizer(name, cu_model, **kw)
            assert isinstance(opt, Optimizer), name
            assert isinstance(opt.hyperparams, dict), name

    def test_aliases_and_case(self, cu_model):
        from repro.optim.ekf import NaiveEKF

        assert isinstance(make_optimizer("naive", cu_model), NaiveEKF)
        assert isinstance(make_optimizer("FEKF", cu_model), FEKF)


class TestFactoryErrors:
    def test_unknown_name(self, cu_model):
        with pytest.raises(KeyError, match="available"):
            make_optimizer("lbfgs", cu_model)

    def test_unknown_override(self, cu_model):
        with pytest.raises(TypeError, match="blocksz"):
            make_optimizer("fekf", cu_model, blocksz=2048)

    def test_cfg_and_flat_fields_conflict(self, cu_model):
        with pytest.raises(TypeError, match="not both"):
            make_optimizer("fekf", cu_model, kalman_cfg=KalmanConfig(),
                           blocksize=512)

    def test_distributed_requires_world_size(self, cu_model):
        with pytest.raises(TypeError, match="world_size"):
            make_optimizer("distributed_fekf", cu_model)


class TestStateDict:
    def test_fekf_save_load_resume_equivalence(self, cu_dataset, small_cfg, cu_batch):
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = make_optimizer("fekf", m1, blocksize=1024, fused_update=True,
                            seed=5)
        for _ in range(2):
            o1.step_batch(cu_batch)
        state = o1.state_dict()

        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=44)
        m2.load_state_dict(m1.state_dict())
        o2 = make_optimizer("fekf", m2, blocksize=1024, fused_update=True,
                            seed=5)
        o2.load_state_dict(state)
        # re-sync the force-group shuffle rng, as test_checkpoint does
        o1._rng = np.random.default_rng(123)
        o2._rng = np.random.default_rng(123)
        for _ in range(2):
            o1.step_batch(cu_batch)
            o2.step_batch(cu_batch)
        assert np.allclose(m1.params.flatten(), m2.params.flatten(), atol=1e-12)
        assert o1.kalman.lam == pytest.approx(o2.kalman.lam)

    def test_fekf_rejects_foreign_state(self, cu_model):
        opt = make_optimizer("fekf", cu_model)
        with pytest.raises(KeyError):
            opt.load_state_dict({"sgd/velocity/w": np.zeros(3)})

    def test_adam_roundtrip(self, cu_dataset, small_cfg, cu_batch):
        m1 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o1 = make_optimizer("adam", m1)
        for _ in range(2):
            o1.step_batch(cu_batch)
        state = o1.state_dict()

        m2 = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        o2 = make_optimizer("adam", m2)
        o2.load_state_dict(state)
        assert o2.step_count == o1.step_count
        o1.step_batch(cu_batch)
        o2.step_batch(cu_batch)  # moments restored => same lr + update scale
        assert o2.step_count == o1.step_count

    def test_hyperparams_reflect_overrides(self, cu_model):
        opt = make_optimizer("fekf", cu_model, blocksize=512, lambda0=0.99,
                             n_force_splits=2)
        hp = opt.hyperparams
        assert hp["blocksize"] == 512
        assert hp["lambda0"] == 0.99
        assert hp["n_force_splits"] == 2
        assert hp["name"] == "FEKF"
