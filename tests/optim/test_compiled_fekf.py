"""Compiled FEKF steps: bit-identity, plan invalidation, resume, fallbacks."""

import numpy as np
import pytest

from repro.autograd import capture
from repro.autograd.config import config as autograd_config
from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig, load_state, make_optimizer, save_state


def _kcfg():
    return KalmanConfig(blocksize=1024, fused_update=True)


def _opt(dataset, cfg, **kw):
    model = DeePMD.for_dataset(dataset, cfg, seed=1)
    kw.setdefault("fused_env", False)
    return model, FEKF(model, _kcfg(), seed=11, **kw)


def _run(opt, batches):
    return [float(opt.step_batch(b)["force_abe"]) for b in batches]


class TestBitIdentity:
    def test_compiled_matches_eager_bitwise(self, cu_dataset, small_cfg, cu_batch):
        batches = [cu_batch] * 5
        m_e, eager = _opt(cu_dataset, small_cfg, compiled=False)
        m_c, comp = _opt(cu_dataset, small_cfg, compiled=True)
        hist_e = _run(eager, batches)
        hist_c = _run(comp, batches)
        assert hist_e == hist_c  # float-exact loss history
        assert np.array_equal(m_e.params.flatten(), m_c.params.flatten())
        st = comp.stats()["compiled"]
        assert st["enabled"] and st["traces"] == 1 and st["compiles"] == 1
        assert st["replays"] > 0 and st["fallbacks"] == 0

    def test_fresh_graph_mode_matches(self, cu_dataset, small_cfg, cu_batch):
        batches = [cu_batch] * 4
        m_e, eager = _opt(cu_dataset, small_cfg, compiled=False,
                          reuse_force_graph=False)
        m_c, comp = _opt(cu_dataset, small_cfg, compiled=True,
                         reuse_force_graph=False)
        assert _run(eager, batches) == _run(comp, batches)
        assert np.array_equal(m_e.params.flatten(), m_c.params.flatten())


class TestInvalidation:
    def test_shape_change_recompiles_and_stays_bitwise(self, cu_dataset, small_cfg):
        big = make_batch(cu_dataset, np.arange(4), small_cfg)
        small = make_batch(cu_dataset, np.arange(2), small_cfg)
        batches = [big, big, small, big, small]
        m_e, eager = _opt(cu_dataset, small_cfg, compiled=False)
        m_c, comp = _opt(cu_dataset, small_cfg, compiled=True)
        assert _run(eager, batches) == _run(comp, batches)
        assert np.array_equal(m_e.params.flatten(), m_c.params.flatten())
        st = comp.stats()["compiled"]
        assert st["traces"] == 2 and st["compiles"] == 2  # one per signature
        assert len(st["plans"]) == 2
        assert st["fallbacks"] == 0  # divergence re-traces, never corrupts

    def test_resume_rebuilds_plans_lazily(self, cu_dataset, small_cfg, cu_batch,
                                          tmp_path):
        batches = [cu_batch] * 6
        m_ref, ref = _opt(cu_dataset, small_cfg, compiled=True)
        _run(ref, batches)

        m_a, a = _opt(cu_dataset, small_cfg, compiled=True)
        _run(a, batches[:3])
        path = str(tmp_path / "ckpt.npz")
        save_state(path, m_a, a)

        m_b, b = _opt(cu_dataset, small_cfg, compiled=True)
        load_state(path, m_b, b)
        assert b.stats()["compiled"]["compiles"] == 0  # plans rebuild lazily
        _run(b, batches[3:])
        assert np.array_equal(m_ref.params.flatten(), m_b.params.flatten())
        assert b.stats()["compiled"]["compiles"] == 1


class TestFallbacks:
    def test_observer_capture_falls_back_to_eager(self, cu_dataset, small_cfg,
                                                  cu_batch):
        batches = [cu_batch] * 3
        m_e, eager = _opt(cu_dataset, small_cfg, compiled=False)
        m_c, comp = _opt(cu_dataset, small_cfg, compiled=True)
        hist_e = _run(eager, batches[:2])
        hist_c = _run(comp, batches[:2])
        # a tensor-observing capture (sanitizer) must see real eager ops,
        # so the engine steps aside and counts the fallback
        with capture("sanitize", mode="collect"):
            hist_e.extend(_run(eager, batches[2:]))
            hist_c.extend(_run(comp, batches[2:]))
        assert hist_e == hist_c
        assert np.array_equal(m_e.params.flatten(), m_c.params.flatten())
        st = comp.stats()["compiled"]
        assert st["fallbacks"] > 0

    def test_fused_env_disables_engine(self, cu_dataset, small_cfg, cu_batch):
        _, opt = _opt(cu_dataset, small_cfg, compiled=True, fused_env=True)
        opt.step_batch(cu_batch)
        st = opt.stats()["compiled"]
        assert not st["enabled"]
        assert st["disabled_reason"] == "fused_env"
        assert st["replays"] == 0


class TestConfigPlumbing:
    def test_config_default_routes_to_worker(self, cu_model):
        prev = autograd_config.compiled
        try:
            autograd_config.compiled = True
            assert FEKF(cu_model, _kcfg()).compiled
            autograd_config.compiled = False
            assert not FEKF(cu_model, _kcfg()).compiled
        finally:
            autograd_config.compiled = prev

    def test_explicit_flag_beats_config(self, cu_model):
        prev = autograd_config.compiled
        try:
            autograd_config.compiled = True
            assert not FEKF(cu_model, _kcfg(), compiled=False).compiled
        finally:
            autograd_config.compiled = prev

    def test_make_optimizer_routes_compiled(self, cu_model):
        opt = make_optimizer("fekf", cu_model, compiled=True, fused_env=False)
        assert opt.compiled
        assert opt.hyperparams["compiled"]

    def test_stats_present_before_first_step(self, cu_model):
        opt = FEKF(cu_model, _kcfg(), compiled=True, fused_env=False)
        st = opt.stats()["compiled"]
        assert st["replays"] == 0 and st["fallbacks"] == 0
