"""Property-based tests of the Kalman core (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim import KalmanConfig, KalmanState

LAYERS = [(0, 8), (1, 20), (2, 7)]
N = 35


def _state(fused=False):
    return KalmanState(N, LAYERS, KalmanConfig(blocksize=16, fused_update=fused))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=8), st.booleans())
def test_p_remains_spd_under_any_update_sequence(seeds, fused):
    """P blocks stay symmetric positive definite for arbitrary gradients."""
    state = _state(fused)
    for seed in seeds:
        g = np.random.default_rng(seed).normal(size=N) * 2.0
        state.update(g, 0.3, 1.5)
    for i in range(len(state.blocks)):
        p = state.p_dense(i)
        assert np.allclose(p, p.T, atol=1e-9)
        assert np.linalg.eigvalsh(p).min() > 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=6))
def test_fused_and_naive_agree_on_any_sequence(seeds):
    a, b = _state(False), _state(True)
    for seed in seeds:
        g = np.random.default_rng(seed).normal(size=N)
        dwa = a.update(g, 0.2, 1.0)
        dwb = b.update(g, 0.2, 1.0)
        assert np.allclose(dwa, dwb, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(0.01, 10.0),
    st.floats(0.1, 4.0),
    st.integers(0, 2**31 - 1),
)
def test_increment_linear_in_error_and_scale(error, scale, seed):
    """dw = scale * error * K: linearity in both factors (pre-clip)."""
    g = np.random.default_rng(seed).normal(size=N) * 0.1
    s1 = KalmanState(N, LAYERS, KalmanConfig(blocksize=16, max_step_norm=np.inf))
    s2 = KalmanState(N, LAYERS, KalmanConfig(blocksize=16, max_step_norm=np.inf))
    dw1 = s1.update(g, error, scale)
    dw2 = s2.update(g, 2 * error, scale)
    assert np.allclose(dw2, 2 * dw1, rtol=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_trace_monotone_decrease_along_measured_direction(seed):
    """One update shrinks P along g (and inflates elsewhere by 1/lambda)."""
    state = KalmanState(
        N, LAYERS, KalmanConfig(blocksize=16, p_trace_cap=np.inf, max_step_norm=np.inf)
    )
    g = np.random.default_rng(seed).normal(size=N)
    g /= np.linalg.norm(g)
    before = [state.p_dense(i) for i in range(len(state.blocks))]
    state.update(g, 0.0, 1.0)
    lam = 0.98
    for i, blk in enumerate(state.blocks):
        gb = g[blk.slice()]
        if np.linalg.norm(gb) < 1e-8:
            continue
        gb = gb / np.linalg.norm(gb)
        quad_before = gb @ before[i] @ gb
        quad_after = gb @ state.p_dense(i) @ gb
        # along g the downdate beats the 1/lambda inflation
        assert quad_after < quad_before / lam + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 40), st.integers(1, 6))
def test_any_layer_structure_is_accepted(size_unit, n_layers):
    layers = [(i, size_unit + i) for i in range(n_layers)]
    total = sum(s for _, s in layers)
    state = KalmanState(total, layers, KalmanConfig(blocksize=max(size_unit, 8)))
    dw = state.update(np.ones(total) * 0.01, 0.1, 1.0)
    assert dw.shape == (total,)
    assert np.all(np.isfinite(dw))
