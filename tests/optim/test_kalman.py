"""Kalman core: kernel equivalence, algebraic invariants, guards."""

import numpy as np
import pytest

from repro.optim import KalmanConfig, KalmanState

LAYERS = [(0, 12), (1, 40), (2, 8)]
N = 60


def _state(**kw):
    cfg = KalmanConfig(blocksize=kw.pop("blocksize", 32), **kw)
    return KalmanState(N, LAYERS, cfg)


rng = np.random.default_rng(0)


class TestUpdateAlgebra:
    def test_gradient_shape_checked(self):
        with pytest.raises(ValueError):
            _state().update(np.zeros(N + 1), 0.1, 1.0)

    def test_update_moves_along_pg(self):
        state = _state(max_step_norm=np.inf)
        g = rng.normal(size=N)
        dw = state.update(g, 0.5, 1.0)
        # with P=I initially: dw_i = 0.5 * g_i / (lam + |g_i|^2) per block
        for i, blk in enumerate(state.blocks):
            gb = g[blk.slice()]
            expect = 0.5 * gb / (0.98 + gb @ gb)
            assert np.allclose(dw[blk.slice()], expect)

    def test_scale_multiplies_increment(self):
        g = rng.normal(size=N) * 0.1
        s1 = _state(max_step_norm=np.inf)
        s2 = _state(max_step_norm=np.inf)
        dw1 = s1.update(g, 0.2, 1.0)
        dw2 = s2.update(g, 0.2, 4.0)
        assert np.allclose(dw2, 4.0 * dw1)

    def test_zero_error_zero_increment_but_p_updates(self):
        state = _state()
        g = rng.normal(size=N)
        before = state.checksum()
        dw = state.update(g, 0.0, 1.0)
        assert np.allclose(dw, 0.0)
        assert state.checksum() != before

    def test_lambda_schedule(self):
        state = _state()
        lam0, nu = state.cfg.lambda0, state.cfg.nu
        state.update(np.zeros(N), 0.0, 1.0)
        assert state.lam == pytest.approx(lam0 * nu + 1 - nu)
        for _ in range(3000):
            state.advance_lambda()
        assert state.lam == pytest.approx(1.0, abs=1e-3)

    def test_p_stays_symmetric_naive(self):
        state = _state(max_step_norm=np.inf)
        for _ in range(10):
            state.update(rng.normal(size=N), 0.1, 1.0)
        for i in range(len(state.blocks)):
            p = state.p_dense(i)
            assert np.allclose(p, p.T)

    def test_p_stays_positive_definite(self):
        state = _state()
        for _ in range(30):
            state.update(rng.normal(size=N) * 0.5, 0.1, 1.0)
        for i in range(len(state.blocks)):
            eig = np.linalg.eigvalsh(state.p_dense(i))
            assert eig.min() > 0

    def test_update_counter(self):
        state = _state()
        for _ in range(4):
            state.update(np.zeros(N), 0.0, 1.0)
        assert state.updates == 4


class TestFusedEquivalence:
    @pytest.mark.parametrize("coupled", [False, True])
    def test_fused_matches_naive(self, coupled):
        sn = _state(fused_update=False, coupled_gain=coupled, max_step_norm=np.inf)
        sf = _state(fused_update=True, coupled_gain=coupled, max_step_norm=np.inf)
        for step in range(25):
            g = rng.normal(size=N) * 0.3
            dwn = sn.update(g, 0.1, 1.0)
            dwf = sf.update(g, 0.1, 1.0)
            assert np.allclose(dwn, dwf, atol=1e-11), step
        for i in range(len(sn.blocks)):
            assert np.allclose(sn.p_dense(i), sf.p_dense(i), atol=1e-10)

    def test_fused_with_guards_matches_naive(self):
        sn = _state(fused_update=False)
        sf = _state(fused_update=True)
        for _ in range(40):
            g = rng.normal(size=N) * 2.0  # large grads exercise the guards
            assert np.allclose(sn.update(g, 0.5, 2.0), sf.update(g, 0.5, 2.0), atol=1e-10)

    def test_coupled_vs_layerwise_differ(self):
        s1 = _state(coupled_gain=False, max_step_norm=np.inf)
        s2 = _state(coupled_gain=True, max_step_norm=np.inf)
        g = rng.normal(size=N)
        assert not np.allclose(s1.update(g, 0.5, 1.0), s2.update(g, 0.5, 1.0))


class TestGuards:
    def test_step_norm_clipped(self):
        state = _state(max_step_norm=0.05)
        dw = state.update(rng.normal(size=N) * 3.0, 10.0, 8.0)
        assert np.linalg.norm(dw) <= 0.05 + 1e-12

    def test_trace_cap_bounds_p_growth(self):
        state = _state(p_trace_cap=2.0)
        for _ in range(500):
            state.update(rng.normal(size=N) * 1e-3, 0.01, 1.0)
        for i, p in enumerate(state.p_mats):
            mean_diag = state.p_scales[i] * np.trace(p) / p.shape[0]
            assert mean_diag <= 2.0 + 1e-9

    def test_unguarded_p_grows(self):
        state = _state(p_trace_cap=np.inf, max_step_norm=np.inf)
        for _ in range(200):
            state.update(rng.normal(size=N) * 1e-4, 0.0, 1.0)
        mean_diag = np.trace(state.p_dense(0)) / state.blocks[0].size
        assert mean_diag > 10.0  # 1/lambda wind-up, the failure mode we guard


class TestLifecycle:
    def test_clone_independent(self):
        state = _state(fused_update=True)
        other = state.clone()
        state.update(rng.normal(size=N), 0.5, 1.0)
        assert other.checksum() != state.checksum()

    def test_checksum_stable_for_identical_sequences(self):
        a, b = _state(), _state()
        for _ in range(5):
            g = rng.normal(size=N)
            a.update(g, 0.1, 1.0)
            b.update(g, 0.1, 1.0)
        assert a.checksum() == b.checksum()

    def test_p_memory_bytes(self):
        state = _state(blocksize=32)
        expect = sum(b.size**2 * 8 for b in state.blocks)
        assert state.p_memory_bytes() == expect

    def test_for_batch_size_guidance(self):
        small = KalmanConfig.for_batch_size(32)
        large = KalmanConfig.for_batch_size(2048)
        assert (small.lambda0, small.nu) == (0.98, 0.9987)
        assert (large.lambda0, large.nu) == (0.90, 0.996)

    def test_for_batch_size_overrides(self):
        cfg = KalmanConfig.for_batch_size(8, blocksize=128, fused_update=True)
        assert cfg.blocksize == 128 and cfg.fused_update

    def test_blocks_must_cover_params(self):
        with pytest.raises(ValueError):
            KalmanState(N + 5, LAYERS, KalmanConfig(blocksize=32))
