"""EAM potential and trajectory-analysis tools."""

import numpy as np
import pytest

from repro.md import (
    Cell,
    LangevinIntegrator,
    SuttonChenEAM,
    SuttonChenParams,
    fcc,
    mean_squared_displacement,
    radial_distribution,
    rdf_similarity,
)

rng = np.random.default_rng(2)


class TestSuttonChenEAM:
    def _system(self):
        pos, cell, sp = fcc(3.615, (2, 2, 2))
        pos = pos + rng.normal(scale=0.06, size=pos.shape)
        return pos, cell

    def test_forces_match_numeric(self):
        pos, cell = self._system()
        eam = SuttonChenEAM(rcut=min(5.5, cell.max_cutoff() * 0.99))
        e, f = eam.energy_forces(pos, cell)
        eps = 1e-6
        for i in (0, 9, 20):
            for d in range(3):
                p = pos.copy(); p[i, d] += eps
                ep = eam.energy(p, cell)
                p = pos.copy(); p[i, d] -= eps
                em = eam.energy(p, cell)
                assert f[i, d] == pytest.approx(-(ep - em) / (2 * eps), abs=1e-5)

    def test_cohesive_energy_scale(self):
        pos, cell, _ = fcc(3.615, (3, 3, 3))
        eam = SuttonChenEAM(rcut=min(5.5, cell.max_cutoff() * 0.99))
        e = eam.energy(pos, cell)
        # Sutton-Chen Cu cohesive energy ~ -3.1 to -3.6 eV/atom at this cutoff
        assert -4.0 < e / len(pos) < -2.5

    def test_many_body_character(self):
        """Removing one atom changes the *force on a distant pair's bond*
        through the density -- impossible for a pure pair potential."""
        cell = Cell([40.0] * 3)
        trimer = np.array([[0.0, 0, 0], [2.6, 0, 0], [1.3, 2.2, 0.0]])
        dimer = trimer[:2]
        eam = SuttonChenEAM(rcut=8.0)
        _, f3 = eam.energy_forces(trimer, cell)
        _, f2 = eam.energy_forces(dimer, cell)
        # the 0-1 bond force differs because atom 2 altered rho_0, rho_1
        assert not np.allclose(f3[0] - (f3[0] @ np.array([0, 0, 1.0])), f2[0], atol=1e-6)

    def test_newton_third_law(self):
        pos, cell = self._system()
        _, f = SuttonChenEAM(rcut=3.5).energy_forces(pos, cell)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)

    def test_aluminium_parameters(self):
        pos, cell, _ = fcc(4.05, (2, 2, 2))
        eam = SuttonChenEAM(SuttonChenParams.aluminium(), rcut=cell.max_cutoff() * 0.99)
        e = eam.energy(pos, cell)
        assert np.isfinite(e) and e < 0

    def test_isolated_atom_zero(self):
        cell = Cell([50.0] * 3)
        eam = SuttonChenEAM(rcut=6.0)
        e, f = eam.energy_forces(np.array([[25.0, 25.0, 25.0]]), cell)
        assert e == pytest.approx(0.0, abs=1e-10)
        assert np.allclose(f, 0.0)


class TestRDF:
    def test_crystal_peaks_at_shells(self):
        a = 3.615
        pos, cell, _ = fcc(a, (3, 3, 3))
        r, g = radial_distribution(pos[None], cell, n_bins=120)
        first_shell = a / np.sqrt(2)
        peak_r = r[np.argmax(g)]
        assert peak_r == pytest.approx(first_shell, abs=0.1)

    def test_normalization_far_field(self):
        """A big random (ideal-gas-like) configuration has g ~ 1."""
        box = 20.0
        pts = np.random.default_rng(0).uniform(0, box, size=(400, 3))
        r, g = radial_distribution(pts[None], Cell([box] * 3), n_bins=40)
        # ignore the small-r bins (few counts)
        assert np.mean(g[r > 3.0]) == pytest.approx(1.0, abs=0.15)

    def test_similarity_bounds(self):
        g = np.random.default_rng(1).random(50)
        assert rdf_similarity(g, g) == pytest.approx(1.0)
        assert 0.0 <= rdf_similarity(g, np.zeros(50)) <= 1.0

    def test_multiframe_averaging(self):
        pos, cell, _ = fcc(3.615, (2, 2, 2))
        frames = np.stack([pos, pos])
        r1, g1 = radial_distribution(pos[None], cell)
        r2, g2 = radial_distribution(frames, cell)
        assert np.allclose(g1, g2)


class TestMSD:
    def test_static_frames_zero(self):
        pos = np.random.default_rng(0).uniform(0, 5, size=(3, 10, 3))
        pos[1] = pos[0]
        pos[2] = pos[0]
        msd = mean_squared_displacement(pos)
        assert np.allclose(msd, 0.0)

    def test_ballistic_motion(self):
        base = np.zeros((1, 4, 3))
        v = np.array([0.1, 0.0, 0.0])
        frames = np.concatenate([base + t * v for t in range(5)])
        msd = mean_squared_displacement(frames.reshape(5, 4, 3))
        assert np.allclose(msd, [0.0, 0.01, 0.04, 0.09, 0.16])

    def test_unwrapping_through_boundary(self):
        cell = Cell([5.0, 5.0, 5.0])
        frames = np.array([
            [[4.8, 0.0, 0.0]],
            [[0.1, 0.0, 0.0]],  # crossed the boundary: true step 0.3
        ])
        msd = mean_squared_displacement(frames, cell)
        assert msd[1] == pytest.approx(0.09, abs=1e-12)

    def test_diffusive_trajectory_increases(self):
        pos, cell, sp = fcc(3.615, (2, 2, 2))
        from repro.md import LennardJones

        lj = LennardJones(sp, {(0, 0): (0.409, 2.338)}, rcut=3.5)
        masses = np.full(len(pos), 63.5)
        integ = LangevinIntegrator(lj, masses, cell, timestep=2.0, temperature=1500.0,
                                   friction=0.05, rng=np.random.default_rng(5))
        st = integ.initialize(pos, temp=1500.0)
        frames = [st.positions.copy()]
        for _ in range(10):
            st = integ.run(st, 10)
            frames.append(st.positions.copy())
        msd = mean_squared_displacement(np.stack(frames), cell)
        assert msd[-1] > msd[1] > 0
