"""Lattice builders: atom counts, spacings, species, periodicity."""

import numpy as np
import pytest

from repro.md import Cell, bcc, diamond, fcc, fluorite, hcp, rocksalt, water_box
from repro.md.neighbor import pair_list_bruteforce


class TestCounts:
    def test_fcc_count(self):
        pos, cell, sp = fcc(3.6, (3, 3, 3))
        assert len(pos) == 108 and len(sp) == 108

    def test_bcc_count(self):
        pos, _, _ = bcc(3.0, (2, 2, 2))
        assert len(pos) == 16

    def test_hcp_count(self):
        pos, _, _ = hcp(3.2, 5.2, (3, 3, 1))
        assert len(pos) == 36

    def test_diamond_count(self):
        pos, _, _ = diamond(5.4, (2, 2, 2))
        assert len(pos) == 64

    def test_rocksalt_counts_and_species(self):
        pos, _, sp = rocksalt(5.6, (2, 2, 2))
        assert len(pos) == 64
        assert (sp == 0).sum() == 32 and (sp == 1).sum() == 32

    def test_fluorite_stoichiometry(self):
        pos, _, sp = fluorite(5.1, (2, 2, 2))
        assert len(pos) == 96
        assert (sp == 1).sum() == 2 * (sp == 0).sum()


class TestGeometry:
    def test_fcc_nearest_neighbor_distance(self):
        a = 3.6
        pos, cell, _ = fcc(a, (3, 3, 3))
        pl = pair_list_bruteforce(pos, cell, a)
        assert pl.r.min() == pytest.approx(a / np.sqrt(2.0))

    def test_fcc_coordination_12(self):
        a = 3.6
        pos, cell, _ = fcc(a, (3, 3, 3))
        pl = pair_list_bruteforce(pos, cell, a / np.sqrt(2) * 1.1)
        counts = np.bincount(np.concatenate([pl.i, pl.j]), minlength=len(pos))
        assert np.all(counts == 12)

    def test_diamond_coordination_4(self):
        a = 5.43
        pos, cell, _ = diamond(a, (2, 2, 2))
        pl = pair_list_bruteforce(pos, cell, a * np.sqrt(3) / 4 * 1.1)
        counts = np.bincount(np.concatenate([pl.i, pl.j]), minlength=len(pos))
        assert np.all(counts == 4)

    def test_rocksalt_nearest_is_unlike(self):
        pos, cell, sp = rocksalt(5.6, (2, 2, 2))
        pl = pair_list_bruteforce(pos, cell, 5.6 / 2 * 1.05)
        nearest = pl.r < pl.r.min() * 1.01
        assert np.all(sp[pl.i[nearest]] != sp[pl.j[nearest]])

    def test_positions_inside_cell(self):
        for builder in (lambda: fcc(3.6, (2, 2, 2)), lambda: hcp(3.2, 5.2, (2, 2, 1))):
            pos, cell, _ = builder()
            assert np.all(pos >= -1e-9)
            assert np.all(pos <= cell.lengths + 1e-9)

    def test_no_overlapping_atoms(self):
        for pos, cell, _ in (fcc(3.6, (2, 2, 2)), diamond(5.4, (1, 1, 1)),
                             rocksalt(5.6, (1, 1, 1)), fluorite(5.1, (1, 1, 1))):
            pl = pair_list_bruteforce(pos, cell, 1.0)
            assert len(pl) == 0 or pl.r.min() > 0.5


class TestWaterBox:
    def test_molecule_count_and_species(self):
        pos, cell, sp, mol = water_box(8, rng=np.random.default_rng(0))
        assert len(pos) == 24 and mol.shape == (8, 3)
        assert np.all(sp[mol[:, 0]] == 0)
        assert np.all(sp[mol[:, 1:]] == 1)

    def test_oh_bond_lengths(self):
        pos, cell, sp, mol = water_box(8, rng=np.random.default_rng(0))
        for h_col in (1, 2):
            d = cell.distance(pos[mol[:, h_col]], pos[mol[:, 0]])
            assert np.allclose(d, 0.9572, atol=1e-6)

    def test_hoh_angle(self):
        pos, cell, sp, mol = water_box(4, rng=np.random.default_rng(1))
        u = cell.minimum_image(pos[mol[:, 1]] - pos[mol[:, 0]])
        v = cell.minimum_image(pos[mol[:, 2]] - pos[mol[:, 0]])
        cosang = np.sum(u * v, axis=1) / (
            np.linalg.norm(u, axis=1) * np.linalg.norm(v, axis=1)
        )
        assert np.allclose(np.degrees(np.arccos(cosang)), 104.52, atol=0.1)

    def test_density_factor_shrinks_box(self):
        _, cell1, _, _ = water_box(8, density_factor=1.0)
        _, cell2, _, _ = water_box(8, density_factor=1.5)
        assert cell2.volume < cell1.volume
