"""Berendsen / velocity-rescale thermostats."""

import numpy as np
import pytest

from repro.md import (
    LennardJones,
    ThermostattedIntegrator,
    fcc,
    kinetic_target_ev,
    temperature,
)
from repro.md.cell import KB


def _system():
    pos, cell, sp = fcc(3.615, (2, 2, 2))
    pot = LennardJones(sp, {(0, 0): (0.409, 2.338)}, rcut=min(3.5, cell.max_cutoff() * 0.99))
    return pot, pos, cell, np.full(len(pos), 63.5)


class TestThermostats:
    @pytest.mark.parametrize("mode", ["berendsen", "rescale"])
    def test_equilibrates_to_target(self, mode):
        pot, pos, cell, masses = _system()
        integ = ThermostattedIntegrator(pot, masses, cell, timestep=2.0,
                                        temperature=500.0, mode=mode,
                                        rng=np.random.default_rng(0))
        st = integ.initialize(pos, temp=100.0)
        st = integ.run(st, 400)
        assert temperature(st.velocities, masses) == pytest.approx(500.0, rel=0.3)

    def test_unknown_mode_rejected(self):
        pot, pos, cell, masses = _system()
        with pytest.raises(ValueError):
            ThermostattedIntegrator(pot, masses, cell, mode="nose")

    def test_berendsen_gentler_than_rescale(self):
        """Berendsen changes kinetic energy gradually; rescale jumps."""
        deltas = {}
        for mode in ("berendsen", "rescale"):
            pot, pos, cell, masses = _system()
            integ = ThermostattedIntegrator(pot, masses, cell, timestep=2.0,
                                            temperature=900.0, mode=mode,
                                            tau_fs=400.0, rescale_every=5,
                                            rng=np.random.default_rng(1))
            st = integ.initialize(pos, temp=100.0)
            temps = []
            integ.run(st, 40, callback=lambda s: temps.append(
                temperature(s.velocities, masses)), callback_every=1)
            deltas[mode] = np.abs(np.diff(temps)).max()
        assert deltas["berendsen"] < deltas["rescale"]

    def test_kinetic_target(self):
        assert kinetic_target_ev(10, 300.0) == pytest.approx(1.5 * 10 * KB * 300.0)
