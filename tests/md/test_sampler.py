"""Trajectory sampler: frame counts, labels, temperature metadata."""

import numpy as np
import pytest

from repro.md import LennardJones, fcc, sample_trajectory


def _setup():
    pos, cell, sp = fcc(3.615, (2, 2, 2))
    pot = LennardJones(sp, {(0, 0): (0.409, 2.338)}, rcut=min(3.5, cell.max_cutoff() * 0.99))
    masses = np.full(len(pos), 63.5)
    return pot, pos, cell, sp, masses


class TestSampler:
    def test_frame_count(self):
        pot, pos, cell, sp, masses = _setup()
        traj = sample_trajectory(pot, pos, cell, sp, masses, [300, 500], 4,
                                 equilibration_steps=5, stride=2)
        assert len(traj) == 8

    def test_labels_match_potential(self):
        pot, pos, cell, sp, masses = _setup()
        traj = sample_trajectory(pot, pos, cell, sp, masses, [300], 3,
                                 equilibration_steps=5, stride=2)
        for frame in traj.frames:
            e, f = pot.energy_forces(frame.positions, cell)
            assert frame.energy == pytest.approx(e)
            assert np.allclose(frame.forces, f)

    def test_temperature_metadata_ordered(self):
        pot, pos, cell, sp, masses = _setup()
        traj = sample_trajectory(pot, pos, cell, sp, masses, [300, 800], 3,
                                 equilibration_steps=5, stride=2)
        temps = [f.temperature for f in traj.frames]
        assert temps == [300.0] * 3 + [800.0] * 3

    def test_frames_are_distinct(self):
        pot, pos, cell, sp, masses = _setup()
        traj = sample_trajectory(pot, pos, cell, sp, masses, [500], 4,
                                 equilibration_steps=5, stride=3)
        p = traj.positions_array()
        for a in range(len(p) - 1):
            assert not np.allclose(p[a], p[a + 1])

    def test_deterministic_given_seed(self):
        pot, pos, cell, sp, masses = _setup()
        t1 = sample_trajectory(pot, pos, cell, sp, masses, [400], 3, seed=4,
                               equilibration_steps=5, stride=2)
        t2 = sample_trajectory(pot, pos, cell, sp, masses, [400], 3, seed=4,
                               equilibration_steps=5, stride=2)
        assert np.array_equal(t1.positions_array(), t2.positions_array())

    def test_array_views(self):
        pot, pos, cell, sp, masses = _setup()
        traj = sample_trajectory(pot, pos, cell, sp, masses, [400], 3,
                                 equilibration_steps=3, stride=2)
        assert traj.positions_array().shape == (3, len(pos), 3)
        assert traj.energies_array().shape == (3,)
        assert traj.forces_array().shape == (3, len(pos), 3)

    def test_higher_temperature_more_disorder(self):
        pot, pos, cell, sp, masses = _setup()
        traj = sample_trajectory(pot, pos, cell, sp, masses, [100, 1200], 6,
                                 equilibration_steps=40, stride=3)
        e = traj.energies_array()
        assert e[6:].mean() > e[:6].mean()  # hotter -> higher potential energy
