"""Neighbor search: backend agreement, table semantics, shifts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.md import Cell, fcc, max_neighbor_count, neighbor_table, pair_list
from repro.md.neighbor import pair_list_bruteforce, pair_list_cells


def _random_config(n, box, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, box, size=(n, 3)), Cell([box] * 3)


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", range(5))
    def test_cells_match_bruteforce_random(self, seed):
        pos, cell = _random_config(60, 12.0, seed)
        rcut = 3.0
        a = pair_list_bruteforce(pos, cell, rcut)
        b = pair_list_cells(pos, cell, rcut)
        pa = set(zip(a.i.tolist(), a.j.tolist()))
        pb = set(zip(b.i.tolist(), b.j.tolist()))
        assert pa == pb
        # and identical geometry for each shared pair
        da = {(i, j): r for i, j, r in zip(a.i, a.j, a.r)}
        db = {(i, j): r for i, j, r in zip(b.i, b.j, b.r)}
        for k in da:
            assert da[k] == pytest.approx(db[k])

    def test_cells_fallback_small_box(self):
        pos, cell = _random_config(20, 5.0, 0)
        out = pair_list_cells(pos, cell, 2.5)  # fewer than 3 bins -> fallback
        ref = pair_list_bruteforce(pos, cell, 2.5)
        assert len(out) == len(ref)

    def test_dispatcher_picks_consistent_result(self):
        pos, cell = _random_config(300, 20.0, 1)
        out = pair_list(pos, cell, 3.0)
        ref = pair_list_bruteforce(pos, cell, 3.0)
        assert len(out) == len(ref)


@settings(max_examples=25, deadline=None)
@given(st.integers(8, 40), st.floats(2.0, 4.0), st.integers(0, 10**6))
def test_pair_list_properties(n, rcut, seed):
    pos, cell = _random_config(n, 10.0, seed)
    pl = pair_list_bruteforce(pos, cell, rcut)
    assert np.all(pl.i < pl.j)  # half list
    assert np.all(pl.r < rcut)
    assert np.allclose(np.linalg.norm(pl.rij, axis=1), pl.r)


class TestNeighborTable:
    def test_shift_reconstructs_displacement(self):
        pos, cell, _ = fcc(3.6, (2, 2, 2))
        table = neighbor_table(pos, cell, 3.0, 16)
        for a in range(len(pos)):
            for k in range(16):
                if not table.mask[a, k]:
                    continue
                rij = pos[table.idx[a, k]] + table.shift[a, k] - pos[a]
                assert np.linalg.norm(rij) < 3.0

    def test_padding_points_to_self(self):
        pos, cell, _ = fcc(3.6, (2, 2, 2))
        table = neighbor_table(pos, cell, 2.7, 30)
        pads = ~table.mask
        assert pads.any()
        idx_grid = np.tile(np.arange(len(pos))[:, None], (1, 30))
        assert np.all(table.idx[pads] == idx_grid[pads])
        assert np.allclose(table.shift[pads], 0.0)

    def test_neighbors_sorted_by_distance(self):
        pos, cell, _ = fcc(3.6, (2, 2, 2))
        pos = pos + np.random.default_rng(0).normal(scale=0.05, size=pos.shape)
        table = neighbor_table(pos, cell, 3.4, 20)
        for a in range(len(pos)):
            k = table.mask[a].sum()
            d = np.linalg.norm(
                pos[table.idx[a, :k]] + table.shift[a, :k] - pos[a], axis=1
            )
            assert np.all(np.diff(d) >= -1e-12)

    def test_truncates_to_nmax_keeping_closest(self):
        pos, cell, _ = fcc(3.6, (2, 2, 2))
        full = neighbor_table(pos, cell, 3.4, 30)
        k_real = int(full.mask[0].sum())
        small = neighbor_table(pos, cell, 3.4, k_real - 2)
        assert small.mask.all()
        # the kept neighbors are the nearest ones
        d_full = np.sort(
            np.linalg.norm(pos[full.idx[0, :k_real]] + full.shift[0, :k_real] - pos[0], axis=1)
        )
        d_small = np.sort(
            np.linalg.norm(
                pos[small.idx[0]] + small.shift[0] - pos[0], axis=1
            )
        )
        assert np.allclose(d_small, d_full[: k_real - 2])

    def test_symmetry_of_neighborhood(self):
        """If j is a (kept) neighbor of i with generous nmax, i is one of j."""
        pos, cell, _ = fcc(3.6, (2, 2, 2))
        table = neighbor_table(pos, cell, 3.0, 40)
        for a in range(len(pos)):
            for k in range(40):
                if table.mask[a, k]:
                    assert a in set(table.idx[table.idx[a, k]][table.mask[table.idx[a, k]]])

    def test_max_neighbor_count(self):
        pos, cell, _ = fcc(3.6, (3, 3, 3))
        assert max_neighbor_count(pos, cell, 3.6 / np.sqrt(2) * 1.05) == 12
