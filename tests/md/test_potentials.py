"""Potentials: analytic forces vs central differences, physical sanity."""

import numpy as np
import pytest

from repro.md import (
    Buckingham,
    Cell,
    Composite,
    FlexibleWater,
    LennardJones,
    Morse,
    StillingerWeber,
    SWParams,
    WolfCoulomb,
    diamond,
    fcc,
    rocksalt,
    water_box,
)

rng = np.random.default_rng(5)


def check_forces(pot, pos, cell, tol=1e-5, eps=1e-6):
    e, f = pot.energy_forces(pos, cell)
    for i in rng.choice(pos.shape[0], size=min(6, pos.shape[0]), replace=False):
        for d in range(3):
            p = pos.copy(); p[i, d] += eps
            ep = pot.energy(p, cell)
            p = pos.copy(); p[i, d] -= eps
            em = pot.energy(p, cell)
            num = -(ep - em) / (2 * eps)
            assert f[i, d] == pytest.approx(num, abs=tol), (i, d)
    return e, f


def _perturbed_fcc():
    pos, cell, sp = fcc(3.615, (2, 2, 2))
    return pos + rng.normal(scale=0.06, size=pos.shape), cell, sp


class TestLennardJones:
    def test_forces_match_numeric(self):
        pos, cell, sp = _perturbed_fcc()
        check_forces(LennardJones(sp, {(0, 0): (0.4, 2.3)}, rcut=3.5), pos, cell)

    def test_dimer_minimum_at_r0(self):
        sp = np.zeros(2, dtype=np.int64)
        eps_, sigma = 0.5, 2.0
        lj = LennardJones(sp, {(0, 0): (eps_, sigma)}, rcut=8.0)
        cell = Cell([30.0, 30.0, 30.0])
        r0 = 2 ** (1 / 6) * sigma
        _, f = lj.energy_forces(np.array([[0.0, 0, 0], [r0, 0, 0]]), cell)
        assert np.allclose(f, 0.0, atol=1e-10)

    def test_repulsive_inside_minimum(self):
        sp = np.zeros(2, dtype=np.int64)
        lj = LennardJones(sp, {(0, 0): (0.5, 2.0)}, rcut=8.0)
        cell = Cell([30.0] * 3)
        _, f = lj.energy_forces(np.array([[0.0, 0, 0], [1.8, 0, 0]]), cell)
        assert f[1, 0] > 0  # pushed apart

    def test_energy_continuous_at_cutoff(self):
        sp = np.zeros(2, dtype=np.int64)
        lj = LennardJones(sp, {(0, 0): (0.5, 2.0)}, rcut=5.0)
        cell = Cell([30.0] * 3)
        e_in = lj.energy(np.array([[0.0, 0, 0], [4.999, 0, 0]]), cell)
        e_out = lj.energy(np.array([[0.0, 0, 0], [5.001, 0, 0]]), cell)
        assert abs(e_in - e_out) < 1e-3

    def test_newton_third_law(self):
        pos, cell, sp = _perturbed_fcc()
        _, f = LennardJones(sp, {(0, 0): (0.4, 2.3)}, rcut=3.5).energy_forces(pos, cell)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)


class TestMorse:
    def test_forces_match_numeric(self):
        pos, cell, sp = _perturbed_fcc()
        check_forces(Morse(sp, {(0, 0): (0.35, 1.3, 2.85)}, rcut=3.5), pos, cell)

    def test_dimer_equilibrium(self):
        sp = np.zeros(2, dtype=np.int64)
        m = Morse(sp, {(0, 0): (0.4, 1.4, 3.0)}, rcut=9.0)
        cell = Cell([30.0] * 3)
        _, f = m.energy_forces(np.array([[0.0, 0, 0], [3.0, 0, 0]]), cell)
        assert np.allclose(f, 0.0, atol=1e-12)

    def test_well_depth(self):
        sp = np.zeros(2, dtype=np.int64)
        m = Morse(sp, {(0, 0): (0.4, 1.4, 3.0)}, rcut=12.0)
        cell = Cell([40.0] * 3)
        e_min = m.energy(np.array([[0.0, 0, 0], [3.0, 0, 0]]), cell)
        assert e_min == pytest.approx(-0.4, abs=1e-3)  # shifted cutoff ~ 0


class TestIonic:
    def _nacl(self):
        pos, cell, sp = rocksalt(5.64, (2, 2, 2))
        pos = pos + rng.normal(scale=0.05, size=pos.shape)
        q = np.where(sp == 0, 1.0, -1.0)
        buck = Buckingham(
            sp,
            {(0, 0): (424.0, 0.32, 1.05), (0, 1): (1256.0, 0.32, 7.0), (1, 1): (3488.0, 0.32, 73.0)},
            rcut=5.5,
        )
        return pos, cell, sp, q, buck

    def test_buckingham_forces(self):
        pos, cell, sp, q, buck = self._nacl()
        check_forces(buck, pos, cell)

    def test_wolf_forces(self):
        pos, cell, sp, q, _ = self._nacl()
        check_forces(WolfCoulomb(q, alpha=0.3, rcut=5.5), pos, cell)

    def test_composite_sums_parts(self):
        pos, cell, sp, q, buck = self._nacl()
        wolf = WolfCoulomb(q, alpha=0.3, rcut=5.5)
        comp = Composite([buck, wolf])
        e, f = comp.energy_forces(pos, cell)
        e1, f1 = buck.energy_forces(pos, cell)
        e2, f2 = wolf.energy_forces(pos, cell)
        assert e == pytest.approx(e1 + e2)
        assert np.allclose(f, f1 + f2)

    def test_wolf_opposite_charges_attract(self):
        q = np.array([1.0, -1.0])
        wolf = WolfCoulomb(q, alpha=0.2, rcut=8.0)
        cell = Cell([30.0] * 3)
        e, f = wolf.energy_forces(np.array([[0.0, 0, 0], [2.5, 0, 0]]), cell)
        assert e < 0 and f[1, 0] < 0

    def test_wolf_exclusions(self):
        q = np.array([1.0, -1.0])
        wolf = WolfCoulomb(q, alpha=0.2, rcut=8.0, exclude={(0, 1)})
        cell = Cell([30.0] * 3)
        e, f = wolf.energy_forces(np.array([[0.0, 0, 0], [2.5, 0, 0]]), cell)
        assert e == 0.0 and np.allclose(f, 0.0)


class TestStillingerWeber:
    def test_forces_match_numeric(self):
        pos, cell, _ = diamond(5.43, (2, 2, 2))
        pos = pos + rng.normal(scale=0.08, size=pos.shape)
        check_forces(StillingerWeber(), pos, cell, tol=1e-4)

    def test_diamond_is_near_equilibrium(self):
        pos, cell, _ = diamond(5.431, (2, 2, 2))
        _, f = StillingerWeber().energy_forces(pos, cell)
        assert np.abs(f).max() < 0.2

    def test_cohesive_energy_scale(self):
        pos, cell, _ = diamond(5.431, (2, 2, 2))
        e = StillingerWeber().energy(pos, cell)
        # SW cohesive energy ~ -4.34 eV/atom
        assert e / len(pos) == pytest.approx(-4.34, abs=0.15)

    def test_three_body_penalizes_bent_trimer(self):
        """Energy rises when a tetrahedral angle is distorted."""
        p = SWParams()
        cell = Cell([50.0] * 3)
        d = 2.35
        cos0 = p.cos_theta0

        def trimer(cos_angle):
            ang = np.arccos(cos_angle)
            return np.array(
                [[0.0, 0, 0], [d, 0, 0], [d * np.cos(ang), d * np.sin(ang), 0]]
            )

        sw = StillingerWeber(p)
        e_ideal = sw.energy(trimer(cos0), cell)
        e_bent = sw.energy(trimer(cos0 + 0.3), cell)
        assert e_bent > e_ideal

    def test_newton_third_law(self):
        pos, cell, _ = diamond(5.43, (1, 1, 1))
        pos = pos + rng.normal(scale=0.05, size=pos.shape)
        _, f = StillingerWeber().energy_forces(pos, cell)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-10)


class TestWater:
    def test_forces_match_numeric(self):
        pos, cell, sp, mol = water_box(8, rng=rng)
        pos = pos + rng.normal(scale=0.02, size=pos.shape)
        check_forces(FlexibleWater(sp, mol), pos, cell)

    def test_bond_restoring_force(self):
        pos, cell, sp, mol = water_box(1, rng=np.random.default_rng(0))
        w = FlexibleWater(sp, mol, rcut=3.0)
        o, h1, _ = mol[0]
        stretched = pos.copy()
        direction = cell.minimum_image(pos[h1] - pos[o])
        direction /= np.linalg.norm(direction)
        stretched[h1] += 0.3 * direction
        _, f = w.energy_forces(stretched, cell)
        assert f[h1] @ direction < 0  # pulled back toward O

    def test_energy_increases_with_distortion(self):
        pos, cell, sp, mol = water_box(4, rng=np.random.default_rng(1))
        w = FlexibleWater(sp, mol)
        e0 = w.energy(pos, cell)
        e1 = w.energy(pos + rng.normal(scale=0.1, size=pos.shape), cell)
        assert e1 > e0
