"""Periodic cell, minimum image, and kinetic conventions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.md import KB, KE_CONV, Cell, kinetic_energy, maxwell_boltzmann_velocities, temperature


class TestCell:
    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ValueError):
            Cell([1.0, 0.0, 1.0])

    def test_volume(self):
        assert Cell([2.0, 3.0, 4.0]).volume == pytest.approx(24.0)

    def test_wrap_into_box(self):
        cell = Cell([10.0, 10.0, 10.0])
        wrapped = cell.wrap(np.array([[11.0, -1.0, 5.0]]))
        assert np.allclose(wrapped, [[1.0, 9.0, 5.0]])

    def test_minimum_image_halves(self):
        cell = Cell([10.0, 10.0, 10.0])
        dr = cell.minimum_image(np.array([6.0, -6.0, 4.0]))
        assert np.allclose(dr, [-4.0, 4.0, 4.0])

    def test_distance_symmetric(self):
        cell = Cell([8.0, 8.0, 8.0])
        a = np.array([0.5, 0.5, 0.5])
        b = np.array([7.5, 7.5, 7.5])
        assert cell.distance(a, b) == pytest.approx(np.sqrt(3.0))

    def test_image_shift_reconstructs_minimum_image(self):
        cell = Cell([5.0, 6.0, 7.0])
        rng = np.random.default_rng(0)
        dr = rng.uniform(-15, 15, size=(20, 3))
        assert np.allclose(dr + cell.image_shifts(dr), cell.minimum_image(dr))

    def test_max_cutoff(self):
        assert Cell([6.0, 10.0, 8.0]).max_cutoff() == pytest.approx(3.0)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(np.float64, (4, 3), elements=st.floats(-50, 50, allow_nan=False)),
    st.floats(2.0, 20.0),
)
def test_minimum_image_within_half_box(dr, length):
    cell = Cell([length] * 3)
    mi = cell.minimum_image(dr)
    assert np.all(np.abs(mi) <= length / 2 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, (6, 3), elements=st.floats(-100, 100, allow_nan=False)))
def test_wrap_idempotent(pos):
    cell = Cell([7.0, 9.0, 11.0])
    once = cell.wrap(pos)
    assert np.allclose(cell.wrap(once), once)


class TestKinetics:
    def test_kinetic_energy_unit_convention(self):
        v = np.array([[1.0, 0.0, 0.0]])
        m = np.array([2.0])
        assert kinetic_energy(v, m) == pytest.approx(0.5 * 2.0 * KE_CONV)

    def test_temperature_zero_for_empty(self):
        assert temperature(np.zeros((0, 3)), np.zeros(0)) == 0.0

    def test_maxwell_boltzmann_statistics(self):
        rng = np.random.default_rng(1)
        m = np.full(2000, 40.0)
        v = maxwell_boltzmann_velocities(m, 300.0, rng)
        t = temperature(v, m)
        assert t == pytest.approx(300.0, rel=0.1)

    def test_maxwell_boltzmann_zero_momentum(self):
        rng = np.random.default_rng(2)
        m = np.array([1.0, 16.0, 12.0, 2.0])
        v = maxwell_boltzmann_velocities(m, 500.0, rng)
        assert np.allclose((m[:, None] * v).sum(axis=0), 0.0, atol=1e-12)

    def test_zero_temperature_velocities(self):
        rng = np.random.default_rng(3)
        v = maxwell_boltzmann_velocities(np.ones(5), 0.0, rng)
        assert np.allclose(v, 0.0)

    def test_equipartition_consistency(self):
        rng = np.random.default_rng(4)
        m = np.full(100, 28.0)
        v = maxwell_boltzmann_velocities(m, 700.0, rng)
        ke = kinetic_energy(v, m)
        assert temperature(v, m) == pytest.approx(2 * ke / (3 * 100 * KB))
