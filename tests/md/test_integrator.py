"""Integrator: NVE conservation, thermostat statistics, determinism."""

import numpy as np
import pytest

from repro.md import (
    Cell,
    LangevinIntegrator,
    LennardJones,
    fcc,
    kinetic_energy,
    temperature,
)


def _lj_system(reps=(2, 2, 2)):
    pos, cell, sp = fcc(3.615, reps)
    pot = LennardJones(sp, {(0, 0): (0.409, 2.338)}, rcut=min(3.5, cell.max_cutoff() * 0.99))
    masses = np.full(len(pos), 63.5)
    return pot, pos, cell, masses


class TestNVE:
    def test_energy_conservation(self):
        pot, pos, cell, masses = _lj_system()
        integ = LangevinIntegrator(pot, masses, cell, timestep=1.0, friction=0.0,
                                   rng=np.random.default_rng(0))
        st = integ.initialize(pos, temp=150.0)
        e0 = st.potential_energy + kinetic_energy(st.velocities, masses)
        st = integ.run(st, 300)
        e1 = st.potential_energy + kinetic_energy(st.velocities, masses)
        assert abs(e1 - e0) / abs(e0) < 1e-4

    def test_smaller_timestep_conserves_better(self):
        drifts = []
        for dt in (2.0, 0.5):
            pot, pos, cell, masses = _lj_system()
            integ = LangevinIntegrator(pot, masses, cell, timestep=dt, friction=0.0,
                                       rng=np.random.default_rng(0))
            st = integ.initialize(pos, temp=200.0)
            e0 = st.potential_energy + kinetic_energy(st.velocities, masses)
            st = integ.run(st, int(100 / dt))
            e1 = st.potential_energy + kinetic_energy(st.velocities, masses)
            drifts.append(abs(e1 - e0))
        assert drifts[1] < drifts[0]

    def test_step_counter(self):
        pot, pos, cell, masses = _lj_system()
        integ = LangevinIntegrator(pot, masses, cell, friction=0.0)
        st = integ.initialize(pos)
        st = integ.run(st, 7)
        assert st.step == 7


class TestThermostat:
    def test_equilibrates_to_target_temperature(self):
        pot, pos, cell, masses = _lj_system()
        integ = LangevinIntegrator(pot, masses, cell, timestep=2.0, temperature=400.0,
                                   friction=0.05, rng=np.random.default_rng(1))
        st = integ.initialize(pos, temp=100.0)
        temps = []
        def collect(s):
            temps.append(temperature(s.velocities, masses))
        integ.run(st, 500, callback=collect, callback_every=10)
        late = np.mean(temps[len(temps) // 2:])
        assert late == pytest.approx(400.0, rel=0.25)

    def test_heats_and_cools(self):
        for t_target, t_start in ((600.0, 100.0), (100.0, 600.0)):
            pot, pos, cell, masses = _lj_system()
            integ = LangevinIntegrator(pot, masses, cell, timestep=2.0,
                                       temperature=t_target, friction=0.05,
                                       rng=np.random.default_rng(2))
            st = integ.initialize(pos, temp=t_start)
            st = integ.run(st, 400)
            t_end = temperature(st.velocities, masses)
            assert abs(t_end - t_target) < abs(t_start - t_target)

    def test_positions_stay_wrapped(self):
        pot, pos, cell, masses = _lj_system()
        integ = LangevinIntegrator(pot, masses, cell, timestep=2.0, temperature=800.0,
                                   friction=0.02, rng=np.random.default_rng(3))
        st = integ.initialize(pos, temp=800.0)
        st = integ.run(st, 100)
        assert np.all(st.positions >= 0.0)
        assert np.all(st.positions <= cell.lengths)

    def test_deterministic_given_seed(self):
        outs = []
        for _ in range(2):
            pot, pos, cell, masses = _lj_system()
            integ = LangevinIntegrator(pot, masses, cell, temperature=300.0,
                                       friction=0.02, rng=np.random.default_rng(9))
            st = integ.initialize(pos)
            st = integ.run(st, 50)
            outs.append(st.positions.copy())
        assert np.array_equal(outs[0], outs[1])

    def test_callback_cadence(self):
        pot, pos, cell, masses = _lj_system()
        integ = LangevinIntegrator(pot, masses, cell, friction=0.0)
        st = integ.initialize(pos)
        calls = []
        integ.run(st, 10, callback=lambda s: calls.append(s.step), callback_every=3)
        assert calls == [3, 6, 9]
