"""Shared fixtures: tiny datasets and models reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.model import DeePMD, DeePMDConfig, make_batch


@pytest.fixture(scope="session")
def cu_dataset():
    """A small Cu dataset (32 atoms, 18 frames) for training-path tests."""
    return generate_dataset(
        "Cu", frames_per_temperature=6, size="small", equilibration_steps=10, stride=2
    )


@pytest.fixture(scope="session")
def tiny_cfg():
    """A minimal network that keeps gradcheck-heavy tests fast."""
    return DeePMDConfig(
        embedding_widths=(6, 6, 6),
        m_less=4,
        fitting_widths=(8, 8, 8),
        rcut=3.4,
        rcut_smooth=2.0,
        nmax=12,
    )


@pytest.fixture(scope="session")
def small_cfg():
    return DeePMDConfig.scaled_down(rcut=3.5, nmax=16)


@pytest.fixture()
def cu_model(cu_dataset, small_cfg):
    return DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)


@pytest.fixture()
def cu_batch(cu_dataset, small_cfg):
    return make_batch(cu_dataset, np.arange(3), small_cfg)


@pytest.fixture(scope="session")
def nacl_dataset():
    """A two-species dataset (NaCl) for multi-element paths."""
    return generate_dataset(
        "NaCl", frames_per_temperature=4, size="small", equilibration_steps=8, stride=2
    )
