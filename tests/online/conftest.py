"""Shared setup for the online closed-loop tests."""

from __future__ import annotations

import pytest

from repro.data import SYSTEMS
from repro.model import ModelEnsemble
from repro.online import OnlineConfig, OnlineLearner


@pytest.fixture(scope="module")
def split(cu_dataset):
    return cu_dataset.split(0.75, seed=0)


@pytest.fixture()
def make_learner(cu_dataset, small_cfg, split):
    """Factory for small, fast closed-loop learners (auto-closed)."""
    created = []

    def factory(seed: int = 0, **overrides) -> OnlineLearner:
        train, test = split
        ensemble = ModelEnsemble.for_dataset(train, small_cfg, n_models=2, seed=1)
        spec = SYSTEMS["Cu"]
        _, _, _, potential = spec.build("small")
        cfg = OnlineConfig(
            md_steps=20, sample_every=10, epochs_per_round=1,
            batch_size=4, max_new_frames=4, select_lo=0.0,
            target_swaps=1, max_segments=8, eval_frames=8,
        )
        for key, value in overrides.items():
            setattr(cfg, key, value)
        learner = OnlineLearner(
            ensemble, potential, cu_dataset.species,
            spec.masses(cu_dataset.species), cu_dataset.cell,
            cfg=cfg, initial_data=train, holdout=test, seed=seed,
        )
        created.append(learner)
        return learner

    yield factory
    for learner in created:
        learner.close()
