"""The concurrent closed loop end to end: swaps happen, the ledger adds
up, error strictly decreases, traffic is never mixed-version."""

import threading

import numpy as np

from repro import telemetry


class TestOnlineLoop:
    def test_closed_loop_promotes_and_improves(self, make_learner, split):
        learner = make_learner(target_swaps=1, max_segments=10)
        train, test = split
        initial = learner.ensemble.evaluate_rmse(test, max_frames=8)["force_rmse"]
        result = learner.run(train.positions[0], temperature=400.0)

        assert result.n_swaps >= 1
        rmses = [s.force_rmse for s in result.swaps]
        assert all(a > b for a, b in zip([initial] + rmses, rmses))
        assert result.served_rmse == rmses[-1]
        versions = [s.version for s in result.swaps]
        assert versions == sorted(versions)
        assert learner.service.model_version == versions[-1]

    def test_ledger_adds_up(self, make_learner, split):
        learner = make_learner(target_swaps=None, max_segments=4)
        train, _ = split
        result = learner.run(train.positions[0], temperature=400.0)
        ledger = result.ledger
        assert ledger["segments"] == 4
        assert ledger["candidates"] == 4 * learner.explorer.frames_per_segment
        assert ledger["requested"] == ledger["labeled"]
        assert ledger["avoided"] == ledger["candidates"] - ledger["requested"]
        assert ledger["gate_errors"] == 0
        assert ledger["mixed_version_batches"] == 0

    def test_service_serves_throughout_and_after(self, make_learner, split):
        learner = make_learner(target_swaps=1, max_segments=10)
        train, test = split
        errors = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                try:
                    learner.service.predict(
                        test.positions[0], test.species, test.cell, timeout=30.0
                    )
                except Exception as exc:  # any failure is downtime
                    errors.append(exc)

        learner.service.start()
        t = threading.Thread(target=client, daemon=True)
        t.start()
        try:
            result = learner.run(train.positions[0], temperature=400.0)
        finally:
            stop.set()
            t.join()
        assert errors == []
        # the service survived every swap and still answers
        pred = learner.service.predict(test.positions[1], test.species, test.cell)
        assert pred.model_version == learner.service.model_version
        assert result.ledger["mixed_version_batches"] == 0

    def test_pause_stops_the_pipeline(self, make_learner, split):
        learner = make_learner(target_swaps=None, max_segments=10_000)
        train, _ = split
        done = threading.Event()
        holder = {}

        def run():
            holder["result"] = learner.run(train.positions[0], temperature=400.0)
            done.set()

        t = threading.Thread(target=run, daemon=True)
        t.start()
        deadline = 30.0
        while learner.segments < 2 and deadline > 0:
            done.wait(0.05)
            deadline -= 0.05
        learner.pause()
        assert done.wait(timeout=60.0), "pipeline did not stop after pause()"
        t.join()
        assert holder["result"].segments >= 2

    def test_resumable_run_continues_counters(self, make_learner, split):
        learner = make_learner(target_swaps=None, max_segments=2)
        train, _ = split
        first = learner.run(train.positions[0], temperature=400.0)
        second = learner.run(temperature=400.0)  # continues from walker pos
        assert first.segments == 2
        assert second.segments == 4
        assert second.ledger["segments"] == 4

    def test_stage_spans_merge_into_ambient_tracer(self, make_learner, split):
        learner = make_learner(target_swaps=None, max_segments=2)
        train, _ = split
        with telemetry.Tracer(keep_events=True) as tracer:
            learner.run(train.positions[0], temperature=400.0)
        names = {e.name for e in tracer.events}
        assert "online.explore" in names
        assert "online.gate" in names
        threads = {e.attrs.get("thread") for e in tracer.events}
        assert "online-explore" in threads

    def test_requires_start_positions_once(self, make_learner):
        learner = make_learner()
        try:
            learner.run()
        except ValueError as exc:
            assert "start" in str(exc)
        else:
            raise AssertionError("run() without start positions must fail")
