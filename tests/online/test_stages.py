"""Stage decomposition: each stage equals its slice of the old monolith,
and the batch driver composed from them is bit-identical to the
pre-refactor ``ActiveLearner`` loop."""

import numpy as np
import pytest

from repro.data import SYSTEMS
from repro.data.dataset import Dataset
from repro.md.integrator import LangevinIntegrator
from repro.model import DeePMD, ModelEnsemble
from repro.model.calculator import DeePMDCalculator
from repro.model.session import ModelSession
from repro.online import Explorer, IncrementalTrainer, Labeler, UncertaintyGate
from repro.optim.ekf import FEKF
from repro.optim.kalman import KalmanConfig
from repro.train import ActiveLearner, ActiveLearningConfig
from repro.train.trainer import Trainer


@pytest.fixture(scope="module")
def system():
    spec = SYSTEMS["Cu"]
    pos, cell, sp, pot = spec.build("small")
    return spec, pos, cell, sp, pot


class TestExplorer:
    def test_bit_identical_to_monolith_explore(self, cu_dataset, small_cfg, system):
        """Stage MD must consume the RNG exactly as the retired inline
        ``_explore`` did -- same calculator, same chunking, same stream."""
        spec, _, cell, sp, _ = system
        model = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        masses = spec.masses(cu_dataset.species)
        start = cu_dataset.positions[0]

        explorer = Explorer(
            model, cu_dataset.species, masses, cu_dataset.cell,
            md_steps=30, sample_every=10, rng=np.random.default_rng(7),
        )
        staged = explorer.explore(start, 400.0)

        # the pre-refactor loop, verbatim
        rng = np.random.default_rng(7)
        calc = DeePMDCalculator(model, cu_dataset.species)
        integ = LangevinIntegrator(
            calc, masses, cu_dataset.cell,
            timestep=2.0, temperature=400.0, friction=0.02, rng=rng,
        )
        state = integ.initialize(start, temp=400.0)
        frames = []
        for _ in range(3):
            state = integ.run(state, 10)
            frames.append(state.positions.copy())

        assert np.array_equal(staged, np.stack(frames))
        assert explorer.frames_per_segment == 3

    def test_refresh_loads_weights(self, cu_dataset, small_cfg):
        a = DeePMD.for_dataset(cu_dataset, small_cfg, seed=1)
        b = DeePMD.for_dataset(cu_dataset, small_cfg, seed=2)
        explorer = Explorer(
            a, cu_dataset.species, np.ones(cu_dataset.n_atoms),
            cu_dataset.cell, rng=np.random.default_rng(0),
        )
        explorer.refresh(b.state_dict())
        sa, sb = a.state_dict(), b.state_dict()
        for key in sb:
            assert np.array_equal(sa[key], sb[key]), key


class TestUncertaintyGate:
    @pytest.fixture(scope="class")
    def ensemble(self, cu_dataset, small_cfg):
        return ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)

    def test_decision_accounting(self, ensemble, cu_dataset):
        gate = UncertaintyGate(
            ensemble, cu_dataset.species, cu_dataset.cell,
            lo=0.0, hi=np.inf, max_new_frames=2,
        )
        decision = gate.select(cu_dataset.positions[:5])
        assert decision.n_candidates == 5
        assert decision.n_selected == 2  # cap binds
        assert decision.labels_avoided == 3
        assert not decision.mixed_version
        assert decision.versions == {0}

    def test_cap_keeps_highest_deviation(self, ensemble, cu_dataset):
        gate = UncertaintyGate(
            ensemble, cu_dataset.species, cu_dataset.cell,
            lo=0.0, hi=np.inf, max_new_frames=2,
        )
        decision = gate.select(cu_dataset.positions[:5])
        kept = set(decision.kept.tolist())
        top2 = set(np.argsort(-decision.deviations)[:2].tolist())
        assert kept == top2

    def test_band_filters(self, ensemble, cu_dataset):
        gate = UncertaintyGate(
            ensemble, cu_dataset.species, cu_dataset.cell, lo=1e9, hi=2e9,
        )
        decision = gate.select(cu_dataset.positions[:3])
        assert decision.n_selected == 0
        assert decision.labels_avoided == 3

    def test_rejects_uncertainty_free_scorer(self, cu_dataset, small_cfg):
        session = ModelSession(DeePMD.for_dataset(cu_dataset, small_cfg, seed=1))
        gate = UncertaintyGate(session, cu_dataset.species, cu_dataset.cell)
        with pytest.raises(TypeError):
            gate.select(cu_dataset.positions[:2])


class TestLabelerAndTrainer:
    def test_labels_match_reference(self, cu_dataset, system):
        _, _, _, _, pot = system
        labeler = Labeler(pot, cu_dataset.species, cu_dataset.cell)
        out = labeler.label(cu_dataset.positions[:2], 350.0)
        assert isinstance(out, Dataset)
        e, f = pot.energy_forces(cu_dataset.positions[1], cu_dataset.cell)
        assert out.energies[1] == pytest.approx(e)
        assert np.allclose(out.forces[1], f)
        assert np.all(out.temperatures == 350.0)

    def test_accumulate_and_ready(self, cu_dataset, small_cfg, system):
        _, _, _, _, pot = system
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        trainer = IncrementalTrainer(ens, batch_size=4, epochs_per_round=1)
        labeler = Labeler(pot, cu_dataset.species, cu_dataset.cell)
        assert not trainer.ready
        trainer.accumulate(labeler.label(cu_dataset.positions[:2], 300.0))
        assert trainer.labeled.n_frames == 2
        assert not trainer.ready
        trainer.accumulate(labeler.label(cu_dataset.positions[2:5], 300.0))
        assert trainer.labeled.n_frames == 5
        assert trainer.ready
        trainer.train_round(seed_offset=0)
        assert all(opt.kalman.updates > 0 for opt in trainer.optimizers)


class TestBatchDriverBitIdentity:
    def test_two_rounds_match_pre_refactor_monolith(
        self, cu_dataset, small_cfg, system
    ):
        """The composed ActiveLearner must reproduce the retired monolithic
        loop bit-for-bit: same labeled pool, same member weights, same
        filter state after two rounds."""
        spec, _, _, _, pot = system
        sp = cu_dataset.species
        masses = spec.masses(sp)
        cfg = ActiveLearningConfig(
            md_steps=30, sample_every=10, epochs_per_round=1, max_new_frames=4
        )

        learner = ActiveLearner(
            ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1),
            pot, sp, masses, cu_dataset.cell, cfg,
            initial_data=cu_dataset, seed=0,
        )
        learner.run_round(cu_dataset.positions[0], 400.0)
        learner.run_round(cu_dataset.positions[1], 600.0)

        # --- the pre-refactor loop, replayed verbatim ------------------
        ens = ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)
        rng = np.random.default_rng(0)
        kcfg = KalmanConfig(blocksize=2048, fused_update=True)
        optimizers = [
            FEKF(m, KalmanConfig(**vars(kcfg)), fused_env=True, seed=k)
            for k, m in enumerate(ens.models)
        ]
        labeled = cu_dataset

        def train_round(seed_offset):
            for model, opt in zip(ens.models, optimizers):
                Trainer(
                    model, opt, labeled, None,
                    batch_size=cfg.batch_size, seed=seed_offset + 1,
                ).run(max_epochs=cfg.epochs_per_round)

        train_round(seed_offset=-1)  # warm start
        for round_index, (start, temp) in enumerate(
            [(cu_dataset.positions[0], 400.0), (cu_dataset.positions[1], 600.0)]
        ):
            calc = DeePMDCalculator(ens.models[0], sp)
            integ = LangevinIntegrator(
                calc, masses, cu_dataset.cell,
                timestep=cfg.timestep_fs, temperature=temp,
                friction=cfg.friction, rng=rng,
            )
            state = integ.initialize(start, temp=temp)
            frames = []
            for _ in range(cfg.md_steps // cfg.sample_every):
                state = integ.run(state, cfg.sample_every)
                frames.append(state.positions.copy())
            candidates = np.stack(frames)
            preds = ens.predict_many(candidates, sp, cu_dataset.cell)
            devs = np.array([p.max_force_dev for p in preds])
            keep = (devs > cfg.select_lo) & (devs < cfg.select_hi)
            chosen = np.where(keep)[0]
            if len(chosen) > cfg.max_new_frames:
                order = np.argsort(-devs[chosen])
                chosen = chosen[order[: cfg.max_new_frames]]
            selected = candidates[chosen]
            if len(selected):
                energies = np.empty(len(selected))
                forces = np.empty_like(selected)
                for t, p in enumerate(selected):
                    energies[t], forces[t] = pot.energy_forces(p, cu_dataset.cell)
                labeled = Dataset(
                    name="active",
                    positions=np.concatenate([labeled.positions, selected]),
                    energies=np.concatenate([labeled.energies, energies]),
                    forces=np.concatenate([labeled.forces, forces]),
                    species=labeled.species,
                    cell=labeled.cell,
                    temperatures=np.concatenate(
                        [labeled.temperatures, np.full(len(selected), temp)]
                    ),
                )
            if labeled.n_frames >= cfg.batch_size:
                train_round(seed_offset=round_index)

        assert learner.labeled.n_frames == labeled.n_frames
        assert np.array_equal(learner.labeled.positions, labeled.positions)
        assert np.array_equal(learner.labeled.energies, labeled.energies)
        for mine, theirs in zip(learner.ensemble.models, ens.models):
            a, b = mine.state_dict(), theirs.state_dict()
            assert a.keys() == b.keys()
            for key in a:
                assert np.array_equal(a[key], b[key]), key
        for mine, theirs in zip(learner.optimizers, optimizers):
            a, b = mine.state_dict(), theirs.state_dict()
            assert a.keys() == b.keys()
            for key in a:
                assert np.array_equal(a[key], b[key]), key
