"""Watchdog stall detection under fault injection.

The failure mode these tests provoke is the silent one: nothing crashes,
no exception propagates -- a stage or rank simply stops making progress.
A wedged :class:`BoundedWorkQueue` consumer and a stalled
:class:`InferenceService` worker must both surface as SLO *breach*
alerts within the configured deadline, and a healthy run of the same
machinery must raise zero.

Every scenario here -- faulted and healthy twin alike -- runs under the
annotated race checker (``capture("races")``): stalls injected by
:class:`FaultInjector` stretch the interleavings, and the checker
certifies that no ``Guarded`` field is ever touched without its
declared lock, with zero findings on the healthy twins.
"""

import threading
import time

import pytest

from repro.autograd.capture import capture
from repro.optim import FaultInjector
from repro.serve import BoundedWorkQueue, InferenceService, ServeConfig
from repro.telemetry.monitor import (
    HealthMonitor,
    HeartbeatRegistry,
    SLORule,
)


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestWedgedQueueConsumer:
    """A consumer thread that stops draining its queue must breach both
    the heartbeat deadline and the queue-saturation SLO."""

    def _pipeline(self, wedge: bool):
        q = BoundedWorkQueue(4, name="work")
        beats = HeartbeatRegistry()
        release = threading.Event()

        def consumer():
            beats.beat("consumer")
            first = True
            while True:
                item = q.get(timeout=0.02)
                if item is None:
                    if q.drained():
                        break
                    beats.beat("consumer")
                    continue
                if wedge and first:
                    first = False
                    release.wait(timeout=10.0)  # wedged mid-item: no beats
                beats.beat("consumer")
            beats.done("consumer")

        t = threading.Thread(target=consumer, daemon=True)
        beats.register("consumer", deadline_s=0.2, thread=t)
        t.start()

        mon = HealthMonitor(interval_s=0.05)
        mon.add_source("online", lambda: {
            "queues": {"work": q.stats()},
            "heartbeats": beats.ages(),
        })
        mon.add_rules(
            SLORule("stage heartbeat", "heartbeat_s", 0.2, source="online"),
            SLORule("queue saturation", "queue_saturation", 0.9,
                    source="online"),
        )
        return q, t, release, mon

    def test_wedged_consumer_breaches_within_deadline(self):
        with capture("races") as races:
            q, t, release, mon = self._pipeline(wedge=True)
            with mon:
                for k in range(6):  # first item wedges; the rest pile up
                    q.put(k, timeout=0.5)
                assert _wait_until(lambda: mon.breaches() > 0, timeout=5.0)
            release.set()
            q.close()
            t.join(timeout=5.0)
        breached = {a["rule"] for a in mon.alerts if a["to"] == "breach"}
        assert "stage heartbeat" in breached
        assert "queue saturation" in breached
        # the wedge stretches the interleavings, not the lock discipline
        assert races.ok, races.report().render()

    def test_healthy_consumer_never_breaches(self):
        with capture("races") as races:
            q, t, release, mon = self._pipeline(wedge=False)
            with mon:
                for k in range(6):
                    q.put(k, timeout=0.5)
                    time.sleep(0.01)  # the live consumer keeps the depth low
                q.close()
                t.join(timeout=5.0)
                time.sleep(0.2)  # a few polls after the clean exit
        assert mon.breaches() == 0
        report = races.report()
        assert races.ok, report.render()  # healthy twin: zero findings
        assert report.metrics["guarded_accesses"] > 0  # and it did observe


class TestStalledServeWorker:
    """A rank that stalls (without crashing) wedges the batcher; the
    batcher heartbeat must breach, and a slow-but-alive rank must push
    the windowed p99 past a tight latency SLO."""

    @pytest.fixture()
    def service(self, cu_model, cu_dataset):
        cfg = ServeConfig(
            max_batch=2, max_delay_s=0.001, executor="thread", world_size=1,
            window_s=2.0, heartbeat_deadline_s=0.3,
            cache_predictions=False, cache_neighbors=False,
        )
        from repro.model import ModelSession

        svc = InferenceService(ModelSession(cu_model), cfg)
        with svc:
            yield svc

    def test_stalled_worker_breaches_batcher_heartbeat(self, service, cu_dataset):
        mon = HealthMonitor(interval_s=0.05)
        mon.watch_service(service, rules=[
            SLORule("batcher heartbeat", "heartbeat_s", 0.3, source="serve"),
        ])
        # wedge rank 0 inside its next predict_task: alive, not crashed,
        # so the executor's heal path never fires -- only the watchdog sees
        service.inject_fault(
            0, FaultInjector("predict_task", times=1, stall_s=1.2,
                             raises=False),
        )
        frame = cu_dataset.positions[0]
        with capture("races") as races:
            with mon:
                pred = service.predict(
                    frame, cu_dataset.species, cu_dataset.cell, timeout=30.0
                )
                assert pred is not None
                assert _wait_until(lambda: mon.breaches() > 0, timeout=5.0)
        alerts = [a for a in mon.alerts if a["to"] == "breach"]
        assert any(a["kind"] == "heartbeat_s" for a in alerts)
        assert any("serve-batcher" in a["detail"] for a in alerts)
        assert races.ok, races.report().render()

    def test_slow_worker_breaches_p99_latency(self, service, cu_dataset):
        mon = HealthMonitor(interval_s=0.05)
        mon.watch_service(service, rules=[
            SLORule("p99 latency", "p99_latency_s", 0.05, source="serve",
                    min_count=1),
        ])
        service.inject_fault(
            0, FaultInjector("predict_task", times=8, stall_s=0.15,
                             raises=False),
        )
        frame = cu_dataset.positions[0]
        with mon:
            for _ in range(4):
                service.predict(
                    frame, cu_dataset.species, cu_dataset.cell, timeout=30.0
                )
            assert _wait_until(lambda: mon.breaches() > 0, timeout=5.0)
        alerts = [a for a in mon.alerts if a["to"] == "breach"]
        assert any(a["kind"] == "p99_latency_s" for a in alerts)

    def test_healthy_service_zero_false_positives(self, service, cu_dataset):
        mon = HealthMonitor(interval_s=0.05)
        mon.watch_service(service)  # stock serve rules
        frame = cu_dataset.positions[0]
        with capture("races") as races:
            with mon:
                for _ in range(6):
                    service.predict(
                        frame, cu_dataset.species, cu_dataset.cell, timeout=30.0
                    )
                time.sleep(0.2)
        assert mon.breaches() == 0
        assert len(mon.snapshots) >= 3
        report = races.report()
        assert races.ok, report.render()  # healthy twin: zero findings
        assert report.metrics["guarded_accesses"] > 0


class TestLearnerHealthSurface:
    def test_health_reports_stages_queues_and_rmse(self, make_learner, split):
        learner = make_learner(target_swaps=1, max_segments=4)
        train, _ = split
        h0 = learner.health()
        assert h0["swap_age_s"] is None  # never run
        assert h0["queues"] == {}
        learner.run(train.positions[0], temperature=300.0)
        h = learner.health()
        assert h["segments"] >= 1
        assert set(h["queues"]) == {
            "online candidates", "online label queue", "online train queue"
        }
        beats = h["heartbeats"]
        assert set(beats) == {
            "online-explore", "online-gate", "online-label", "online-train"
        }
        # all stages exited cleanly: done, not stalled
        assert all(b["done"] and not b["stalled"] for b in beats.values())
        assert h["served_rmse"] <= h0["served_rmse"] or h0["served_rmse"] == float("inf")
        assert h["best_rmse"] == h["served_rmse"]
        assert h["swap_age_s"] is not None

    def test_monitored_run_is_breach_free(self, make_learner, split):
        learner = make_learner(target_swaps=1, max_segments=4)
        train, _ = split
        mon = HealthMonitor(interval_s=0.05)
        learner.service.start()
        # stock kinds, but with p99 slack: the gate pushes ensemble
        # committee batches through the service, and on a loaded CI box
        # those can crest the 2 s interactive-traffic default -- which
        # would be a latency-budget flake, not the watchdog/error false
        # positive this test is about
        from repro.telemetry.monitor import default_serve_rules

        mon.watch_service(
            learner.service, rules=list(default_serve_rules(p99_latency_s=30.0))
        )
        mon.watch_learner(learner)
        with mon:
            learner.run(train.positions[0], temperature=300.0)
        assert mon.breaches() == 0
        assert len(mon.snapshots) >= 2
        # the monitor actually saw live data, not just no_data
        last = mon.snapshots[-1]
        assert last.sources["online"]["segments"] >= 1
