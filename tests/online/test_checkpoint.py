"""Crash-resume certification: pause the loop mid-stream, checkpoint,
restore into a *fresh* learner, and certify bit-exact state -- label
ledger, FEKF filters (PCG64 streams included), walker RNG, label pool,
and the served model version."""

import json
import os
import threading

import numpy as np
import pytest


def _run_until_segments(learner, start, n, temperature=400.0):
    """Run the loop in a thread and pause once ``n`` segments completed.

    The learner must be built with ``target_swaps=None`` and a large
    ``max_segments`` so only :meth:`pause` ends the run."""
    holder = {}
    done = threading.Event()

    def run():
        holder["result"] = learner.run(start, temperature=temperature)
        done.set()

    t = threading.Thread(target=run, daemon=True)
    t.start()
    budget = 60.0
    while learner.segments < n and budget > 0:
        done.wait(0.05)
        budget -= 0.05
    learner.pause()
    assert done.wait(timeout=60.0)
    t.join()
    return holder["result"]


def _assert_state_dicts_equal(a: dict, b: dict, label: str) -> None:
    assert a.keys() == b.keys(), label
    for key in a:
        assert np.array_equal(a[key], b[key]), f"{label}:{key}"


class TestCheckpointResume:
    def test_mid_loop_checkpoint_restores_bit_exactly(
        self, make_learner, split, tmp_path
    ):
        train, _ = split
        source = make_learner(target_swaps=None, max_segments=10_000)
        _run_until_segments(source, train.positions[0], 3)
        ckpt = str(tmp_path / "ckpt")
        source.save_state(ckpt)

        resumed = make_learner()  # fresh learner, then restore over it
        resumed.load_state(ckpt)

        # ledger + swap history + counters
        assert resumed.ledger == source.ledger
        assert [s.as_dict() for s in resumed.swaps] == [
            s.as_dict() for s in source.swaps
        ]
        assert resumed.trained_rounds == source.trained_rounds
        assert resumed.segments == source.segments
        assert resumed.served_rmse == source.served_rmse

        # committee weights
        for k, (a, b) in enumerate(
            zip(resumed.ensemble.models, source.ensemble.models)
        ):
            _assert_state_dicts_equal(a.state_dict(), b.state_dict(), f"member{k}")

        # FEKF filters, PCG64 streams included
        for k, (a, b) in enumerate(
            zip(resumed.trainer.optimizers, source.trainer.optimizers)
        ):
            sa, sb = a.state_dict(), b.state_dict()
            assert "kalman/rng" in sa
            _assert_state_dicts_equal(sa, sb, f"fekf{k}")

        # walker: MD RNG stream and positions
        assert (
            resumed._rng.bit_generator.state == source._rng.bit_generator.state
        )
        assert np.array_equal(resumed._start_pos, source._start_pos)

        # label pool
        if source.trainer.labeled is not None:
            assert np.array_equal(
                resumed.trainer.labeled.positions, source.trainer.labeled.positions
            )
            assert np.array_equal(
                resumed.trainer.labeled.forces, source.trainer.labeled.forces
            )

        # served model version survives the restart
        assert resumed.service.model_version == source.service.model_version

    def test_checkpoint_round_trips_byte_identically(
        self, make_learner, split, tmp_path
    ):
        """save -> load -> save must reproduce the checkpoint exactly."""
        train, _ = split
        source = make_learner(target_swaps=None, max_segments=10_000)
        _run_until_segments(source, train.positions[0], 2)
        first = str(tmp_path / "first")
        source.save_state(first)

        resumed = make_learner()
        resumed.load_state(first)
        second = str(tmp_path / "second")
        resumed.save_state(second)

        with open(os.path.join(first, "online.json")) as fh:
            meta_a = json.load(fh)
        with open(os.path.join(second, "online.json")) as fh:
            meta_b = json.load(fh)
        assert meta_a == meta_b

        with np.load(os.path.join(first, "members.npz")) as za, np.load(
            os.path.join(second, "members.npz")
        ) as zb:
            assert set(za.files) == set(zb.files)
            for key in za.files:
                assert np.array_equal(za[key], zb[key]), key

    def test_resumed_loop_continues(self, make_learner, split, tmp_path):
        train, _ = split
        source = make_learner(target_swaps=None, max_segments=10_000)
        _run_until_segments(source, train.positions[0], 2)
        ckpt = str(tmp_path / "ckpt")
        source.save_state(ckpt)
        before = source.segments
        # the gate's ledger may lag the explorer's counter: frames
        # in-flight between stages at pause() are dropped, not replayed
        ledger_before = source.ledger.as_dict()["segments"]

        resumed = make_learner(target_swaps=None, max_segments=2)
        resumed.load_state(ckpt)
        result = resumed.run(temperature=400.0)
        assert result.segments == before + 2
        assert result.ledger["segments"] == ledger_before + 2

    def test_version_cannot_rewind(self, make_learner, split):
        train, _ = split
        learner = make_learner(target_swaps=1, max_segments=10)
        result = learner.run(train.positions[0], temperature=400.0)
        assert result.n_swaps >= 1
        with pytest.raises(ValueError):
            learner.service.restore_version(0)
