"""Hot swap under concurrent load: single-version micro-batches and
version-keyed cache purge, the invariants the gate depends on."""

import threading
import time

import numpy as np
import pytest

from repro.model import ModelEnsemble
from repro.online import UncertaintyGate
from repro.serve import InferenceService, ServeConfig


@pytest.fixture(scope="module")
def ensemble(cu_dataset, small_cfg):
    return ModelEnsemble.for_dataset(cu_dataset, small_cfg, n_models=2, seed=1)


class TestSwapRace:
    def test_no_mixed_versions_within_a_batch(self, ensemble, cu_dataset):
        """swap() racing in-flight predict_many: every micro-batch is
        computed under exactly one version snapshot, so a batch of
        co-submitted frames never mixes versions."""
        cfg = ServeConfig(max_batch=4, max_delay_s=0.25, cache_predictions=False)
        payload = ensemble.state_dicts()
        rng = np.random.default_rng(3)
        base = cu_dataset.positions[:4]
        stop = threading.Event()

        with InferenceService(ensemble, cfg) as svc:
            def swapper():
                while not stop.is_set():
                    svc.swap(payload)
                    time.sleep(0.001)

            t = threading.Thread(target=swapper, daemon=True)
            t.start()
            versions_seen = set()
            try:
                for _ in range(25):
                    # fresh positions every round: no cache interplay,
                    # each call is one real forward
                    frames = base + rng.normal(scale=1e-4, size=base.shape)
                    preds = svc.predict_many(frames, cu_dataset.species,
                                             cu_dataset.cell)
                    batch_versions = {p.model_version for p in preds}
                    assert len(batch_versions) == 1, batch_versions
                    versions_seen |= batch_versions
            finally:
                stop.set()
                t.join()
        # the swaps really were interleaved with the batches
        assert len(versions_seen) > 1

    def test_gate_decisions_are_single_version_under_swaps(
        self, ensemble, cu_dataset
    ):
        cfg = ServeConfig(max_batch=4, max_delay_s=0.25, cache_predictions=False)
        payload = ensemble.state_dicts()
        rng = np.random.default_rng(5)
        base = cu_dataset.positions[:4]
        stop = threading.Event()

        with InferenceService(ensemble, cfg) as svc:
            gate = UncertaintyGate(
                svc, cu_dataset.species, cu_dataset.cell, lo=0.0, hi=np.inf
            )

            def swapper():
                while not stop.is_set():
                    svc.swap(payload)
                    time.sleep(0.001)

            t = threading.Thread(target=swapper, daemon=True)
            t.start()
            try:
                for _ in range(15):
                    frames = base + rng.normal(scale=1e-4, size=base.shape)
                    decision = gate.select(frames)
                    assert not decision.mixed_version, decision.versions
            finally:
                stop.set()
                t.join()

    def test_swap_purges_version_keyed_cache(self, ensemble, cu_dataset):
        """A swap must be visible to the very next request: the cached
        old-version prediction may not be served again."""
        cfg = ServeConfig(max_batch=1, max_delay_s=0.0, cache_predictions=True)
        frame = cu_dataset.positions[0]
        with InferenceService(ensemble, cfg) as svc:
            first = svc.predict(frame, cu_dataset.species, cu_dataset.cell)
            repeat = svc.predict(frame, cu_dataset.species, cu_dataset.cell)
            assert repeat.cached
            assert repeat.model_version == first.model_version

            version = svc.swap(ensemble.state_dicts())
            after = svc.predict(frame, cu_dataset.species, cu_dataset.cell)
            assert not after.cached  # purge forced a real forward
            assert after.model_version == version

            warm = svc.predict(frame, cu_dataset.species, cu_dataset.cell)
            assert warm.cached
            assert warm.model_version == version

    def test_swap_purge_visible_to_next_gate_decision(self, ensemble, cu_dataset):
        cfg = ServeConfig(max_batch=4, max_delay_s=0.05, cache_predictions=True)
        frames = cu_dataset.positions[:3]
        with InferenceService(ensemble, cfg) as svc:
            gate = UncertaintyGate(
                svc, cu_dataset.species, cu_dataset.cell, lo=0.0, hi=np.inf
            )
            v0 = svc.model_version
            before = gate.select(frames)
            assert before.versions == {v0}
            version = svc.swap(ensemble.state_dicts())
            after = gate.select(frames)
            assert after.versions == {version}
