"""Full-size (paper) network end-to-end smoke.

Everything else in the suite runs the scaled-down network; this file
exercises the exact paper architecture -- embedding [25,25,25], M<=16,
fitting [400,50,50,50,1], blocksize 10240 -- through one full FEKF step
and a prediction, so nothing silently assumes the small sizes.
"""

import numpy as np
import pytest

from repro.model import DeePMD, DeePMDConfig, make_batch
from repro.optim import FEKF, KalmanConfig
from repro.optim.blocks import block_shapes


@pytest.fixture(scope="module")
def paper_model(cu_dataset):
    cfg = DeePMDConfig.paper(rcut=3.5, nmax=16)
    return DeePMD.for_dataset(cu_dataset, cfg, seed=1), cfg


class TestPaperNetwork:
    def test_parameter_count(self, paper_model):
        model, _ = paper_model
        assert model.num_params == 26551  # paper reports 26651

    def test_block_structure_at_paper_blocksize(self, paper_model):
        model, _ = paper_model
        opt = FEKF(model, KalmanConfig(blocksize=10240, fused_update=True))
        shapes = block_shapes(opt.kalman.blocks)
        assert shapes == [1350, 10240, 9810, 5151]
        # P resident: ~1.75 GB at the paper's blocksize
        assert opt.kalman.p_memory_bytes() / 1e6 == pytest.approx(1836, rel=0.02)

    def test_prediction_and_forces(self, paper_model, cu_dataset):
        model, cfg = paper_model
        batch = make_batch(cu_dataset, np.arange(2), cfg)
        out = model.predict(batch, fused_env=True)
        assert np.all(np.isfinite(out.energy))
        assert np.allclose(out.forces.sum(axis=1), 0.0, atol=1e-8)

    def test_one_fekf_step_with_paper_blocks(self, paper_model, cu_dataset):
        """One full (1 energy + 4 force) update against the 10240-block P.

        Uses the fused kernel; the naive kernel at this size needs ~10 GB/s
        of temporaries and is exercised at smaller blocks elsewhere.
        """
        model, cfg = paper_model
        opt = FEKF(
            model, KalmanConfig(blocksize=10240, fused_update=True), fused_env=True
        )
        batch = make_batch(cu_dataset, np.arange(2), cfg)
        before = model.params.flatten()
        stats = opt.step_batch(batch)
        assert stats["updates"] == 5
        assert not np.allclose(before, model.params.flatten())
