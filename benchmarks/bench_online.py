"""Online closed-loop acceptance gates.

The online-learning claim (ISSUE: closed-loop pipeline) is that the
explore -> gate -> label -> train -> swap loop improves the *served*
model while it serves: held-out force RMSE strictly decreases across
live hot swaps, the uncertainty gate avoids a nonzero share of reference
labels, and no response is ever computed under a mix of model versions.
These gates run the same :class:`repro.online.OnlineLearner` the harness
experiment uses, bounded small enough for CI.
"""

import numpy as np
import pytest

from repro.data import SYSTEMS
from repro.model import ModelEnsemble
from repro.online import OnlineConfig, OnlineLearner


@pytest.fixture(scope="module")
def closed_loop_result(cu_data, cfg):
    train, test = cu_data.split(0.8, seed=0)
    ensemble = ModelEnsemble.for_dataset(train, cfg, n_models=2, seed=1)
    spec = SYSTEMS["Cu"]
    _, _, _, potential = spec.build("small")
    ocfg = OnlineConfig(
        md_steps=30, sample_every=10, select_lo=0.0,
        epochs_per_round=1, batch_size=4, max_new_frames=6,
        target_swaps=2, max_segments=24, eval_frames=16,
    )
    learner = OnlineLearner(
        ensemble, potential, train.species, spec.masses(train.species),
        train.cell, cfg=ocfg, initial_data=train, holdout=test, seed=0,
    )
    with learner:
        learner.service.start()
        initial = ensemble.evaluate_rmse(test, max_frames=16)["force_rmse"]
        result = learner.run(train.positions[0], temperature=400.0)
    return initial, result


class TestOnlineGates:
    def test_live_swaps_happen(self, closed_loop_result):
        _, result = closed_loop_result
        assert result.n_swaps >= 1, "no weights ever promoted"

    def test_rmse_strictly_decreases_across_swaps(self, closed_loop_result):
        initial, result = closed_loop_result
        rmses = [initial] + [s.force_rmse for s in result.swaps]
        assert all(a > b for a, b in zip(rmses, rmses[1:])), rmses

    def test_gate_avoids_labels(self, closed_loop_result):
        _, result = closed_loop_result
        assert result.ledger["avoided"] > 0, result.ledger
        assert result.ledger["requested"] == result.ledger["labeled"]

    def test_no_mixed_version_batches_no_gate_errors(self, closed_loop_result):
        _, result = closed_loop_result
        assert result.ledger["mixed_version_batches"] == 0
        assert result.ledger["gate_errors"] == 0

    def test_swap_wall_clock_is_monotone(self, closed_loop_result):
        _, result = closed_loop_result
        walls = [s.wall_s for s in result.swaps]
        assert walls == sorted(walls)
        assert all(np.isfinite(w) and w > 0 for w in walls)
