"""Frame-store gate: bounded residency, bit-identity, prefetch throughput.

Three promises the out-of-core data pipeline (``repro.data.framestore``
+ ``repro.data.loader.StreamingLoader``) makes, enforced in CI:

* sweeping a corpus ~8x larger than the configured mapping budget never
  maps more than the budget, and process RSS stays below the corpus
  size (an in-memory dataset would add at least the corpus);
* training from the store with prefetch -- on the serial, thread, and
  process executor backends -- is **bit-identical** to the historic
  in-memory pipeline (same shuffle, same batches, same weights);
* prefetched batch delivery is at least **1.3x** the synchronous
  loader's throughput when a second core is available to build batches
  on (single-core hosts skip the speedup gate -- there is no core to
  overlap onto; same caveat as ``scaling.run_walltime``).

Full tables and the ``BENCH_framestore.json`` manifest come from
``python -m repro.harness framestore --bench-dir .``; this file is the
CI gate over the same measurement core.
"""

import os

import pytest

from repro.harness.framestore import measure


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("framestore")
    return measure(corpus_frames=4096, workdir=str(workdir))


def test_mapping_stays_within_budget(result):
    sweep = result["sweep"]
    assert sweep["mapped_within_bound"], (
        f"mapped {sweep['mapped_peak_bytes']} bytes, budget "
        f"{sweep['mapped_bound_bytes']}"
    )
    # the corpus must actually exceed the budget for the bound to mean
    # anything
    assert sweep["corpus_bytes"] > 2 * sweep["mapped_bound_bytes"]


def test_rss_stays_below_corpus(result):
    sweep = result["sweep"]
    assert sweep["rss_below_corpus"], (
        f"RSS grew {sweep['rss_delta_bytes']} bytes over a "
        f"{sweep['corpus_bytes']}-byte corpus; residency is not bounded"
    )


def test_store_training_bit_identical_per_executor(result):
    per = result["identity"]["executors"]
    assert set(per) == {"serial", "thread", "process"}
    bad = [ex for ex, ok in per.items() if not ok]
    assert not bad, f"store-backed training diverged on executors: {bad}"


def test_prefetch_throughput_at_least_1_3x(result):
    pre = result["prefetch"]
    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            "prefetch overlaps batch construction onto other cores; a "
            f"single-core host has none (measured {pre['speedup']:.2f}x)"
        )
    assert pre["speedup"] >= 1.3, (
        f"prefetched delivery only {pre['speedup']:.2f}x the synchronous "
        f"loader ({pre['sync_batches_per_s']:.1f} -> "
        f"{pre['stream_batches_per_s']:.1f} batches/s); the 1.3x gate failed"
    )


def test_training_paced_prefetch_mostly_hits(result):
    pre = result["prefetch"]
    assert pre["hit_rate"] >= 0.5, (
        f"only {pre['hit_rate']:.0%} of optimizer asks found a batch "
        f"ready ({pre['stalls']} stalls); prefetch is not keeping up"
    )


def test_ingest_throughput_recorded(result):
    ing = result["ingest"]
    assert ing["frames"] == 4096
    assert ing["frames_per_s"] > 0
