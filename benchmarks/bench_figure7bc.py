"""Figure 7(b)/(c) bench -- kernel counts and iteration time per preset.

Benchmarks the (1 energy + 4 force)-update iteration under each
optimization preset and asserts the kernel-count reductions the paper
reports (baseline -> opt3 cuts launches by half or more).
"""

import numpy as np
import pytest

from repro.model import make_batch
from repro.optim import FEKF
from repro.perf import PRESETS, profile_update


@pytest.fixture(scope="module")
def batch64(cu_data, cfg):
    idx = np.arange(min(64, cu_data.n_frames))
    return make_batch(cu_data, idx, cfg)


@pytest.mark.parametrize("preset_name", ["baseline", "opt1", "opt2", "opt3"])
def test_iteration_time_per_preset(benchmark, model, batch64, preset_name):
    preset = PRESETS[preset_name]
    opt = FEKF(model, preset.kalman_config(blocksize=2048), fused_env=preset.fused_env)

    def iteration():
        with preset.context():
            return opt.step_batch(batch64)

    stats = benchmark(iteration)
    assert stats["updates"] > 0


def test_kernel_counts_fall_with_presets(model, batch64):
    counts = {}
    for name in ("baseline", "opt1", "opt2", "opt3"):
        preset = PRESETS[name]
        opt = FEKF(model, preset.kalman_config(blocksize=2048), fused_env=preset.fused_env)
        prof = profile_update(model, opt, batch64, preset)
        counts[name] = prof.total_iteration_kernels()
    assert counts["opt1"] < counts["baseline"]
    assert counts["opt2"] < counts["opt1"]
    assert counts["opt3"] < counts["opt2"]
    # paper: -64% overall; we require at least -40%
    assert counts["opt3"] < 0.6 * counts["baseline"]
