"""Sanitizer overhead smoke check: the *off* path must stay under 5%.

The NaN/Inf sanitizer (``repro.analysis.Sanitizer``) rides the same
tensor-forwarding gate in ``make_op`` that the profiler uses: with no
sanitizer installed every op pays exactly one module-global check, and a
completed install/uninstall cycle must leave that gate fully closed.  CI
runs this to keep the "debugging tool, not a tax" promise honest.
"""

import time

import numpy as np

from repro.analysis import Sanitizer
from repro.autograd import instrument as _instrument
from repro.model import DeePMD, make_batch
from repro.optim import make_optimizer
from repro.train import Trainer


def _run_once(cu_data, cfg, sanitizer=None):
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    opt = make_optimizer("fekf", model, blocksize=2048, fused_update=True,
                         fused_env=True)
    trainer = Trainer(model, opt, cu_data, None, batch_size=8, seed=0,
                      eval_frames=4)
    t0 = time.perf_counter()
    if sanitizer is not None:
        with sanitizer:
            trainer.run(max_epochs=2)
    else:
        trainer.run(max_epochs=2)
    return time.perf_counter() - t0


def test_sanitizer_off_overhead_under_5_percent(cu_data, cfg):
    """After a full Sanitizer lifecycle the tensor gate is closed and
    training runs within the same <5% budget as a never-sanitized run."""
    with Sanitizer(mode="collect"):
        pass
    assert not _instrument.tensors_wanted()
    off = min(_run_once(cu_data, cfg) for _ in range(3))
    cycled = min(_run_once(cu_data, cfg) for _ in range(3))
    overhead = cycled / off - 1.0
    assert overhead < 0.05, (
        f"post-sanitizer overhead {overhead:.1%} (before {off:.3f}s, "
        f"after {cycled:.3f}s) exceeds the 5% budget"
    )


def test_sanitized_training_step_is_clean(cu_data, cfg):
    """One sanitized epoch of real FEKF training: every recorded tensor
    finite, and the op counter proves the sanitizer actually looked."""
    sanitizer = Sanitizer(mode="raise")
    _run_once(cu_data, cfg, sanitizer=sanitizer)
    report = sanitizer.report()
    assert report.ok, report.render()
    assert report.metrics["ops_checked"] > 0
    assert not _instrument.tensors_wanted()
