"""Serving acceptance gates: micro-batching throughput + telemetry cost.

The serving claim (ISSUE: batched inference service) is that collecting
concurrent per-frame requests into micro-batched forward passes -- plus
the neighbor/prediction caches -- buys >= 2x throughput over answering
one request at a time.  Both modes run the *same*
:class:`repro.serve.InferenceService`, so the delta is attributable to
batching + caching, not to differing code paths.  The second gate keeps
the telemetry promise honest on the serving path: running the service
under a live tracer must cost < 5% wall time.
"""

import threading
import time

import pytest

from repro.model import DeePMD, ModelSession
from repro.serve import InferenceService, ServeConfig
from repro.telemetry import Tracer

CLIENTS = 8
PER_CLIENT = 6


def _drive(service, pool, species, cell):
    """CLIENTS threads x PER_CLIENT requests each; returns wall seconds."""
    barrier = threading.Barrier(CLIENTS + 1)

    def client(k):
        barrier.wait()
        for j in range(PER_CLIENT):
            service.predict(pool[(k + j) % len(pool)], species, cell)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _pool(cu_data):
    # fewer distinct frames than requests, so repeats exercise the caches
    # the way rejected MC moves and committee queries do in production
    import numpy as np

    n = max(2, CLIENTS * PER_CLIENT // 3)
    return [
        np.ascontiguousarray(cu_data.positions[t])
        for t in range(min(cu_data.n_frames, n))
    ]


def _serve_once(model, cu_data, cfg_serve):
    pool = _pool(cu_data)
    with InferenceService(ModelSession(model), cfg_serve) as svc:
        wall = _drive(svc, pool, cu_data.species, cu_data.cell)
        stats = svc.stats()
    return wall, stats


BASELINE = dict(
    max_batch=1, max_delay_s=0.0, cache_neighbors=False, cache_predictions=False
)
BATCHED = dict(max_batch=CLIENTS, max_delay_s=0.002)


def test_microbatching_speedup_at_8_clients(cu_data, cfg):
    """Acceptance: >= 2x throughput from micro-batching + caching at 8
    concurrent clients, one-at-a-time baseline.  Best-of-2 per mode so a
    scheduler hiccup on either side does not decide the verdict."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    base = min(
        _serve_once(model, cu_data, ServeConfig(**BASELINE))[0] for _ in range(2)
    )
    batched_runs = [
        _serve_once(model, cu_data, ServeConfig(**BATCHED)) for _ in range(2)
    ]
    fast = min(wall for wall, _ in batched_runs)
    stats = min(batched_runs, key=lambda r: r[0])[1]
    speedup = base / fast
    print(
        f"\nserve speedup at {CLIENTS} clients: {speedup:.2f}x "
        f"(baseline {base:.3f}s, batched {fast:.3f}s, "
        f"occupancy mean {stats['batch_occupancy']['mean']:.1f}, "
        f"cache hit rate {stats['prediction_cache']['hit_rate']:.0%})"
    )
    assert stats["batches"] < stats["responses"]  # real co-batching happened
    assert speedup >= 2.0, (
        f"expected >= 2x micro-batching throughput at {CLIENTS} clients, "
        f"measured {speedup:.2f}x (baseline {base:.3f}s, batched {fast:.3f}s)"
    )


def test_serving_telemetry_overhead_under_5_percent(cu_data, cfg):
    """A live tracer over the serving loop (batcher spans + worker merge)
    must stay under the repo-wide 5% telemetry budget."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    pool = _pool(cu_data)

    def run(tracer):
        cfg_serve = ServeConfig(**BATCHED)
        if tracer is None:
            wall, _ = _serve_once(model, cu_data, cfg_serve)
            return wall
        with tracer:
            with InferenceService(ModelSession(model), cfg_serve) as svc:
                wall = _drive(svc, pool, cu_data.species, cu_data.cell)
        return wall

    off = min(run(None) for _ in range(3))
    on = min(run(Tracer(keep_events=False)) for _ in range(3))
    overhead = on / off - 1.0
    assert overhead < 0.05, (
        f"serving telemetry overhead {overhead:.1%} "
        f"(off {off:.3f}s, on {on:.3f}s) exceeds the 5% budget"
    )


def test_cached_predict_latency(benchmark, cu_data, cfg):
    """A prediction-cache hit must bypass the batcher entirely: it is a
    dict lookup + dataclass copy, microseconds not milliseconds."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    frame = cu_data.positions[0]
    with InferenceService(ModelSession(model), ServeConfig()) as svc:
        warm = svc.predict(frame, cu_data.species, cu_data.cell)
        assert not warm.cached
        hit = benchmark(svc.predict, frame, cu_data.species, cu_data.cell)
    assert hit.cached
    assert hit.energy == warm.energy
