"""Sec. 5.3 scalability bench -- ring-allreduce cost vs world size.

Benchmarks the chunked ring-allreduce at the paper's gradient size across
GPU counts and asserts the per-rank volume follows 2(r-1)/r * payload.
"""

import numpy as np
import pytest

from repro.parallel import SimCommunicator, allreduce_volume_bytes

GRAD_ELEMENTS = 26551  # paper network


@pytest.mark.parametrize("world", [2, 4, 8, 16])
def test_ring_allreduce_gradient(benchmark, world):
    rng = np.random.default_rng(0)
    bufs = [rng.normal(size=GRAD_ELEMENTS) for _ in range(world)]

    def run():
        return SimCommunicator(world).ring_allreduce(bufs)

    out = benchmark(run)
    assert np.allclose(out[0], np.sum(bufs, axis=0), atol=1e-9)


@pytest.mark.parametrize("world", [2, 4, 8, 16])
def test_volume_formula(world):
    comm = SimCommunicator(world)
    comm.ring_allreduce([np.ones(GRAD_ELEMENTS) for _ in range(world)])
    assert comm.ledger.bytes_sent_per_rank == pytest.approx(
        allreduce_volume_bytes(GRAD_ELEMENTS, world), rel=1e-9
    )
    # the paper's ~0.2 MB gradient claim
    assert comm.ledger.bytes_sent_per_rank < 0.45e6
