"""Sec. 5.3 scalability bench -- ring-allreduce cost vs world size, plus
real wall-clock of the executor backends.

Benchmarks the chunked ring-allreduce at the paper's gradient size across
GPU counts and asserts the per-rank volume follows 2(r-1)/r * payload.
The wall-clock benchmarks train the same batches through DistributedFEKF
under each executor backend for world_size in {1, 2, 4}: ``wall_time_s``
is real host time, reported next to the modeled cluster clock.  The
thread-backend speedup assertion (>= 1.5x at world_size=4) only fires on
hosts with >= 4 cores -- on fewer cores the numbers are still reported
but there is no parallel hardware to claim a speedup from.
"""

import os

import numpy as np
import pytest

from repro.optim import KalmanConfig
from repro.parallel import DistributedFEKF, SimCommunicator, allreduce_volume_bytes

GRAD_ELEMENTS = 26551  # paper network


@pytest.mark.parametrize("world", [2, 4, 8, 16])
def test_ring_allreduce_gradient(benchmark, world):
    rng = np.random.default_rng(0)
    bufs = [rng.normal(size=GRAD_ELEMENTS) for _ in range(world)]

    def run():
        return SimCommunicator(world).ring_allreduce(bufs)

    out = benchmark(run)
    assert np.allclose(out[0], np.sum(bufs, axis=0), atol=1e-9)


@pytest.mark.parametrize("world", [2, 4, 8, 16])
def test_volume_formula(world):
    comm = SimCommunicator(world)
    comm.ring_allreduce([np.ones(GRAD_ELEMENTS) for _ in range(world)])
    assert comm.ledger.bytes_sent_per_rank == pytest.approx(
        allreduce_volume_bytes(GRAD_ELEMENTS, world), rel=1e-9
    )
    # the paper's ~0.2 MB gradient claim
    assert comm.ledger.bytes_sent_per_rank < 0.45e6


# ---------------------------------------------------------------------------
# real wall-clock across executor backends
# ---------------------------------------------------------------------------
def _step_wall_seconds(cu_data, cfg, executor, world, batch, steps=2):
    from repro.model import DeePMD

    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    dist = DistributedFEKF(
        model,
        world_size=world,
        kalman_cfg=KalmanConfig(blocksize=2048, fused_update=True),
        seed=7,
        executor=executor,
    )
    dist.step_batch(batch)  # warm-up (neighbor caches, worker spin-up)
    wall0 = dist.timing.wall_s
    for _ in range(steps):
        stats = dist.step_batch(batch)
    dist.close()
    return (stats["wall_time_s"] - wall0) / steps, model.params.flatten()


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("world", [1, 2, 4])
def test_step_walltime(benchmark, cu_data, cfg, executor, world, batch32):
    """Real per-step wall time of one DistributedFEKF step per backend."""
    from repro.model import DeePMD

    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    dist = DistributedFEKF(
        model,
        world_size=world,
        kalman_cfg=KalmanConfig(blocksize=2048, fused_update=True),
        seed=7,
        executor=executor,
    )
    dist.step_batch(batch32)  # warm-up
    out = benchmark(dist.step_batch, batch32)
    dist.close()
    assert out["force_abe"] > 0
    assert out["wall_time_s"] > 0
    assert out["modeled_time_s"] > 0


def test_thread_speedup_on_multicore(cu_data, cfg, batch32):
    """wall_time_s table for world_size in {1, 2, 4}; the >= 1.5x speedup
    acceptance at world_size=4 is asserted only on >= 4-core hosts."""
    walls = {}
    weights = {}
    for world in (1, 2, 4):
        walls[world], weights[world] = _step_wall_seconds(
            cu_data, cfg, "thread", world, batch32
        )
    serial_wall, serial_weights = _step_wall_seconds(
        cu_data, cfg, "serial", 4, batch32
    )
    # determinism holds regardless of core count
    assert np.array_equal(weights[4], serial_weights)
    speedup = walls[1] / walls[4]
    print(
        f"\nthread-executor wall s/step: "
        + ", ".join(f"world={w}: {t:.3f}" for w, t in walls.items())
        + f"; speedup(4)={speedup:.2f}x on {os.cpu_count()} cores"
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.5, (
            f"expected >= 1.5x wall-clock speedup at world_size=4 on a "
            f"{os.cpu_count()}-core host, measured {speedup:.2f}x"
        )
