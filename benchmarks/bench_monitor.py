"""Health-monitor acceptance gates: overhead budget + zero false alarms.

The runtime health plane (ISSUE: sliding-window SLOs + watchdogs) only
earns its keep if it is safe to leave on in production: a background
sampler polling ``InferenceService.health()`` every 50 ms must cost
< 5% serving throughput, and the stock SLO rule set must raise zero
breach alerts against a healthy service under full client load.
"""

import threading
import time

from repro.model import DeePMD, ModelSession
from repro.serve import InferenceService, ServeConfig
from repro.telemetry.monitor import HealthMonitor

CLIENTS = 8
PER_CLIENT = 6


def _drive(service, pool, species, cell):
    """CLIENTS threads x PER_CLIENT requests each; returns wall seconds."""
    barrier = threading.Barrier(CLIENTS + 1)

    def client(k):
        barrier.wait()
        for j in range(PER_CLIENT):
            service.predict(pool[(k + j) % len(pool)], species, cell)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _pool(cu_data):
    import numpy as np

    n = max(2, CLIENTS * PER_CLIENT // 3)
    return [
        np.ascontiguousarray(cu_data.positions[t])
        for t in range(min(cu_data.n_frames, n))
    ]


BATCHED = dict(max_batch=CLIENTS, max_delay_s=0.002)


def _serve_once(model, cu_data, monitored: bool):
    pool = _pool(cu_data)
    with InferenceService(ModelSession(model), ServeConfig(**BATCHED)) as svc:
        if monitored:
            mon = HealthMonitor(interval_s=0.05)
            mon.watch_service(svc)
            with mon:
                wall = _drive(svc, pool, cu_data.species, cu_data.cell)
            return wall, mon
        wall = _drive(svc, pool, cu_data.species, cu_data.cell)
    return wall, None


def test_monitor_overhead_under_5_percent(cu_data, cfg):
    """Acceptance: the 50 ms health sampler costs < 5% serving
    throughput.  Best-of-3 per mode so a scheduler hiccup on either side
    does not decide the verdict."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    off = min(_serve_once(model, cu_data, monitored=False)[0] for _ in range(3))
    on = min(_serve_once(model, cu_data, monitored=True)[0] for _ in range(3))
    overhead = on / off - 1.0
    print(
        f"\nmonitor overhead at {CLIENTS} clients: {overhead:+.1%} "
        f"(off {off:.3f}s, on {on:.3f}s)"
    )
    assert overhead < 0.05, (
        f"health-monitor overhead {overhead:.1%} "
        f"(off {off:.3f}s, on {on:.3f}s) exceeds the 5% budget"
    )


def test_zero_false_positive_breaches_healthy(cu_data, cfg):
    """Acceptance: the stock serve rule set must never alert on a
    healthy service under full client load."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    _, mon = _serve_once(model, cu_data, monitored=True)
    assert mon is not None
    assert len(mon.snapshots) > 0
    assert mon.breaches() == 0, (
        f"healthy run raised breach alerts: "
        f"{[a for a in mon.alerts if a['to'] == 'breach']}"
    )
