"""Compiled-step gate: >=2x on the hot phases, bit-identical, free when off.

Three promises the tape compiler (``repro.autograd.compile``) makes on
the FEKF training path, enforced in CI:

* replaying compiled plans is at least **2x faster** on the combined
  ``kf_update`` + ``forward_force`` hot phases (the step's dominant
  phases under fresh force graphs -- the paper's Opt2/Opt3 territory);
* the compiled trajectory is **bit-identical** to eager -- same loss
  history, same final weights (``measure`` raises otherwise);
* with compilation off, the engine hooks on the gradient path cost
  **under 5%** -- a debugging-style "not a tax" budget, like the
  sanitizer's.

Full per-phase tables and the ``BENCH_compile.json`` manifest come from
``python -m repro.harness compile``; this file is the fast CI gate over
the same measurement core.
"""

import pytest

from repro.harness.compile_bench import bench_config, disabled_overhead, measure


@pytest.fixture(scope="module")
def result(cu_data):
    return measure(dataset=cu_data, cfg=bench_config())


def test_hot_phase_speedup_at_least_2x(result):
    assert result["hot_speedup"] >= 2.0, (
        f"compiled hot phases (kf_update+forward_force) only "
        f"{result['hot_speedup']:.2f}x faster "
        f"({result['hot_eager_s']*1e3:.1f}ms -> "
        f"{result['hot_compiled_s']*1e3:.1f}ms); the 2x gate failed"
    )


def test_trajectories_bit_identical(result):
    # measure() asserts bitwise equality of loss history and weights
    # across every eager/compiled repeat and raises on divergence
    assert result["bit_identical"]


def test_plans_replayed_without_fallbacks(result):
    st = result["plan_stats"]
    assert st["enabled"]
    assert st["replays"] > 0
    assert st["fallbacks"] == 0


def test_compile_off_overhead_under_5_percent(cu_data):
    overhead = disabled_overhead(dataset=cu_data, cfg=bench_config())
    assert overhead < 0.05, (
        f"disabled-engine hook overhead {overhead:.1%} exceeds the 5% budget"
    )
