"""Sec. 5.3 memory bench -- naive vs fused P-update kernels.

Benchmarks both kernels at a representative blocksize and asserts the
Sec. 5.3 accounting: the fused kernel allocates no N_b^2 transients and
runs an order of magnitude faster.
"""

import numpy as np
import pytest

from repro.optim import KalmanConfig, KalmanState
from repro.perf import footprint_report, measured_update_peak, paper_layer_sizes

LAYERS = [(0, 336), (1, 2328), (2, 600), (3, 600), (4, 25)]
N = sum(s for _, s in LAYERS)


@pytest.mark.parametrize("fused", [False, True], ids=["naive", "fused"])
def test_p_update_kernel(benchmark, fused):
    state = KalmanState(N, LAYERS, KalmanConfig(blocksize=2048, fused_update=fused))
    rng = np.random.default_rng(0)
    g = rng.normal(size=N) * 0.1
    benchmark(state.update, g, 0.1, 1.0)


def test_fused_kernel_is_much_faster():
    import time

    def t(fused):
        state = KalmanState(N, LAYERS, KalmanConfig(blocksize=2048, fused_update=fused))
        g = np.random.default_rng(0).normal(size=N) * 0.1
        state.update(g, 0.1, 1.0)
        t0 = time.perf_counter()
        for _ in range(10):
            state.update(g, 0.1, 1.0)
        return time.perf_counter() - t0

    assert t(False) > 5 * t(True)


def test_transient_memory_eliminated():
    naive = measured_update_peak(LAYERS, 2048, fused=False)
    fused = measured_update_peak(LAYERS, 2048, fused=True)
    assert naive > 30.0  # at least one 2048^2 float64 temporary
    assert fused < 2.0


def test_paper_accounting():
    rep = footprint_report(paper_layer_sizes(), 10240)
    assert rep.p_resident_mb == pytest.approx(1755, rel=0.02)
    assert rep.naive_peak_mb == pytest.approx(3405, rel=0.05)
    assert rep.fused_peak_mb == pytest.approx(1805, rel=0.05)
