"""Figure 7(a) bench -- one data pass per optimizer configuration.

Benchmarks a full pass over a fixed set of frames for Adam (bs 1), RLEKF
(bs 1), FEKF (bs 32, framework kernels) and FEKF (bs 32, all fused) -- the
per-pass cost whose ratios the paper's end-to-end speedups converge to.
End-to-end wall times: ``python -m repro.harness figure7a``.
"""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import Adam, FEKF, KalmanConfig, RLEKF

N_FRAMES = 32


def _pass(optimizer, dataset, cfg, bs):
    for lo in range(0, N_FRAMES, bs):
        optimizer.step_batch(make_batch(dataset, np.arange(lo, lo + bs), cfg))


def test_pass_adam_bs1(benchmark, cu_data, cfg, model):
    adam = Adam(model)
    benchmark(_pass, adam, cu_data, cfg, 1)


def test_pass_rlekf_bs1_framework_kernels(benchmark, cu_data, cfg, model):
    opt = RLEKF(model, KalmanConfig(blocksize=2048, fused_update=False), fused_env=False)
    benchmark.pedantic(_pass, args=(opt, cu_data, cfg, 1), rounds=2, iterations=1)


def test_pass_fekf_bs32_framework_kernels(benchmark, cu_data, cfg, model):
    opt = FEKF(model, KalmanConfig(blocksize=2048, fused_update=False), fused_env=False)
    benchmark(_pass, opt, cu_data, cfg, 32)


def test_pass_fekf_bs32_optimized(benchmark, cu_data, cfg, model):
    opt = FEKF(model, KalmanConfig(blocksize=2048, fused_update=True), fused_env=True)
    benchmark(_pass, opt, cu_data, cfg, 32)


def test_per_pass_ordering(cu_data, cfg):
    """RLEKF pass >> FEKF pass > optimized FEKF pass (the paper's ladder)."""
    import time

    def time_pass(make_opt, bs):
        model = DeePMD.for_dataset(cu_data, cfg, seed=1)
        opt = make_opt(model)
        t0 = time.perf_counter()
        _pass(opt, cu_data, cfg, bs)
        return time.perf_counter() - t0

    t_rlekf = time_pass(
        lambda m: RLEKF(m, KalmanConfig(blocksize=2048, fused_update=False)), 1
    )
    t_fekf = time_pass(
        lambda m: FEKF(m, KalmanConfig(blocksize=2048, fused_update=False)), 32
    )
    t_opt = time_pass(
        lambda m: FEKF(m, KalmanConfig(blocksize=2048, fused_update=True), fused_env=True),
        32,
    )
    assert t_rlekf > 4 * t_fekf  # paper avg 11.6x at full data volume
    assert t_fekf > 1.5 * t_opt  # paper avg 3.25x
