"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file corresponds to one table/figure of the paper
(see DESIGN.md's per-experiment index); the benchmarked callables are the
representative per-step kernels of that experiment, with correctness
assertions inline.  Full-scale regeneration of the tables lives in
``python -m repro.harness <experiment>``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.model import DeePMD, DeePMDConfig, make_batch


@pytest.fixture(scope="session")
def cu_data():
    return generate_dataset(
        "Cu", frames_per_temperature=24, size="small",
        equilibration_steps=15, stride=3,
    )


@pytest.fixture(scope="session")
def cfg():
    return DeePMDConfig.scaled_down(rcut=4.0, nmax=18)


@pytest.fixture()
def model(cu_data, cfg):
    return DeePMD.for_dataset(cu_data, cfg, seed=1)


@pytest.fixture()
def batch32(cu_data, cfg):
    return make_batch(cu_data, np.arange(32), cfg)


@pytest.fixture()
def batch1(cu_data, cfg):
    return make_batch(cu_data, np.arange(1), cfg)
