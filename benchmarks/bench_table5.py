"""Table 5 bench -- distributed FEKF step across the GPU ladder.

Benchmarks one optimizer step at the (batch, ranks) configurations of the
scaled Table 5 ladder; communication is the byte-exact ring-allreduce and
the assertions pin the Sec. 3.3 claims (P never moves, gradient traffic
matches the closed form).  Full ladder: ``python -m repro.harness table5``.
"""

import numpy as np
import pytest

from repro.model import make_batch
from repro.optim import FEKF, KalmanConfig
from repro.parallel import DistributedFEKF, allreduce_volume_bytes


def _kcfg():
    return KalmanConfig(blocksize=2048, fused_update=True)


def test_step_fekf_1gpu(benchmark, model, batch32):
    opt = FEKF(model, _kcfg(), fused_env=True)
    benchmark(opt.step_batch, batch32)


@pytest.mark.parametrize("world", [2, 4])
def test_step_distributed(benchmark, cu_data, cfg, model, world):
    opt = DistributedFEKF(model, world_size=world, kalman_cfg=_kcfg())
    batch = make_batch(cu_data, np.arange(4 * world), cfg)
    benchmark(opt.step_batch, batch)


def test_comm_volume_matches_closed_form(cu_data, cfg, model):
    world = 4
    opt = DistributedFEKF(model, world_size=world, kalman_cfg=_kcfg())
    batch = make_batch(cu_data, np.arange(8), cfg)
    opt.step_batch(batch)
    expect_grad = 5 * allreduce_volume_bytes(model.num_params, world)  # 5 updates
    measured = opt.comm.ledger.bytes_sent_per_rank
    # gradients dominate; ABE scalars add O(world) bytes
    assert measured == pytest.approx(expect_grad, rel=0.01)
    # and this is orders of magnitude below moving the P replicas
    p_move = allreduce_volume_bytes(opt.kalman.p_memory_bytes() // 8, world)
    assert measured < p_move / 50
