"""Telemetry overhead smoke check: tracing must stay under 5% of a run.

The telemetry design promise (see ``repro.telemetry.trace``) is that the
instrumentation is effectively free: with no tracer installed every
``span()`` call is one module-global check, and even a live tracer only
pays a couple of clock reads per span -- negligible next to the numpy
work inside ``step_batch``.  CI runs this to keep that promise honest.
"""

import time

import numpy as np

from repro.model import DeePMD, make_batch
from repro.optim import make_optimizer
from repro.telemetry import Tracer
from repro.train import Trainer


def _run_once(cu_data, cfg, tracer=None):
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    opt = make_optimizer("fekf", model, blocksize=2048, fused_update=True,
                         fused_env=True)
    trainer = Trainer(model, opt, cu_data, None, batch_size=8, seed=0,
                      eval_frames=4)
    t0 = time.perf_counter()
    if tracer is not None:
        with tracer:
            trainer.run(max_epochs=2)
    else:
        trainer.run(max_epochs=2)
    return time.perf_counter() - t0


def test_tracing_overhead_under_5_percent(cu_data, cfg):
    # interleave and keep the best of 3 per mode so machine noise and
    # cache warm-up hit both sides equally
    off = min(_run_once(cu_data, cfg) for _ in range(3))
    on = min(
        _run_once(cu_data, cfg, Tracer(keep_events=False)) for _ in range(3)
    )
    overhead = on / off - 1.0
    assert overhead < 0.05, (
        f"tracing overhead {overhead:.1%} (off {off:.3f}s, on {on:.3f}s) "
        "exceeds the 5% budget"
    )


def test_disabled_span_fast_path(benchmark):
    """The no-tracer path must be nanoseconds: one truthiness check."""
    from repro.telemetry import span

    def spin():
        for _ in range(1000):
            with span("noop"):
                pass

    benchmark(spin)


def test_events_flow_during_training(cu_data, cfg):
    with Tracer() as tr:
        _run_once(cu_data, cfg, tracer=None)  # tracer already installed
    names = {e.name for e in tr.events}
    assert {"train.run", "train.step", "train.eval",
            "fekf.update", "fekf.forward", "fekf.gradient",
            "fekf.kalman"} <= names
