"""Telemetry overhead smoke check: tracing must stay under 5% of a run.

The telemetry design promise (see ``repro.telemetry.trace``) is that the
instrumentation is effectively free: with no tracer installed every
``span()`` call is one module-global check, and even a live tracer only
pays a couple of clock reads per span -- negligible next to the numpy
work inside ``step_batch``.  CI runs this to keep that promise honest.
"""

import time

import numpy as np

from repro.model import DeePMD, make_batch
from repro.optim import make_optimizer
from repro.telemetry import Tracer
from repro.train import Trainer


def _run_once(cu_data, cfg, tracer=None):
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    opt = make_optimizer("fekf", model, blocksize=2048, fused_update=True,
                         fused_env=True)
    trainer = Trainer(model, opt, cu_data, None, batch_size=8, seed=0,
                      eval_frames=4)
    t0 = time.perf_counter()
    if tracer is not None:
        with tracer:
            trainer.run(max_epochs=2)
    else:
        trainer.run(max_epochs=2)
    return time.perf_counter() - t0


def test_tracing_overhead_under_5_percent(cu_data, cfg):
    # interleave and keep the best of 3 per mode so machine noise and
    # cache warm-up hit both sides equally
    off = min(_run_once(cu_data, cfg) for _ in range(3))
    on = min(
        _run_once(cu_data, cfg, Tracer(keep_events=False)) for _ in range(3)
    )
    overhead = on / off - 1.0
    assert overhead < 0.05, (
        f"tracing overhead {overhead:.1%} (off {off:.3f}s, on {on:.3f}s) "
        "exceeds the 5% budget"
    )


def test_disabled_span_fast_path(benchmark):
    """The no-tracer path must be nanoseconds: one truthiness check."""
    from repro.telemetry import span

    def spin():
        for _ in range(1000):
            with span("noop"):
                pass

    benchmark(spin)


def test_events_flow_during_training(cu_data, cfg):
    with Tracer() as tr:
        _run_once(cu_data, cfg, tracer=None)  # tracer already installed
    names = {e.name for e in tr.events}
    assert {"train.run", "train.step", "train.eval",
            "fekf.update", "fekf.forward", "fekf.gradient",
            "fekf.kalman"} <= names


def test_profiler_off_overhead_under_5_percent(cu_data, cfg):
    """The profiler must be pay-for-what-you-use: after an install/
    uninstall cycle (a completed ``Tracer(profile=True)`` scope), the
    no-profiler path must run within the same <5% budget -- i.e. the
    shape-forwarding gate in ``make_op`` is really off again."""
    from repro.autograd import instrument as _instrument

    # exercise one full profiler lifecycle first, then measure with it off
    with Tracer(keep_events=False, profile=True):
        pass
    assert not _instrument.shapes_wanted()
    off = min(_run_once(cu_data, cfg) for _ in range(3))
    cycled = min(_run_once(cu_data, cfg) for _ in range(3))
    overhead = cycled / off - 1.0
    assert overhead < 0.05, (
        f"post-profiler overhead {overhead:.1%} (before {off:.3f}s, "
        f"after {cycled:.3f}s) exceeds the 5% budget"
    )


def test_profiled_step_records_phases(cu_data, cfg):
    """A profiled run yields op events in every FEKF phase and a valid
    Chrome trace (the live Figure 7(b) view)."""
    from repro.telemetry import validate_chrome_trace

    tracer = Tracer(keep_events=True, profile=True)
    _run_once(cu_data, cfg, tracer=tracer)
    phases = tracer.profiler.phase_kernel_counts()
    for phase in ("forward_energy", "backward", "kf_update"):
        assert phases.get(phase, 0) > 0, f"no ops attributed to {phase}"
    report = validate_chrome_trace(tracer.chrome_trace())
    assert report["events"] > 0
