"""Concurrency-analysis acceptance gates: recorder overhead + deadlock-
free certification.

The lock-order recorder (``capture(kind="locks")``) hooks every
:class:`TrackedLock` acquire/release in the process; it only earns a
place in CI if leaving it on under full serving load costs < 5%
throughput.  The second gate certifies the closed-loop smoke scenarios
(queues + serve) record a cycle-free lock-order graph and a zero-finding
race check -- the same certification the ``concurrency-smoke`` CI job
runs against the online scenario.
"""

import threading
import time

from repro.analysis.concurrency import run_scenario
from repro.autograd.capture import capture
from repro.model import DeePMD, ModelSession
from repro.serve import InferenceService, ServeConfig

CLIENTS = 8
PER_CLIENT = 6


def _drive(service, pool, species, cell):
    """CLIENTS threads x PER_CLIENT requests each; returns wall seconds."""
    barrier = threading.Barrier(CLIENTS + 1)

    def client(k):
        barrier.wait()
        for j in range(PER_CLIENT):
            service.predict(pool[(k + j) % len(pool)], species, cell)

    threads = [threading.Thread(target=client, args=(k,)) for k in range(CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def _pool(cu_data):
    import numpy as np

    n = max(2, CLIENTS * PER_CLIENT // 3)
    return [
        np.ascontiguousarray(cu_data.positions[t])
        for t in range(min(cu_data.n_frames, n))
    ]


BATCHED = dict(max_batch=CLIENTS, max_delay_s=0.002)


def _serve_once(model, cu_data, recorded: bool):
    pool = _pool(cu_data)
    with InferenceService(ModelSession(model), ServeConfig(**BATCHED)) as svc:
        if recorded:
            with capture("locks") as rec, capture("races") as races:
                wall = _drive(svc, pool, cu_data.species, cu_data.cell)
            return wall, rec, races
        wall = _drive(svc, pool, cu_data.species, cu_data.cell)
    return wall, None, None


def test_recorder_overhead_under_5_percent(cu_data, cfg):
    """Acceptance: lock-order recording + race checking on the full
    serve path costs < 5% throughput.  Best-of-3 per mode so a scheduler
    hiccup on either side does not decide the verdict."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    off = min(_serve_once(model, cu_data, recorded=False)[0] for _ in range(3))
    on = min(_serve_once(model, cu_data, recorded=True)[0] for _ in range(3))
    overhead = on / off - 1.0
    print(
        f"\nlock-recorder overhead at {CLIENTS} clients: {overhead:+.1%} "
        f"(off {off:.3f}s, on {on:.3f}s)"
    )
    assert overhead < 0.05, (
        f"lock-recorder overhead {overhead:.1%} "
        f"(off {off:.3f}s, on {on:.3f}s) exceeds the 5% budget"
    )


def test_recorded_serve_is_cycle_and_race_free(cu_data, cfg):
    """Acceptance: a full client load leaves a cycle-free lock-order
    graph and zero race findings -- the recorder saw real traffic."""
    model = DeePMD.for_dataset(cu_data, cfg, seed=1)
    _, rec, races = _serve_once(model, cu_data, recorded=True)
    graph = rec.graph()
    assert graph["events"] > 0, "recorder observed no lock traffic"
    assert graph["cycles"] == [], f"lock-order inversion: {graph['cycles']}"
    assert rec.report().ok
    assert races.ok, races.report().render()


def test_smoke_scenarios_certify_deadlock_free():
    """Acceptance: the queues + serve certification scenarios (the CI
    smoke set) exit clean: zero lock-order cycles, zero race findings."""
    for name in ("queues", "serve"):
        report, graph = run_scenario(name)
        assert report.ok, report.render()
        assert graph["cycles"] == [], (name, graph["cycles"])
        assert report.metrics["race_violations"] == 0
