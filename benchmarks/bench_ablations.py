"""Ablation benches for the design choices called out in DESIGN.md.

* per-block (layerwise) vs coupled Kalman gain,
* shared vs fresh force graph across the four group updates,
* hand-derived (fused) vs autograd (eager) descriptor environment,
* number of force-group updates per batch,
* gather-and-split blocksize sweep (P-update cost vs block granularity).
"""

import numpy as np
import pytest

from repro.model import DeePMD, make_batch
from repro.optim import FEKF, KalmanConfig, KalmanState


@pytest.mark.parametrize("coupled", [False, True], ids=["layerwise", "coupled"])
def test_gain_coupling(benchmark, model, batch32, coupled):
    opt = FEKF(
        model,
        KalmanConfig(blocksize=2048, fused_update=True, coupled_gain=coupled),
        fused_env=True,
    )
    benchmark(opt.step_batch, batch32)


@pytest.mark.parametrize("reuse", [True, False], ids=["shared_graph", "fresh_graph"])
def test_force_graph_reuse(benchmark, model, batch32, reuse):
    opt = FEKF(
        model,
        KalmanConfig(blocksize=2048, fused_update=True),
        fused_env=True,
        reuse_force_graph=reuse,
    )
    benchmark(opt.step_batch, batch32)


@pytest.mark.parametrize("fused_env", [False, True], ids=["autograd_env", "fused_env"])
def test_descriptor_kernel(benchmark, model, batch32, fused_env):
    opt = FEKF(
        model, KalmanConfig(blocksize=2048, fused_update=True), fused_env=fused_env
    )
    benchmark(opt.step_batch, batch32)


@pytest.mark.parametrize("splits", [1, 4, 8])
def test_force_split_count(benchmark, model, batch32, splits):
    opt = FEKF(
        model,
        KalmanConfig(blocksize=2048, fused_update=True),
        fused_env=True,
        n_force_splits=splits,
    )
    stats = benchmark(opt.step_batch, batch32)
    assert stats["updates"] % (splits + 1) == 0


@pytest.mark.parametrize("blocksize", [512, 2048, 4096])
def test_blocksize_sweep(benchmark, blocksize):
    layers = [(0, 336), (1, 2328), (2, 600), (3, 600), (4, 25)]
    n = sum(s for _, s in layers)
    state = KalmanState(n, layers, KalmanConfig(blocksize=blocksize, fused_update=True))
    g = np.random.default_rng(0).normal(size=n) * 0.1
    benchmark(state.update, g, 0.1, 1.0)


def test_coupled_and_layerwise_both_converge(cu_data, cfg):
    """Ablation sanity: both gain styles fit a fixed batch."""
    batch_idx = np.arange(8)
    for coupled in (False, True):
        model = DeePMD.for_dataset(cu_data, cfg, seed=1)
        opt = FEKF(
            model,
            KalmanConfig(blocksize=2048, fused_update=True, coupled_gain=coupled),
            fused_env=True,
        )
        batch = make_batch(cu_data, batch_idx, cfg)
        before = model.evaluate_rmse(cu_data, max_frames=8)["total_rmse"]
        for _ in range(15):
            opt.step_batch(batch)
        after = model.evaluate_rmse(cu_data, max_frames=8)["total_rmse"]
        assert after < before, f"coupled={coupled}"
