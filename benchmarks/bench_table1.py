"""Table 1 bench -- Adam per-step cost vs batch size.

The paper's Table 1 shows large-batch Adam wastes *epochs*; the flip side
measured here is that per-step cost grows sub-linearly with batch size
(the vectorization win that motivates large batches in the first place).
Full epoch-growth numbers: ``python -m repro.harness table1``.
"""

import numpy as np
import pytest

from repro.model import make_batch
from repro.optim import Adam


@pytest.mark.parametrize("bs", [1, 8, 32])
def test_adam_step_cost_vs_batch(benchmark, cu_data, cfg, model, bs):
    adam = Adam(model)
    batch = make_batch(cu_data, np.arange(bs), cfg)
    stats = benchmark(adam.step_batch, batch)
    assert stats["loss"] > 0


def test_adam_step_sublinear_in_batch(cu_data, cfg, model):
    """bs-32 steps must cost far less than 32x a bs-1 step."""
    import time

    adam = Adam(model)

    def step_time(bs, reps=3):
        batch = make_batch(cu_data, np.arange(bs), cfg)
        adam.step_batch(batch)  # warm
        t0 = time.perf_counter()
        for _ in range(reps):
            adam.step_batch(batch)
        return (time.perf_counter() - t0) / reps

    t1, t32 = step_time(1), step_time(32)
    assert t32 < 16 * t1
