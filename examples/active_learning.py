"""Concurrent (active) learning: the full online-learning vision.

Minutes-scale FEKF training makes the DP-GEN-style loop practical: drive
MD with the current surrogate, let an ensemble flag configurations it is
unsure about, label only those with the (expensive) reference method, and
fine-tune the committee -- over and over, climbing a temperature ladder.

Run:  python examples/active_learning.py
"""

import numpy as np

from repro.data import SYSTEMS, generate_dataset
from repro.model import DeePMDConfig, ModelEnsemble
from repro.train import ActiveLearner, ActiveLearningConfig


def main() -> None:
    print("Seeding with a small labeled dataset at 300 K...")
    seed_data = generate_dataset("Cu", frames_per_temperature=12, size="small",
                                 equilibration_steps=15, stride=3)
    cfg = DeePMDConfig.scaled_down(rcut=4.0, nmax=18)
    ensemble = ModelEnsemble.for_dataset(seed_data, cfg, n_models=3, seed=1)

    spec = SYSTEMS["Cu"]
    _, cell, sp, reference = spec.build("small")
    learner = ActiveLearner(
        ensemble, reference, sp, spec.masses(sp), cell,
        ActiveLearningConfig(md_steps=100, sample_every=10,
                             epochs_per_round=2, max_new_frames=8),
        initial_data=seed_data,
        seed=0,
    )

    ladder = [400.0, 600.0, 800.0, 1000.0]
    print(f"{'round':>5} {'T(K)':>6} {'cand':>5} {'kept':>5} "
          f"{'max-F dev':>10} {'train(s)':>9} {'RMSE':>8} {'#labeled':>9}")
    start = seed_data.positions[0]
    for temp in ladder:
        stats = learner.run_round(start, temp)
        print(f"{stats.round_index:>5} {temp:>6.0f} {stats.n_candidates:>5} "
              f"{stats.n_selected:>5} {stats.mean_deviation:>10.3f} "
              f"{stats.train_seconds:>9.1f} {stats.rmse_after:>8.4f} "
              f"{learner.labeled.n_frames:>9}")

    print("\nThe ensemble deviation shrinks as the committee agrees on the "
          "newly explored regions; each retraining took seconds, which is "
          "exactly what makes running this loop 20-100 times viable.")


if __name__ == "__main__":
    main()
