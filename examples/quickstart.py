"""Quickstart: train a DeePMD model on copper in under a minute with FEKF.

Generates a small Cu dataset with the classical-MD labeler, trains the
scaled-down network with the paper's FEKF optimizer, and reports energy /
force RMSE on a held-out test split.

Run:  python examples/quickstart.py
"""

from repro import ConsoleCallback, DeePMD, DeePMDConfig, Trainer, generate_dataset, make_optimizer


def main() -> None:
    print("Sampling Cu training data (classical-MD ab-initio substitute)...")
    data = generate_dataset("Cu", frames_per_temperature=24, size="small",
                            equilibration_steps=20, stride=3)
    train, test = data.split(0.8, seed=0)
    print(f"  {train.n_frames} train / {test.n_frames} test frames, "
          f"{data.n_atoms} atoms each")

    cfg = DeePMDConfig.scaled_down(rcut=4.0, nmax=18)
    model = DeePMD.for_dataset(train, cfg, seed=1)
    print(f"Model: {model.num_params} parameters "
          f"(embedding {cfg.embedding_widths}, M<={cfg.m_less}, "
          f"fitting {cfg.fitting_widths})")

    optimizer = make_optimizer(
        "fekf", model,
        blocksize=2048, fused_update=True,  # Opt3 kernels
        fused_env=True,  # Opt1 hand-derived descriptor kernel
    )
    trainer = Trainer(model, optimizer, train, test, batch_size=8, seed=0)
    print("Training with FEKF (1 energy + 4 force Kalman updates per batch)...")
    result = trainer.run(max_epochs=8, callbacks=[ConsoleCallback()])

    best = min(result.history, key=lambda r: r.train_total)
    print(f"\nDone in {result.total_train_time:.1f}s of optimizer time.")
    print(f"Best epoch {best.epoch}: "
          f"train E/F RMSE {best.train_energy_rmse:.4f}/{best.train_force_rmse:.4f}  "
          f"test {best.test_energy_rmse:.4f}/{best.test_force_rmse:.4f}")


if __name__ == "__main__":
    main()
