"""Optimizer shoot-out: Adam (bs 1) vs RLEKF (bs 1) vs FEKF (bs 16).

Reproduces the qualitative content of the paper's Figure 7(a) on one
system: the EKF family converges in a couple of epochs where Adam needs
tens, and FEKF amortizes the per-update Kalman cost over the whole batch.

Run:  python examples/compare_optimizers.py [system]
"""

import sys
import time

from repro import Trainer, make_optimizer
from repro.harness.common import experiment_setup, scaled_adam


def run_one(name, setup, factory, batch_size, epochs):
    model = setup.model(seed=1)
    optimizer = factory(model)
    t0 = time.perf_counter()
    result = Trainer(model, optimizer, setup.train, setup.test,
                     batch_size=batch_size, seed=0).run(max_epochs=epochs)
    elapsed = time.perf_counter() - t0
    best = min(result.history, key=lambda r: r.train_total)
    print(f"{name:14s} bs={batch_size:<3d} epochs={epochs:<3d} "
          f"best train E+F RMSE {best.train_total:.4f} (epoch {best.epoch})  "
          f"wall {elapsed:.1f}s")
    return best.train_total


def main() -> None:
    system = sys.argv[1] if len(sys.argv) > 1 else "Cu"
    print(f"System: {system}")
    setup = experiment_setup(system, frames_per_temperature=24)
    ekf = dict(blocksize=2048, fused_update=True, fused_env=True)

    run_one("Adam", setup,
            lambda m: scaled_adam(m, setup.train.n_frames, 20), 1, 20)
    run_one("RLEKF", setup,
            lambda m: make_optimizer("rlekf", m, **ekf), 1, 3)
    run_one("FEKF", setup,
            lambda m: make_optimizer("fekf", m, **ekf), 16, 8)
    print("\nExpected shape (paper Fig. 7a): both EKF variants reach a better "
          "RMSE than Adam in a fraction of the epochs; FEKF does it with "
          "16x fewer Kalman updates per data pass than RLEKF.")


if __name__ == "__main__":
    main()
