"""Online learning: the paper's Figure 1 retraining loop, in minutes.

NNMD development retrains the same model 20-100 times as new ab-initio
configurations arrive (new temperatures, new phases).  Because FEKF *is* a
Kalman filter, its state (P, lambda) persists across data arrivals: each
new batch of configurations is just more measurements for the same filter.

This script simulates three data arrivals for a copper system -- 400 K,
then 800 K, then 1200 K configurations -- fine-tuning the same model/filter
on each and printing how accuracy on each regime evolves.

Run:  python examples/online_learning.py
"""

import numpy as np

from repro import Callback, DeePMD, DeePMDConfig, Trainer, make_optimizer
from repro.data import SYSTEMS, Dataset
from repro.md import sample_trajectory


def sample_at(temp: float, n_frames: int, seed: int) -> Dataset:
    spec = SYSTEMS["Cu"]
    pos, cell, sp, pot = spec.build("small")
    traj = sample_trajectory(pot, pos, cell, sp, spec.masses(sp), [temp],
                             n_frames, timestep=2.0, stride=3,
                             equilibration_steps=25, seed=seed)
    return Dataset.from_trajectory(f"Cu@{temp:.0f}K", traj)


class FilterWatcher(Callback):
    """Trainer-event-API demo: watch the Kalman memory factor decay as
    the same filter digests each data arrival."""

    def __init__(self):
        self.steps = 0
        self.lam = None

    def on_step_end(self, info):
        self.steps += 1
        self.lam = info.stats.get("lambda", self.lam)


def main() -> None:
    arrivals = [(400.0, 0), (800.0, 1), (1200.0, 2)]
    datasets = {t: sample_at(t, 20, seed) for t, seed in arrivals}

    cfg = DeePMDConfig.scaled_down(rcut=4.0, nmax=18)
    model = DeePMD.for_dataset(datasets[400.0], cfg, seed=1)
    optimizer = make_optimizer("fekf", model, blocksize=2048,
                               fused_update=True, fused_env=True)
    watcher = FilterWatcher()

    def report(stage: str) -> None:
        rmse = {t: model.evaluate_rmse(ds, max_frames=10)["total_rmse"]
                for t, ds in datasets.items()}
        cells = "  ".join(f"{t:.0f}K: {v:.3f}" for t, v in rmse.items())
        print(f"{stage:28s} {cells}")

    print("total (E+F) RMSE per temperature regime:")
    report("untrained")
    for temp, _ in arrivals:
        Trainer(model, optimizer, datasets[temp], None,
                batch_size=4, seed=0).run(max_epochs=4, callbacks=[watcher])
        report(f"after fine-tune on {temp:.0f}K")

    print(f"\nFilter digested {watcher.steps} minibatches across all three "
          f"arrivals (memory factor lambda now {watcher.lam:.4f}).")
    print("The same filter state carried through all three arrivals: no "
          "hyperparameter retuning, no optimizer reset -- the paper's "
          "'one step toward online training'.")


if __name__ == "__main__":
    main()
