"""Close the loop: train a model, then run MD *with* the neural network.

This is what the minutes-scale training enables (the paper's motivation):
label configurations with the expensive reference method, train a DeePMD
surrogate fast, and drive long MD with the surrogate.  We compare the NN
potential's trajectory statistics against the reference potential.

Run:  python examples/nnmd_simulation.py
"""

import numpy as np

from repro import DeePMD, DeePMDCalculator, DeePMDConfig, FEKF, KalmanConfig, Trainer, generate_dataset
from repro.data import SYSTEMS
from repro.md import LangevinIntegrator, temperature


def main() -> None:
    print("1) Label Cu configurations with the reference potential...")
    data = generate_dataset("Cu", frames_per_temperature=24, size="small",
                            equilibration_steps=20, stride=3)
    train, test = data.split(0.8, seed=0)

    print("2) Train the surrogate with FEKF...")
    cfg = DeePMDConfig.scaled_down(rcut=4.0, nmax=18)
    model = DeePMD.for_dataset(train, cfg, seed=1)
    opt = FEKF(model, KalmanConfig(blocksize=2048, fused_update=True), fused_env=True)
    Trainer(model, opt, train, test, batch_size=8, seed=0).run(max_epochs=8)
    rmse = model.evaluate_rmse(test)
    print(f"   surrogate test RMSE: E {rmse['energy_rmse']:.4f} eV/atom, "
          f"F {rmse['force_rmse']:.4f} eV/A")

    print("3) Run 500 fs of Langevin MD with the NN potential at 500 K...")
    spec = SYSTEMS["Cu"]
    pos, cell, sp, reference = spec.build("small")
    masses = spec.masses(sp)
    calc = DeePMDCalculator(model, sp)

    def trajectory(potential, label):
        integ = LangevinIntegrator(potential, masses, cell, timestep=2.0,
                                   temperature=500.0, friction=0.02,
                                   rng=np.random.default_rng(3))
        st = integ.initialize(pos, temp=500.0)
        energies, temps = [], []

        def collect(s):
            energies.append(s.potential_energy / len(pos))
            temps.append(temperature(s.velocities, masses))

        integ.run(st, 250, callback=collect, callback_every=5)
        e = np.array(energies[10:])
        t = np.array(temps[10:])
        print(f"   {label:10s} <E/atom> = {e.mean():8.4f} eV  "
              f"(std {e.std():.4f})   <T> = {t.mean():6.1f} K")
        return e.mean()

    e_nn = trajectory(calc, "NN model")
    e_ref = trajectory(reference, "reference")
    print(f"\n   per-atom energy offset NN vs reference: {abs(e_nn - e_ref):.4f} eV")
    print("   (the NN trajectory samples the same thermodynamic state)")


if __name__ == "__main__":
    main()
