"""Data-parallel FEKF on a simulated GPU cluster (paper Sec. 3.3, Table 5).

Shards a large minibatch over simulated ranks, runs the byte-exact ring
allreduce for gradients, and verifies the central claim: every rank's P
replica stays bit-identical, so P never has to be communicated.  Prints
the per-step communication ledger next to what Naive-EKF would have moved.

The execution backend is pluggable: ranks run serially in-process
(default), on worker threads, or in persistent worker processes -- all
bit-identical.  Select with ``executor=`` below or the ``REPRO_EXECUTOR``
environment variable (``serial`` / ``thread`` / ``process``); on a
multi-core host the concurrent backends cut the real wall time while the
simulated cluster clock stays put.

Run:  python examples/distributed_training.py
      REPRO_EXECUTOR=thread python examples/distributed_training.py
"""

import numpy as np

from repro import DeePMD, DeePMDConfig, DistributedFEKF, KalmanConfig, Trainer, generate_dataset
from repro.parallel import allreduce_volume_bytes


def main() -> None:
    data = generate_dataset("Cu", frames_per_temperature=32, size="small",
                            equilibration_steps=20, stride=3)
    train, test = data.split(0.8, seed=0)
    cfg = DeePMDConfig.scaled_down(rcut=4.0, nmax=18)
    model = DeePMD.for_dataset(train, cfg, seed=1)

    world = 4
    opt = DistributedFEKF(
        model,
        world_size=world,
        kalman_cfg=KalmanConfig(blocksize=2048, fused_update=True),
        verify_replicas=True,  # assert bit-identical P on every update
        seed=0,
        executor=None,  # None -> $REPRO_EXECUTOR, default "serial"
    )
    print(f"Training on {world} simulated GPUs, batch 16 (4 frames/rank), "
          f"{opt.executor.name} executor...")
    result = Trainer(model, opt, train, test, batch_size=16, seed=0).run(
        max_epochs=6, verbose=True
    )

    steps = opt.timing.steps
    grad_mb = opt.comm.ledger.bytes_sent_per_rank / 1e6
    p_elements = sum(b.size**2 for b in opt.kalman.blocks)
    naive_mb = allreduce_volume_bytes(p_elements, world) / 1e6 * steps * 5

    print(f"\nSimulated wall clock: compute {opt.timing.compute_s:.1f}s + "
          f"comm {opt.timing.comm_s * 1e3:.2f}ms + "
          f"Kalman {opt.timing.kalman_s:.1f}s")
    print(f"Measured wall clock on this host: {opt.timing.wall_s:.1f}s "
          f"({opt.executor.name} executor)")
    print(f"Per-rank traffic over {steps} steps: {grad_mb:.2f} MB "
          f"(gradients + ABE scalars only)")
    print(f"Naive-EKF would additionally move its P replicas: ~{naive_mb:.0f} MB")
    print("P replicas verified bit-identical on every update -- zero P traffic.")
    best = min(result.history, key=lambda r: r.train_total)
    print(f"Best train E+F RMSE: {best.train_total:.4f}")
    opt.close()


if __name__ == "__main__":
    main()
