"""Table 3 -- dataset inventory (our synthetic analogs)."""

from __future__ import annotations

from ..data.systems import SYSTEMS, table3_rows
from .common import Report


def run(size: str = "paper", frames_per_temperature: int = 48) -> Report:
    report = Report(
        experiment="Table 3",
        title=f"dataset description (size preset: {size})",
        headers=["System", "Temperatures (K)", "Time step (fs)", "# snapshots", "atoms"],
        paper_reference="Table 3: 8 bulk systems, 10k-72k snapshots, 32-108 atoms",
    )
    for row in table3_rows(size):
        spec = SYSTEMS[row["system"]]
        report.add_row(
            row["system"],
            ",".join(str(int(t)) for t in row["temperatures_K"]),
            row["time_step_fs"],
            frames_per_temperature * len(spec.temperatures),
            row["atom_number"],
        )
    report.notes.append(
        "snapshots are sampled from classical-potential MD (the ab-initio "
        "substitute); counts are scaled down from the paper's 10k-72k"
    )
    return report
