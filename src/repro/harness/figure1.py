"""Figure 1 -- the repetitive retraining loop that motivates the paper.

NNMD development retrains one model 20-100 times as sampling uncovers new
configurations.  This harness executes a scaled version of that loop: a
stream of data arrivals at increasing temperatures, each triggering a
fine-tune of the same model with the same persistent Kalman filter, and
reports the wall time and accuracy of every retraining round -- the
"training one model in minutes" headline as a workflow.
"""

from __future__ import annotations

import time

import numpy as np

from ..data.dataset import Dataset
from ..data.systems import get_system
from ..md.sampler import sample_trajectory
from ..optim.ekf import FEKF
from ..train.trainer import Trainer
from .common import Report, experiment_setup, fast_kalman


def run(
    system: str = "Cu",
    temperatures: tuple[float, ...] = (300.0, 500.0, 800.0, 1100.0, 1400.0),
    frames_per_arrival: int = 16,
    epochs_per_round: int = 3,
    seed: int = 0,
) -> Report:
    spec = get_system(system)
    pos, cell, sp, pot = spec.build("small")
    masses = spec.masses(sp)

    def arrival(temp: float, arrival_seed: int) -> Dataset:
        traj = sample_trajectory(
            pot, pos, cell, sp, masses, [temp], frames_per_arrival,
            timestep=spec.timestep, stride=4, equilibration_steps=25,
            seed=arrival_seed,
        )
        return Dataset.from_trajectory(f"{system}@{temp:.0f}K", traj)

    datasets = {t: arrival(t, seed + k) for k, t in enumerate(temperatures)}

    setup = experiment_setup(system, frames_per_temperature=4, seed=seed)
    model = setup.model(seed=1)
    opt = FEKF(model, fast_kalman(), fused_env=True, seed=seed)

    report = Report(
        experiment="Figure 1",
        title=f"the retraining loop on {system}: one persistent filter, "
        f"{len(temperatures)} data arrivals",
        headers=["round", "new data", "retrain time (s)", "RMSE on new data", "RMSE on all seen"],
        paper_reference="Fig 1(d): the retraining loop runs 20-100 times per study",
    )
    seen: list[Dataset] = []
    for round_idx, temp in enumerate(temperatures, start=1):
        ds = datasets[temp]
        seen.append(ds)
        t0 = time.perf_counter()
        Trainer(model, opt, ds, None, batch_size=4, seed=seed).run(
            max_epochs=epochs_per_round
        )
        elapsed = time.perf_counter() - t0
        new_rmse = model.evaluate_rmse(ds, max_frames=8)["total_rmse"]
        all_rmse = float(
            np.mean([model.evaluate_rmse(d, max_frames=8)["total_rmse"] for d in seen])
        )
        report.add_row(
            round_idx,
            f"{frames_per_arrival} frames @ {temp:.0f}K",
            f"{elapsed:.1f}",
            f"{new_rmse:.4f}",
            f"{all_rmse:.4f}",
        )
    report.notes.append(
        "the same FEKF instance (P, lambda) persists across all rounds; "
        "no per-round hyperparameter retuning, matching Sec. 3.2's "
        "task-independent guideline"
    )
    return report
