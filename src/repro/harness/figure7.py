"""Figure 7 -- end-to-end times (a), kernel counts (b), iteration time (c).

(a) trains each system with Adam bs1, RLEKF bs1, FEKF bs32 (baseline
    kernels) and FEKF bs32 fully optimized (opt3 preset), all to the same
    total-RMSE target, and reports wall seconds + speedups over RLEKF.
(b) counts kernel launches of one energy-driven and one force-driven FEKF
    update under each optimization preset.
(c) reports the forward / gradient / Kalman phase times per iteration
    (1 energy + 4 force updates) under each preset.
"""

from __future__ import annotations

import numpy as np

from ..model.environment import make_batch
from ..optim.ekf import FEKF, RLEKF
from ..optim.kalman import KalmanConfig
from ..perf.presets import PRESET_ORDER, PRESETS
from ..perf.timer import profile_update
from ..train.trainer import TargetCriterion, Trainer
from .common import Report, experiment_setup, fast_kalman, parse_systems, scaled_adam


def run_7a(
    systems: str | None = None,
    batch_size: int = 32,
    adam_epochs: int = 40,
    ekf_epochs: int = 16,
    frames_per_temperature: int = 48,
    target_slack: float = 1.05,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Figure 7(a)",
        title="end-to-end training wall time to equal accuracy",
        headers=[
            "System",
            "target RMSE",
            "Adam bs1 (s)",
            "RLEKF bs1 (s)",
            "FEKF bs32 (s)",
            "FEKF opt (s)",
            "FEKF/RLEKF",
            "opt extra",
            "per-pass FEKF/RLEKF",
            "per-pass opt",
        ],
        paper_reference="Fig 7a: FEKF/RLEKF avg 11.6x; system opts avg 3.25x more",
    )
    for system in parse_systems(systems):
        setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)

        # establish the common accuracy target with an optimized FEKF probe
        probe = setup.model(seed=1)
        probe_opt = FEKF(probe, fast_kalman(), fused_env=True, seed=seed)
        probe_res = Trainer(
            probe, probe_opt, setup.train, setup.test, batch_size=batch_size, seed=seed
        ).run(max_epochs=ekf_epochs)
        target = probe_res.best_total("train") * target_slack
        criterion = TargetCriterion(target, metric="total")

        def time_to_target(optimizer_factory, bs: int, max_epochs: int) -> tuple[str, float, float]:
            """(tag, seconds-to-target, seconds-per-data-pass)."""
            model = setup.model(seed=1)
            opt = optimizer_factory(model)
            res = Trainer(
                model, opt, setup.train, setup.test, batch_size=bs, seed=seed
            ).run(max_epochs=max_epochs, target=criterion)
            # pure optimizer time; per-epoch evaluation overhead (an
            # artifact of our tiny datasets) is excluded
            t = res.wall_time_to_target if res.converged else res.total_train_time
            per_pass = res.total_train_time / res.history[-1].epoch
            tag = f"{t:.1f}" + ("" if res.converged else "+")
            return tag, t, per_pass

        kalman_naive = KalmanConfig(blocksize=2048, fused_update=False)
        t_adam, _, _ = time_to_target(
            lambda m: scaled_adam(m, setup.train.n_frames, adam_epochs), 1, adam_epochs
        )
        t_rlekf, v_rlekf, pass_rlekf = time_to_target(
            lambda m: RLEKF(m, kalman_naive, fused_env=False, seed=seed), 1, ekf_epochs
        )
        t_fekf, v_fekf, pass_fekf = time_to_target(
            lambda m: FEKF(m, kalman_naive, fused_env=False, seed=seed),
            batch_size,
            ekf_epochs,
        )
        t_opt, v_opt, pass_opt = time_to_target(
            lambda m: FEKF(
                m, fast_kalman(), fused_env=True, seed=seed
            ),
            batch_size,
            ekf_epochs,
        )
        report.add_row(
            system,
            f"{target:.4f}",
            t_adam,
            t_rlekf,
            t_fekf,
            t_opt,
            f"{v_rlekf / max(v_fekf, 1e-9):.1f}x",
            f"{v_fekf / max(v_opt, 1e-9):.1f}x",
            f"{pass_rlekf / max(pass_fekf, 1e-9):.1f}x",
            f"{pass_rlekf / max(pass_opt, 1e-9):.1f}x",
        )
    report.notes.append("+ = target not reached within the epoch budget (time is a lower bound)")
    report.notes.append(
        "per-pass columns compare seconds per full pass over the training "
        "data; at the paper's data volume (100-500x ours) epochs-to-target "
        "equalize across the EKF variants and the per-pass ratio is what "
        "the end-to-end speedup converges to (see EXPERIMENTS.md)"
    )
    return report


def _profile_all(system: str, batch_size: int, frames_per_temperature: int, seed: int):
    setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)
    model = setup.model(seed=1)
    idx = np.arange(min(batch_size, setup.train.n_frames))
    batch = make_batch(setup.train, idx, setup.cfg)
    profiles = []
    for name in PRESET_ORDER:
        preset = PRESETS[name]
        opt = FEKF(
            model,
            preset.kalman_config(blocksize=2048),
            fused_env=preset.fused_env,
            seed=seed,
        )
        # warm-up once so timings exclude first-touch costs
        profile_update(model, opt, batch, preset)
        profiles.append(profile_update(model, opt, batch, preset))
    return profiles


def run_7b(
    system: str = "Cu",
    batch_size: int = 64,
    frames_per_temperature: int = 32,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Figure 7(b)",
        title=f"CUDA-kernel-launch analog: op launches per update ({system}, bs {batch_size})",
        headers=["preset", "energy update", "force update", "iteration (1E+4F)", "vs baseline"],
        paper_reference="Fig 7b: 397->174 (energy), 846->281 (force), -64% overall",
    )
    profiles = _profile_all(system, batch_size, frames_per_temperature, seed)
    base = profiles[0].total_iteration_kernels()
    for prof in profiles:
        total = prof.total_iteration_kernels()
        report.add_row(
            prof.preset,
            prof.energy.total_kernels,
            prof.force.total_kernels,
            total,
            f"{100.0 * (1 - total / base):.0f}% fewer" if prof.preset != "baseline" else "-",
        )
    return report


def run_7c(
    system: str = "Cu",
    batch_size: int = 64,
    frames_per_temperature: int = 32,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Figure 7(c)",
        title=f"iteration time by phase ({system}, bs {batch_size})",
        headers=[
            "preset",
            "forward (ms)",
            "gradient (ms)",
            "KF update (ms)",
            "iteration (ms)",
            "speedup",
        ],
        paper_reference="Fig 7c: 3.48x faster iteration after all optimizations",
    )
    profiles = _profile_all(system, batch_size, frames_per_temperature, seed)
    base = profiles[0].total_iteration_s()
    for prof in profiles:
        fwd = (prof.energy.forward_s + 4 * prof.force.forward_s) * 1e3
        grd = (prof.energy.gradient_s + 4 * prof.force.gradient_s) * 1e3
        kf = (prof.energy.kalman_s + 4 * prof.force.kalman_s) * 1e3
        total = prof.total_iteration_s()
        report.add_row(
            prof.preset,
            f"{fwd:.1f}",
            f"{grd:.1f}",
            f"{kf:.1f}",
            f"{total * 1e3:.1f}",
            f"{base / total:.2f}x",
        )
    return report
