"""Profiling experiment: a short FEKF train under the op-level profiler.

Runs a few optimized-FEKF training steps with ``Tracer(profile=True)``
and reports the live per-phase breakdown -- kernel launches, wall
milliseconds, bytes moved, and estimated MFLOP per phase (the Figure
7(b)-style view, measured on a *real* training step rather than the
isolated ``profile_update`` probe).  This is also the CI profiling smoke
target::

    python -m repro.harness profile --trace-out profile-trace.json

which additionally writes the Chrome trace (open it in Perfetto), the
span JSONL, and the ``BENCH_profile.json`` run manifest next to it.
"""

from __future__ import annotations

import numpy as np

from ..model.environment import make_batch
from ..optim.ekf import FEKF
from ..telemetry.profile import format_ops_table, summarize_ops, summarize_phases
from ..telemetry.trace import Tracer, current_tracer
from .common import Report, experiment_setup, fast_kalman, parse_systems


def run(
    systems: str | None = None,
    steps: int = 2,
    batch_size: int = 8,
    frames_per_temperature: int = 8,
    seed: int = 0,
) -> Report:
    """Profile ``steps`` FEKF training steps on one system (the first of
    ``systems``; default Cu) and report the per-phase op breakdown."""
    system = parse_systems(systems)[0]
    setup = experiment_setup(
        system, frames_per_temperature=frames_per_temperature, seed=seed
    )
    model = setup.model(seed=1)
    opt = FEKF(model, fast_kalman(), fused_env=True, seed=seed)
    idx = np.arange(min(batch_size, setup.train.n_frames))
    batch = make_batch(setup.train, idx, setup.cfg)

    # profile under the ambient tracer when the CLI already installed a
    # profiling one (--trace-out), else under our own scoped tracer
    ambient = current_tracer()
    if ambient is not None and ambient.profiler is not None:
        tracer, own = ambient, None
    else:
        tracer = own = Tracer(capture_kernels=True, profile=True)
        own.__enter__()
    start = len(tracer.profiler.events)
    try:
        for step in range(steps):
            with tracer.span("train.step", step=step):
                opt.step_batch(batch)
    finally:
        if own is not None:
            own.__exit__(None, None, None)
    events = tracer.profiler.events[start:]

    report = Report(
        experiment="profile",
        title=f"op-level profile of {steps} FEKF steps ({system}, bs={len(idx)})",
        headers=["Phase", "kernels", "wall ms", "MB moved", "MFLOP"],
        paper_reference="Fig 7b: per-phase kernel launches of one FEKF iteration",
    )
    phases = summarize_phases(events)
    total = {"kernels": 0, "wall_s": 0.0, "bytes": 0, "flops": 0.0}
    for phase, agg in sorted(phases.items(), key=lambda kv: -kv[1]["wall_s"]):
        report.add_row(
            phase,
            agg["kernels"],
            agg["wall_s"] * 1e3,
            agg["bytes"] / (1024 * 1024),
            agg["flops"] / 1e6,
        )
        for k in total:
            total[k] += agg[k]
    report.add_row(
        "total",
        total["kernels"],
        total["wall_s"] * 1e3,
        total["bytes"] / (1024 * 1024),
        total["flops"] / 1e6,
    )
    top = sorted(
        summarize_ops(events).items(), key=lambda kv: -kv[1]["wall_s"]
    )[:3]
    report.notes.append(
        "hottest ops: "
        + ", ".join(f"{name} ({agg['wall_s'] * 1e3:.1f} ms)" for name, agg in top)
    )
    report.notes.append(
        "full top-K table: telemetry.format_ops_table(tracer.profiler.events)"
    )
    # keep the rendered ops table importable for the CLI / docs
    report.ops_table = format_ops_table(events)  # type: ignore[attr-defined]
    return report
