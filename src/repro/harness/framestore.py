"""Out-of-core frame store vs the in-memory pipeline (``BENCH_framestore.json``).

The online-learning story of the paper needs a label corpus that grows
without bound while training keeps running; :mod:`repro.data.framestore`
is the out-of-core answer.  This experiment certifies its three
promises on one machine:

* **bounded residency** -- sweeping a corpus much larger than the
  configured mapping budget (``max_open_shards`` x shard bytes) never
  maps more than the budget, and process RSS stays far below the corpus
  size (an in-memory dataset would grow by at least the corpus);
* **bit-identity** -- training from the store, with prefetch on any
  executor backend (serial/thread/process), produces bit-identical
  weights to the historic in-memory pipeline;
* **prefetch throughput** -- overlapping descriptor-batch construction
  with optimizer steps via :class:`~repro.data.loader.StreamingLoader`
  beats the synchronous loader by the gated factor (>=1.3x in CI).

``python -m repro.harness framestore --bench-dir .`` writes the
``repro.bench/v1`` manifest the ``framestore-smoke`` CI job asserts on;
``benchmarks/bench_framestore.py`` gates the same measurement core.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

import numpy as np

from ..data.framestore import ShardedFrameStore
from ..data.loader import make_loader
from ..optim.ekf import FEKF
from ..perf.memory import MB, process_rss_bytes
from .common import Report, experiment_setup, fast_kalman
from .manifest import write_manifest

__all__ = [
    "EXECUTORS",
    "ingest_jittered",
    "measure_rss_sweep",
    "measure_bit_identity",
    "measure_prefetch",
    "measure",
    "run",
]

EXECUTORS = ("serial", "thread", "process")


def ingest_jittered(
    path: str,
    base,
    n_frames: int,
    *,
    shard_capacity: int = 512,
    max_open_shards: int = 2,
    seed: int = 0,
    chunk: int = 256,
) -> tuple[ShardedFrameStore, float]:
    """Stream ``n_frames`` jittered resamples of ``base`` into a new
    store, ``chunk`` frames at a time -- the corpus is never materialized
    in RAM.  Returns ``(store, ingest_seconds)``."""
    rng = np.random.default_rng(seed)
    store = ShardedFrameStore.create(
        path,
        species=base.species,
        cell=base.cell,
        shard_capacity=shard_capacity,
        max_open_shards=max_open_shards,
        name="synthetic",
    )
    t0 = time.perf_counter()
    written = 0
    while written < n_frames:
        k = min(chunk, n_frames - written)
        sel = rng.integers(0, base.n_frames, size=k)
        pos = base.positions[sel] + rng.normal(
            scale=1e-3, size=(k, base.n_atoms, 3)
        )
        store.append(pos, base.energies[sel], base.forces[sel],
                     base.temperatures[sel])
        written += k
    return store, time.perf_counter() - t0


def measure_rss_sweep(store: ShardedFrameStore, window: int = 64) -> dict:
    """Read every frame of ``store`` in bounded windows, tracking the
    mapping budget and process residency."""
    corpus_bytes = store.n_frames * store.record_bytes
    bound_bytes = (
        store.max_open_shards * store.shard_capacity * store.record_bytes
    )
    rss0 = process_rss_bytes()
    mapped_peak = 0
    rss_peak = rss0
    t0 = time.perf_counter()
    for lo in range(0, store.n_frames, window):
        idx = np.arange(lo, min(lo + window, store.n_frames))
        store.get_frames(idx)
        mapped_peak = max(mapped_peak, store.cache_stats()["mapped_bytes"])
        rss_peak = max(rss_peak, process_rss_bytes())
    sweep_s = time.perf_counter() - t0
    return {
        "corpus_bytes": int(corpus_bytes),
        "mapped_bound_bytes": int(bound_bytes),
        "mapped_peak_bytes": int(mapped_peak),
        "mapped_within_bound": bool(mapped_peak <= bound_bytes),
        "rss_delta_bytes": int(rss_peak - rss0),
        "rss_below_corpus": bool(rss_peak - rss0 < corpus_bytes),
        "sweep_s": sweep_s,
        "sweep_frames_per_s": store.n_frames / sweep_s if sweep_s else 0.0,
    }


def _train_weights(source, cfg, *, batch_size: int, epochs: int, seed: int,
                   prefetch: bool = False, executor: str | None = None):
    """One short FEKF run over ``source``; returns the final flat weights."""
    from ..model.network import DeePMD
    from ..train.trainer import Trainer

    model = DeePMD.for_dataset(source, cfg, seed=1)
    opt = FEKF(model, fast_kalman(), fused_env=True, seed=11)
    trainer = Trainer(
        model, opt, source, None,
        batch_size=batch_size, seed=seed, eval_frames=8,
        prefetch=prefetch, prefetch_executor=executor, prefetch_workers=2,
    )
    try:
        trainer.run(max_epochs=epochs)
    finally:
        trainer.close()
    return model.params.flatten()


def measure_bit_identity(setup, store_dir: str, *, batch_size: int = 4,
                         epochs: int = 1, seed: int = 3) -> dict:
    """Store-backed prefetched training vs the in-memory pipeline, one
    executor backend at a time; every arm must be bit-identical."""
    path = os.path.join(store_dir, "exact")
    store = ShardedFrameStore.ingest(path, setup.train,
                                     shard_capacity=8, name="exact")
    try:
        ref = _train_weights(setup.train, setup.cfg,
                             batch_size=batch_size, epochs=epochs, seed=seed)
        per_executor = {}
        for ex in EXECUTORS:
            w = _train_weights(store, setup.cfg, batch_size=batch_size,
                               epochs=epochs, seed=seed,
                               prefetch=True, executor=ex)
            per_executor[ex] = bool(np.array_equal(ref, w))
        return {
            "executors": per_executor,
            "bit_identical": all(per_executor.values()),
        }
    finally:
        store.close()


def measure_prefetch(setup, store_dir: str, *, n_frames: int = 384,
                     batch_size: int = 16, workers: int = 2,
                     executor: str = "process", seed: int = 5) -> dict:
    """Synchronous vs prefetched batch delivery over the same store.

    Two measurements against identical fresh stores (cold neighbor
    caches, worker spawn excluded via :meth:`~repro.data.loader.
    StreamingLoader.warm_up`):

    * **throughput** -- both arms drain one epoch of descriptor batches
      with a trivial consumer, so the number is the loader's delivery
      rate; with ``workers`` rank processes building batches in parallel
      the streaming arm is the gated >=1.3x (needs >=2 host cores --
      on one core there is no second core to build batches on, the same
      caveat ``scaling.run_walltime`` documents);
    * **overlap** -- one training-paced epoch (a first-order optimizer
      consuming at realistic speed) reporting the hit/stall accounting:
      a high hit rate means batches were ready the moment the optimizer
      asked.
    """
    from ..model.network import DeePMD
    from ..optim.first_order import Adam

    path = os.path.join(store_dir, "prefetch")
    store, _ = ingest_jittered(path, setup.train, n_frames,
                               shard_capacity=64, max_open_shards=4,
                               seed=seed)
    store.close()

    def drain_arm(prefetch: bool) -> tuple[float, int]:
        src = ShardedFrameStore.open(path)
        loader = make_loader(
            src, batch_size, cfg=setup.cfg, seed=seed,
            prefetch=prefetch, executor=executor, workers=workers,
        )
        loader.warm_up()
        sink = 0.0
        batches = 0
        t0 = time.perf_counter()
        for _idx, batch in loader.iter_batches(setup.cfg, 0):
            sink += float(batch.energies[0])  # touch the delivered data
            batches += 1
        wall = time.perf_counter() - t0
        loader.close()
        src.close()
        assert np.isfinite(sink)
        return wall, batches

    def paced_arm() -> dict:
        src = ShardedFrameStore.open(path)
        model = DeePMD.for_dataset(src, setup.cfg, seed=1)
        opt = Adam(model)
        loader = make_loader(
            src, batch_size, cfg=setup.cfg, seed=seed,
            prefetch=True, executor=executor, workers=workers,
        )
        loader.warm_up()
        t0 = time.perf_counter()
        for _idx, batch in loader.iter_batches(setup.cfg, 0):
            opt.step_batch(batch)
        wall = time.perf_counter() - t0
        stats = dict(loader.stats)
        stats["wall_s"] = wall
        loader.close()
        src.close()
        return stats

    sync_wall, batches = drain_arm(False)
    stream_wall, _ = drain_arm(True)
    paced = paced_arm()
    served = paced["batches"]
    return {
        "executor": executor,
        "workers": workers,
        "host_cores": os.cpu_count() or 1,
        "batches": batches,
        "sync_s": sync_wall,
        "stream_s": stream_wall,
        "sync_batches_per_s": batches / sync_wall if sync_wall else 0.0,
        "stream_batches_per_s": batches / stream_wall if stream_wall else 0.0,
        "speedup": sync_wall / stream_wall if stream_wall else float("inf"),
        "hit_rate": paced["hits"] / served if served else 0.0,
        "stalls": paced["stalls"],
        "wait_s": paced["wait_s"],
        "paced_wall_s": paced["wall_s"],
    }


def measure(seed: int = 0, corpus_frames: int = 8192,
            prefetch_frames: int = 384, workdir: str | None = None) -> dict:
    """The full measurement: ingest, bounded sweep, bit-identity,
    prefetch throughput.  Returns a flat result dict."""
    setup = experiment_setup("Cu", frames_per_temperature=8, seed=seed)
    owned = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-framestore-")
    try:
        store, ingest_s = ingest_jittered(
            os.path.join(workdir, "corpus"), setup.train, corpus_frames,
            seed=seed,
        )
        try:
            ingest = {
                "frames": store.n_frames,
                "shards": len(store.shards),
                "ingest_s": ingest_s,
                "frames_per_s": store.n_frames / ingest_s if ingest_s else 0.0,
                "mb_per_s": (store.n_frames * store.record_bytes / MB / ingest_s
                             if ingest_s else 0.0),
            }
            sweep = measure_rss_sweep(store)
        finally:
            store.close()
        identity = measure_bit_identity(setup, workdir)
        prefetch = measure_prefetch(setup, workdir,
                                    n_frames=prefetch_frames, seed=seed + 5)
        return {"ingest": ingest, "sweep": sweep, "identity": identity,
                "prefetch": prefetch}
    finally:
        if owned:
            shutil.rmtree(workdir, ignore_errors=True)


def run(seed: int = 0, corpus_frames: int = 8192,
        bench_dir: "str | None" = None) -> Report:
    """The ``framestore`` harness experiment."""
    result = measure(seed=seed, corpus_frames=corpus_frames)
    ing, sweep = result["ingest"], result["sweep"]
    ident, pre = result["identity"], result["prefetch"]
    report = Report(
        experiment="framestore",
        title="out-of-core frame store: ingest, residency, prefetch",
        headers=["quantity", "value"],
        paper_reference=(
            "Sec. 6 online learning: the label corpus grows without "
            "bound while training keeps running"
        ),
    )
    report.add_row("ingest frames/s", f"{ing['frames_per_s']:.0f}")
    report.add_row("ingest MB/s", f"{ing['mb_per_s']:.1f}")
    report.add_row("corpus MB", f"{sweep['corpus_bytes'] / MB:.1f}")
    report.add_row("mapping budget MB", f"{sweep['mapped_bound_bytes'] / MB:.2f}")
    report.add_row("mapped peak MB", f"{sweep['mapped_peak_bytes'] / MB:.2f}")
    report.add_row("sweep RSS delta MB", f"{sweep['rss_delta_bytes'] / MB:.1f}")
    report.add_row("sweep frames/s", f"{sweep['sweep_frames_per_s']:.0f}")
    for ex, ok in ident["executors"].items():
        report.add_row(f"bit-identical ({ex} prefetch)", "yes" if ok else "NO")
    report.add_row(
        f"prefetch throughput ({pre['executor']} x{pre['workers']}, "
        f"{pre['host_cores']} cores)",
        f"{pre['speedup']:.2f}x",
    )
    report.add_row("prefetch hit rate (training-paced)",
                   f"{pre['hit_rate']:.2f}")
    report.notes.append(
        "residency: at most max_open_shards shard mappings stay live, so "
        "the mapped peak sits under the budget while the corpus is "
        f"{sweep['corpus_bytes'] / max(sweep['mapped_bound_bytes'], 1):.0f}x "
        "larger; an in-memory dataset would add at least the corpus to RSS"
    )
    report.notes.append(
        "bit-identity: the store-backed prefetched run replays the exact "
        "batch sequence of the historic in-memory loader on every "
        "executor backend"
    )
    if pre["host_cores"] < 2:
        report.notes.append(
            "prefetch throughput needs a second core to build batches "
            "on; on this single-core host expect ~1x (the CI gate runs "
            "on multi-core runners)"
        )
    report.metrics = {
        "ingest_frames_per_s": ing["frames_per_s"],
        "ingest_mb_per_s": ing["mb_per_s"],
        "corpus_bytes": sweep["corpus_bytes"],
        "mapped_bound_bytes": sweep["mapped_bound_bytes"],
        "mapped_peak_bytes": sweep["mapped_peak_bytes"],
        "mapped_within_bound": sweep["mapped_within_bound"],
        "rss_delta_bytes": sweep["rss_delta_bytes"],
        "rss_below_corpus": sweep["rss_below_corpus"],
        "bit_identical": ident["bit_identical"],
        "bit_identical_by_executor": ident["executors"],
        "prefetch_speedup": pre["speedup"],
        "prefetch_hit_rate": pre["hit_rate"],
        "prefetch_stalls": pre["stalls"],
        "prefetch_executor": pre["executor"],
        "prefetch_host_cores": pre["host_cores"],
        "sync_batches_per_s": pre["sync_batches_per_s"],
        "stream_batches_per_s": pre["stream_batches_per_s"],
    }
    if bench_dir:
        os.makedirs(bench_dir, exist_ok=True)
        path = write_manifest(
            bench_dir,
            "framestore",
            config={"seed": seed, "corpus_frames": corpus_frames},
            metrics=report.metrics,
        )
        report.notes.append(f"manifest: {path}")
    return report
