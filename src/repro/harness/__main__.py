"""CLI for the experiment harness: ``python -m repro.harness <experiment>``."""

from __future__ import annotations

import argparse
import inspect
import os
import sys
import time

from ..telemetry import span as _span
from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list'",
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="'quick' (Cu only, default), 'all', or comma-separated names",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="frames per temperature (overrides the experiment default)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of text tables"
    )
    parser.add_argument(
        "--out", default="RESULTS.md", help="output path for 'report'"
    )
    parser.add_argument(
        "--heavy", action="store_true",
        help="full-scale sweeps for 'report' (slow)",
    )
    serve = parser.add_argument_group("serve-bench")
    serve.add_argument(
        "--clients", type=int, default=None,
        help="concurrent client threads (serve-bench)",
    )
    serve.add_argument(
        "--requests", type=int, default=None,
        help="total requests across all clients (serve-bench)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=None, dest="max_batch",
        help="micro-batch size flush trigger (serve-bench)",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=None, dest="max_delay_ms",
        help="micro-batch deadline flush trigger, ms (serve-bench)",
    )
    serve.add_argument(
        "--serve-executor", default=None, dest="serve_executor",
        choices=("serial", "thread", "process"),
        help="worker-pool backend for the service (default: $REPRO_EXECUTOR)",
    )
    serve.add_argument(
        "--serve-workers", type=int, default=None, dest="serve_workers",
        help="worker ranks the micro-batch is sharded across (serve-bench)",
    )
    serve.add_argument(
        "--bench-dir", default=None, dest="bench_dir",
        help="directory for the BENCH_<name>.json manifest "
        "(serve-bench, online)",
    )
    online = parser.add_argument_group("online")
    online.add_argument(
        "--swaps", type=int, default=None,
        help="live model swaps to reach before stopping (online)",
    )
    online.add_argument(
        "--max-segments", type=int, default=None, dest="max_segments",
        help="exploration-segment budget for the closed loop (online)",
    )
    parser.add_argument(
        "--health-out", default=None, dest="health_out", metavar="PATH",
        help="attach the runtime health monitor: stream health snapshots "
        "and SLO alerts to this JSONL (watch live with 'python -m "
        "repro.telemetry.monitor PATH --follow') and write a "
        "BENCH_monitor.json manifest into --bench-dir "
        "(serve-bench, online)",
    )
    parser.add_argument(
        "--trace-out",
        default=os.environ.get("REPRO_TRACE_OUT") or None,
        metavar="PATH",
        help="profile the run and write a Chrome trace-event JSON here "
        "(open in Perfetto / chrome://tracing), plus the span JSONL and a "
        "BENCH_<experiment>.json run manifest next to it "
        "(default: $REPRO_TRACE_OUT)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    tracer = None
    if args.trace_out:
        from .. import telemetry

        tracer = telemetry.enable(capture_kernels=True, profile=True)

    metrics: dict = {}
    try:
        if args.experiment == "report":
            from .report import generate

            generate(args.out, systems=args.systems, heavy=args.heavy)
        else:
            names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
            for name in names:
                if name not in EXPERIMENTS:
                    print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
                    return 2
                fn = EXPERIMENTS[name]
                kwargs = {}
                sig = inspect.signature(fn)
                if "systems" in sig.parameters and args.systems is not None:
                    kwargs["systems"] = args.systems
                if "frames_per_temperature" in sig.parameters and args.frames is not None:
                    kwargs["frames_per_temperature"] = args.frames
                if "seed" in sig.parameters:
                    kwargs["seed"] = args.seed
                for opt in (
                    "clients", "requests", "max_batch", "max_delay_ms",
                    "serve_executor", "serve_workers", "bench_dir",
                    "swaps", "max_segments", "health_out",
                ):
                    value = getattr(args, opt)
                    if opt in sig.parameters and value is not None:
                        kwargs[opt] = value
                t0 = time.perf_counter()
                # a no-op span unless --trace-out installed a tracer; with
                # one, every experiment gets a top-level extent in the
                # exported trace (even purely analytic ones)
                with _span("harness.experiment", experiment=name):
                    report = fn(**kwargs)
                elapsed = time.perf_counter() - t0
                print(report.markdown() if args.markdown else report.format_table())
                print(f"[{name} completed in {elapsed:.1f}s]\n")
                metrics[f"{name}.seconds"] = elapsed
                metrics[f"{name}.rows"] = len(report.rows)
                if report.metrics:
                    metrics[name] = report.metrics
    finally:
        if tracer is not None:
            _finish_trace(tracer, args, metrics)
    return 0


def _finish_trace(tracer, args: argparse.Namespace, metrics: dict) -> None:
    """Uninstall the profiling tracer and write the --trace-out bundle:
    Chrome trace, span JSONL, and the BENCH_<experiment>.json manifest."""
    from .. import telemetry
    from .manifest import write_manifest

    telemetry.disable()
    path = args.trace_out
    telemetry.write_chrome_trace(path, tracer=tracer)
    base, _ = os.path.splitext(path)
    jsonl_path = base + ".spans.jsonl"
    with telemetry.JsonlExporter(jsonl_path) as out:
        for ev in tracer.events:
            out(ev)
        out.write_metrics(telemetry.REGISTRY)
    metrics["registry"] = telemetry.REGISTRY.snapshot()
    manifest_path = write_manifest(
        os.path.dirname(os.path.abspath(path)),
        args.experiment,
        config={k: v for k, v in vars(args).items() if v is not None},
        metrics=metrics,
        tracer=tracer,
    )
    print(f"[trace written to {path}; spans to {jsonl_path}; "
          f"manifest to {manifest_path}]")


if __name__ == "__main__":
    raise SystemExit(main())
