"""CLI for the experiment harness: ``python -m repro.harness <experiment>``."""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list'",
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="'quick' (Cu only, default), 'all', or comma-separated names",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="frames per temperature (overrides the experiment default)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of text tables"
    )
    parser.add_argument(
        "--out", default="RESULTS.md", help="output path for 'report'"
    )
    parser.add_argument(
        "--heavy", action="store_true",
        help="full-scale sweeps for 'report' (slow)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from .report import generate

        generate(args.out, systems=args.systems, heavy=args.heavy)
        return 0

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try 'list'", file=sys.stderr)
            return 2
        fn = EXPERIMENTS[name]
        kwargs = {}
        sig = inspect.signature(fn)
        if "systems" in sig.parameters and args.systems is not None:
            kwargs["systems"] = args.systems
        if "frames_per_temperature" in sig.parameters and args.frames is not None:
            kwargs["frames_per_temperature"] = args.frames
        if "seed" in sig.parameters:
            kwargs["seed"] = args.seed
        t0 = time.perf_counter()
        report = fn(**kwargs)
        elapsed = time.perf_counter() - t0
        print(report.markdown() if args.markdown else report.format_table())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
