"""Eager vs tape-compiled FEKF steps, per phase (``BENCH_compile.json``).

The paper attributes ~3.25x of its speedup to kernel fusion (Opt2) and
P·g / intermediate-result caching (Opt3): both are trace-then-specialize
optimizations that remove per-op dispatch and allocation from a step
whose op sequence is shape-static.  :mod:`repro.autograd.compile` is this
codebase's analog -- record the FEKF step's tape once, fuse elementwise
chains, replay against a reusable buffer arena -- so the honest
comparison is per-phase wall time of the same training run, eager vs
compiled, certified bit-identical.

Configuration mirrors where the optimization matters: fresh force graphs
(``reuse_force_graph=False``) make every force update run a full forward,
so the step is dominated by the ``forward_force`` + ``kf_update`` phases
the paper's Tables 4/5 name as hot.  Phase times come from
:func:`repro.telemetry.profile.phase_span_times` over the span stream --
the same clock for both runs, unlike op-event durations, which charge
eager ops for exactly the python dispatch the replay removes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..data.systems import generate_dataset
from ..model import DeePMD, DeePMDConfig, make_batch
from ..optim import FEKF, KalmanConfig
from ..telemetry.profile import phase_span_times
from ..telemetry.trace import Tracer
from .common import Report
from .manifest import write_manifest

__all__ = ["bench_config", "measure", "run"]

#: the phases the acceptance gate sums (the step's hot phases under the
#: fresh-graph dataflow)
HOT_PHASES = ("kf_update", "forward_force")


def bench_config() -> DeePMDConfig:
    """A dispatch-bound network: small enough that eager per-op overhead
    (what compilation removes) dominates over raw BLAS time."""
    return DeePMDConfig(
        embedding_widths=(6, 6, 6),
        m_less=4,
        fitting_widths=(8, 8, 8),
        rcut=3.4,
        rcut_smooth=2.0,
        nmax=12,
    )


def _one_run(dataset, cfg, compiled: bool, steps: int, batch_size: int,
             warmup: int = 2):
    """One training run; returns (phase_times, loss_history, weights, opt)."""
    model = DeePMD.for_dataset(dataset, cfg, seed=1)
    opt = FEKF(
        model,
        KalmanConfig(blocksize=1024, fused_update=True),
        fused_env=False,
        reuse_force_graph=False,
        compiled=compiled,
        seed=11,
    )
    batch = make_batch(dataset, np.arange(batch_size), cfg)
    hist = []
    for _ in range(warmup):  # tracing + plan compilation land here
        hist.append(float(opt.step_batch(batch)["force_abe"]))
    with Tracer(keep_events=True) as tr:
        for _ in range(steps):
            hist.append(float(opt.step_batch(batch)["force_abe"]))
    return phase_span_times(tr.events), hist, model.params.flatten(), opt


def measure(dataset=None, cfg=None, steps: int = 6, batch_size: int = 2,
            repeats: int = 3) -> dict:
    """Measure eager vs compiled phase times (min over ``repeats``) and
    certify bit-identity.  Returns a flat result dict."""
    if dataset is None:
        dataset = generate_dataset(
            "Cu", frames_per_temperature=6, size="small",
            equilibration_steps=8, stride=2,
        )
    if cfg is None:
        cfg = bench_config()

    runs = {True: [], False: []}
    ref = {}
    stats = None
    for _ in range(repeats):
        for compiled in (False, True):
            phases, hist, weights, opt = _one_run(
                dataset, cfg, compiled, steps, batch_size
            )
            runs[compiled].append(phases)
            if compiled:
                stats = opt.stats()["compiled"]
            prev = ref.setdefault("hist", hist)
            if hist != prev or not np.array_equal(
                weights, ref.setdefault("weights", weights)
            ):
                raise AssertionError(
                    "eager and compiled trajectories diverged "
                    f"(compiled={compiled})"
                )

    def best(samples: list, phase: str) -> float:
        return min(s.get(phase, 0.0) for s in samples)

    phases = sorted(
        set().union(*(set(s) for s in runs[False] + runs[True]))
    )
    per_phase = {
        p: {"eager_s": best(runs[False], p), "compiled_s": best(runs[True], p)}
        for p in phases
    }
    hot_eager = sum(per_phase[p]["eager_s"] for p in HOT_PHASES if p in per_phase)
    hot_comp = sum(per_phase[p]["compiled_s"] for p in HOT_PHASES if p in per_phase)
    return {
        "phases": per_phase,
        "hot_eager_s": hot_eager,
        "hot_compiled_s": hot_comp,
        "hot_speedup": hot_eager / hot_comp if hot_comp else float("inf"),
        "bit_identical": True,  # measure() raised otherwise
        "steps": steps,
        "batch_size": batch_size,
        "repeats": repeats,
        "plan_stats": stats,
    }


def disabled_overhead(dataset=None, cfg=None, steps: int = 12,
                      batch_size: int = 4, repeats: int = 5) -> float:
    """Relative step-wall overhead of the (disabled) engine hooks: a
    plain eager run vs one where ``compiled=True`` but the engine stands
    down (``fused_env=True`` disables it), so every gradient call pays
    only the hook checks.  Must stay under the 5%% budget."""
    if dataset is None:
        dataset = generate_dataset(
            "Cu", frames_per_temperature=6, size="small",
            equilibration_steps=8, stride=2,
        )
    if cfg is None:
        cfg = bench_config()

    def wall(compiled: bool) -> float:
        model = DeePMD.for_dataset(dataset, cfg, seed=1)
        opt = FEKF(model, KalmanConfig(blocksize=1024, fused_update=True),
                   fused_env=True, compiled=compiled, seed=11)
        batch = make_batch(dataset, np.arange(batch_size), cfg)
        opt.step_batch(batch)  # warm caches
        t0 = time.perf_counter()
        for _ in range(steps):
            opt.step_batch(batch)
        return time.perf_counter() - t0

    # interleave the arms so machine-load drift hits both equally; the
    # min is each arm's noise floor
    samples = [(wall(False), wall(True)) for _ in range(repeats)]
    off = min(s[0] for s in samples)
    hooked = min(s[1] for s in samples)
    return hooked / off - 1.0


def run(seed: int = 0, steps: int = 6, batch_size: int = 2,
        repeats: int = 3, bench_dir: "str | None" = None) -> Report:
    """The ``compile`` harness experiment."""
    del seed  # the run is deterministic by construction
    result = measure(steps=steps, batch_size=batch_size, repeats=repeats)
    report = Report(
        experiment="compile",
        title="Eager vs tape-compiled FEKF step, per phase",
        headers=["phase", "eager ms", "compiled ms", "speedup"],
        paper_reference="Sec. 5 Opt2 (kernel fusion) / Opt3 (P·g and "
                        "intermediate caching), Tables 4-5 phase split",
    )
    for phase, t in sorted(result["phases"].items()):
        spd = t["eager_s"] / t["compiled_s"] if t["compiled_s"] else float("inf")
        report.add_row(phase, t["eager_s"] * 1e3, t["compiled_s"] * 1e3,
                       f"{spd:.2f}x")
    report.add_row("hot (kf_update+forward_force)",
                   result["hot_eager_s"] * 1e3,
                   result["hot_compiled_s"] * 1e3,
                   f"{result['hot_speedup']:.2f}x")
    st = result["plan_stats"] or {}
    report.notes.append(
        "bit-identical loss history and final weights across both runs"
    )
    if st:
        plan = next(iter(st.get("plans", {}).values()), {})
        report.notes.append(
            f"plan: {plan.get('traced_ops', 0)} traced ops -> "
            f"{plan.get('steps', 0)} fused steps, "
            f"{st.get('replays', 0)} replays, {st.get('fallbacks', 0)} "
            f"fallbacks, compile {st.get('compile_time_s', 0.0) * 1e3:.1f} ms"
        )
    report.metrics = {
        "hot_speedup": result["hot_speedup"],
        "hot_eager_s": result["hot_eager_s"],
        "hot_compiled_s": result["hot_compiled_s"],
        "bit_identical": result["bit_identical"],
        "phases": result["phases"],
        "plan_stats": st,
    }
    if bench_dir:
        os.makedirs(bench_dir, exist_ok=True)
        path = write_manifest(
            bench_dir,
            "compile",
            config={"steps": steps, "batch_size": batch_size,
                    "repeats": repeats, "reuse_force_graph": False,
                    "fused_update": True, "blocksize": 1024},
            metrics=report.metrics,
        )
        report.notes.append(f"manifest: {path}")
    return report
