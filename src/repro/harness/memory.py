"""Sec. 5.3 "Memory reduction" -- P footprint and update-kernel peaks.

Reproduces the paper's arithmetic at the full-size network (analytic) and
backs it with tracemalloc measurements of the two P-update kernels on the
largest block that fits comfortably in this machine's RAM.
"""

from __future__ import annotations

from ..perf.memory import footprint_report, measured_update_peak, paper_layer_sizes
from .common import Report


def run(measure_blocksize: int = 4096) -> Report:
    rep = footprint_report(paper_layer_sizes(), blocksize=10240)
    report = Report(
        experiment="Sec 5.3 memory",
        title="P-matrix footprint and update peaks (paper-size network)",
        headers=["quantity", "this repo (MB)", "paper (MB)"],
        paper_reference="Sec 5.3: blocks {1350,10240,9760,5301}; P 1755; naive peak ~3405 (3380 measured); fused 1805",
    )
    report.add_row("num parameters", rep.num_params, 26651)
    report.add_row("block shapes", str(rep.block_shapes), "{1350,10240,9760,5301}")
    report.add_row("P resident", f"{rep.p_resident_mb:.0f}", 1755)
    report.add_row("peak, framework P update", f"{rep.naive_peak_mb:.0f}", "3405 (theory) / 3380 (meas.)")
    report.add_row("peak, fused P update", f"{rep.fused_peak_mb:.0f}", 1805)

    layers = [(0, measure_blocksize + 280), (1, 600), (2, 25)]
    naive = measured_update_peak(layers, measure_blocksize, fused=False)
    fused = measured_update_peak(layers, measure_blocksize, fused=True)
    report.add_row(
        f"measured transient @N_b={measure_blocksize} (naive)", f"{naive:.1f}", "-"
    )
    report.add_row(
        f"measured transient @N_b={measure_blocksize} (fused)", f"{fused:.2f}", "-"
    )
    report.notes.append(
        "transients measured with tracemalloc over 3 updates, resident P excluded; "
        "the fused kernel's in-place triangular downdate removes the N_b^2 temporaries"
    )
    return report
