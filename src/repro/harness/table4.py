"""Table 4 -- FEKF(bs 32) vs Adam(bs 1): convergence ratio and RMSE.

For each system: train Adam bs1 to its best total RMSE within the epoch
budget; train FEKF bs32 to the same target; report the epoch convergence
ratio (FEKF/Adam; paper reports 0.07-0.23) and the train/test RMSE of
both optimizers (paper: FEKF slightly lower, no generalization gap).
"""

from __future__ import annotations

from ..optim.ekf import FEKF
from ..train.trainer import TargetCriterion, Trainer
from .common import Report, experiment_setup, fast_kalman, parse_systems, scaled_adam


def run(
    systems: str | None = None,
    batch_size: int = 32,
    adam_epochs: int = 40,
    fekf_epochs: int = 20,
    frames_per_temperature: int = 48,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Table 4",
        title=f"convergence ratio and RMSE: FEKF bs{batch_size} vs Adam bs1",
        headers=[
            "System",
            "Adam epochs",
            "conv. ratio",
            "Adam RMSE train/test",
            "FEKF RMSE train/test",
            "gap(FEKF)",
        ],
        paper_reference="Table 4: ratios 0.07-0.23; FEKF RMSE <= Adam; small generalization gap",
    )
    for system in parse_systems(systems):
        setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)

        model_a = setup.model(seed=1)
        adam = scaled_adam(model_a, setup.train.n_frames, adam_epochs)
        res_a = Trainer(model_a, adam, setup.train, setup.test, batch_size=1, seed=seed).run(
            max_epochs=adam_epochs
        )
        target = res_a.best_total("train")
        adam_epochs_used = next(
            r.epoch for r in res_a.history if r.train_total <= target * 1.001
        )
        best_a = min(res_a.history, key=lambda r: r.train_total)

        model_f = setup.model(seed=1)
        fekf = FEKF(model_f, fast_kalman(), fused_env=True, seed=seed)
        res_f = Trainer(
            model_f, fekf, setup.train, setup.test, batch_size=batch_size, seed=seed
        ).run(max_epochs=fekf_epochs, target=TargetCriterion(target, metric="total"))
        fekf_epochs_used = (
            res_f.epochs_to_target if res_f.converged else fekf_epochs
        )
        best_f = min(res_f.history, key=lambda r: r.train_total)

        ratio = fekf_epochs_used / adam_epochs_used
        report.add_row(
            system,
            adam_epochs_used,
            f"{ratio:.3f}" + ("" if res_f.converged else "*"),
            f"{best_a.train_total:.4f}/{best_a.test_total:.4f}",
            f"{best_f.train_total:.4f}/{best_f.test_total:.4f}",
            f"{abs(best_f.test_total - best_f.train_total):.4f}",
        )
    report.notes.append("RMSE = energy RMSE (eV/atom) + force RMSE (eV/A), the paper's accuracy measure")
    report.notes.append("* = FEKF epoch budget exhausted before reaching the Adam target")
    return report
