"""Shared infrastructure for the per-experiment harness modules.

Each experiment module exposes ``run(...) -> Report``; reports render as
aligned text tables (the "same rows the paper reports") and can be
appended to EXPERIMENTS.md.  ``experiment_setup`` standardizes dataset
generation and model configuration across experiments: per-system
descriptor cutoffs (clamped to the minimum-image radius), Nm sized from
the data, scaled-down network by default, paper network on request.
"""

from __future__ import annotations

import contextlib
import io
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..data.systems import SYSTEMS, generate_dataset
from ..md.neighbor import max_neighbor_count
from ..model.config import DeePMDConfig
from ..model.network import DeePMD
from ..optim.base import make_optimizer
from ..optim.first_order import Adam
from ..optim.kalman import KalmanConfig


@dataclass
class Report:
    """A rendered experiment result: headers + rows + commentary."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_reference: str = ""
    #: headline numbers for the run manifest (merged into the
    #: ``BENCH_<experiment>.json`` metrics by the CLI)
    metrics: dict = field(default_factory=dict)

    def add_row(self, *values) -> None:
        self.rows.append(list(values))

    def format_table(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        out = io.StringIO()
        out.write(f"== {self.experiment}: {self.title} ==\n")
        if self.paper_reference:
            out.write(f"(paper: {self.paper_reference})\n")
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in cells:
            out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def markdown(self) -> str:
        out = io.StringIO()
        out.write(f"### {self.experiment}: {self.title}\n\n")
        if self.paper_reference:
            out.write(f"*Paper reference: {self.paper_reference}*\n\n")
        out.write("| " + " | ".join(self.headers) + " |\n")
        out.write("|" + "|".join("---" for _ in self.headers) + "|\n")
        for row in self.rows:
            out.write("| " + " | ".join(_fmt(v) for v in row) + " |\n")
        out.write("\n")
        for note in self.notes:
            out.write(f"> {note}\n")
        out.write("\n")
        return out.getvalue()


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.4f}".rstrip("0").rstrip(".")
    return str(v)


# ---------------------------------------------------------------------------
# standardized experiment setup
# ---------------------------------------------------------------------------
DEFAULT_SYSTEMS: tuple[str, ...] = tuple(SYSTEMS)


@dataclass
class ExperimentSetup:
    """Everything a training experiment needs for one system."""

    system: str
    train: Dataset
    test: Dataset
    cfg: DeePMDConfig

    def model(self, seed: int = 1) -> DeePMD:
        return DeePMD.for_dataset(self.train, self.cfg, seed=seed)


def experiment_setup(
    system: str,
    frames_per_temperature: int = 32,
    size: str = "small",
    network: str = "scaled",
    seed: int = 0,
    nmax_cap: int = 26,
) -> ExperimentSetup:
    """Generate data and a matched model config for one Table 3 system."""
    spec = SYSTEMS[system]
    ds = generate_dataset(
        system,
        frames_per_temperature=frames_per_temperature,
        size=size,
        seed=seed,
        equilibration_steps=30,
        stride=4,
    )
    # never clamp the descriptor below the first coordination shell (see
    # repro.data.systems._clamp for the rationale)
    rcut = min(spec.rcut, max(ds.cell.max_cutoff() * 0.99, spec.first_shell * 1.35))
    # size Nm from the actual coordination at this cutoff
    counts = [
        max_neighbor_count(ds.positions[t], ds.cell, rcut)
        for t in np.linspace(0, ds.n_frames - 1, 5).astype(int)
    ]
    nmax = min(max(counts) + 2, nmax_cap)
    if network == "paper":
        cfg = DeePMDConfig.paper(rcut=rcut, nmax=nmax)
    else:
        cfg = DeePMDConfig.scaled_down(rcut=rcut, nmax=nmax)
    train, test = ds.split(0.8, seed=seed)
    return ExperimentSetup(system=system, train=train, test=test, cfg=cfg)


def scaled_adam(
    model: DeePMD,
    steps_per_epoch: int,
    planned_epochs: int,
    batch_scale_lr: bool = True,
) -> Adam:
    """Adam with the paper's protocol, decay horizon scaled to the run.

    The paper decays x0.95 every 5000 steps over ~1M-step runs (~200
    decays); we keep the same decay *ratio* across the planned run length
    so the prefactor schedule traverses the same range.
    """
    total = max(steps_per_epoch * planned_epochs, 1)
    decay_steps = max(total // 200, 10)
    return make_optimizer(
        "adam",
        model,
        lr0=1e-3,
        decay_rate=0.95,
        decay_steps=decay_steps,
        batch_scale_lr=batch_scale_lr,
    )


def fast_kalman(blocksize: int = 2048, **overrides) -> KalmanConfig:
    """Kalman config used by convergence-focused experiments: fused P
    kernel (identical numerics, ~40x faster) and a blocksize matched to
    the scaled-down network."""
    cfg = KalmanConfig(blocksize=blocksize, fused_update=True)
    for k, v in overrides.items():
        setattr(cfg, k, v)
    return cfg


@contextlib.contextmanager
def health_monitor(
    health_out: Optional[str],
    service=None,
    learner=None,
    interval_s: float = 0.25,
    bench_dir: Optional[str] = None,
):
    """Attach the runtime health monitor to an experiment (or not).

    With ``health_out=None`` this is a no-op yielding ``None`` -- the
    experiments call it unconditionally and the CLI's ``--health-out``
    flag decides whether a monitor rides along.  Otherwise: snapshots and
    SLO alerts stream to the ``health_out`` JSONL (viewable live with
    ``python -m repro.telemetry.monitor <path> --follow``), and on exit a
    ``repro.bench/v1`` manifest ``BENCH_monitor.json`` lands in
    ``bench_dir`` carrying :meth:`HealthMonitor.summary` (what the
    ``monitor-smoke`` CI job asserts on).  Experiments looping over
    several systems reopen the monitor per system; the file and manifest
    record the last one.
    """
    if health_out is None:
        yield None
        return
    from ..telemetry import JsonlExporter
    from ..telemetry.monitor import HealthMonitor
    from .manifest import write_manifest

    with JsonlExporter(health_out) as out:
        mon = HealthMonitor(interval_s=interval_s, exporter=out)
        if service is not None:
            mon.watch_service(service)
        if learner is not None:
            mon.watch_learner(learner)
        with mon:
            yield mon
        if bench_dir:
            os.makedirs(bench_dir, exist_ok=True)
            write_manifest(
                bench_dir,
                "monitor",
                config={"health_out": health_out, "interval_s": interval_s},
                metrics=mon.summary(),
            )


def parse_systems(arg: Optional[str]) -> Sequence[str]:
    if not arg or arg == "quick":
        return ("Cu",)
    if arg == "all":
        return DEFAULT_SYSTEMS
    names = [s.strip() for s in arg.split(",") if s.strip()]
    for n in names:
        if n not in SYSTEMS:
            raise KeyError(f"unknown system {n!r}")
    return names
