"""Sec. 5.3 "Scalability analysis" -- communication volume vs #GPUs.

FEKF communicates only the reduced gradient (ring-allreduce over ~N
weights) plus O(#GPUs) scalars for the ABEs; the P replicas stay
bit-identical and are never moved.  Naive-EKF would have to allreduce its
per-sample P replicas: O((r-1) * N * N_b) bytes.  This harness prints the
ledger-verified FEKF volume next to the closed-form Naive-EKF volume for
the paper's network.
"""

from __future__ import annotations

import numpy as np

from ..optim.blocks import split_blocks
from ..parallel.comm import SimCommunicator, allreduce_volume_bytes
from ..perf.memory import paper_layer_sizes
from .common import Report


def run(gpu_counts: tuple[int, ...] = (2, 4, 8, 16), blocksize: int = 10240) -> Report:
    layers = paper_layer_sizes()
    num_params = sum(s for _, s in layers)
    blocks = split_blocks(layers, blocksize)
    p_elements = sum(b.size * b.size for b in blocks)

    report = Report(
        experiment="Sec 5.3 scaling",
        title=f"per-step communication, paper network ({num_params} weights)",
        headers=[
            "#GPUs",
            "FEKF grad (MB, ledger)",
            "FEKF ABE (B)",
            "Naive-EKF P move (MB)",
            "ratio",
        ],
        paper_reference="Sec 5.3: FEKF gradient ~0.2 MB; ABE O(#GPUs); P never communicated",
    )
    rng = np.random.default_rng(0)
    for r in gpu_counts:
        comm = SimCommunicator(r)
        bufs = [rng.normal(size=num_params) for _ in range(r)]
        comm.ring_allreduce(bufs)
        grad_mb = comm.ledger.bytes_sent_per_rank / 1e6
        abe_bytes = comm.cost_model and 8 * 2 * (r - 1)  # scalar ring volume
        closed = allreduce_volume_bytes(num_params, r) / 1e6
        assert abs(grad_mb - closed) / closed < 1e-6
        naive_mb = allreduce_volume_bytes(p_elements, r) / 1e6
        report.add_row(
            r,
            f"{grad_mb:.3f}",
            abe_bytes,
            f"{naive_mb:.0f}",
            f"{naive_mb / grad_mb:.0f}x",
        )
    report.notes.append(
        "FEKF column is measured from the chunked ring-allreduce ledger and "
        "matches the closed form 2(r-1)/r * N * 8B; gradient memory ~0.2 MB "
        "as the paper states"
    )
    return report
