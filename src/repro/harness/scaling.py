"""Sec. 5.3 "Scalability analysis" -- communication volume vs #GPUs.

FEKF communicates only the reduced gradient (ring-allreduce over ~N
weights) plus O(#GPUs) scalars for the ABEs; the P replicas stay
bit-identical and are never moved.  Naive-EKF would have to allreduce its
per-sample P replicas: O((r-1) * N * N_b) bytes.  This harness prints the
ledger-verified FEKF volume next to the closed-form Naive-EKF volume for
the paper's network.
"""

from __future__ import annotations

import numpy as np

from ..optim.blocks import split_blocks
from ..parallel.comm import SimCommunicator, allreduce_volume_bytes
from ..perf.memory import paper_layer_sizes
from .common import Report, experiment_setup, fast_kalman


def run(gpu_counts: tuple[int, ...] = (2, 4, 8, 16), blocksize: int = 10240) -> Report:
    layers = paper_layer_sizes()
    num_params = sum(s for _, s in layers)
    blocks = split_blocks(layers, blocksize)
    p_elements = sum(b.size * b.size for b in blocks)

    report = Report(
        experiment="Sec 5.3 scaling",
        title=f"per-step communication, paper network ({num_params} weights)",
        headers=[
            "#GPUs",
            "FEKF grad (MB, ledger)",
            "FEKF ABE (B)",
            "Naive-EKF P move (MB)",
            "ratio",
        ],
        paper_reference="Sec 5.3: FEKF gradient ~0.2 MB; ABE O(#GPUs); P never communicated",
    )
    rng = np.random.default_rng(0)
    for r in gpu_counts:
        comm = SimCommunicator(r)
        bufs = [rng.normal(size=num_params) for _ in range(r)]
        comm.ring_allreduce(bufs)
        grad_mb = comm.ledger.bytes_sent_per_rank / 1e6
        abe_bytes = comm.cost_model and 8 * 2 * (r - 1)  # scalar ring volume
        closed = allreduce_volume_bytes(num_params, r) / 1e6
        assert abs(grad_mb - closed) / closed < 1e-6
        naive_mb = allreduce_volume_bytes(p_elements, r) / 1e6
        report.add_row(
            r,
            f"{grad_mb:.3f}",
            abe_bytes,
            f"{naive_mb:.0f}",
            f"{naive_mb / grad_mb:.0f}x",
        )
    report.notes.append(
        "FEKF column is measured from the chunked ring-allreduce ledger and "
        "matches the closed form 2(r-1)/r * N * 8B; gradient memory ~0.2 MB "
        "as the paper states"
    )
    return report


def run_walltime(
    world_sizes: tuple[int, ...] = (1, 2, 4),
    executors: tuple[str, ...] = ("serial", "thread"),
    steps: int = 2,
    batch_size: int = 8,
) -> Report:
    """Modeled vs measured per-step time across executor backends.

    ``modeled_time_s`` is the simulated-cluster clock (max-rank compute +
    alpha-beta comm + Kalman); ``wall_time_s`` is real elapsed time of
    ``step_batch`` on this host, which is what the thread/process
    executors actually change.  Speedups are relative to world_size=1 of
    the same backend; on a single-core host expect ~1x (the table still
    demonstrates that all backends run and stay bit-identical).
    """
    import os

    from ..data.loader import make_loader
    from ..model.environment import make_batch
    from ..parallel.trainer import DistributedFEKF

    setup = experiment_setup("Cu", frames_per_temperature=8)
    loader = make_loader(setup.train, batch_size, seed=0)
    batches = [
        make_batch(setup.train, idx, setup.cfg) for idx in loader.epoch(0)
    ][:steps]

    report = Report(
        experiment="Sec 5.3 scaling (wall time)",
        title=f"executor backends, {os.cpu_count()} host cores",
        headers=[
            "executor",
            "world",
            "wall_time_s/step",
            "modeled_time_s/step",
            "speedup(wall)",
            "weights match",
        ],
        paper_reference=(
            "Sec 5.3: near-linear scaling of the funnel dataflow; here the "
            "modeled cluster clock sits next to measured host wall time"
        ),
    )
    world_refs: dict[int, np.ndarray] = {}
    for ex in executors:
        base_wall = None
        for world in world_sizes:
            model = setup.model(seed=1)
            dist = DistributedFEKF(
                model, world_size=world, kalman_cfg=fast_kalman(),
                seed=7, executor=ex,
            )
            for b in batches:
                stats = dist.step_batch(b)
            dist.close()
            wall = stats["wall_time_s"] / dist.timing.steps
            modeled = stats["modeled_time_s"] / dist.timing.steps
            if base_wall is None:
                base_wall = wall
            w = model.params.flatten()
            if world not in world_refs:
                world_refs[world] = w
                match = "ref"
            else:
                match = "yes" if np.array_equal(world_refs[world], w) else "NO"
            report.add_row(
                ex, world, f"{wall:.3f}", f"{modeled:.3f}",
                f"{base_wall / wall:.2f}x", match,
            )
    report.notes.append(
        "every cell trains from the same seed; 'weights match' checks "
        "bit-identical final weights across executor backends at the same "
        "world size (across world sizes the reduction order differs, so "
        "agreement is ~1e-10, not bitwise)"
    )
    return report
