"""repro.harness -- regenerate every table and figure of the paper.

Run from the command line::

    python -m repro.harness list
    python -m repro.harness table1 --systems Cu,Al
    python -m repro.harness all --systems quick

or call the per-experiment ``run`` functions directly.
"""

from . import ablations, compile_bench, figure1, figure4, figure7, framestore, memory, online, profile, scaling, serve_bench, table1, table3, table4, table5
from .common import Report
from .manifest import build_manifest, write_manifest

#: experiment name -> zero-/keyword-arg callable returning a Report
EXPERIMENTS = {
    "table1": table1.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure1": figure1.run,
    "figure4": figure4.run,
    "figure7a": figure7.run_7a,
    "figure7b": figure7.run_7b,
    "figure7c": figure7.run_7c,
    "memory": memory.run,
    "scaling": scaling.run,
    "scaling_walltime": scaling.run_walltime,
    "ablations": ablations.run,
    "ablation_lambda_nu": ablations.run_lambda_nu,
    "ablation_dataflow": ablations.run_funnel_vs_fusiform,
    "ablation_force_graph": ablations.run_force_graph_reuse,
    "profile": profile.run,
    "serve-bench": serve_bench.run,
    "online": online.run,
    "compile": compile_bench.run,
    "framestore": framestore.run,
}

__all__ = ["EXPERIMENTS", "Report", "build_manifest", "write_manifest"]
