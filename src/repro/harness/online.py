"""Closed-loop online learning: force RMSE vs wall-clock, live.

The claim under test is the paper's destination: training fast enough
that improving the model and serving it are one running system.  The
experiment starts an :class:`repro.serve.InferenceService` over a
committee, points external client traffic at it, and runs the
:class:`repro.online.OnlineLearner` pipeline around it -- MD exploration
streaming candidates through the uncertainty gate, reference labeling,
persistent-FEKF incremental training, and hot swaps whenever the
candidate weights beat the served weights on held-out force RMSE.

What the table shows, per promoted swap: the wall-clock time at which
the swap went live and the held-out force RMSE it serves from then on --
a strictly decreasing column, because the promotion gate only swaps on
measured improvement.  The label ledger (requested vs avoided) prices
the uncertainty gate against labeling everything; the client columns
certify zero downtime (no failed responses while weights changed
underneath).

Always writes a ``repro.bench/v1`` manifest ``BENCH_online.json`` into
``--bench-dir`` carrying the swap trajectory, ledger, and client-traffic
counters (what the ``online-smoke`` CI job asserts on).
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..data.systems import SYSTEMS
from ..model.ensemble import ModelEnsemble
from ..online import OnlineConfig, OnlineLearner
from ..serve import ServeError
from .common import (
    Report,
    experiment_setup,
    fast_kalman,
    health_monitor,
    parse_systems,
)
from .manifest import write_manifest


class _ClientTraffic:
    """Background request stream against the live service.

    Cycles ``clients`` threads over a frame pool until stopped; counts
    responses, serve-layer errors, and every model version observed --
    the zero-downtime evidence."""

    def __init__(self, service, pool, species, cell, clients: int):
        self.service = service
        self.pool = pool
        self.species = species
        self.cell = cell
        self.responses = 0
        self.errors = 0
        self.versions: set[int] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._client, args=(k,), daemon=True,
                             name=f"online-client-{k}")
            for k in range(clients)
        ]

    def _client(self, k: int) -> None:
        j = 0
        while not self._stop.is_set():
            frame = self.pool[(k + j) % len(self.pool)]
            j += 1
            try:
                pred = self.service.predict(frame, self.species, self.cell,
                                            timeout=30.0)
            except ServeError:
                with self._lock:
                    self.errors += 1
                continue
            with self._lock:
                self.responses += 1
                self.versions.add(pred.model_version)

    def __enter__(self) -> "_ClientTraffic":
        for t in self._threads:
            t.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        for t in self._threads:
            t.join()


def run(
    systems=None,
    frames_per_temperature: int = 8,
    swaps: int = 3,
    max_segments: int = 96,
    clients: int = 2,
    bench_dir: str = "repro.bench",
    seed: int = 0,
    health_out=None,
) -> Report:
    """Run the closed loop until ``swaps`` live promotions succeeded.

    ``max_segments`` bounds exploration (the loop also stops when the
    budget runs out); ``clients`` threads keep external traffic on the
    service for the whole run.  ``health_out`` attaches the runtime
    health monitor: snapshots/alerts stream to that JSONL and a
    ``BENCH_monitor.json`` manifest lands in ``bench_dir``.
    """
    report = Report(
        experiment="online",
        title="closed-loop online learning against a live service",
        headers=[
            "system", "event", "wall_s", "force_rmse", "version",
            "labels", "avoided",
        ],
        paper_reference="Sec. 1 Fig. 1 (the online-learning loop closed)",
    )
    metrics: dict = {"target_swaps": swaps, "clients": clients}
    for system in parse_systems(systems):
        setup = experiment_setup(
            system, frames_per_temperature=frames_per_temperature, seed=seed
        )
        ensemble = ModelEnsemble.for_dataset(
            setup.train, setup.cfg, n_models=2, seed=seed + 1
        )
        spec = SYSTEMS[system]
        _, _, _, potential = spec.build("small")
        species = setup.train.species
        cell = setup.train.cell
        cfg = OnlineConfig(
            md_steps=40,
            sample_every=10,
            select_lo=0.0,
            epochs_per_round=1,
            batch_size=4,
            max_new_frames=8,
            target_swaps=swaps,
            max_segments=max_segments,
            eval_frames=32,
        )
        learner = OnlineLearner(
            ensemble, potential, species, spec.masses(species), cell,
            cfg=cfg,
            kalman_cfg=fast_kalman(),
            initial_data=setup.train,
            holdout=setup.test,
            seed=seed,
        )
        pool = [
            np.ascontiguousarray(setup.test.positions[t])
            for t in range(min(setup.test.n_frames, 6))
        ]
        with learner:
            learner.service.start()
            initial_rmse = ensemble.evaluate_rmse(
                setup.test, max_frames=cfg.eval_frames
            )["force_rmse"]
            with health_monitor(
                health_out,
                service=learner.service,
                learner=learner,
                bench_dir=bench_dir,
            ) as mon:
                with _ClientTraffic(
                    learner.service, pool, species, cell, clients
                ) as traffic:
                    result = learner.run(
                        setup.train.positions[0], temperature=400.0
                    )
            stats = learner.service.stats()
        if mon is not None:
            msum = mon.summary()
            metrics[f"{system}.monitor"] = {
                "snapshots": msum["snapshots"],
                "breach_alerts": msum["breach_alerts"],
                "warn_alerts": msum["warn_alerts"],
            }
            report.notes.append(
                f"{system}: health monitor took {msum['snapshots']} snapshots, "
                f"{msum['breach_alerts']} breach alert(s)"
            )
        ledger = result.ledger
        report.add_row(system, "offline warm start", 0.0, initial_rmse, 0, 0, 0)
        for s in result.swaps:
            report.add_row(
                system, f"swap {s.version}", s.wall_s, s.force_rmse,
                s.version, s.trained_frames, ledger["avoided"],
            )
        rmses = [s.force_rmse for s in result.swaps]
        monotone = all(a > b for a, b in zip([initial_rmse] + rmses, rmses))
        metrics[system] = {
            "initial_force_rmse": initial_rmse,
            "final_force_rmse": result.served_rmse,
            "swaps": [s.as_dict() for s in result.swaps],
            "rmse_strictly_decreasing": monotone,
            "ledger": ledger,
            "trained_rounds": result.trained_rounds,
            "segments": result.segments,
            "client_responses": traffic.responses,
            "client_errors": traffic.errors,
            "client_versions": sorted(traffic.versions),
            "serve_failures": stats["timeouts"] + stats["rejected"],
        }
        report.notes.append(
            f"{system}: {len(result.swaps)} live swap(s), force RMSE "
            f"{initial_rmse:.4f} -> {result.served_rmse:.4f}; gate avoided "
            f"{ledger['avoided']}/{ledger['candidates']} labels; "
            f"{traffic.responses} client responses, {traffic.errors} errors, "
            f"{ledger['mixed_version_batches']} mixed-version batches"
        )
    report.metrics = metrics
    os.makedirs(bench_dir, exist_ok=True)
    path = write_manifest(
        bench_dir,
        "online",
        config={
            "systems": systems,
            "frames_per_temperature": frames_per_temperature,
            "swaps": swaps, "max_segments": max_segments,
            "clients": clients, "seed": seed,
        },
        metrics=metrics,
    )
    report.notes.append(f"manifest written to {path}")
    return report
