"""Run manifests: one ``BENCH_<name>.json`` per harness/bench run.

A manifest is the machine-readable record of one run -- what produced it
(git sha, CLI config), what it measured (headline metrics), and how it
spent its time (span summary plus, when the run was profiled, the
per-phase op breakdown and hottest ops).  Schema ``repro.bench/v1``::

    {
      "schema": "repro.bench/v1",
      "name": "<experiment or bench name>",
      "created_unix": <float>,
      "git_sha": "<sha or null>",
      "config": {...},            # CLI args / bench parameters
      "metrics": {...},           # headline numbers + registry snapshot
      "spans": {name: {count, wall_s, ...}},       # when traced
      "profile": {                                 # when profiled
        "phases": {phase: {kernels, wall_s, bytes, flops}},
        "top_ops": {op: {count, wall_s, bytes, flops}},
        "dropped_events": <int>
      }
    }

so two runs (two PRs, two machines, two presets) diff with plain ``jq``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Optional

__all__ = ["SCHEMA", "git_sha", "build_manifest", "write_manifest"]

SCHEMA = "repro.bench/v1"


def git_sha() -> Optional[str]:
    """HEAD sha of the repo this package lives in, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def build_manifest(
    name: str,
    config: Optional[dict] = None,
    metrics: Optional[dict] = None,
    tracer=None,
    top_ops: int = 10,
) -> dict:
    """Assemble a ``repro.bench/v1`` manifest dict.

    ``tracer`` (a :class:`repro.telemetry.Tracer`) contributes the span
    summary and -- when it carries a profiler -- the per-phase breakdown
    and hottest-ops table.
    """
    manifest = {
        "schema": SCHEMA,
        "name": name,
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "config": dict(config or {}),
        "metrics": dict(metrics or {}),
    }
    if tracer is not None:
        from ..telemetry.export import summarize

        manifest["spans"] = summarize(tracer.events)
        profiler = getattr(tracer, "profiler", None)
        if profiler is not None:
            ops = sorted(
                profiler.ops_summary().items(), key=lambda kv: -kv[1]["wall_s"]
            )[: max(top_ops, 0)]
            manifest["profile"] = {
                "phases": profiler.phase_summary(),
                "top_ops": dict(ops),
                "dropped_events": profiler.dropped,
            }
    return manifest


def write_manifest(
    directory: str,
    name: str,
    config: Optional[dict] = None,
    metrics: Optional[dict] = None,
    tracer=None,
) -> str:
    """Write ``BENCH_<name>.json`` into ``directory``; returns the path."""
    manifest = build_manifest(name, config=config, metrics=metrics, tracer=tracer)
    path = os.path.join(directory or ".", f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, default=str)
        fh.write("\n")
    return path
