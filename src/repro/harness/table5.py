"""Table 5 -- distributed FEKF scaling on the Cu system.

Configurations mirror the paper's ladder (RLEKF bs1 on 1 GPU, FEKF at
growing batch sizes on 1/4/16 GPUs), with batch sizes scaled down to match
our dataset volume.  Two quantities are reported per configuration:

* **time to 1.5x baseline accuracy** (the paper's Table 5 criterion),
  with the baseline taken from the RLEKF run's first data pass;
* **seconds per data pass** and its speedup over RLEKF -- the quantity
  the paper's 54x/72x/93x ladder converges to once datasets are large
  enough that every configuration needs a comparable number of passes
  (see EXPERIMENTS.md for the regime discussion).

Distributed times are simulated wall clock: max-rank measured compute +
alpha-beta-modeled ring-allreduce communication + Kalman update time.
"""

from __future__ import annotations

from ..optim.ekf import FEKF, RLEKF
from ..optim.kalman import KalmanConfig
from ..parallel.trainer import DistributedFEKF
from ..train.trainer import TargetCriterion, Trainer
from .common import Report, experiment_setup, fast_kalman


def run(
    system: str = "Cu",
    configs: tuple[tuple[int, int], ...] = ((32, 1), (128, 4), (512, 16)),
    frames_per_temperature: int = 250,
    rlekf_epochs: int = 2,
    fekf_epochs: int = 20,
    accuracy_slack: float = 1.5,
    seed: int = 0,
) -> Report:
    """``configs`` is a ladder of (batch size, #GPUs) pairs."""
    setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)
    report = Report(
        experiment="Table 5",
        title=f"distributed FEKF on {system} ({setup.train.n_frames} train frames)",
        headers=[
            "config",
            "best RMSE",
            "time to 1.5x base (s)",
            "s per data pass",
            "per-pass speedup",
            "comm MB/rank",
        ],
        paper_reference="Table 5: RLEKF 26136s(1x) -> FEKF 576s(54x) -> 360s(72x) -> 281s(93x)",
    )

    # baseline accuracy: what RLEKF reaches after its first data pass
    model = setup.model(seed=1)
    rlekf = RLEKF(model, fast_kalman(), fused_env=True, seed=seed)
    res0 = Trainer(
        model, rlekf, setup.train, setup.test, batch_size=1, seed=seed,
        evals_per_epoch=8,
    ).run(max_epochs=rlekf_epochs)
    first_pass = [r for r in res0.history if r.epoch <= 1.0]
    base_rmse = min(r.train_total for r in first_pass)
    target_value = base_rmse * accuracy_slack
    target = TargetCriterion(target_value, metric="total")
    hit0 = next(r for r in res0.history if r.train_total <= target_value)
    pass0 = res0.total_train_time / res0.history[-1].epoch
    report.add_row(
        "RLEKF bs1 (1 GPU)",
        f"{min(r.train_total for r in res0.history):.4f}",
        f"{hit0.train_time:.1f}",
        f"{pass0:.1f}",
        "1x",
        "0",
    )

    for bs, gpus in configs:
        model = setup.model(seed=1)
        kcfg = KalmanConfig.for_batch_size(bs, blocksize=2048, fused_update=True)
        if gpus == 1:
            opt = FEKF(model, kcfg, fused_env=True, seed=seed)
        else:
            opt = DistributedFEKF(model, world_size=gpus, kalman_cfg=kcfg, seed=seed)
        res = Trainer(
            model, opt, setup.train, setup.test, batch_size=bs, seed=seed,
            evals_per_epoch=max(setup.train.n_frames // (bs * 2), 1),
        ).run(max_epochs=fekf_epochs, target=target)

        if gpus == 1:
            t = res.wall_time_to_target if res.converged else res.total_train_time
            per_pass = res.total_train_time / res.history[-1].epoch
            comm = 0.0
        else:
            # simulated wall: scale measured totals by target fraction
            frac = (
                (res.wall_time_to_target / res.total_train_time)
                if res.converged and res.total_train_time > 0
                else 1.0
            )
            t = opt.timing.total_s * frac
            per_pass = opt.timing.total_s / res.history[-1].epoch
            comm = opt.comm.ledger.bytes_sent_per_rank / 1e6
        tag = "" if res.converged else "+"
        label = f"FEKF bs{bs} ({gpus} GPU{'s' if gpus > 1 else ''})"
        report.add_row(
            label,
            f"{min(r.train_total for r in res.history):.4f}",
            f"{t:.1f}{tag}",
            f"{per_pass:.1f}",
            f"{pass0 / max(per_pass, 1e-9):.0f}x",
            f"{comm:.2f}",
        )
    report.notes.append(
        "distributed rows use simulated wall clock (max-rank compute + "
        "modeled comm + KF); + = 1.5x-baseline target not met in budget"
    )
    report.notes.append(
        "baseline accuracy = RLEKF after one data pass; the per-pass "
        "speedup ladder is the paper's 54x/72x/93x analog"
    )
    return report
