"""Design-choice ablations (DESIGN.md Sec. 4 "Ablations").

(a) **lambda/nu guidance** (paper Sec. 3.2): convergence under the default
    (lambda0=0.98, nu=0.9987) vs the large-batch (0.90, 0.996) settings at
    small and large batch sizes -- the paper recommends the second pair
    once the batch size exceeds 1024; at our scaled batches the crossover
    shows up earlier.
(b) **funnel vs fusiform**: FEKF vs Naive-EKF at the same small batch --
    matched accuracy trajectory, wildly different cost and P memory.
(c) **force-graph reuse**: shared vs fresh force forwards per group
    update -- near-identical convergence, ~2x cheaper steps.
"""

from __future__ import annotations

import time

import numpy as np

from ..model.environment import make_batch
from ..optim.ekf import FEKF, NaiveEKF
from ..optim.kalman import KalmanConfig
from ..train.trainer import Trainer
from .common import Report, experiment_setup


def run_lambda_nu(
    system: str = "Cu",
    batch_sizes: tuple[int, ...] = (8, 64),
    epochs: int = 6,
    frames_per_temperature: int = 32,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Ablation: lambda/nu",
        title="memory-factor schedule vs batch size (Sec. 3.2 guidance)",
        headers=["batch size", "(lambda0, nu)", "final E RMSE", "final F RMSE", "best E+F"],
        paper_reference="Sec 3.2: use (0.90, 0.996) beyond batch size 1024",
    )
    setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)
    for bs in batch_sizes:
        for lam0, nu in ((0.98, 0.9987), (0.90, 0.996)):
            model = setup.model(seed=1)
            opt = FEKF(
                model,
                KalmanConfig(
                    lambda0=lam0, nu=nu, blocksize=2048, fused_update=True
                ),
                fused_env=True,
                seed=seed,
            )
            res = Trainer(
                model, opt, setup.train, setup.test, batch_size=bs, seed=seed
            ).run(max_epochs=epochs)
            last = res.history[-1]
            report.add_row(
                bs,
                f"({lam0}, {nu})",
                f"{last.train_energy_rmse:.4f}",
                f"{last.train_force_rmse:.4f}",
                f"{res.best_total('train'):.4f}",
            )
    return report


def run_funnel_vs_fusiform(
    system: str = "Cu",
    batch_size: int = 4,
    steps: int = 20,
    frames_per_temperature: int = 16,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Ablation: dataflow",
        title=f"funnel (FEKF) vs fusiform (Naive-EKF), bs {batch_size}",
        headers=["optimizer", "E+F RMSE after", "seconds", "P memory (MB)"],
        paper_reference="Table 2 / Sec 3.3: fusiform costs bs x P memory and bs x KF updates",
    )
    setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)
    batch = make_batch(setup.train, np.arange(batch_size), setup.cfg)
    for cls in (FEKF, NaiveEKF):
        model = setup.model(seed=1)
        opt = cls(
            model,
            KalmanConfig(blocksize=2048, fused_update=True),
            fused_env=True,
            seed=seed,
        )
        t0 = time.perf_counter()
        for _ in range(steps):
            opt.step_batch(batch)
        elapsed = time.perf_counter() - t0
        rmse = model.evaluate_rmse(setup.train, max_frames=16)["total_rmse"]
        mem = (
            opt.p_memory_bytes() if isinstance(opt, NaiveEKF) else opt.kalman.p_memory_bytes()
        ) / 1e6
        report.add_row(cls.name, f"{rmse:.4f}", f"{elapsed:.1f}", f"{mem:.1f}")
    report.notes.append(
        "both digest the same batches; fusiform keeps one P replica per "
        "sample (the memory column) and runs bs Kalman recursions per update"
    )
    return report


def run_force_graph_reuse(
    system: str = "Cu",
    batch_size: int = 8,
    epochs: int = 5,
    frames_per_temperature: int = 24,
    seed: int = 0,
) -> Report:
    report = Report(
        experiment="Ablation: force graph",
        title="shared vs fresh force forward per group update",
        headers=["mode", "best E+F RMSE", "optimizer seconds"],
        paper_reference="paper protocol: fresh forward per update (846 kernels each)",
    )
    setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)
    for reuse, label in ((True, "shared graph"), (False, "fresh per group")):
        model = setup.model(seed=1)
        opt = FEKF(
            model,
            KalmanConfig(blocksize=2048, fused_update=True),
            fused_env=True,
            reuse_force_graph=reuse,
            seed=seed,
        )
        res = Trainer(
            model, opt, setup.train, setup.test, batch_size=batch_size, seed=seed
        ).run(max_epochs=epochs)
        report.add_row(label, f"{res.best_total('train'):.4f}", f"{res.total_train_time:.1f}")
    return report


def run(**kwargs) -> Report:
    """Aggregate: runs all three ablations, returns the lambda/nu report
    and prints the others (CLI convenience)."""
    rep_b = run_funnel_vs_fusiform()
    print(rep_b.format_table())
    rep_c = run_force_graph_reuse()
    print(rep_c.format_table())
    return run_lambda_nu()
