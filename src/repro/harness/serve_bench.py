"""Serve benchmark: micro-batched inference vs one-request-at-a-time.

The claim under test is the serving half of the paper's online-learning
story: when many clients (MD walkers, selection queries) ask one model
for per-frame energies/forces concurrently, collecting them into
micro-batched forward passes buys large throughput gains -- the batched
descriptor/network kernels amortize their Python and BLAS overheads over
the batch -- and the descriptor/prediction caches turn repeat frames
into near-free responses.

Both modes run the *same* :class:`repro.serve.InferenceService`; the
baseline simply pins ``max_batch=1`` and disables the caches, so the
delta is attributable to micro-batching + caching rather than to
differing code paths.

Always writes a ``repro.bench/v1`` manifest ``BENCH_serve.json`` (into
``--bench-dir``) carrying latency percentiles, throughput, speedup, and
cache hit rates; ``--trace-out`` additionally produces the usual Chrome
trace + span bundle.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from ..model.session import ModelSession
from ..serve import InferenceService, ServeConfig, ServeError
from .common import Report, experiment_setup, health_monitor, parse_systems
from .manifest import write_manifest


def _drive(service: InferenceService, pool, species, cell, clients: int, per_client: int):
    """Hammer the service from ``clients`` threads; returns (wall_s, errors)."""
    barrier = threading.Barrier(clients + 1)
    errors = [0] * clients

    def client(k: int) -> None:
        barrier.wait()
        for j in range(per_client):
            frame = pool[(k + j) % len(pool)]
            try:
                service.predict(frame, species, cell)
            except ServeError:
                errors[k] += 1

    threads = [
        threading.Thread(target=client, args=(k,), name=f"serve-client-{k}")
        for k in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, sum(errors)


def run(
    systems=None,
    frames_per_temperature: int = 6,
    clients: int = 8,
    requests: int = 48,
    max_batch: int = 8,
    max_delay_ms: float = 2.0,
    serve_executor=None,
    serve_workers: int = 1,
    bench_dir: str = "repro.bench",
    seed: int = 0,
    health_out=None,
) -> Report:
    """Benchmark batched serving against the serial baseline.

    ``requests`` is the total across all ``clients`` (rounded up to a
    multiple); each client cycles through a shared frame pool smaller
    than its request count, so repeat frames exercise the caches the way
    rejected MC moves and committee queries do in production.
    ``health_out`` attaches the runtime health monitor to the *batched*
    mode (snapshots/alerts to that JSONL, ``BENCH_monitor.json`` into
    ``bench_dir``).
    """
    report = Report(
        experiment="serve-bench",
        title="micro-batched inference vs one-request-at-a-time",
        headers=[
            "system", "mode", "clients", "requests", "wall_s", "req/s",
            "speedup", "p50_ms", "p99_ms", "batch_mean", "cache_hit%",
        ],
        paper_reference="Sec. 1 Fig. 1 (the online-learning serving loop)",
    )
    per_client = max(1, -(-requests // clients))
    total = per_client * clients
    metrics: dict = {
        "clients": clients,
        "requests": total,
        "max_batch": max_batch,
        "max_delay_ms": max_delay_ms,
        "serve_workers": serve_workers,
    }
    for system in parse_systems(systems):
        setup = experiment_setup(
            system, frames_per_temperature=frames_per_temperature, seed=seed
        )
        model = setup.model(seed=seed + 1)
        ds = setup.train
        pool = [
            np.ascontiguousarray(ds.positions[t])
            for t in range(min(ds.n_frames, max(2, total // 3)))
        ]
        modes = {
            "baseline": ServeConfig(
                max_batch=1,
                max_delay_s=0.0,
                cache_neighbors=False,
                cache_predictions=False,
                executor=serve_executor,
                world_size=1,
            ),
            "batched": ServeConfig(
                max_batch=max_batch,
                max_delay_s=max_delay_ms / 1000.0,
                executor=serve_executor,
                world_size=serve_workers,
            ),
        }
        walls: dict = {}
        for mode, cfg in modes.items():
            with InferenceService(ModelSession(model), cfg) as svc:
                with health_monitor(
                    health_out if mode == "batched" else None,
                    service=svc,
                    bench_dir=bench_dir,
                ) as mon:
                    wall, errors = _drive(
                        svc, pool, ds.species, ds.cell, clients, per_client
                    )
                if mon is not None:
                    msum = mon.summary()
                    metrics[f"{system}.monitor"] = {
                        "snapshots": msum["snapshots"],
                        "breach_alerts": msum["breach_alerts"],
                        "warn_alerts": msum["warn_alerts"],
                    }
                stats = svc.stats()
            walls[mode] = wall
            throughput = total / wall if wall > 0 else 0.0
            speedup = walls["baseline"] / wall if wall > 0 else 0.0
            hit_rate = stats["prediction_cache"]["hit_rate"]
            report.add_row(
                system, mode, clients, total, wall, throughput, speedup,
                stats["latency_s"]["p50"] * 1e3,
                stats["latency_s"]["p99"] * 1e3,
                stats["batch_occupancy"]["mean"],
                hit_rate * 100.0,
            )
            metrics[f"{system}.{mode}"] = {
                "wall_s": wall,
                "throughput_rps": throughput,
                "errors": errors,
                "latency_p50_s": stats["latency_s"]["p50"],
                "latency_p99_s": stats["latency_s"]["p99"],
                "batch_occupancy_mean": stats["batch_occupancy"]["mean"],
                "prediction_cache_hit_rate": hit_rate,
                "neighbor_cache_hit_rate": stats["neighbor_cache"]["hit_rate"],
                "responses": stats["responses"],
                "batches": stats["batches"],
            }
        metrics[f"{system}.speedup"] = (
            walls["baseline"] / walls["batched"] if walls["batched"] > 0 else 0.0
        )
        report.notes.append(
            f"{system}: batched serving is {metrics[f'{system}.speedup']:.2f}x "
            f"the serial baseline at {clients} concurrent clients"
        )
    report.metrics = metrics
    os.makedirs(bench_dir, exist_ok=True)
    path = write_manifest(
        bench_dir,
        "serve",
        config={
            "systems": systems, "frames_per_temperature": frames_per_temperature,
            "clients": clients, "requests": total, "max_batch": max_batch,
            "max_delay_ms": max_delay_ms, "serve_executor": serve_executor,
            "serve_workers": serve_workers, "seed": seed,
        },
        metrics=metrics,
    )
    report.notes.append(f"manifest written to {path}")
    return report
