"""Figure 4 -- effect of the quasi-learning-rate factor on convergence.

Trains FEKF at one batch size under three step scalings -- 1, sqrt(bs)
(the paper's Eq. 2 choice) and bs -- and reports the energy-RMSE
trajectory.  The reproduction target: sqrt(bs) converges fastest/lowest.
"""

from __future__ import annotations

import numpy as np

from ..optim.ekf import FEKF
from ..train.trainer import Trainer
from .common import Report, experiment_setup, fast_kalman


def run(
    system: str = "Cu",
    batch_size: int = 32,
    epochs: int = 8,
    frames_per_temperature: int = 48,
    seed: int = 0,
) -> Report:
    setup = experiment_setup(system, frames_per_temperature=frames_per_temperature, seed=seed)
    scales = {
        "1": 1.0,
        "sqrt(bs)": float(np.sqrt(batch_size)),
        "bs": float(batch_size),
    }
    report = Report(
        experiment="Figure 4",
        title=f"quasi-learning-rate factor, {system}, FEKF bs {batch_size}",
        headers=["factor"] + [f"epoch {e}" for e in range(1, epochs + 1)],
        paper_reference="Figure 4: sqrt(bs) factor converges fastest",
    )
    for label, scale in scales.items():
        model = setup.model(seed=1)
        opt = FEKF(
            model, fast_kalman(), fused_env=True, step_scale=scale, seed=seed
        )
        trainer = Trainer(
            model, opt, setup.train, setup.test, batch_size=batch_size, seed=seed
        )
        res = trainer.run(max_epochs=epochs)
        report.add_row(label, *[f"{r.train_energy_rmse:.4f}" for r in res.history])
    return report
