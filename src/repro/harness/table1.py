"""Table 1 -- Adam epochs-to-target blow up under larger minibatches.

Protocol (paper Sec. 1 + Table 1): train single-sample Adam with the
default schedule until the energy RMSE converges -- that value is the
per-system target.  Then train Adam at the larger batch sizes under the
*same* per-step schedule with the learning rate multiplied by sqrt(bs)
(the paper's best-performing "default setting" readjustment) and count
epochs until the same energy RMSE is reached.  The reproduction target is
the shape: a large epoch-growth factor from bs 1 to 32 and about another
2x from 32 to 64.
"""

from __future__ import annotations

from ..optim.first_order import Adam, ExponentialDecay
from ..train.trainer import TargetCriterion, Trainer
from .common import Report, experiment_setup, parse_systems


def run(
    systems: str | None = None,
    batch_sizes: tuple[int, ...] = (1, 32, 64),
    frames_per_temperature: int = 48,
    base_epochs: int = 80,
    max_epochs_large: int = 1200,
    target_slack: float = 1.02,
    seed: int = 0,
) -> Report:
    bs_ref, bs_mid, bs_big = batch_sizes
    report = Report(
        experiment="Table 1",
        title="Adam convergence vs training batch size",
        headers=[
            "System",
            "Energy RMSE (eV/atom)",
            f"bs {bs_ref}",
            f"bs {bs_mid}",
            f"bs {bs_big}",
            f"growth {bs_mid}/{bs_ref}",
            f"growth {bs_big}/{bs_mid}",
        ],
        paper_reference="Table 1: epoch growth ~12-25x for 32/1, ~2x for 64/32",
    )
    for system in parse_systems(systems):
        setup = experiment_setup(
            system, frames_per_temperature=frames_per_temperature, seed=seed
        )
        # one per-step schedule shared by every batch size (the paper keeps
        # the 5000-step decay for all bs); horizon scaled so the bs1 run
        # converges near its data-limited floor rather than stalling early
        total_ref_steps = setup.train.n_frames * base_epochs
        decay_steps = max(total_ref_steps // 100, 5)

        def make_adam(model):
            return Adam(
                model,
                schedule=ExponentialDecay(lr0=1e-3, rate=0.95, steps=decay_steps),
                batch_scale_lr=True,
            )

        model = setup.model(seed=1)
        ref = Trainer(
            model, make_adam(model), setup.train, setup.test, batch_size=bs_ref,
            seed=seed, eval_every=2,
        ).run(max_epochs=base_epochs)
        target_e = ref.history[-1].train_energy_rmse * target_slack
        epochs_ref = next(
            r.epoch for r in ref.history if r.train_energy_rmse <= target_e
        )

        epochs_at: dict[int, str] = {bs_ref: str(epochs_ref)}
        for bs in (bs_mid, bs_big):
            if setup.train.n_frames < bs:
                epochs_at[bs] = "n/a"
                continue
            model = setup.model(seed=1)
            res = Trainer(
                model, make_adam(model), setup.train, setup.test, batch_size=bs,
                seed=seed, eval_every=max(max_epochs_large // 150, 1),
            ).run(
                max_epochs=max_epochs_large,
                target=TargetCriterion(target_e, metric="energy"),
            )
            epochs_at[bs] = (
                str(res.epochs_to_target) if res.converged else f">{max_epochs_large}"
            )

        def growth(a: str, b: str) -> str:
            try:
                return f"{float(b.lstrip('>')) / float(a.lstrip('>')):.1f}x"
            except (ValueError, ZeroDivisionError):
                return "-"

        report.add_row(
            system,
            f"{target_e:.4f}",
            epochs_at[bs_ref],
            epochs_at[bs_mid],
            epochs_at[bs_big],
            growth(epochs_at[bs_ref], epochs_at[bs_mid]),
            growth(epochs_at[bs_mid], epochs_at[bs_big]),
        )
    report.notes.append(
        "synthetic datasets + scaled network; epoch counts differ from the "
        "paper's but the growth factors are the reproduction target"
    )
    return report
