"""Out-of-core frame storage: the ``repro.framestore/v1`` sharded store.

Every dataset used to be a fully in-memory :class:`~repro.data.dataset.
Dataset`; the paper's systems train on 10k--72k snapshots and the online
loop ingests an unbounded label stream, so the corpus must live on disk
and only the working set in RAM.  :class:`ShardedFrameStore` is that
store: an append-only sequence of fixed-capacity shard files plus a JSON
manifest, read through ``mmap`` so the OS pages in exactly the frames a
batch touches, with an LRU bound on how many shards stay mapped at once.

On-disk schema (``repro.framestore/v1``)
----------------------------------------
A store is a directory::

    store/
      manifest.json        # schema, geometry, shard table (atomic rewrite)
      shard-00000.rfs      # sealed: header | frames | footer
      shard-00001.rfs      # active: header | frames (no footer yet)

Each shard file starts with a fixed 48-byte header (magic, version, atom
count, capacity, record length) followed by densely packed float64 frame
records ``[positions (N,3) | forces (N,3) | energy | temperature]``.
When a shard reaches its capacity it is *sealed*: a footer is appended
carrying the per-frame CRC32 index, the payload CRC, and a trailing
magic.  The active (tail) shard has no footer; its per-frame CRCs live
in the manifest, which is rewritten atomically (tmp + ``os.replace``)
after every append batch.

Corruption handling is fail-closed: any torn tail, truncated footer, or
CRC/manifest mismatch raises the typed :class:`FrameStoreCorrupt` from
:meth:`ShardedFrameStore.open`; ``recover=True`` instead drops everything
from the first invalid shard onward and reopens the longest valid prefix
(the crash-safety contract the tests exercise).

Reads go through :meth:`get_frames` / :meth:`neighbor_tables`, the
:class:`~repro.data.source.FrameSource` protocol -- a store is a drop-in
replacement for a ``Dataset`` everywhere batches are built, and training
from one is bit-identical to training from the equivalent in-memory
dataset (the frames are the same bytes; neighbor tables come from the
same :func:`~repro.md.neighbor.neighbor_table` kernel).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..md.cell import Cell
from ..md.neighbor import neighbor_table
from .dataset import Dataset, NeighborArrays

__all__ = [
    "SCHEMA",
    "FrameStoreCorrupt",
    "ShardedFrameStore",
]

SCHEMA = "repro.framestore/v1"

_HEADER_MAGIC = b"RFSHRD1\n"
_FOOTER_MAGIC = b"RFSFTR1\n"
#: fixed shard header: magic, version, n_atoms, capacity, record elems,
#: 20 reserved bytes -> 48 bytes total
_HEADER_FMT = "<8sIIII20s"
_HEADER_BYTES = struct.calcsize(_HEADER_FMT)
#: fixed footer trailer (after the CRC table): payload crc, table crc,
#: frame count, magic
_TRAILER_FMT = "<III8s"
_TRAILER_BYTES = struct.calcsize(_TRAILER_FMT)
_VERSION = 1

_MANIFEST = "manifest.json"


class FrameStoreCorrupt(RuntimeError):
    """A frame store failed validation (torn shard, truncated index, or
    CRC mismatch).  ``shard`` names the first offending shard file when
    one is known."""

    def __init__(self, message: str, shard: Optional[str] = None):
        super().__init__(message if shard is None else f"{shard}: {message}")
        self.shard = shard


def _record_elems(n_atoms: int) -> int:
    """float64 elements per frame record: positions + forces + E + T."""
    return 6 * n_atoms + 2


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.rfs"


def _atomic_write_json(path: str, payload: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


@dataclass
class _ShardMeta:
    """One manifest row describing a shard file."""

    file: str
    n_frames: int
    sealed: bool
    #: CRC32 of the packed frame payload (sealed shards; also kept for
    #: the active shard so reopen can detect torn tails cheaply)
    payload_crc: int
    #: CRC32 of the footer's CRC table (sealed shards only)
    table_crc: int = 0
    #: per-frame CRC32s of the active shard (sealed shards carry them in
    #: the footer index instead)
    frame_crcs: Optional[list[int]] = None

    def as_dict(self) -> dict:
        d = {
            "file": self.file,
            "n_frames": self.n_frames,
            "sealed": self.sealed,
            "payload_crc": self.payload_crc,
        }
        if self.sealed:
            d["table_crc"] = self.table_crc
        else:
            d["frame_crcs"] = list(self.frame_crcs or [])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "_ShardMeta":
        return cls(
            file=str(d["file"]),
            n_frames=int(d["n_frames"]),
            sealed=bool(d["sealed"]),
            payload_crc=int(d.get("payload_crc", 0)),
            table_crc=int(d.get("table_crc", 0)),
            frame_crcs=[int(c) for c in d["frame_crcs"]]
            if "frame_crcs" in d
            else None,
        )


class _ShardView:
    """A memory-mapped read view of one shard's frame records."""

    def __init__(self, path: str, n_frames: int, record_elems: int):
        self._fh = open(path, "rb")
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._fh.close()
            raise
        self.records = np.frombuffer(
            self._mm,
            dtype="<f8",
            count=n_frames * record_elems,
            offset=_HEADER_BYTES,
        ).reshape(n_frames, record_elems)

    def close(self) -> None:
        # the records array holds a buffer export on the mmap; release it
        # before closing or mmap.close() raises BufferError
        self.records = None
        self._mm.close()
        self._fh.close()


class ShardedFrameStore:
    """Append-only sharded, memory-mapped frame store (one system).

    Implements the :class:`~repro.data.source.FrameSource` protocol, so
    anything that trains or evaluates from a ``Dataset`` works from a
    store unchanged.  Construction surfaces:

    * :meth:`create` -- new empty store (then :meth:`append` /
      :meth:`append_dataset`);
    * :meth:`open` -- existing store, read-only (``mode="r"``) or
      appendable (``mode="a"``); corruption raises
      :class:`FrameStoreCorrupt` unless ``recover=True``;
    * :meth:`ingest` -- one-shot conversion of any frame source.

    ``max_open_shards`` bounds resident memory: at most that many shard
    mappings stay alive (LRU), so iterating a corpus far larger than RAM
    keeps RSS flat.  ``validate=True`` (default) checks each fetched
    frame's CRC32 against the shard's footer index on every read.
    """

    def __init__(self, *args, **kwargs):
        raise TypeError(
            "use ShardedFrameStore.create(...) / .open(...) / .ingest(...)"
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def _blank(cls) -> "ShardedFrameStore":
        self = object.__new__(cls)
        #: guards the view/neighbor caches -- thread-executor prefetch
        #: workers share one store object across ranks (reentrant: the
        #: cache-miss path of neighbor_tables calls get_frames)
        self._mu = threading.RLock()
        self._views: "OrderedDict[int, _ShardView]" = OrderedDict()
        self._active_fh = None
        self._nb_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._nb_key: Optional[tuple[float, int]] = None
        self.max_open_shards = 8
        self.neighbor_cache_frames = 1024
        self.validate = True
        self.recovered_frames = 0
        return self

    @classmethod
    def create(
        cls,
        path: str,
        *,
        species: np.ndarray,
        cell: Cell,
        shard_capacity: int = 1024,
        name: str = "framestore",
        max_open_shards: int = 8,
        validate: bool = True,
    ) -> "ShardedFrameStore":
        """Create a new, empty store directory (must not already hold one)."""
        if shard_capacity < 1:
            raise ValueError("shard_capacity must be >= 1")
        os.makedirs(path, exist_ok=True)
        manifest_path = os.path.join(path, _MANIFEST)
        if os.path.exists(manifest_path):
            raise FileExistsError(f"{path} already holds a frame store")
        self = cls._blank()
        self.path = os.path.abspath(path)
        self.mode = "a"
        self.name = str(name)
        self.species = np.asarray(species, dtype=np.int64)
        self.cell = Cell(np.asarray(cell.lengths, dtype=np.float64))
        self.shard_capacity = int(shard_capacity)
        self.shards: list[_ShardMeta] = []
        self.max_open_shards = int(max_open_shards)
        self.validate = bool(validate)
        self._write_manifest()
        return self

    @classmethod
    def open(
        cls,
        path: str,
        mode: str = "r",
        *,
        recover: bool = False,
        max_open_shards: int = 8,
        validate: bool = True,
    ) -> "ShardedFrameStore":
        """Open an existing store.

        Validation is fail-closed: a torn final shard, a truncated or
        mismatched footer index, or a manifest/shard CRC disagreement
        raises :class:`FrameStoreCorrupt`.  With ``recover=True`` the
        longest valid prefix of shards is kept instead, the invalid tail
        is deleted, and the manifest is rewritten; ``recovered_frames``
        counts what was dropped.
        """
        if mode not in ("r", "a"):
            raise ValueError("mode must be 'r' or 'a'")
        manifest_path = os.path.join(path, _MANIFEST)
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            raise FileNotFoundError(f"no frame store at {path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise FrameStoreCorrupt(f"unreadable manifest: {exc}") from exc
        if manifest.get("schema") != SCHEMA:
            raise FrameStoreCorrupt(
                f"unknown schema {manifest.get('schema')!r} (expected {SCHEMA})"
            )
        self = cls._blank()
        self.path = os.path.abspath(path)
        self.mode = mode
        self.name = str(manifest["name"])
        self.species = np.asarray(manifest["species"], dtype=np.int64)
        self.cell = Cell(np.asarray(manifest["cell_lengths"], dtype=np.float64))
        self.shard_capacity = int(manifest["shard_capacity"])
        self.shards = [_ShardMeta.from_dict(d) for d in manifest["shards"]]
        self.max_open_shards = int(max_open_shards)
        self.validate = bool(validate)
        n_atoms = int(manifest["n_atoms"])
        if self.species.shape != (n_atoms,):
            raise FrameStoreCorrupt(
                f"species length {self.species.size} != n_atoms {n_atoms}"
            )
        self._validate_layout(recover=recover)
        return self

    @classmethod
    def ingest(
        cls,
        path: str,
        source,
        *,
        shard_capacity: int = 1024,
        chunk_frames: int = 256,
        name: Optional[str] = None,
        **kwargs,
    ) -> "ShardedFrameStore":
        """Create a store at ``path`` and stream every frame of ``source``
        (any :class:`~repro.data.source.FrameSource`) into it."""
        self = cls.create(
            path,
            species=source.species,
            cell=source.cell,
            shard_capacity=shard_capacity,
            name=name if name is not None else getattr(source, "name", "framestore"),
            **kwargs,
        )
        self.append_source(source, chunk_frames=chunk_frames)
        return self

    # -- geometry -------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return int(self.species.size)

    @property
    def n_frames(self) -> int:
        return sum(s.n_frames for s in self.shards)

    @property
    def n_species(self) -> int:
        return int(self.species.max()) + 1 if self.species.size else 0

    @property
    def record_elems(self) -> int:
        return _record_elems(self.n_atoms)

    @property
    def record_bytes(self) -> int:
        return self.record_elems * 8

    def __len__(self) -> int:
        return self.n_frames

    # -- manifest / layout ---------------------------------------------
    def _write_manifest(self) -> None:
        _atomic_write_json(
            os.path.join(self.path, _MANIFEST),
            {
                "schema": SCHEMA,
                "name": self.name,
                "n_atoms": self.n_atoms,
                "shard_capacity": self.shard_capacity,
                "species": [int(s) for s in self.species],
                "cell_lengths": [float(x) for x in self.cell.lengths],
                "n_frames": self.n_frames,
                "shards": [s.as_dict() for s in self.shards],
            },
        )

    def _shard_path(self, meta: _ShardMeta) -> str:
        return os.path.join(self.path, meta.file)

    def _expected_size(self, meta: _ShardMeta) -> int:
        size = _HEADER_BYTES + meta.n_frames * self.record_bytes
        if meta.sealed:
            size += 4 * meta.n_frames + _TRAILER_BYTES
        return size

    def _check_shard(self, meta: _ShardMeta) -> None:
        """Structural validation of one shard file (cheap: header, size,
        footer index; the payload CRC scan lives in :meth:`verify`)."""
        path = self._shard_path(meta)
        try:
            size = os.path.getsize(path)
        except OSError as exc:
            raise FrameStoreCorrupt(f"missing shard file: {exc}", meta.file)
        expected = self._expected_size(meta)
        if size != expected:
            kind = "torn shard" if size < expected else "oversized shard"
            raise FrameStoreCorrupt(
                f"{kind}: {size} bytes on disk, manifest expects {expected} "
                f"({meta.n_frames} frames)",
                meta.file,
            )
        with open(path, "rb") as fh:
            header = fh.read(_HEADER_BYTES)
            if len(header) < _HEADER_BYTES:
                raise FrameStoreCorrupt("truncated header", meta.file)
            magic, version, n_atoms, capacity, rec, _ = struct.unpack(
                _HEADER_FMT, header
            )
            if magic != _HEADER_MAGIC:
                raise FrameStoreCorrupt("bad shard magic", meta.file)
            if version != _VERSION:
                raise FrameStoreCorrupt(f"unknown shard version {version}", meta.file)
            if n_atoms != self.n_atoms or rec != self.record_elems:
                raise FrameStoreCorrupt(
                    f"geometry mismatch (n_atoms {n_atoms}, record {rec})",
                    meta.file,
                )
            if capacity != self.shard_capacity:
                raise FrameStoreCorrupt(
                    f"shard capacity {capacity} != manifest {self.shard_capacity}",
                    meta.file,
                )
            if meta.sealed:
                if meta.n_frames != self.shard_capacity:
                    raise FrameStoreCorrupt(
                        f"sealed shard holds {meta.n_frames} frames, "
                        f"capacity is {self.shard_capacity}",
                        meta.file,
                    )
                fh.seek(_HEADER_BYTES + meta.n_frames * self.record_bytes)
                table = fh.read(4 * meta.n_frames)
                trailer = fh.read(_TRAILER_BYTES)
                if len(table) < 4 * meta.n_frames or len(trailer) < _TRAILER_BYTES:
                    raise FrameStoreCorrupt("truncated footer index", meta.file)
                payload_crc, table_crc, count, fmagic = struct.unpack(
                    _TRAILER_FMT, trailer
                )
                if fmagic != _FOOTER_MAGIC:
                    raise FrameStoreCorrupt("bad footer magic", meta.file)
                if count != meta.n_frames:
                    raise FrameStoreCorrupt(
                        f"footer frame count {count} != manifest {meta.n_frames}",
                        meta.file,
                    )
                if zlib.crc32(table) != table_crc:
                    raise FrameStoreCorrupt("footer CRC table corrupt", meta.file)
                if payload_crc != meta.payload_crc or table_crc != meta.table_crc:
                    raise FrameStoreCorrupt(
                        "manifest/shard CRC mismatch", meta.file
                    )
            else:
                crcs = meta.frame_crcs or []
                if len(crcs) != meta.n_frames:
                    raise FrameStoreCorrupt(
                        f"manifest carries {len(crcs)} frame CRCs for "
                        f"{meta.n_frames} active frames",
                        meta.file,
                    )

    def _validate_layout(self, recover: bool) -> None:
        """Validate every shard; fail closed or trim to the valid prefix."""
        for i, meta in enumerate(self.shards):
            if not meta.sealed and i != len(self.shards) - 1:
                exc: Exception = FrameStoreCorrupt(
                    "unsealed shard before the tail", meta.file
                )
            else:
                try:
                    self._check_shard(meta)
                    continue
                except FrameStoreCorrupt as e:
                    exc = e
            if not recover:
                raise exc
            # recovery: keep the valid prefix, delete the rest
            dropped = self.shards[i:]
            self.recovered_frames = sum(s.n_frames for s in dropped)
            self.shards = self.shards[:i]
            for meta in dropped:
                try:
                    os.remove(self._shard_path(meta))
                except OSError:
                    pass
            if self.mode == "a":
                self._write_manifest()
            return

    def verify(self) -> None:
        """Full payload CRC scan of every shard (reads everything once);
        raises :class:`FrameStoreCorrupt` on the first mismatch."""
        for i, meta in enumerate(self.shards):
            self._check_shard(meta)
            view = self._view(i)
            payload = view.records.tobytes()
            if meta.payload_crc != zlib.crc32(payload):
                raise FrameStoreCorrupt("payload CRC mismatch", meta.file)

    # -- appending ------------------------------------------------------
    def _require_writable(self) -> None:
        if self.mode != "a":
            raise PermissionError("store opened read-only (mode='r')")

    def _open_active(self, meta: _ShardMeta) -> None:
        path = self._shard_path(meta)
        if not os.path.exists(path):
            with open(path, "wb") as fh:
                fh.write(
                    struct.pack(
                        _HEADER_FMT,
                        _HEADER_MAGIC,
                        _VERSION,
                        self.n_atoms,
                        self.shard_capacity,
                        self.record_elems,
                        b"\0" * 20,
                    )
                )
        self._active_fh = open(path, "r+b")
        self._active_fh.seek(0, os.SEEK_END)

    def _active_shard(self) -> _ShardMeta:
        """The writable tail shard, creating a fresh one when needed."""
        if self.shards and not self.shards[-1].sealed:
            meta = self.shards[-1]
        else:
            meta = _ShardMeta(
                file=_shard_name(len(self.shards)),
                n_frames=0,
                sealed=False,
                payload_crc=0,
                frame_crcs=[],
            )
            self.shards.append(meta)
        if self._active_fh is None:
            self._open_active(meta)
        return meta

    def _seal(self, meta: _ShardMeta) -> None:
        """Append the footer index to a full shard and mark it sealed."""
        table = np.asarray(meta.frame_crcs, dtype="<u4").tobytes()
        table_crc = zlib.crc32(table)
        self._active_fh.write(table)
        self._active_fh.write(
            struct.pack(
                _TRAILER_FMT,
                meta.payload_crc,
                table_crc,
                meta.n_frames,
                _FOOTER_MAGIC,
            )
        )
        self._active_fh.flush()
        os.fsync(self._active_fh.fileno())
        self._active_fh.close()
        self._active_fh = None
        meta.sealed = True
        meta.table_crc = table_crc
        meta.frame_crcs = None

    def append(
        self,
        positions: np.ndarray,
        energies: np.ndarray,
        forces: np.ndarray,
        temperatures: Optional[np.ndarray] = None,
    ) -> int:
        """Append a block of labeled frames; returns the new ``n_frames``.

        Frames are packed into the active shard, shards seal as they
        fill, and the manifest is rewritten once per call -- so a crash
        can tear at most the records appended by the interrupted call.
        """
        self._require_writable()
        positions = np.ascontiguousarray(positions, dtype=np.float64)
        energies = np.ascontiguousarray(energies, dtype=np.float64)
        forces = np.ascontiguousarray(forces, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[1:] != (self.n_atoms, 3):
            raise ValueError(
                f"positions must be (F, {self.n_atoms}, 3); got {positions.shape}"
            )
        f = positions.shape[0]
        if energies.shape != (f,) or forces.shape != positions.shape:
            raise ValueError("energies/forces shape mismatch")
        if temperatures is None:
            temperatures = np.zeros(f)
        temperatures = np.ascontiguousarray(temperatures, dtype=np.float64)
        if temperatures.shape != (f,):
            raise ValueError("temperatures shape mismatch")

        records = np.empty((f, self.record_elems), dtype="<f8")
        n3 = self.n_atoms * 3
        records[:, :n3] = positions.reshape(f, n3)
        records[:, n3 : 2 * n3] = forces.reshape(f, n3)
        records[:, 2 * n3] = energies
        records[:, 2 * n3 + 1] = temperatures

        with self._mu:
            for row in records:
                meta = self._active_shard()
                raw = row.tobytes()
                self._active_fh.write(raw)
                meta.frame_crcs.append(zlib.crc32(raw))
                meta.payload_crc = zlib.crc32(raw, meta.payload_crc)
                meta.n_frames += 1
                self._invalidate_view(len(self.shards) - 1)
                if meta.n_frames == self.shard_capacity:
                    self._seal(meta)
            if self._active_fh is not None:
                self._active_fh.flush()
            self._write_manifest()
            return self.n_frames

    def append_dataset(self, dataset: Dataset) -> int:
        """Append every frame of an in-memory dataset (geometry-checked)."""
        if not np.array_equal(
            np.asarray(dataset.species, dtype=np.int64), self.species
        ):
            raise ValueError("dataset species differ from the store's")
        if not np.allclose(dataset.cell.lengths, self.cell.lengths):
            raise ValueError("dataset cell differs from the store's")
        return self.append(
            dataset.positions, dataset.energies, dataset.forces,
            dataset.temperatures,
        )

    def append_source(self, source, chunk_frames: int = 256) -> int:
        """Stream every frame of any frame source in bounded chunks."""
        n = source.n_frames
        for lo in range(0, n, int(chunk_frames)):
            idx = np.arange(lo, min(lo + int(chunk_frames), n))
            frames = source.get_frames(idx)
            self.append(
                frames.positions, frames.energies, frames.forces,
                frames.temperatures,
            )
        return self.n_frames

    def flush(self) -> None:
        """Push buffered records and the manifest to disk."""
        if self._active_fh is not None:
            self._active_fh.flush()
            os.fsync(self._active_fh.fileno())
        self._write_manifest()

    # -- reading --------------------------------------------------------
    def _invalidate_view(self, shard_index: int) -> None:
        view = self._views.pop(shard_index, None)
        if view is not None:
            view.close()

    def _view(self, shard_index: int) -> _ShardView:
        """The mmap view of one shard, LRU-bounded at ``max_open_shards``."""
        view = self._views.get(shard_index)
        if view is not None:
            self._views.move_to_end(shard_index)
            return view
        meta = self.shards[shard_index]
        if not meta.sealed and self._active_fh is not None:
            # records may still sit in the userspace file buffer; an mmap
            # sees the kernel's view only
            self._active_fh.flush()
        view = _ShardView(self._shard_path(meta), meta.n_frames, self.record_elems)
        self._views[shard_index] = view
        while len(self._views) > self.max_open_shards:
            _, old = self._views.popitem(last=False)
            old.close()
        return view

    def _frame_crc(self, shard_index: int, offset: int) -> int:
        meta = self.shards[shard_index]
        if meta.sealed:
            view = self._view(shard_index)
            start = _HEADER_BYTES + meta.n_frames * self.record_bytes
            return int(
                np.frombuffer(
                    view._mm, dtype="<u4", count=1, offset=start + 4 * offset
                )[0]
            )
        return int(meta.frame_crcs[offset])

    def get_frames(self, indices):
        """Materialize the requested frames (in the requested order).

        Returns a :class:`~repro.data.source.Frames` block of fresh
        arrays; only the shards the indices touch are mapped, and each
        fetched record's CRC32 is checked against the shard's footer
        index (``validate=False`` skips the check)."""
        from .source import Frames  # deferred: source imports this module

        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        n_total = self.n_frames
        if indices.size and (indices.min() < 0 or indices.max() >= n_total):
            raise IndexError(
                f"frame index out of range (store holds {n_total} frames)"
            )
        f = indices.size
        n3 = self.n_atoms * 3
        records = np.empty((f, self.record_elems), dtype=np.float64)
        shard_of = indices // self.shard_capacity
        offset_of = indices - shard_of * self.shard_capacity
        # group by shard so each mapping is touched once per call
        with self._mu:
            for shard_index in np.unique(shard_of):
                view = self._view(int(shard_index))
                sel = np.flatnonzero(shard_of == shard_index)
                offs = offset_of[sel]
                records[sel] = view.records[offs]
                if self.validate:
                    for pos, off in zip(sel, offs):
                        expected = self._frame_crc(int(shard_index), int(off))
                        actual = zlib.crc32(records[pos].astype("<f8").tobytes())
                        if actual != expected:
                            raise FrameStoreCorrupt(
                                f"frame {int(indices[pos])} CRC mismatch "
                                f"(record {int(off)})",
                                self.shards[int(shard_index)].file,
                            )
        return Frames(
            positions=records[:, :n3].reshape(f, self.n_atoms, 3),
            forces=records[:, n3 : 2 * n3].reshape(f, self.n_atoms, 3),
            energies=records[:, 2 * n3].copy(),
            temperatures=records[:, 2 * n3 + 1].copy(),
        )

    def neighbor_tables(self, indices, rcut: float, nmax: int) -> NeighborArrays:
        """Padded neighbor tables for the requested frames.

        Built per frame with the same :func:`~repro.md.neighbor.
        neighbor_table` kernel the in-memory dataset uses (bit-identical
        tables), behind a bounded per-frame LRU keyed on the (rcut, nmax)
        in effect -- revisits across epochs hit the cache, and the cache
        never outgrows ``neighbor_cache_frames`` entries."""
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        key = (float(rcut), int(nmax))
        f, n = indices.size, self.n_atoms
        idx = np.zeros((f, n, nmax), dtype=np.int64)
        shift = np.zeros((f, n, nmax, 3))
        mask = np.zeros((f, n, nmax), dtype=bool)
        with self._mu:
            if self._nb_key != key:
                self._nb_cache.clear()
                self._nb_key = key
            missing = [
                t for t in dict.fromkeys(int(i) for i in indices)
                if t not in self._nb_cache
            ]
            if missing:
                frames = self.get_frames(np.asarray(missing, dtype=np.int64))
                for k, t in enumerate(missing):
                    table = neighbor_table(frames.positions[k], self.cell, rcut, nmax)
                    self._nb_cache[t] = (table.idx, table.shift, table.mask)
                    while len(self._nb_cache) > self.neighbor_cache_frames:
                        self._nb_cache.popitem(last=False)
            for k, t in enumerate(indices):
                entry = self._nb_cache.get(int(t))
                if entry is None:  # evicted within this call (tiny cache)
                    frames = self.get_frames(np.asarray([t], dtype=np.int64))
                    table = neighbor_table(frames.positions[0], self.cell, rcut, nmax)
                    entry = (table.idx, table.shift, table.mask)
                else:
                    self._nb_cache.move_to_end(int(t))
                idx[k], shift[k], mask[k] = entry
        return NeighborArrays(idx=idx, shift=shift, mask=mask, rcut=float(rcut))

    # -- statistics / identity -----------------------------------------
    def energies_array(self) -> np.ndarray:
        """All frame energies, read shard by shard ((F,) floats -- small
        even at millions of frames)."""
        out = np.empty(self.n_frames)
        lo = 0
        with self._mu:
            for i, meta in enumerate(self.shards):
                view = self._view(i)
                n3 = self.n_atoms * 3
                out[lo : lo + meta.n_frames] = view.records[:, 2 * n3]
                lo += meta.n_frames
        return out

    def energy_per_atom_stats(self) -> tuple[float, float]:
        """(mean, std) of energy per atom -- same arithmetic (and bits)
        as :meth:`Dataset.energy_per_atom_stats` on equal frames."""
        e = self.energies_array() / self.n_atoms
        return float(e.mean()), float(e.std())

    def fingerprint(self) -> str:
        """Content identity: sha256 over geometry plus every shard's
        payload CRC -- equal stores (same frames, same shard capacity)
        fingerprint equal without reading frame data."""
        h = hashlib.sha256()
        h.update(SCHEMA.encode())
        h.update(self.species.tobytes())
        h.update(np.asarray(self.cell.lengths, dtype=np.float64).tobytes())
        h.update(str(self.shard_capacity).encode())
        for meta in self.shards:
            h.update(f"{meta.n_frames}:{meta.payload_crc};".encode())
        return h.hexdigest()

    def cache_stats(self) -> dict:
        """Residency accounting for the RSS-bound benchmark."""
        return {
            "open_shards": len(self._views),
            "max_open_shards": self.max_open_shards,
            "mapped_bytes": sum(
                self.shards[i].n_frames * self.record_bytes for i in self._views
            ),
            "neighbor_cache_frames": len(self._nb_cache),
        }

    # -- materialization (explicitly bounded) ---------------------------
    def to_dataset(self, indices=None) -> Dataset:
        """Materialize (a slice of) the store as an in-memory dataset."""
        if indices is None:
            indices = np.arange(self.n_frames)
        frames = self.get_frames(indices)
        return Dataset(
            name=self.name,
            positions=frames.positions,
            energies=frames.energies,
            forces=frames.forces,
            species=self.species,
            cell=self.cell,
            temperatures=frames.temperatures,
        )

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release every mapping and file handle (reopen-safe)."""
        with self._mu:
            for view in self._views.values():
                view.close()
            self._views = OrderedDict()
            if self._active_fh is not None:
                self._active_fh.flush()
                self._active_fh.close()
                self._active_fh = None

    def __enter__(self) -> "ShardedFrameStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- pickling (process-executor prefetch ships the handle, not data) -
    def __getstate__(self) -> dict:
        return {
            "path": self.path,
            "max_open_shards": self.max_open_shards,
            "validate": self.validate,
            "neighbor_cache_frames": self.neighbor_cache_frames,
        }

    def __setstate__(self, state: dict) -> None:
        other = ShardedFrameStore.open(
            state["path"],
            mode="r",
            max_open_shards=state["max_open_shards"],
            validate=state["validate"],
        )
        self.__dict__.update(other.__dict__)
        self.neighbor_cache_frames = state["neighbor_cache_frames"]

    def __repr__(self) -> str:
        return (
            f"ShardedFrameStore(path={self.path!r}, frames={self.n_frames}, "
            f"shards={len(self.shards)}, capacity={self.shard_capacity}, "
            f"mode={self.mode!r})"
        )
