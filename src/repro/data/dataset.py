"""Labeled snapshot datasets.

A :class:`Dataset` is the training-ready form of a sampled trajectory:
stacked positions/energies/forces plus the static system description, with
lazily-built (and cached) padded neighbor tables, which are *fixed* during
training because the configurations are fixed -- precomputing them once is
one of the big CPU-side wins for the training loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..md.cell import Cell
from ..md.neighbor import neighbor_table
from ..md.sampler import Trajectory


@dataclass
class NeighborArrays:
    """Stacked neighbor tables for all frames: idx (F,N,Nm) int,
    shift (F,N,Nm,3), mask (F,N,Nm) bool, built at cutoff ``rcut``."""

    idx: np.ndarray
    shift: np.ndarray
    mask: np.ndarray
    rcut: float

    @property
    def nmax(self) -> int:
        return self.idx.shape[2]


@dataclass
class Dataset:
    """Frames of one physical system with energy/force labels."""

    name: str
    positions: np.ndarray  # (F, N, 3)
    energies: np.ndarray  # (F,)
    forces: np.ndarray  # (F, N, 3)
    species: np.ndarray  # (N,) int
    cell: Cell
    temperatures: np.ndarray = field(default=None)  # (F,) metadata
    _neighbors: Optional[NeighborArrays] = field(default=None, repr=False)

    def __post_init__(self):
        f, n, _ = self.positions.shape
        if self.energies.shape != (f,):
            raise ValueError("energies shape mismatch")
        if self.forces.shape != (f, n, 3):
            raise ValueError("forces shape mismatch")
        if self.species.shape != (n,):
            raise ValueError("species shape mismatch")
        if self.temperatures is None:
            self.temperatures = np.zeros(f)

    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        return self.positions.shape[0]

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[1]

    @property
    def n_species(self) -> int:
        return int(self.species.max()) + 1 if self.species.size else 0

    def __len__(self) -> int:
        return self.n_frames

    # ------------------------------------------------------------------
    @classmethod
    def from_trajectory(cls, name: str, traj: Trajectory) -> "Dataset":
        return cls(
            name=name,
            positions=traj.positions_array(),
            energies=traj.energies_array(),
            forces=traj.forces_array(),
            species=traj.species,
            cell=traj.cell,
            temperatures=np.array([f.temperature for f in traj.frames]),
        )

    def get_frames(self, indices) -> "Frames":
        """Materialize the requested frames (:class:`FrameSource` read
        path).  Fancy indexing copies, so callers never hold views into
        the dataset's arrays."""
        from .source import Frames  # deferred: source imports this module

        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        return Frames(
            positions=self.positions[indices],
            forces=self.forces[indices],
            energies=self.energies[indices],
            temperatures=self.temperatures[indices],
        )

    def neighbor_tables(self, indices, rcut: float, nmax: int) -> NeighborArrays:
        """Padded neighbor tables for the requested frames, sliced from
        the dataset-wide cache (:class:`FrameSource` read path)."""
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        nb = self.ensure_neighbors(rcut, nmax)
        return NeighborArrays(
            idx=nb.idx[indices],
            shift=nb.shift[indices],
            mask=nb.mask[indices],
            rcut=nb.rcut,
        )

    @property
    def cached_neighbors(self) -> Optional[NeighborArrays]:
        """The neighbor tables built so far (``None`` before the first
        :meth:`ensure_neighbors`).  Public accessor so serialization does
        not need to reach into the private cache field."""
        return self._neighbors

    @cached_neighbors.setter
    def cached_neighbors(self, nb: Optional[NeighborArrays]) -> None:
        self._neighbors = nb

    def fingerprint(self) -> str:
        """Content identity: sha256 over the label arrays and geometry.
        Two datasets with equal frames fingerprint equal regardless of
        how they were constructed or stored."""
        import hashlib

        h = hashlib.sha256()
        h.update(self.species.astype(np.int64).tobytes())
        h.update(np.asarray(self.cell.lengths, dtype=np.float64).tobytes())
        for arr in (self.positions, self.forces, self.energies, self.temperatures):
            h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        return h.hexdigest()

    def subset(self, indices: np.ndarray) -> "Dataset":
        indices = np.asarray(indices)
        sub = Dataset(
            name=self.name,
            positions=self.positions[indices],
            energies=self.energies[indices],
            forces=self.forces[indices],
            species=self.species,
            cell=self.cell,
            temperatures=self.temperatures[indices],
        )
        if self._neighbors is not None:
            nb = self._neighbors
            sub._neighbors = NeighborArrays(
                idx=nb.idx[indices],
                shift=nb.shift[indices],
                mask=nb.mask[indices],
                rcut=nb.rcut,
            )
        return sub

    def split(self, train_fraction: float = 0.8, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Random train/test split (frame-level)."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_frames)
        k = int(round(train_fraction * self.n_frames))
        return self.subset(perm[:k]), self.subset(perm[k:])

    # ------------------------------------------------------------------
    def ensure_neighbors(self, rcut: float, nmax: int) -> NeighborArrays:
        """Build (or return cached) stacked neighbor tables at ``rcut``."""
        nb = self._neighbors
        if nb is not None and nb.rcut == rcut and nb.nmax == nmax:
            return nb
        f = self.n_frames
        idx = np.zeros((f, self.n_atoms, nmax), dtype=np.int64)
        shift = np.zeros((f, self.n_atoms, nmax, 3))
        mask = np.zeros((f, self.n_atoms, nmax), dtype=bool)
        for t in range(f):
            table = neighbor_table(self.positions[t], self.cell, rcut, nmax)
            idx[t], shift[t], mask[t] = table.idx, table.shift, table.mask
        self._neighbors = NeighborArrays(idx=idx, shift=shift, mask=mask, rcut=rcut)
        return self._neighbors

    # ------------------------------------------------------------------
    def energy_per_atom_stats(self) -> tuple[float, float]:
        """(mean, std) of energy per atom; used to initialize the fitting
        net bias and to normalize RMSE reporting."""
        e = self.energies / self.n_atoms
        return float(e.mean()), float(e.std())
