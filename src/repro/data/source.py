"""The ``FrameSource`` protocol: one data API over memory and disk.

Everything downstream of the data layer -- batch construction, loss
evaluation, training, the online label pool -- used to take a concrete
in-memory :class:`~repro.data.dataset.Dataset`.  That ties corpus size
to RAM.  This module defines the small protocol both backends speak:

==================  ==================================================
``n_frames``        total labeled frames
``n_atoms``         atoms per frame (one physical system per source)
``species``         (N,) int species codes
``cell``            the periodic :class:`~repro.md.cell.Cell`
``n_species``       distinct species count (max code + 1)
``get_frames(idx)`` materialize frames as a :class:`Frames` block
``neighbor_tables(idx, rcut, nmax)``
                    padded neighbor tables for those frames
``energy_per_atom_stats()``
                    (mean, std) energy per atom over the corpus
``fingerprint()``   content-identity hash
==================  ==================================================

:class:`~repro.data.dataset.Dataset` (RAM) and :class:`~repro.data.
framestore.ShardedFrameStore` (disk, mmap) both implement it; the two
are interchangeable and bit-identical to train from.  Use
:func:`open_source` to turn "whatever the user handed us" -- a dataset,
a store, an ``.npz`` path, or a store directory -- into a source, and
:func:`~repro.data.loader.make_loader` to iterate it.

:func:`windowed_order` is the shared shuffle kernel: a pure function of
``(n_frames, window, seed, epoch)``, so an out-of-core loader reading
through a windowed shuffle and an in-memory loader configured the same
way visit frames in the *same* order -- that is what keeps store-backed
training bit-identical to the in-memory path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..md.cell import Cell
from .dataset import Dataset, NeighborArrays

__all__ = ["Frames", "FrameSource", "windowed_order", "open_source"]


@dataclass
class Frames:
    """A materialized block of labeled frames (always fresh arrays --
    never views into a source's backing storage)."""

    positions: np.ndarray  # (F, N, 3)
    forces: np.ndarray  # (F, N, 3)
    energies: np.ndarray  # (F,)
    temperatures: np.ndarray  # (F,)

    @property
    def n_frames(self) -> int:
        return self.positions.shape[0]

    def __len__(self) -> int:
        return self.n_frames


@runtime_checkable
class FrameSource(Protocol):
    """Structural type of anything batches can be built from."""

    species: np.ndarray
    cell: Cell

    @property
    def n_frames(self) -> int: ...

    @property
    def n_atoms(self) -> int: ...

    @property
    def n_species(self) -> int: ...

    def get_frames(self, indices) -> Frames: ...

    def neighbor_tables(
        self, indices, rcut: float, nmax: int
    ) -> NeighborArrays: ...

    def energy_per_atom_stats(self) -> tuple[float, float]: ...

    def fingerprint(self) -> str: ...


def windowed_order(
    n_frames: int,
    window: Optional[int],
    seed: int,
    epoch: int,
) -> np.ndarray:
    """Deterministic (seeded-PCG64) epoch visit order over ``n_frames``.

    ``window=None`` is a global permutation -- exactly the historical
    ``BatchLoader`` shuffle (same generator seeding, same stream), so
    existing runs replay bit-identically.  With a ``window`` the frames
    are split into contiguous windows (the out-of-core case aligns these
    with shard pools), the *window order* is permuted, then each
    window's frames are permuted locally: any moment of iteration only
    has one window's worth of locality, so an LRU shard cache of a few
    shards serves a whole epoch without thrashing.

    Pure function of its arguments: both loader backends call this, so
    equal parameters mean equal order regardless of where frames live.
    """
    rng = np.random.default_rng(seed + 7919 * epoch)
    if window is None or window >= n_frames:
        return rng.permutation(n_frames)
    if window < 1:
        raise ValueError("window must be >= 1")
    n_windows = (n_frames + window - 1) // window
    order = np.empty(n_frames, dtype=np.int64)
    lo = 0
    for w in rng.permutation(n_windows):
        start = int(w) * window
        members = np.arange(start, min(start + window, n_frames))
        order[lo : lo + members.size] = members[rng.permutation(members.size)]
        lo += members.size
    return order


def open_source(path_or_dataset, **kwargs) -> FrameSource:
    """One construction surface for every data backend.

    * a :class:`FrameSource` (``Dataset``, ``ShardedFrameStore``, ...)
      passes through unchanged;
    * a directory holding a ``repro.framestore/v1`` manifest opens as a
      read-only :class:`~repro.data.framestore.ShardedFrameStore`
      (``kwargs`` forward: ``mode``, ``max_open_shards``, ``recover``,
      ``validate``);
    * an ``.npz`` path loads as an in-memory ``Dataset``.

    Mirrors ``make_optimizer``: call sites name *what* they want, the
    registry decides *which class* that is.
    """
    if isinstance(path_or_dataset, (str, os.PathLike)):
        from .framestore import _MANIFEST, ShardedFrameStore

        path = os.fspath(path_or_dataset)
        if os.path.isdir(path):
            if os.path.exists(os.path.join(path, _MANIFEST)):
                kwargs.setdefault("mode", "r")
                return ShardedFrameStore.open(path, **kwargs)
            raise FileNotFoundError(f"no frame store manifest in {path}")
        if path.endswith(".npz"):
            from .store import read_npz

            return read_npz(path, **kwargs)
        raise ValueError(
            f"cannot open {path!r}: expected a frame-store directory or "
            "an .npz dataset file"
        )
    if isinstance(path_or_dataset, FrameSource):
        if kwargs:
            raise TypeError(
                "keyword options only apply when opening from a path"
            )
        return path_or_dataset
    raise TypeError(
        f"cannot make a FrameSource from {type(path_or_dataset).__name__}"
    )
