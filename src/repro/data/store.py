"""npz-backed persistence for in-memory datasets (the paper's "Saving
npy file done" feature-generation step).

:func:`write_npz` / :func:`read_npz` are the current API; they round-trip
a :class:`~repro.data.dataset.Dataset` (including cached neighbor tables)
through one compressed npz file, using the public
:attr:`~repro.data.dataset.Dataset.cached_neighbors` accessor.

:func:`save_dataset` / :func:`load_dataset` are one-release
``DeprecationWarning`` shims over them -- new code should go through
:func:`repro.data.open_source` (which reads ``.npz`` via
:func:`read_npz`) or use a :class:`~repro.data.framestore.
ShardedFrameStore` for corpora that should not live in RAM.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from ..md.cell import Cell
from .dataset import Dataset, NeighborArrays


def write_npz(dataset: Dataset, path: str) -> None:
    """Serialize a dataset (and cached neighbor tables, if any) to ``path``."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = dict(
        name=np.array(dataset.name),
        positions=dataset.positions,
        energies=dataset.energies,
        forces=dataset.forces,
        species=dataset.species,
        cell_lengths=dataset.cell.lengths,
        temperatures=dataset.temperatures,
    )
    nb = dataset.cached_neighbors
    if nb is not None:
        payload.update(
            nb_idx=nb.idx, nb_shift=nb.shift, nb_mask=nb.mask, nb_rcut=np.array(nb.rcut)
        )
    np.savez_compressed(path, **payload)


def read_npz(path: str) -> Dataset:
    """Load a dataset written by :func:`write_npz`."""
    with np.load(path, allow_pickle=False) as z:
        ds = Dataset(
            name=str(z["name"]),
            positions=z["positions"],
            energies=z["energies"],
            forces=z["forces"],
            species=z["species"],
            cell=Cell(z["cell_lengths"]),
            temperatures=z["temperatures"],
        )
        if "nb_idx" in z:
            ds.cached_neighbors = NeighborArrays(
                idx=z["nb_idx"],
                shift=z["nb_shift"],
                mask=z["nb_mask"],
                rcut=float(z["nb_rcut"]),
            )
    return ds


def save_dataset(dataset: Dataset, path: str) -> None:
    """Deprecated alias of :func:`write_npz` (one release)."""
    warnings.warn(
        "save_dataset is deprecated; use repro.data.write_npz (or a "
        "ShardedFrameStore for out-of-core corpora)",
        DeprecationWarning,
        stacklevel=2,
    )
    write_npz(dataset, path)


def load_dataset(path: str) -> Dataset:
    """Deprecated alias of :func:`read_npz` (one release); new code
    should call :func:`repro.data.open_source` instead."""
    warnings.warn(
        "load_dataset is deprecated; use repro.data.open_source (or "
        "repro.data.read_npz)",
        DeprecationWarning,
        stacklevel=2,
    )
    return read_npz(path)
