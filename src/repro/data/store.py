"""npz-backed persistence for datasets (the paper's "Saving npy file done"
feature-generation step)."""

from __future__ import annotations

import os

import numpy as np

from ..md.cell import Cell
from .dataset import Dataset, NeighborArrays


def save_dataset(dataset: Dataset, path: str) -> None:
    """Serialize a dataset (and cached neighbor tables, if any) to ``path``."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = dict(
        name=np.array(dataset.name),
        positions=dataset.positions,
        energies=dataset.energies,
        forces=dataset.forces,
        species=dataset.species,
        cell_lengths=dataset.cell.lengths,
        temperatures=dataset.temperatures,
    )
    nb = dataset._neighbors
    if nb is not None:
        payload.update(
            nb_idx=nb.idx, nb_shift=nb.shift, nb_mask=nb.mask, nb_rcut=np.array(nb.rcut)
        )
    np.savez_compressed(path, **payload)


def load_dataset(path: str) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as z:
        ds = Dataset(
            name=str(z["name"]),
            positions=z["positions"],
            energies=z["energies"],
            forces=z["forces"],
            species=z["species"],
            cell=Cell(z["cell_lengths"]),
            temperatures=z["temperatures"],
        )
        if "nb_idx" in z:
            ds._neighbors = NeighborArrays(
                idx=z["nb_idx"],
                shift=z["nb_shift"],
                mask=z["nb_mask"],
                rcut=float(z["nb_rcut"]),
            )
    return ds
