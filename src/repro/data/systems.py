"""The eight canonical systems of the paper (Table 3), as synthetic analogs.

Each :class:`SystemSpec` packages the lattice, masses, substitute potential
and temperature ladder for one of the paper's datasets.  The ``size``
knob trades atom count / snapshot volume for runtime:

* ``"paper"`` -- atom counts matching Table 3 (32--108 atoms);
* ``"small"`` -- reduced supercells for CI-speed experiments;
* ``"tiny"``  -- minimal cells for unit tests.

``generate_dataset`` runs the MD sampler at every temperature in the ladder
and returns a training-ready :class:`~repro.data.dataset.Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..md import lattice
from ..md.cell import Cell
from ..md.eam import SuttonChenEAM, SuttonChenParams
from ..md.potentials import (
    Buckingham,
    Composite,
    FlexibleWater,
    LennardJones,
    Morse,
    Potential,
    StillingerWeber,
    WolfCoulomb,
)
from ..md.sampler import sample_trajectory
from .dataset import Dataset

#: Supercell repetitions per size preset, keyed by lattice family.
_REPS = {
    "paper": {"fcc_big": (3, 3, 3), "fcc": (2, 2, 2), "hcp": (3, 2, 2), "diamond": (2, 2, 2), "rocksalt": (2, 2, 2), "fluorite": (2, 2, 2), "water": 16},
    "small": {"fcc_big": (2, 2, 2), "fcc": (2, 2, 1), "hcp": (2, 2, 1), "diamond": (2, 1, 1), "rocksalt": (2, 2, 1), "fluorite": (2, 1, 1), "water": 8},
    "tiny": {"fcc_big": (2, 2, 1), "fcc": (2, 1, 1), "hcp": (1, 2, 1), "diamond": (1, 1, 1), "rocksalt": (1, 1, 1), "fluorite": (1, 1, 1), "water": 4},
}


@dataclass
class SystemSpec:
    """Recipe for one Table 3 system."""

    name: str
    elements: tuple[str, ...]
    masses_by_type: tuple[float, ...]
    temperatures: tuple[float, ...]
    timestep: float  # fs, Table 3 column 3
    rcut: float  # descriptor cutoff used for this system
    builder: Callable[[str], tuple[np.ndarray, Cell, np.ndarray, Potential]]
    #: nearest-neighbor distance of the ideal lattice (Angstrom); cutoffs
    #: are never clamped below ~1.35x this, so small supercells keep a
    #: physical first coordination shell even when that exceeds the
    #: minimum-image radius (self-consistent labels either way).
    first_shell: float = 2.5

    def build(self, size: str = "paper") -> tuple[np.ndarray, Cell, np.ndarray, Potential]:
        """(positions, cell, species, potential) at the given size preset."""
        return self.builder(size)

    def masses(self, species: np.ndarray) -> np.ndarray:
        return np.asarray(self.masses_by_type, dtype=np.float64)[species]


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------
def _clamp(rcut: float, cell: Cell, first_shell: float) -> float:
    """Clamp pair cutoffs toward the minimum-image-safe radius of the cell,
    but never below ~1.35x the first coordination shell: a cutoff that
    excludes nearest neighbors produces a free-floating (label-less)
    system, which is far worse than the mild minimum-image approximation
    incurred when the cutoff exceeds L/2 on a small cell."""
    return min(rcut, max(cell.max_cutoff() * 0.99, first_shell * 1.35))


def _cu(size: str):
    pos, cell, sp = lattice.fcc(3.615, _REPS[size]["fcc_big"])
    pot = LennardJones(sp, {(0, 0): (0.409, 2.338)}, rcut=_clamp(5.5, cell, 2.556))
    return pos, cell, sp, pot


def _al(size: str):
    pos, cell, sp = lattice.fcc(4.05, _REPS[size]["fcc"])
    pot = LennardJones(sp, {(0, 0): (0.392, 2.62)}, rcut=_clamp(6.0, cell, 2.864))
    return pos, cell, sp, pot


def _mg(size: str):
    pos, cell, sp = lattice.hcp(3.21, 5.21, _REPS[size]["hcp"])
    pot = Morse(sp, {(0, 0): (0.4174, 1.3885, 3.14)}, rcut=_clamp(6.0, cell, 3.19))
    return pos, cell, sp, pot


def _si(size: str):
    pos, cell, sp = lattice.diamond(5.43, _REPS[size]["diamond"])
    return pos, cell, sp, StillingerWeber()


def _nacl(size: str):
    pos, cell, sp = lattice.rocksalt(5.64, _REPS[size]["rocksalt"])
    charges = np.where(sp == 0, 1.0, -1.0)
    short = Buckingham(
        sp,
        {
            (0, 0): (424.0, 0.317, 1.05),
            (0, 1): (1256.0, 0.317, 7.0),
            (1, 1): (3488.0, 0.317, 73.0),
        },
        rcut=_clamp(6.5, cell, 2.82),
    )
    return pos, cell, sp, Composite(
        [short, WolfCoulomb(charges, alpha=0.3, rcut=_clamp(6.5, cell, 2.82))]
    )


def _h2o(size: str):
    pos, cell, sp, mol = lattice.water_box(_REPS[size]["water"], rng=np.random.default_rng(11))
    return pos, cell, sp, FlexibleWater(sp, mol)


def _cuo(size: str):
    pos, cell, sp = lattice.rocksalt(4.26, _REPS[size]["rocksalt"])
    charges = np.where(sp == 0, 1.0, -1.0)
    short = Buckingham(
        sp,
        {
            (0, 0): (600.0, 0.33, 0.0),
            (0, 1): (1800.0, 0.30, 0.0),
            (1, 1): (22764.0, 0.149, 27.88),
        },
        rcut=_clamp(5.8, cell, 2.13),
    )
    return pos, cell, sp, Composite(
        [short, WolfCoulomb(charges, alpha=0.32, rcut=_clamp(5.8, cell, 2.13))]
    )


def _hfo2(size: str):
    pos, cell, sp = lattice.fluorite(5.08, _REPS[size]["fluorite"])
    charges = np.where(sp == 0, 2.0, -1.0)
    short = Buckingham(
        sp,
        {
            (0, 0): (1000.0, 0.32, 0.0),
            (0, 1): (1454.6, 0.35, 0.0),
            (1, 1): (22764.0, 0.149, 27.88),
        },
        rcut=_clamp(5.8, cell, 2.20),
    )
    return pos, cell, sp, Composite(
        [short, WolfCoulomb(charges, alpha=0.32, rcut=_clamp(5.8, cell, 2.20))]
    )


def _cu_eam(size: str):
    pos, cell, sp = lattice.fcc(3.615, _REPS[size]["fcc_big"])
    pot = SuttonChenEAM(SuttonChenParams.copper(), rcut=_clamp(5.5, cell, 2.556))
    return pos, cell, sp, pot


def _al_eam(size: str):
    pos, cell, sp = lattice.fcc(4.05, _REPS[size]["fcc"])
    pot = SuttonChenEAM(SuttonChenParams.aluminium(), rcut=_clamp(6.0, cell, 2.864))
    return pos, cell, sp, pot


#: Registry of all eight Table 3 systems.
SYSTEMS: dict[str, SystemSpec] = {
    "Cu": SystemSpec("Cu", ("Cu",), (63.546,), (400.0, 600.0, 800.0), 2.0, 5.5, _cu, first_shell=2.556),
    "Al": SystemSpec("Al", ("Al",), (26.982,), (300.0, 500.0, 800.0, 1000.0), 2.0, 6.0, _al, first_shell=2.864),
    "Si": SystemSpec("Si", ("Si",), (28.086,), (300.0, 500.0, 800.0), 3.0, 3.77, _si, first_shell=2.352),
    "NaCl": SystemSpec("NaCl", ("Na", "Cl"), (22.990, 35.453), (300.0, 500.0, 800.0), 2.0, 6.5, _nacl, first_shell=2.82),
    "Mg": SystemSpec("Mg", ("Mg",), (24.305,), (300.0, 500.0, 800.0), 3.0, 6.0, _mg, first_shell=3.19),
    "H2O": SystemSpec("H2O", ("O", "H"), (15.999, 1.008), (300.0, 500.0, 800.0, 1000.0), 1.0, 5.0, _h2o, first_shell=2.75),
    "CuO": SystemSpec("CuO", ("Cu", "O"), (63.546, 15.999), (300.0, 500.0, 800.0), 3.0, 5.8, _cuo, first_shell=2.13),
    "HfO2": SystemSpec("HfO2", ("Hf", "O"), (178.49, 15.999), (200.0, 800.0, 1600.0, 2400.0), 1.0, 5.8, _hfo2, first_shell=2.20),
}


#: Extra labelers beyond Table 3: many-body EAM variants of the metals
#: (closer to the DFT character of the paper's data than pair potentials).
EXTRA_SYSTEMS: dict[str, SystemSpec] = {
    "Cu-EAM": SystemSpec("Cu-EAM", ("Cu",), (63.546,), (400.0, 600.0, 800.0), 2.0, 5.5, _cu_eam, first_shell=2.556),
    "Al-EAM": SystemSpec("Al-EAM", ("Al",), (26.982,), (300.0, 500.0, 800.0, 1000.0), 2.0, 6.0, _al_eam, first_shell=2.864),
}


def get_system(name: str) -> SystemSpec:
    """Look up a system in the Table 3 registry or the extras."""
    if name in SYSTEMS:
        return SYSTEMS[name]
    if name in EXTRA_SYSTEMS:
        return EXTRA_SYSTEMS[name]
    raise KeyError(
        f"unknown system {name!r}; choose from {sorted(SYSTEMS) + sorted(EXTRA_SYSTEMS)}"
    )


def generate_dataset(
    name: str,
    frames_per_temperature: int = 40,
    size: str = "paper",
    seed: int = 0,
    equilibration_steps: int = 50,
    stride: int = 5,
) -> Dataset:
    """Sample a labeled dataset for one of the eight systems.

    ``frames_per_temperature * len(spec.temperatures)`` frames are produced;
    the paper uses 10k-72k snapshots, we default to a scaled-down count that
    preserves the training-dynamics shapes (see DESIGN.md).
    """
    spec = get_system(name)
    pos, cell, sp, pot = spec.build(size)
    traj = sample_trajectory(
        pot,
        pos,
        cell,
        sp,
        spec.masses(sp),
        temperatures=spec.temperatures,
        n_frames_per_temperature=frames_per_temperature,
        timestep=spec.timestep,
        stride=stride,
        equilibration_steps=equilibration_steps,
        seed=seed,
    )
    return Dataset.from_trajectory(name, traj)


def table3_rows(size: str = "paper") -> list[dict]:
    """Dataset-description rows analogous to the paper's Table 3."""
    rows = []
    for name, spec in SYSTEMS.items():
        pos, _, sp, _ = spec.build(size)
        rows.append(
            dict(
                system=name,
                temperatures_K=spec.temperatures,
                time_step_fs=spec.timestep,
                atom_number=len(pos),
                species=spec.elements,
            )
        )
    return rows
