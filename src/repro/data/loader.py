"""Minibatch iteration over frame sources, with optional prefetch.

The loader yields frame-index arrays; the model's input pipeline turns
them into batched descriptor inputs.  Shuffling is seeded per epoch so
training runs are exactly reproducible -- convergence-epoch comparisons
between optimizers (Tables 1 and 4) depend on that determinism.

Two loaders share one ordering kernel (:func:`~repro.data.source.
windowed_order`), so they visit frames identically for equal parameters:

* :class:`BatchLoader` -- builds each batch synchronously in the
  consumer's thread.  The historical path, now speaking the
  :class:`~repro.data.source.FrameSource` protocol instead of a concrete
  in-memory dataset.
* :class:`StreamingLoader` -- a producer thread runs batch construction
  on rank workers via the executor layer (:mod:`repro.parallel.
  executor`), keeping a bounded queue of ready batches ahead of the
  consumer: descriptor-input assembly (frame reads, neighbor tables,
  index flattening) overlaps the optimizer's Kalman algebra.  Hit/stall
  counters and ``data.prefetch`` worker spans make the overlap
  observable.

Construct via :func:`make_loader` (mirrors ``make_optimizer``): it picks
the class from the options and accepts anything
:func:`~repro.data.source.open_source` understands.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from typing import Iterator, Optional

import numpy as np

from ..telemetry import metrics as _metrics
from ..telemetry.trace import current_tracer, span as _span
from .source import FrameSource, open_source, windowed_order

__all__ = ["BatchLoader", "StreamingLoader", "make_loader"]


def _deprecated_dataset_kwarg(source, dataset):
    """Resolve the renamed first argument of :class:`BatchLoader`."""
    if dataset is not None:
        if source is not None:
            raise TypeError("pass either source or dataset=, not both")
        warnings.warn(
            "BatchLoader(dataset=...) is deprecated; pass the source "
            "positionally or use repro.data.make_loader(source, ...)",
            DeprecationWarning,
            stacklevel=3,
        )
        source = dataset
    if source is None:
        raise TypeError("BatchLoader requires a frame source")
    return source


class BatchLoader:
    """Iterate a frame source in shuffled minibatches of frame indices.

    ``window`` bounds shuffle locality (see :func:`~repro.data.source.
    windowed_order`): ``None`` reproduces the historical global
    permutation bit-exactly; a finite window keeps any moment of
    iteration inside one window's worth of frames, which is what lets an
    out-of-core store serve an epoch from a small LRU of mapped shards.
    """

    def __init__(
        self,
        source: Optional[FrameSource] = None,
        batch_size: int = 1,
        shuffle: bool = True,
        drop_last: bool = True,
        seed: int = 0,
        window: Optional[int] = None,
        *,
        dataset: Optional[FrameSource] = None,
    ):
        source = _deprecated_dataset_kwarg(source, dataset)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None)")
        self.source = source
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self.window = window
        self._epoch = 0

    @property
    def dataset(self) -> FrameSource:
        """Deprecated alias of :attr:`source` (pre-FrameSource name)."""
        warnings.warn(
            "BatchLoader.dataset is deprecated; use BatchLoader.source",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.source

    def __len__(self) -> int:
        n = self.source.n_frames
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch(self, epoch_index: int | None = None) -> Iterator[np.ndarray]:
        """Yield minibatch index arrays for one epoch.

        ``epoch_index`` selects the deterministic shuffle; ``None`` reads
        the loader's epoch cursor without advancing it.  This method
        never mutates loader state, so ``list(loader.epoch(i))`` is
        reproducible for any ``i`` at any time.
        """
        if epoch_index is None:
            epoch_index = self._epoch
        n = self.source.n_frames
        if self.shuffle:
            order = windowed_order(n, self.window, self.seed, epoch_index)
        else:
            order = np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for lo in range(0, stop, self.batch_size):
            yield order[lo : lo + self.batch_size]

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate the epoch at the cursor, then advance the cursor.

        The cursor moves only when the iterator is exhausted -- merely
        calling ``iter(loader)`` (or abandoning it part-way) leaves the
        epoch sequence unchanged, so consecutive full passes replay
        ``epoch(0)``, ``epoch(1)``, ... exactly.
        """
        e = self._epoch
        yield from self.epoch(e)
        self._epoch = e + 1

    # ------------------------------------------------------------------
    def iter_batches(self, cfg, epoch_index: int | None = None):
        """Yield ``(indices, DescriptorBatch)`` pairs for one epoch.

        The synchronous path: each batch is built in the caller's thread
        right before it is yielded.  :class:`StreamingLoader` overrides
        this with the prefetching producer; both yield identical pairs
        for equal loader parameters (same ordering kernel, same
        ``make_batch``), which is the bit-identity contract the
        determinism audit checks.
        """
        from ..model.environment import make_batch  # deferred: model imports data

        for idx in self.epoch(epoch_index):
            yield idx, make_batch(self.source, idx, cfg)

    def warm_up(self) -> None:
        """Pre-start worker resources (no-op for the synchronous path)."""

    def close(self) -> None:
        """Release loader resources (no-op for the synchronous path)."""


class StreamingLoader(BatchLoader):
    """Prefetching loader: batch construction on rank workers, ahead of
    the consumer.

    A producer thread dispatches ``make_batch`` tasks in groups of
    ``workers`` through an executor (:class:`~repro.optim.worker.
    PrefetchWorker` ranks; serial / thread / process backends all work)
    and feeds a queue bounded at ``depth`` groups -- bounded memory, no
    matter how far the optimizer falls behind.  The consumer's
    :meth:`iter_batches` drains the queue in submission order, so the
    batch sequence is exactly the synchronous loader's.

    Observability: ``data.prefetch.hits`` / ``data.prefetch.stalls``
    counters (was a batch ready the moment the optimizer asked?), a
    ``data.prefetch.wait_s`` histogram of consumer stall time, worker
    ``data.prefetch`` spans merged into an ambient tracer, and
    :attr:`stats` totals for the benchmark gate.
    """

    def __init__(
        self,
        source: Optional[FrameSource] = None,
        batch_size: int = 1,
        cfg=None,
        shuffle: bool = True,
        drop_last: bool = True,
        seed: int = 0,
        window: Optional[int] = None,
        executor: "str | None" = None,
        workers: int = 2,
        depth: int = 2,
        *,
        dataset: Optional[FrameSource] = None,
    ):
        super().__init__(
            source, batch_size, shuffle, drop_last, seed, window, dataset=dataset
        )
        if cfg is None:
            raise TypeError(
                "StreamingLoader needs the descriptor config (cfg=) to "
                "build batches on its workers"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.cfg = cfg
        self.executor_kind = executor
        self.workers = int(workers)
        self.depth = int(depth)
        self._executor = None
        #: lifetime totals, for the gated benchmark and tests
        self.stats = {"batches": 0, "hits": 0, "stalls": 0, "wait_s": 0.0}

    # ------------------------------------------------------------------
    def _ensure_executor(self):
        if self._executor is None:
            from ..optim.worker import PrefetchSpec
            from ..parallel.executor import make_executor

            ex = make_executor(self.executor_kind, self.workers)
            ex.start(PrefetchSpec(source=self.source, cfg=self.cfg))
            self._executor = ex
        return self._executor

    def _produce(
        self,
        batches: list[np.ndarray],
        out: "queue.Queue",
        stop: threading.Event,
        capture: bool,
    ) -> None:
        """Producer loop: submit index groups, enqueue results in order."""
        ws = self.workers
        try:
            for lo in range(0, len(batches), ws):
                if stop.is_set():
                    return
                group = batches[lo : lo + ws]
                calls = [("make_batch", (idx,)) for idx in group]
                calls += [("noop", ())] * (ws - len(group))
                results = self._executor.submit(calls, capture=capture)
                for idx, res in zip(group, results):
                    item = ("ok", idx, res.payload, res.telemetry)
                    while not stop.is_set():
                        try:
                            out.put(item, timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    else:
                        return
            while not stop.is_set():
                try:
                    out.put(("end",), timeout=0.1)
                    return
                except queue.Full:
                    continue
        except BaseException as exc:  # surfaced in the consumer
            try:
                out.put(("err", exc), timeout=1.0)
            except queue.Full:
                pass

    def _merge_telemetry(self, tel, tracer) -> None:
        _metrics.REGISTRY.merge_counters(tel.counters, rank=tel.rank)
        if tracer is not None and tel.spans:
            tracer.emit_foreign(tel.spans, rank=tel.rank, pid=tel.pid)

    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Start the worker executor now; idempotent.  Without it the
        first :meth:`iter_batches` pays the worker spawn cost, which
        throughput measurements usually want outside the timed region."""
        self._ensure_executor()

    def iter_batches(self, cfg=None, epoch_index: int | None = None):
        """Yield ``(indices, DescriptorBatch)`` with prefetch overlap.

        ``cfg`` must match the loader's config when given (the workers
        were built with :attr:`cfg`).  Abandoning the generator part-way
        (early stop, exceptions) stops the producer and leaves the
        executor reusable for the next epoch.
        """
        if cfg is not None and cfg != self.cfg:
            raise ValueError("iter_batches cfg differs from the loader's cfg")
        self._ensure_executor()
        batches = list(self.epoch(epoch_index))
        tracer = current_tracer()
        hits = _metrics.REGISTRY.counter("data.prefetch.hits")
        stalls = _metrics.REGISTRY.counter("data.prefetch.stalls")
        wait_h = _metrics.REGISTRY.histogram("data.prefetch.wait_s")
        out: "queue.Queue" = queue.Queue(maxsize=self.depth * self.workers)
        stop = threading.Event()
        producer = threading.Thread(
            target=self._produce,
            args=(batches, out, stop, tracer is not None),
            name="data-prefetch",
            daemon=True,
        )
        producer.start()
        served = 0
        try:
            while served < len(batches):
                if out.empty():
                    self.stats["stalls"] += 1
                    stalls.inc()
                    t0 = time.perf_counter()
                    with _span("data.prefetch.wait", served=served):
                        item = out.get()
                    waited = time.perf_counter() - t0
                    self.stats["wait_s"] += waited
                    wait_h.observe(waited)
                else:
                    self.stats["hits"] += 1
                    hits.inc()
                    item = out.get()
                if item[0] == "err":
                    raise item[1]
                if item[0] == "end":  # producer stopped early
                    raise RuntimeError(
                        "prefetch producer ended before the epoch completed"
                    )
                _, idx, batch, tel = item
                self._merge_telemetry(tel, tracer)
                served += 1
                self.stats["batches"] += 1
                yield idx, batch
        finally:
            stop.set()
            while True:  # unblock a producer stuck on a full queue
                try:
                    out.get_nowait()
                except queue.Empty:
                    break
            producer.join(timeout=5.0)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker executor down (idempotent; reopens on use)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "StreamingLoader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def make_loader(
    source,
    batch_size: int,
    *,
    cfg=None,
    shuffle: bool = True,
    drop_last: bool = True,
    seed: int = 0,
    window: Optional[int] = None,
    prefetch: bool = False,
    executor: "str | None" = None,
    workers: int = 2,
    depth: int = 2,
) -> BatchLoader:
    """Build the right loader for a source (mirrors ``make_optimizer``).

    ``source`` is anything :func:`~repro.data.open_source` accepts -- a
    ``Dataset``, a ``ShardedFrameStore``, an ``.npz`` path, or a store
    directory.  ``prefetch=True`` returns a :class:`StreamingLoader`
    (requires ``cfg``); otherwise a plain :class:`BatchLoader`.  Both
    yield bit-identical batch sequences for equal parameters.
    """
    source = open_source(source)
    if prefetch:
        return StreamingLoader(
            source,
            batch_size,
            cfg=cfg,
            shuffle=shuffle,
            drop_last=drop_last,
            seed=seed,
            window=window,
            executor=executor,
            workers=workers,
            depth=depth,
        )
    return BatchLoader(
        source,
        batch_size,
        shuffle=shuffle,
        drop_last=drop_last,
        seed=seed,
        window=window,
    )
