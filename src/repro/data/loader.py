"""Minibatch iteration over datasets.

The loader yields frame-index arrays; the model's input pipeline turns them
into batched descriptor inputs.  Shuffling is seeded per epoch so training
runs are exactly reproducible -- convergence-epoch comparisons between
optimizers (Tables 1 and 4) depend on that determinism.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .dataset import Dataset


class BatchLoader:
    """Iterate a dataset in shuffled minibatches of frame indices."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = True,
        seed: int = 0,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = self.dataset.n_frames
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch(self, epoch_index: int | None = None) -> Iterator[np.ndarray]:
        """Yield minibatch index arrays for one epoch.

        ``epoch_index`` selects the deterministic shuffle; ``None`` reads
        the loader's epoch cursor without advancing it.  This method
        never mutates loader state, so ``list(loader.epoch(i))`` is
        reproducible for any ``i`` at any time.
        """
        if epoch_index is None:
            epoch_index = self._epoch
        n = self.dataset.n_frames
        order = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + 7919 * epoch_index)
            order = rng.permutation(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for lo in range(0, stop, self.batch_size):
            yield order[lo : lo + self.batch_size]

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate the epoch at the cursor, then advance the cursor.

        The cursor moves only when the iterator is exhausted -- merely
        calling ``iter(loader)`` (or abandoning it part-way) leaves the
        epoch sequence unchanged, so consecutive full passes replay
        ``epoch(0)``, ``epoch(1)``, ... exactly.
        """
        e = self._epoch
        yield from self.epoch(e)
        self._epoch = e + 1
