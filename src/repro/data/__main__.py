"""Dataset generation CLI (the paper artifact's feature-generation step).

    python -m repro.data Cu --frames 48 --size paper --out datasets/cu.npz
    python -m repro.data Cu --frames 48 --store stores/cu --shard-capacity 64

Samples the requested system with the classical-MD labeler, optionally
precomputes the padded neighbor tables at the system's descriptor cutoff,
and saves everything as one npz ("Saving npy file done") -- or, with
``--store``, ingests the frames into a ``repro.framestore/v1`` sharded
store that trains out-of-core via ``repro.data.open_source``.
"""

from __future__ import annotations

import argparse
import time

from ..md.neighbor import max_neighbor_count
from .framestore import ShardedFrameStore
from .store import write_npz
from .systems import SYSTEMS, generate_dataset


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.data")
    parser.add_argument("system", choices=sorted(SYSTEMS), help="Table 3 system")
    parser.add_argument("--frames", type=int, default=48, help="frames per temperature")
    parser.add_argument("--size", default="paper", choices=("paper", "small", "tiny"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="output npz path")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="ingest into a sharded frame store at DIR instead of one npz",
    )
    parser.add_argument(
        "--shard-capacity",
        type=int,
        default=1024,
        dest="shard_capacity",
        help="frames per shard for --store",
    )
    parser.add_argument(
        "--neighbors",
        action="store_true",
        help="precompute padded neighbor tables at the system cutoff",
    )
    args = parser.parse_args(argv)

    spec = SYSTEMS[args.system]
    t0 = time.perf_counter()
    ds = generate_dataset(
        args.system, frames_per_temperature=args.frames, size=args.size, seed=args.seed
    )
    print(
        f"sampled {ds.n_frames} frames x {ds.n_atoms} atoms "
        f"({time.perf_counter() - t0:.1f}s); E/atom mean/std = "
        f"{ds.energy_per_atom_stats()[0]:.4f}/{ds.energy_per_atom_stats()[1]:.4f}"
    )
    if args.neighbors:
        rcut = min(spec.rcut, max(ds.cell.max_cutoff() * 0.99, spec.first_shell * 1.35))
        nmax = max_neighbor_count(ds.positions[0], ds.cell, rcut) + 2
        ds.ensure_neighbors(rcut, nmax)
        print(f"neighbor tables built at rcut={rcut:.2f} A, Nm={nmax}")
    if args.store is not None:
        t1 = time.perf_counter()
        with ShardedFrameStore.ingest(
            args.store, ds, shard_capacity=args.shard_capacity, name=ds.name
        ) as store:
            n_shards = len(store.shards)
        rate = ds.n_frames / max(time.perf_counter() - t1, 1e-9)
        print(
            f"ingested {ds.n_frames} frames into {n_shards} shards "
            f"({rate:.0f} frames/s) -> {args.store}"
        )
        return 0
    out = args.out or f"{args.system.lower()}_{args.size}.npz"
    write_npz(ds, out)
    print(f"Saving npy file done -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
