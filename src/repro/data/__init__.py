"""repro.data -- datasets, storage, batching, and the Table 3 systems."""

from .dataset import Dataset, NeighborArrays
from .loader import BatchLoader
from .store import load_dataset, save_dataset
from .systems import EXTRA_SYSTEMS, SYSTEMS, SystemSpec, generate_dataset, get_system, table3_rows

__all__ = [
    "Dataset",
    "NeighborArrays",
    "BatchLoader",
    "save_dataset",
    "load_dataset",
    "SYSTEMS",
    "EXTRA_SYSTEMS",
    "get_system",
    "SystemSpec",
    "generate_dataset",
    "table3_rows",
]
