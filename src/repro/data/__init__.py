"""repro.data -- frame sources, storage, batching, and the Table 3 systems.

The data API is the :class:`FrameSource` protocol: in-memory
:class:`Dataset` and out-of-core :class:`ShardedFrameStore` both speak
it, :func:`open_source` turns paths/objects into sources, and
:func:`make_loader` builds the (optionally prefetching) batch iterator.
"""

from .dataset import Dataset, NeighborArrays
from .framestore import FrameStoreCorrupt, ShardedFrameStore
from .loader import BatchLoader, StreamingLoader, make_loader
from .source import Frames, FrameSource, open_source, windowed_order
from .store import load_dataset, read_npz, save_dataset, write_npz
from .systems import EXTRA_SYSTEMS, SYSTEMS, SystemSpec, generate_dataset, get_system, table3_rows

__all__ = [
    "Dataset",
    "NeighborArrays",
    "Frames",
    "FrameSource",
    "open_source",
    "windowed_order",
    "ShardedFrameStore",
    "FrameStoreCorrupt",
    "BatchLoader",
    "StreamingLoader",
    "make_loader",
    "write_npz",
    "read_npz",
    "save_dataset",
    "load_dataset",
    "SYSTEMS",
    "EXTRA_SYSTEMS",
    "get_system",
    "SystemSpec",
    "generate_dataset",
    "table3_rows",
]
