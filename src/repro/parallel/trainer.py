"""Data-parallel FEKF over pluggable rank executors.

The paper's Sec. 3.3 argument, executed literally:

* the minibatch is sharded across ranks;
* each rank's :class:`~repro.optim.GradientWorker` computes its *reduced*
  local gradient and absolute-error sums (the funnel dataflow -- reduction
  happens before any Kalman algebra);
* gradients are summed with a real ring-allreduce, ABEs with a scalar
  allreduce;
* the parent performs one Kalman update and broadcasts the weight *delta*
  to every replica, so the P replicas never diverge and are never
  communicated.  A verification mode keeps a genuinely independent shadow
  replica and asserts bit-equality of the checksums every update.

Execution backend is pluggable (:mod:`repro.parallel.executor`): ranks run
serially in-process (default), on worker threads, or in persistent worker
processes -- all bit-identical, because per-rank compute is a pure
function of (weights, shard) and results are reduced in rank order.

Robustness: a rank that fails a task twice surfaces as
:class:`WorkerCrash`; the trainer then finishes the *current step* with a
serial scratch worker (bit-identical -- the shared force graph is rebuilt
at the snapshotted post-energy weights) and heals the executor before the
next step.  A crash costs wall time, never a training step.

Two clocks are reported per step:

* ``modeled_time_s`` -- max_rank(compute) + t_comm(alpha-beta model)
  + t_kalman, the Table-5 simulated cluster time;
* ``wall_time_s`` -- real elapsed time of ``step_batch`` on this host,
  which is what the thread/process executors actually improve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..optim.ekf import FEKF
from ..optim.kalman import KalmanConfig, KalmanState
from ..optim.worker import (
    FaultInjector,
    GradientWorker,
    ShardResult,
    TaskResult,
    WorkerSpec,
    WorkerTelemetry,
)
from ..telemetry import metrics as _metrics
from ..telemetry.trace import current_tracer, span as _span
from .comm import CostModel, SimCommunicator
from .executor import Executor, WorkerCrash, make_executor
from .topology import ClusterSpec, cluster_for_gpus, cost_model_for


@dataclass
class StepTiming:
    """Accumulated timing components (seconds).

    ``compute_s`` / ``comm_s`` / ``kalman_s`` are *simulated-cluster*
    components (compute is the per-round max over ranks, comm comes from
    the alpha-beta model); ``wall_s`` is real elapsed time on this host.
    """

    compute_s: float = 0.0
    comm_s: float = 0.0
    kalman_s: float = 0.0
    wall_s: float = 0.0
    steps: int = 0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s + self.kalman_s


class DistributedFEKF:
    """FEKF with the minibatch sharded over ``world_size`` ranks.

    Exposes the same ``step_batch`` protocol as the serial optimizers, so
    it plugs straight into :class:`repro.train.Trainer`.  ``executor``
    selects the backend: ``"serial"`` / ``"thread"`` / ``"process"``, an
    :class:`Executor` instance, or ``None`` to consult ``$REPRO_EXECUTOR``.
    """

    name = "DistributedFEKF"

    def __init__(
        self,
        model: DeePMD,
        world_size: int,
        kalman_cfg: KalmanConfig | None = None,
        n_force_splits: int = 4,
        fused_env: bool = True,
        reuse_force_graph: bool = True,
        verify_replicas: bool = False,
        cost_model: CostModel | None = None,
        seed: int = 0,
        executor: "str | Executor | None" = None,
        compiled: bool | None = None,
    ):
        self.world_size = int(world_size)
        if cost_model is None:
            cost_model = cost_model_for(cluster_for_gpus(self.world_size))
        self.comm = SimCommunicator(self.world_size, cost_model)
        # the parent optimizer: owns the canonical weights + filter state
        self._local = FEKF(
            model,
            kalman_cfg=kalman_cfg,
            n_force_splits=n_force_splits,
            fused_env=fused_env,
            reuse_force_graph=reuse_force_graph,
            seed=seed,
            compiled=compiled,
        )
        self.model = model
        self._spec = WorkerSpec(
            model=model, fused_env=fused_env, compiled=self._local.compiled
        )
        self.executor = make_executor(executor, self.world_size)
        self.executor.start(self._spec)
        self.timing = StepTiming()
        self.verify_replicas = verify_replicas
        self._shadow: KalmanState | None = (
            self._local.kalman.clone() if verify_replicas else None
        )
        self.step_count = 0
        # per-step fallback state (see _round / _fallback_call)
        self._step_fallback = False
        self._fb_worker: GradientWorker | None = None
        self._fb_graphs: dict[int, object] = {}
        self._graph_weights: np.ndarray | None = None
        self._shard_cache: list[DescriptorBatch] = []

    # ------------------------------------------------------------------
    @property
    def kalman(self) -> KalmanState:
        return self._local.kalman

    # optimizer protocol: the parent holds one filter state and the
    # canonical weights, so state and hyperparameters delegate to it
    @property
    def hyperparams(self) -> dict:
        return {
            **self._local.hyperparams,
            "name": self.name,
            "world_size": self.world_size,
            "executor": self.executor.name,
        }

    def stats(self) -> dict:
        """Parent-side optimizer diagnostics (see :meth:`FEKF.stats`)."""
        return self._local.stats()

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._local.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._local.load_state_dict(state)
        if self._shadow is not None:
            self._shadow = self._local.kalman.clone()
        self.sync_workers()

    def sync_workers(self) -> None:
        """Push the parent's full weight vector to every rank replica."""
        w = self.model.params.flatten()
        try:
            self.executor.broadcast("set_weights", w)
        except WorkerCrash:
            _metrics.REGISTRY.counter("parallel.executor_heals").inc()
            self.executor.heal(self._spec, w)

    def inject_fault(self, rank: int, fault: FaultInjector) -> None:
        """Install a fault injector on one rank (robustness tests)."""
        calls = [
            ("set_fault", (fault if r == rank else None,))
            for r in range(self.world_size)
        ]
        self.executor.submit(calls)

    def close(self) -> None:
        """Tear down the executor's workers (idempotent)."""
        self.executor.close()

    def _shards(self, batch: DescriptorBatch) -> list[DescriptorBatch]:
        """Near-even frame split; when ``batch_size < world_size`` the
        surplus ranks receive empty shards (their zero-count results drop
        out of the count-weighted reduction)."""
        bs = batch.batch_size
        if bs < 1:
            raise ValueError("cannot shard an empty batch")
        bounds = np.linspace(0, bs, self.world_size + 1).astype(int)
        return [batch.frame_slice(int(lo), int(hi)) for lo, hi in zip(bounds, bounds[1:])]

    # ------------------------------------------------------------------
    # executor rounds with serial fallback
    # ------------------------------------------------------------------
    def _merge_telemetry(self, results: list[TaskResult]) -> float:
        """Fold worker-local telemetry into the parent registry/tracer;
        returns the max rank wall time (the simulated-cluster compute
        cost of the round)."""
        tracer = current_tracer()
        profiler = tracer.profiler if tracer is not None else None
        ex = self.executor.name
        max_wall = 0.0
        for res in results:
            tel = res.telemetry
            if tel.wall_s > max_wall:
                max_wall = tel.wall_s
            if tel.counters:
                _metrics.REGISTRY.merge_counters(tel.counters, executor=ex)
            if tracer is not None and tel.spans:
                tracer.emit_foreign(
                    tel.spans, rank=tel.rank, pid=tel.pid, executor=ex
                )
            if profiler is not None and tel.ops:
                profiler.emit_foreign(tel.ops, rank=tel.rank, pid=tel.pid)
        return max_wall

    def _round(
        self, calls: list[tuple[str, tuple]], capture: bool
    ) -> list[TaskResult]:
        """Run one call per rank; on a :class:`WorkerCrash` switch the
        remainder of the step to the serial scratch worker -- the step
        always completes, with bit-identical results."""
        if not self._step_fallback:
            try:
                return self.executor.submit(calls, capture=capture)
            except WorkerCrash:
                _metrics.REGISTRY.counter("parallel.serial_fallbacks").inc()
                self._step_fallback = True
        worker = self._fb_worker
        if worker is None:
            worker = self._fb_worker = self._spec.build()
        return [
            self._fallback_call(worker, rank, method, args, capture)
            for rank, (method, args) in enumerate(calls)
        ]

    def _fallback_call(
        self,
        worker: GradientWorker,
        rank: int,
        method: str,
        args: tuple,
        capture: bool,
    ) -> TaskResult:
        """Reproduce one rank's task on the scratch worker.

        State tasks are no-ops (the parent already holds the canonical
        state; dead replicas are healed wholesale after the step), and
        ``graph_task`` is deferred -- the shared graph is rebuilt lazily
        per rank at the snapshotted post-energy weights, which is exactly
        where the live workers built theirs.
        """
        if method == "energy_task":
            worker.set_weights(self.model.params.flatten())
            worker.set_shard(self._shard_cache[rank])
            return worker.run("energy_task", (), capture)
        if method == "force_task":
            group, fresh = args
            if fresh:
                worker.set_weights(self.model.params.flatten())
                worker.set_shard(self._shard_cache[rank])
                return worker.run("force_task", (group, True), capture)
            if rank not in self._fb_graphs:
                worker.set_weights(self._graph_weights)
                worker.set_shard(self._shard_cache[rank])
                worker.run("graph_task", (), capture)
                self._fb_graphs[rank] = worker.graph
            worker.set_shard(self._shard_cache[rank])
            worker.graph = self._fb_graphs[rank]
            return worker.run("force_task", (group, False), capture)
        # set_shard / apply_delta / graph_task / set_fault: nothing to do
        return TaskResult(payload=None, telemetry=WorkerTelemetry(rank=rank))

    # ------------------------------------------------------------------
    def _allreduce_gradient(
        self, locals_: list[ShardResult], total: int
    ) -> tuple[np.ndarray, float]:
        """Combine per-rank shard results into the global mean gradient
        and ABE via ring/scalar allreduce (zero-count ranks contribute
        zero weight)."""
        weighted = [r.grad * (r.count / total) for r in locals_]
        reduced = self.comm.ring_allreduce(weighted)
        # every replica must hold the same result bit-for-bit
        for other in reduced[1:]:
            if not np.array_equal(reduced[0], other):
                raise AssertionError("ring-allreduce replicas diverged")
        abe = self.comm.allreduce_scalar([r.abe_sum for r in locals_]) / total
        return reduced[0], abe

    def _kf_update(self, g: np.ndarray, abe: float, scale: float) -> np.ndarray:
        t0 = time.perf_counter()
        with _span("parallel.kalman"):
            dw = self._local.kalman.update(g, abe, scale)
        self.timing.kalman_s += time.perf_counter() - t0
        if self._shadow is not None:
            dw2 = self._shadow.update(g, abe, scale)
            if not np.array_equal(dw, dw2):
                raise AssertionError("Kalman replicas diverged")
            if self._shadow.checksum() != self._local.kalman.checksum():
                raise AssertionError("P replica checksums diverged")
        self._local.apply_increment(dw)
        return dw

    def _sync(self, dw: np.ndarray) -> None:
        """Broadcast the weight delta so every replica tracks the parent
        (skipped during fallback: heal() re-syncs wholesale afterwards)."""
        if self._step_fallback:
            return
        try:
            results = self.executor.broadcast("apply_delta", dw)
            self._merge_telemetry(results)
        except WorkerCrash:
            _metrics.REGISTRY.counter("parallel.serial_fallbacks").inc()
            self._step_fallback = True

    # ------------------------------------------------------------------
    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        step_t0 = time.perf_counter()
        shards = self._shards(batch)
        self._shard_cache = shards
        self._step_fallback = False
        self._fb_graphs = {}
        self._graph_weights = None
        bs = batch.batch_size
        scale = float(np.sqrt(bs))
        comm_t0 = self.comm.modeled_time_s
        tracer = current_tracer()
        # profiling parents ask workers for the op timeline too
        capture: "bool | str" = tracer is not None
        if tracer is not None and tracer.profiler is not None:
            capture = "profile"

        # ---- distribute shards ---------------------------------------
        results = self._round([("set_shard", (s,)) for s in shards], False)
        self._merge_telemetry(results)

        # ---- energy update -------------------------------------------
        with _span("parallel.compute", kind="energy", ranks=len(shards)):
            results = self._round([("energy_task", ())] * self.world_size, capture)
            self.timing.compute_s += self._merge_telemetry(results)
        with _span("parallel.comm", kind="energy"):
            g_mean, abe = self._allreduce_gradient([r.payload for r in results], bs)
        self._sync(self._kf_update(g_mean, abe, scale))

        # ---- force updates -------------------------------------------
        groups = self._local.force_groups(batch.n_atoms)
        fresh = not self._local.reuse_force_graph
        if not fresh:
            # the shared graphs are built at the post-energy-update
            # weights; snapshot them so a fallback can rebuild any rank's
            # graph bit-identically after a mid-step crash
            self._graph_weights = self.model.params.flatten()
            with _span("parallel.compute", kind="force_graph", ranks=len(shards)):
                results = self._round(
                    [("graph_task", ())] * self.world_size, capture
                )
                self.timing.compute_s += self._merge_telemetry(results)
        f_abes = []
        for group in groups:
            with _span("parallel.compute", kind="force", ranks=len(shards)):
                results = self._round(
                    [("force_task", (group, fresh))] * self.world_size, capture
                )
                self.timing.compute_s += self._merge_telemetry(results)
            with _span("parallel.comm", kind="force"):
                g_mean, abe = self._allreduce_gradient(
                    [r.payload for r in results], bs * len(group) * 3
                )
            self._sync(self._kf_update(g_mean, abe, scale))
            f_abes.append(abe)

        if self._step_fallback:
            _metrics.REGISTRY.counter("parallel.executor_heals").inc()
            self.executor.heal(self._spec, self.model.params.flatten())
        self.timing.comm_s += self.comm.modeled_time_s - comm_t0
        self.timing.wall_s += time.perf_counter() - step_t0
        self.timing.steps += 1
        self.step_count += 1
        _metrics.REGISTRY.counter("optim.steps", optimizer=self.name).inc()
        return {
            "force_abe": float(np.mean(f_abes)) if f_abes else 0.0,
            "modeled_time_s": self.timing.total_s,
            "wall_time_s": self.timing.wall_s,
            "comm_bytes_per_rank": self.comm.ledger.bytes_sent_per_rank,
        }
