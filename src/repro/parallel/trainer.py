"""Data-parallel FEKF over a simulated GPU cluster.

The paper's Sec. 3.3 argument, executed literally:

* the minibatch is sharded across ranks;
* each rank computes its *reduced* local gradient and absolute-error sums
  (the funnel dataflow -- reduction happens before any Kalman algebra);
* gradients are summed with a real ring-allreduce, ABEs with a scalar
  allreduce;
* every rank then performs the *identical* Kalman update, so the P
  replicas never diverge and are never communicated.  A verification mode
  keeps genuinely independent replicas and asserts bit-equality of their
  checksums every step.

Wall-clock for Table 5 is modeled as

    max_rank(compute) + t_comm(alpha-beta model) + t_kalman

per update, where compute is measured on this CPU (every rank's shard is
actually executed) and the communication term comes from the byte-exact
ledger.  Absolute numbers are CPU-scale; the speedup *ratios* across
configurations are the reproduction target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..optim.ekf import FEKF, _signs
from ..optim.kalman import KalmanConfig, KalmanState
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span
from .comm import CostModel, SimCommunicator
from .topology import ClusterSpec, cluster_for_gpus, cost_model_for


@dataclass
class StepTiming:
    """Accumulated simulated-time components (seconds)."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    kalman_s: float = 0.0
    steps: int = 0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s + self.kalman_s


class DistributedFEKF:
    """FEKF with the minibatch sharded over ``world_size`` simulated ranks.

    Exposes the same ``step_batch`` protocol as the serial optimizers, so
    it plugs straight into :class:`repro.train.Trainer`.
    """

    name = "DistributedFEKF"

    def __init__(
        self,
        model: DeePMD,
        world_size: int,
        kalman_cfg: KalmanConfig | None = None,
        n_force_splits: int = 4,
        fused_env: bool = True,
        reuse_force_graph: bool = True,
        verify_replicas: bool = False,
        cost_model: CostModel | None = None,
        seed: int = 0,
    ):
        self.world_size = int(world_size)
        if cost_model is None:
            cost_model = cost_model_for(cluster_for_gpus(self.world_size))
        self.comm = SimCommunicator(self.world_size, cost_model)
        # the shared-replica optimizer (rank 0's view; all ranks identical)
        self._local = FEKF(
            model,
            kalman_cfg=kalman_cfg,
            n_force_splits=n_force_splits,
            fused_env=fused_env,
            reuse_force_graph=reuse_force_graph,
            seed=seed,
        )
        self.model = model
        self.timing = StepTiming()
        self.verify_replicas = verify_replicas
        self._shadow: KalmanState | None = (
            self._local.kalman.clone() if verify_replicas else None
        )
        self.step_count = 0

    # ------------------------------------------------------------------
    @property
    def kalman(self) -> KalmanState:
        return self._local.kalman

    # optimizer protocol: all ranks share one filter state, so state and
    # hyperparameters delegate to the rank-0 view
    @property
    def hyperparams(self) -> dict:
        return {
            **self._local.hyperparams,
            "name": self.name,
            "world_size": self.world_size,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        return self._local.state_dict()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._local.load_state_dict(state)
        if self._shadow is not None:
            self._shadow = self._local.kalman.clone()

    def _shards(self, batch: DescriptorBatch) -> list[DescriptorBatch]:
        bs = batch.batch_size
        if bs < self.world_size:
            raise ValueError(
                f"batch size {bs} smaller than world size {self.world_size}"
            )
        bounds = np.linspace(0, bs, self.world_size + 1).astype(int)
        return [batch.frame_slice(int(lo), int(hi)) for lo, hi in zip(bounds, bounds[1:])]

    # ------------------------------------------------------------------
    def _allreduce_gradient(
        self, locals_: list[tuple[np.ndarray, float, int]], total: int
    ) -> tuple[np.ndarray, float]:
        """Combine per-rank (mean-gradient, abs-error-sum, count) triples
        into the global mean gradient and ABE via ring/scalar allreduce."""
        weighted = [g * (cnt / total) for g, _, cnt in locals_]
        reduced = self.comm.ring_allreduce(weighted)
        # every replica must hold the same result bit-for-bit
        for other in reduced[1:]:
            if not np.array_equal(reduced[0], other):
                raise AssertionError("ring-allreduce replicas diverged")
        abe = self.comm.allreduce_scalar([s for _, s, _ in locals_]) / total
        return reduced[0], abe

    def _kf_update(self, g: np.ndarray, abe: float, scale: float) -> None:
        t0 = time.perf_counter()
        with _span("parallel.kalman"):
            dw = self._local.kalman.update(g, abe, scale)
        self.timing.kalman_s += time.perf_counter() - t0
        if self._shadow is not None:
            dw2 = self._shadow.update(g, abe, scale)
            if not np.array_equal(dw, dw2):
                raise AssertionError("Kalman replicas diverged")
            if self._shadow.checksum() != self._local.kalman.checksum():
                raise AssertionError("P replica checksums diverged")
        self._local._apply_increment(dw)

    # ------------------------------------------------------------------
    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        shards = self._shards(batch)
        bs = batch.batch_size
        scale = float(np.sqrt(bs))
        comm_t0 = self.comm.modeled_time_s

        # ---- energy update -------------------------------------------
        locals_ = []
        max_compute = 0.0
        with _span("parallel.compute", kind="energy", ranks=len(shards)):
            for shard in shards:
                t0 = time.perf_counter()
                g, abe = self._local._energy_gradient(shard)
                max_compute = max(max_compute, time.perf_counter() - t0)
                locals_.append((g, abe * shard.batch_size, shard.batch_size))
        self.timing.compute_s += max_compute
        with _span("parallel.comm", kind="energy"):
            g_mean, abe = self._allreduce_gradient(locals_, bs)
        self._kf_update(g_mean, abe, scale)

        # ---- force updates -------------------------------------------
        groups = self._local._force_groups(batch.n_atoms)
        graphs = None
        if self._local.reuse_force_graph:
            graphs = []
            max_compute = 0.0
            with _span("parallel.compute", kind="force_graph", ranks=len(shards)):
                for shard in shards:
                    t0 = time.perf_counter()
                    graphs.append(self._local._force_graph(shard))
                    max_compute = max(max_compute, time.perf_counter() - t0)
            self.timing.compute_s += max_compute
        f_abes = []
        for group in groups:
            locals_ = []
            max_compute = 0.0
            with _span("parallel.compute", kind="force", ranks=len(shards)):
                for r, shard in enumerate(shards):
                    t0 = time.perf_counter()
                    if graphs is not None:
                        g, abe = self._local._force_group_gradient(
                            *graphs[r], shard, group
                        )
                    else:
                        g, abe = self._local._force_gradient(shard, group)
                    max_compute = max(max_compute, time.perf_counter() - t0)
                    n_comp = shard.batch_size * len(group) * 3
                    locals_.append((g, abe * n_comp, n_comp))
            self.timing.compute_s += max_compute
            with _span("parallel.comm", kind="force"):
                g_mean, abe = self._allreduce_gradient(locals_, bs * len(group) * 3)
            self._kf_update(g_mean, abe, scale)
            f_abes.append(abe)

        self.timing.comm_s += self.comm.modeled_time_s - comm_t0
        self.timing.steps += 1
        self.step_count += 1
        _metrics.REGISTRY.counter("optim.steps", optimizer=self.name).inc()
        return {
            "force_abe": float(np.mean(f_abes)) if f_abes else 0.0,
            "modeled_time_s": self.timing.total_s,
            "comm_bytes_per_rank": self.comm.ledger.bytes_sent_per_rank,
        }
