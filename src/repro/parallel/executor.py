"""Pluggable rank-worker executors: serial, thread, and process backends.

The data-parallel trainer (:class:`~repro.parallel.trainer.DistributedFEKF`)
expresses one training step as a sequence of *rounds*: every rank runs the
same :class:`~repro.optim.worker.GradientWorker` task on its own shard,
and the parent reduces the results.  This module supplies the execution
substrate for those rounds:

* :class:`SerialExecutor` -- every rank's worker runs in the calling
  thread, one after another.  Today's deterministic default; zero
  concurrency hazards, real per-rank replicas.
* :class:`ThreadExecutor` -- one pool thread per rank.  The gradient math
  bottoms out in BLAS kernels that release the GIL, so shard compute
  overlaps on a multi-core host with zero serialization cost for the
  shard payloads (shared address space).
* :class:`ProcessExecutor` -- one persistent worker process per rank,
  each holding its own model replica.  Per-step traffic is the shard
  (once) plus the per-update weight *delta* broadcast -- mirroring the
  paper's Sec. 3.3 argument that only gradients ever travel, never P.

All three speak the same protocol (``start`` / ``submit`` / ``broadcast``
/ ``heal`` / ``close``) and, for a fixed seed, produce bit-identical
reduced gradients: the per-rank computation is a pure function of
(weights, shard) and the parent always consumes results in rank order.

Crash robustness: a task that raises inside a worker is retried once on
the same rank; a second failure (or a dead worker process) surfaces as
:class:`WorkerCrash`, which the trainer turns into a serial fallback for
the remainder of the step -- a step is never lost.  ``heal`` respawns
dead ranks and re-syncs every replica from the parent's weights.

The default backend is selected by the ``REPRO_EXECUTOR`` environment
variable (``serial`` / ``thread`` / ``process``; unset means serial), so
CI can run the whole parallel suite under each backend unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from abc import ABC, abstractmethod
from concurrent import futures
from typing import Any, Optional, Sequence

import numpy as np

from ..optim.worker import GradientWorker, TaskResult, WorkerSpec
from ..telemetry import metrics as _metrics

__all__ = [
    "EXECUTOR_ENV",
    "EXECUTOR_NAMES",
    "WorkerCrash",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]

#: environment variable naming the default backend (see :func:`make_executor`)
EXECUTOR_ENV = "REPRO_EXECUTOR"
EXECUTOR_NAMES = ("serial", "thread", "process")


class WorkerCrash(RuntimeError):
    """A rank failed its task twice (or its process died)."""

    def __init__(self, rank: int, method: str, reason: str):
        super().__init__(f"rank {rank} failed task {method!r}: {reason}")
        self.rank = rank
        self.method = method
        self.reason = reason


def _run_with_retry(
    worker: GradientWorker, rank: int, method: str, args: tuple, capture: bool
) -> TaskResult:
    """One in-process task attempt plus a single retry; the retry is
    counted so robustness tests can assert it happened."""
    try:
        return worker.run(method, args, capture)
    except Exception as first:
        _metrics.REGISTRY.counter("parallel.worker_retries").inc()
        try:
            return worker.run(method, args, capture)
        except Exception as second:
            raise WorkerCrash(rank, method, repr(second)) from first


class Executor(ABC):
    """One :class:`GradientWorker` per rank plus a dispatch protocol.

    ``submit`` takes one ``(method, args)`` call per rank and returns the
    rank-ordered :class:`TaskResult` list; ``broadcast`` sends the same
    call to every rank.  Both raise :class:`WorkerCrash` when a rank
    fails twice.
    """

    name = "abstract"

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = int(world_size)
        self._started = False

    # ------------------------------------------------------------------
    @abstractmethod
    def start(self, spec: WorkerSpec) -> None:
        """Build/spawn one worker per rank from ``spec``."""

    @abstractmethod
    def submit(
        self, calls: Sequence[tuple[str, tuple]], capture: bool = False
    ) -> list[TaskResult]:
        """Dispatch one ``(method, args)`` call per rank; rank order out."""

    @abstractmethod
    def close(self) -> None:
        """Tear down workers (idempotent)."""

    # ------------------------------------------------------------------
    def broadcast(self, method: str, *args, capture: bool = False) -> list[TaskResult]:
        """Run the same call on every rank (e.g. the weight-delta sync)."""
        return self.submit([(method, args)] * self.world_size, capture=capture)

    def heal(self, spec: WorkerSpec, weights: np.ndarray) -> None:
        """Restore every rank to a healthy, bit-identical state: respawn
        whatever died and push the parent's full weight vector."""
        self._respawn_dead(spec)
        self.broadcast("set_weights", weights)

    def _respawn_dead(self, spec: WorkerSpec) -> None:
        """Backends with mortal workers (processes) override this."""

    def _check_calls(self, calls: Sequence[tuple[str, tuple]]) -> None:
        if not self._started:
            raise RuntimeError("executor not started (call start(spec) first)")
        if len(calls) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} calls, got {len(calls)}"
            )

    # ------------------------------------------------------------------
    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class SerialExecutor(Executor):
    """All ranks run sequentially in the calling thread.

    The deterministic reference backend (and the default): identical
    semantics to the concurrent backends -- per-rank replicas, the same
    task vocabulary -- with none of the scheduling.
    """

    name = "serial"

    def __init__(self, world_size: int):
        super().__init__(world_size)
        self.workers: list[GradientWorker] = []

    def start(self, spec: WorkerSpec) -> None:
        self.workers = [spec.build(rank=r) for r in range(self.world_size)]
        self._started = True

    def submit(self, calls, capture=False):
        self._check_calls(calls)
        return [
            _run_with_retry(w, r, method, args, capture)
            for r, (w, (method, args)) in enumerate(zip(self.workers, calls))
        ]

    def close(self) -> None:
        self.workers = []
        self._started = False


class ThreadExecutor(Executor):
    """One pool thread per rank; shard compute overlaps where BLAS
    releases the GIL.  Worker state is rank-private (each rank owns its
    replica and is only ever touched by one in-flight task), and worker
    telemetry is captured under thread-local tracers, so no parent state
    is shared mutably across threads."""

    name = "thread"

    def __init__(self, world_size: int):
        super().__init__(world_size)
        self.workers: list[GradientWorker] = []
        self._pool: Optional[futures.ThreadPoolExecutor] = None

    def start(self, spec: WorkerSpec) -> None:
        self.workers = [spec.build(rank=r) for r in range(self.world_size)]
        self._pool = futures.ThreadPoolExecutor(
            max_workers=self.world_size, thread_name_prefix="fekf-rank"
        )
        self._started = True

    def submit(self, calls, capture=False):
        self._check_calls(calls)
        fs = [
            self._pool.submit(_run_with_retry, w, r, method, args, capture)
            for r, (w, (method, args)) in enumerate(zip(self.workers, calls))
        ]
        # wait for EVERY future before surfacing a crash -- a straggler
        # task left running would race the caller's fallback/heal work --
        # and collect in rank order, not completion order (determinism of
        # the reduction)
        futures.wait(fs)
        results, crash = [], None
        for f in fs:
            try:
                results.append(f.result())
            except WorkerCrash as exc:
                crash = crash or exc
                results.append(None)
        if crash is not None:
            raise crash
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.workers = []
        self._started = False


def _process_main(conn, spec: WorkerSpec, rank: int) -> None:
    """Worker-process loop: build a replica once, serve tasks until EOF.

    Exceptions raised by a task are reported back as ``("err", reason)``
    -- the process survives, so the parent's retry hits a live worker.
    """
    worker = spec.build(rank=rank)
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            method, args, capture = msg
            try:
                result = worker.run(method, args, capture)
                conn.send(("ok", result))
            except Exception as exc:
                conn.send(("err", repr(exc)))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        conn.close()


class ProcessExecutor(Executor):
    """One persistent worker process per rank.

    Each process builds its replica once and then receives only task
    messages -- for a training step that is the shard (once) and the
    per-update weight deltas, never the model and never P.  A rank whose
    task raises is retried in place; a rank whose *process* dies is
    unrecoverable within the round (``WorkerCrash``) and is respawned by
    ``heal``.
    """

    name = "process"

    def __init__(self, world_size: int, start_method: Optional[str] = None):
        super().__init__(world_size)
        self._ctx = (
            mp.get_context(start_method) if start_method else mp.get_context()
        )
        self._procs: list[Optional[mp.process.BaseProcess]] = []
        self._conns: list[Optional[Any]] = []
        self._dead: set[int] = set()

    # ------------------------------------------------------------------
    def _spawn(self, spec: WorkerSpec, rank: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_process_main,
            args=(child_conn, spec, rank),
            name=f"fekf-rank-{rank}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[rank] = proc
        self._conns[rank] = parent_conn
        self._dead.discard(rank)

    def start(self, spec: WorkerSpec) -> None:
        self._procs = [None] * self.world_size
        self._conns = [None] * self.world_size
        self._dead = set()
        for rank in range(self.world_size):
            self._spawn(spec, rank)
        self._started = True

    # ------------------------------------------------------------------
    def _send(self, rank: int, msg) -> None:
        if rank in self._dead:
            raise WorkerCrash(rank, msg[0] if msg else "?", "worker process dead")
        try:
            self._conns[rank].send(msg)
        except (OSError, BrokenPipeError, ValueError) as exc:
            self._mark_dead(rank)
            raise WorkerCrash(
                rank, msg[0] if msg else "?", f"send failed: {exc!r}"
            ) from exc

    def _recv(self, rank: int, method: str):
        try:
            return self._conns[rank].recv()
        except (EOFError, OSError) as exc:
            self._mark_dead(rank)
            raise WorkerCrash(
                rank, method, f"worker process died: {exc!r}"
            ) from exc

    def _mark_dead(self, rank: int) -> None:
        self._dead.add(rank)
        _metrics.REGISTRY.counter("parallel.worker_deaths").inc()

    def submit(self, calls, capture=False):
        self._check_calls(calls)
        # overlap: post every rank's task before collecting any result;
        # every successfully sent task must also be received (even after
        # another rank crashed), or the pipe protocol would desync
        crash: Optional[WorkerCrash] = None
        sent = [False] * self.world_size
        for rank, (method, args) in enumerate(calls):
            try:
                self._send(rank, (method, args, capture))
                sent[rank] = True
            except WorkerCrash as exc:
                crash = crash or exc
        results: list[Optional[TaskResult]] = [None] * self.world_size
        failed: list[int] = []
        for rank, (method, _args) in enumerate(calls):
            if not sent[rank]:
                continue
            try:
                status, payload = self._recv(rank, method)
            except WorkerCrash as exc:
                crash = crash or exc
                continue
            if status == "ok":
                results[rank] = payload
            else:
                failed.append(rank)
        for rank in failed:
            method, args = calls[rank]
            _metrics.REGISTRY.counter("parallel.worker_retries").inc()
            try:
                self._send(rank, (method, args, capture))
                status, payload = self._recv(rank, method)
            except WorkerCrash as exc:
                crash = crash or exc
                continue
            if status != "ok":
                crash = crash or WorkerCrash(rank, method, str(payload))
                continue
            results[rank] = payload
        if crash is not None:
            raise crash
        return results

    # ------------------------------------------------------------------
    def _respawn_dead(self, spec: WorkerSpec) -> None:
        for rank in range(self.world_size):
            proc = self._procs[rank]
            if rank in self._dead or proc is None or not proc.is_alive():
                if proc is not None:
                    proc.join(timeout=1.0)
                    if proc.is_alive():  # pragma: no cover - stuck child
                        proc.terminate()
                if self._conns[rank] is not None:
                    self._conns[rank].close()
                self._spawn(spec, rank)
                _metrics.REGISTRY.counter("parallel.worker_respawns").inc()

    def close(self) -> None:
        for rank, conn in enumerate(self._conns):
            if conn is None or rank in self._dead:
                continue
            try:
                conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck child
                    proc.terminate()
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self._procs = []
        self._conns = []
        self._dead = set()
        self._started = False


_BACKENDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(
    kind: "str | Executor | None", world_size: int
) -> Executor:
    """Resolve an executor: an instance passes through, a name selects a
    backend, ``None`` consults ``$REPRO_EXECUTOR`` and defaults to
    ``serial``."""
    if isinstance(kind, Executor):
        if kind.world_size != world_size:
            raise ValueError(
                f"executor world_size {kind.world_size} != trainer world_size "
                f"{world_size}"
            )
        return kind
    if kind is None:
        kind = os.environ.get(EXECUTOR_ENV, "serial") or "serial"
    key = str(kind).lower()
    if key not in _BACKENDS:
        raise KeyError(
            f"unknown executor {kind!r}; available: {', '.join(EXECUTOR_NAMES)}"
        )
    return _BACKENDS[key](world_size)
