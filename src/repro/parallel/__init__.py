"""repro.parallel -- data parallelism for FEKF: simulated collectives
plus pluggable rank executors (serial / thread / process)."""

from .comm import (
    CommLedger,
    CostModel,
    SimCommunicator,
    allreduce_volume_bytes,
    broadcast_volume_bytes,
)
from .topology import (
    ClusterSpec,
    build_fat_tree,
    cluster_for_gpus,
    cost_model_for,
    ring_hops,
    ring_order,
)
from .executor import (
    EXECUTOR_ENV,
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCrash,
    make_executor,
)
from .model_parallel import ModelParallelKalman, shard_blocks
from .trainer import DistributedFEKF, StepTiming

__all__ = [
    "SimCommunicator",
    "CommLedger",
    "CostModel",
    "allreduce_volume_bytes",
    "broadcast_volume_bytes",
    "ClusterSpec",
    "build_fat_tree",
    "cluster_for_gpus",
    "cost_model_for",
    "ring_order",
    "ring_hops",
    "EXECUTOR_ENV",
    "EXECUTOR_NAMES",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "WorkerCrash",
    "make_executor",
    "DistributedFEKF",
    "StepTiming",
    "ModelParallelKalman",
    "shard_blocks",
]
