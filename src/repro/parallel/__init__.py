"""repro.parallel -- simulated multi-GPU data parallelism for FEKF."""

from .comm import CommLedger, CostModel, SimCommunicator, allreduce_volume_bytes
from .topology import (
    ClusterSpec,
    build_fat_tree,
    cluster_for_gpus,
    cost_model_for,
    ring_hops,
    ring_order,
)
from .model_parallel import ModelParallelKalman, shard_blocks
from .trainer import DistributedFEKF, StepTiming

__all__ = [
    "SimCommunicator",
    "CommLedger",
    "CostModel",
    "allreduce_volume_bytes",
    "ClusterSpec",
    "build_fat_tree",
    "cluster_for_gpus",
    "cost_model_for",
    "ring_order",
    "ring_hops",
    "DistributedFEKF",
    "StepTiming",
    "ModelParallelKalman",
    "shard_blocks",
]
