"""Cluster topologies (networkx graphs) and their effect on the cost model.

The paper's cluster is 629 nodes of 4 A100s on a non-blocking fat tree
with RoCE at 25 GB/s.  We model two layers of locality: intra-node links
(NVLink/PCIe-class bandwidth between the 4 GPUs of a node) and the
inter-node fat tree.  The topology informs the alpha-beta parameters the
:class:`~repro.parallel.comm.CostModel` uses for a given ring placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .comm import CostModel


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware characteristics of the modeled cluster (paper Sec. 4)."""

    gpus_per_node: int = 4
    intra_node_bandwidth_Bps: float = 64e9  # PCIe 4.0 x16
    inter_node_bandwidth_Bps: float = 25e9  # RoCE fat tree
    link_latency_s: float = 10e-6


def build_fat_tree(n_nodes: int, gpus_per_node: int = 4) -> nx.Graph:
    """A two-level fat-tree-ish graph: GPUs -> node switch -> core switch.

    Non-blocking at the core (single core vertex with fat edges), which is
    how the paper describes its interconnect; enough structure for path
    and bisection queries in the tests.
    """
    g = nx.Graph()
    g.add_node("core", kind="switch")
    for node in range(n_nodes):
        sw = f"node{node}"
        g.add_node(sw, kind="switch")
        g.add_edge(sw, "core", kind="inter")
        for dev in range(gpus_per_node):
            gpu = f"gpu{node}.{dev}"
            g.add_node(gpu, kind="gpu")
            g.add_edge(gpu, sw, kind="intra")
    return g


def ring_order(graph: nx.Graph) -> list[str]:
    """GPUs ordered so that ring neighbors are co-located when possible
    (fills each node before moving to the next)."""
    gpus = sorted(
        (n for n, d in graph.nodes(data=True) if d.get("kind") == "gpu"),
        key=lambda s: tuple(int(x) for x in s[3:].split(".")),
    )
    return gpus


def ring_hops(graph: nx.Graph) -> list[int]:
    """Switch-hop count between consecutive ring members (wrap included)."""
    order = ring_order(graph)
    hops = []
    for a, b in zip(order, order[1:] + order[:1]):
        hops.append(nx.shortest_path_length(graph, a, b))
    return hops


def cost_model_for(graph: nx.Graph, spec: ClusterSpec | None = None) -> CostModel:
    """Alpha-beta parameters for a ring over this topology.

    The ring's sustained bandwidth is limited by its slowest link: if any
    hop crosses the inter-node fabric, the inter-node bandwidth governs;
    an all-intra-node ring gets the faster local links.  Latency scales
    with the longest hop path.
    """
    spec = spec or ClusterSpec()
    hops = ring_hops(graph)
    inter = any(h > 2 for h in hops)  # >2 switch hops means leaving the node
    bw = spec.inter_node_bandwidth_Bps if inter else spec.intra_node_bandwidth_Bps
    return CostModel(latency_s=spec.link_latency_s * max(hops), bandwidth_Bps=bw)


def cluster_for_gpus(n_gpus: int, spec: ClusterSpec | None = None) -> nx.Graph:
    """Smallest fat tree holding ``n_gpus`` (paper node = 4 GPUs)."""
    spec = spec or ClusterSpec()
    n_nodes = (n_gpus + spec.gpus_per_node - 1) // spec.gpus_per_node
    g = build_fat_tree(max(n_nodes, 1), spec.gpus_per_node)
    # drop the unused GPUs of the last node
    gpus = ring_order(g)
    for extra in gpus[n_gpus:]:
        g.remove_node(extra)
    return g
