"""Simulated multi-GPU communication with exact byte/step accounting.

The paper's distributed claims (Table 5, the Sec. 5.3 scalability
analysis) are statements about *communication volume*: FEKF only moves
gradients (~0.2 MB) and scalar ABEs, never the P matrix, because every
replica's P stays bit-identical.  To reproduce those statements we run the
ranks of a "cluster" deterministically in one process and route every
collective through a :class:`SimCommunicator` that

* executes a real chunked ring-allreduce (reduce-scatter + allgather),
* counts the bytes each rank sends and the number of communication steps,
* feeds an alpha-beta cost model (latency + bytes/bandwidth) calibrated to
  A100/RoCE-class numbers to produce modeled wall times.

The arithmetic is exact (the ring reduction is actually performed chunk by
chunk), so tests can assert ``allreduce == direct sum`` while the ledger
records exactly the traffic a real Horovod run would generate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..telemetry import metrics as _metrics


@dataclass
class CommLedger:
    """Accumulated communication accounting for one rank group.

    Per-instance fields keep each communicator's view independent (many
    simulated clusters can coexist); every ``record`` additionally feeds
    the process-wide telemetry registry (``comm.bytes_sent_per_rank`` /
    ``comm.steps`` / ``comm.calls``), which is what reports and
    cross-subsystem summaries read.
    """

    bytes_sent_per_rank: float = 0.0
    steps: int = 0
    calls: int = 0

    def record(self, bytes_per_rank: float, steps: int) -> None:
        self.bytes_sent_per_rank += bytes_per_rank
        self.steps += steps
        self.calls += 1
        reg = _metrics.REGISTRY
        reg.counter("comm.bytes_sent_per_rank").inc(bytes_per_rank)
        reg.counter("comm.steps").inc(steps)
        reg.counter("comm.calls").inc()

    def total_bytes(self, world_size: int) -> float:
        return self.bytes_sent_per_rank * world_size


@dataclass
class CostModel:
    """Alpha-beta model: time = steps * alpha + bytes / beta.

    Defaults approximate the paper's testbed: RoCE fat-tree at 25 GB/s
    with ~10 us per collective step.
    """

    latency_s: float = 10e-6
    bandwidth_Bps: float = 25e9

    def time(self, bytes_per_rank: float, steps: int) -> float:
        return steps * self.latency_s + bytes_per_rank / self.bandwidth_Bps


class SimCommunicator:
    """Deterministic in-process stand-in for an MPI/Horovod communicator."""

    def __init__(self, world_size: int, cost_model: CostModel | None = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = int(world_size)
        self.cost_model = cost_model or CostModel()
        self.ledger = CommLedger()
        self.modeled_time_s = 0.0

    # ------------------------------------------------------------------
    def ring_allreduce(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Sum-allreduce ``buffers`` (one array per rank) via the ring
        algorithm; returns the reduced replica for each rank.

        The classic schedule: each rank's buffer is cut into ``world_size``
        chunks; ``world_size - 1`` reduce-scatter steps followed by
        ``world_size - 1`` allgather steps, each moving one chunk per rank.
        Total per-rank traffic: 2 * (r-1)/r * nbytes.
        """
        r = self.world_size
        if len(buffers) != r:
            raise ValueError(f"expected {r} buffers, got {len(buffers)}")
        n = buffers[0].size
        if any(b.size != n for b in buffers):
            raise ValueError("all rank buffers must have the same size")
        if r == 1:
            self.ledger.record(0.0, 0)
            return [buffers[0].copy()]

        work = [b.astype(np.float64).ravel().copy() for b in buffers]
        bounds = np.linspace(0, n, r + 1).astype(int)
        chunks = [slice(bounds[i], bounds[i + 1]) for i in range(r)]
        bytes_per_rank = 0.0

        # reduce-scatter: after r-1 steps rank k owns the full sum of chunk (k+1) mod r
        for step in range(r - 1):
            transfers = []
            for rank in range(r):
                send_chunk = (rank - step) % r
                dst = (rank + 1) % r
                transfers.append((dst, send_chunk, work[rank][chunks[send_chunk]].copy()))
                bytes_per_rank += work[rank][chunks[send_chunk]].nbytes / r
            for dst, c, payload in transfers:
                work[dst][chunks[c]] += payload

        # allgather: circulate the completed chunks
        for step in range(r - 1):
            transfers = []
            for rank in range(r):
                send_chunk = (rank + 1 - step) % r
                dst = (rank + 1) % r
                transfers.append((dst, send_chunk, work[rank][chunks[send_chunk]].copy()))
                bytes_per_rank += work[rank][chunks[send_chunk]].nbytes / r
            for dst, c, payload in transfers:
                work[dst][chunks[c]] = payload

        steps = 2 * (r - 1)
        self.ledger.record(bytes_per_rank, steps)
        dt = self.cost_model.time(bytes_per_rank, steps)
        self.modeled_time_s += dt
        _metrics.REGISTRY.counter("comm.modeled_time_s").inc(dt)
        shape = buffers[0].shape
        return [w.reshape(shape) for w in work]

    # ------------------------------------------------------------------
    def allreduce_scalar(self, values: list[float]) -> float:
        """Sum-allreduce one scalar per rank (the ABE exchange: O(r) cost)."""
        if len(values) != self.world_size:
            raise ValueError("one value per rank required")
        r = self.world_size
        steps = max(2 * (r - 1), 0)
        bytes_per_rank = 8.0 * 2 * (r - 1) / max(r, 1)
        self.ledger.record(bytes_per_rank, steps)
        dt = self.cost_model.time(bytes_per_rank, steps)
        self.modeled_time_s += dt
        _metrics.REGISTRY.counter("comm.modeled_time_s").inc(dt)
        return float(np.sum(values))

    def broadcast(self, value: np.ndarray) -> list[np.ndarray]:
        """Root broadcast (binomial tree): used once for initial weight sync.

        The tree takes ``ceil(log2 r)`` steps and delivers the full payload
        to each of the ``r - 1`` non-root ranks exactly once, so the
        aggregate traffic is ``(r-1) * nbytes`` -- per rank, averaged over
        the group, ``(r-1)/r * nbytes`` (see :func:`broadcast_volume_bytes`).
        """
        r = self.world_size
        steps = int(np.ceil(np.log2(r))) if r > 1 else 0
        bytes_per_rank = value.nbytes * (r - 1) / max(r, 1)
        self.ledger.record(bytes_per_rank, steps)
        dt = self.cost_model.time(bytes_per_rank, steps)
        self.modeled_time_s += dt
        _metrics.REGISTRY.counter("comm.modeled_time_s").inc(dt)
        return [value.copy() for _ in range(r)]


def allreduce_volume_bytes(n_elements: int, world_size: int, dtype_size: int = 8) -> float:
    """Closed-form per-rank ring-allreduce traffic: 2 (r-1)/r * payload."""
    if world_size <= 1:
        return 0.0
    payload = n_elements * dtype_size
    return 2.0 * (world_size - 1) / world_size * payload


def broadcast_volume_bytes(n_elements: int, world_size: int, dtype_size: int = 8) -> float:
    """Closed-form per-rank binomial-tree broadcast traffic.

    Every non-root rank receives the payload exactly once, so the group
    moves ``(r-1) * payload`` bytes total, i.e. ``(r-1)/r * payload``
    averaged per rank.
    """
    if world_size <= 1:
        return 0.0
    payload = n_elements * dtype_size
    return (world_size - 1) / world_size * payload
