"""Model-parallel FEKF: sharding the P blocks across ranks.

The paper's conclusion lists "adapt FEKF to support model parallelism" as
future work; the block-diagonal P makes the adaptation natural and we
implement it here.  Each rank owns a subset of the P blocks:

* forward/backward (the gradient g) still happens data-parallel or
  replicated -- g is allreduced exactly as before;
* each rank runs the Kalman recursion *only for its own blocks* (the
  per-block gains of the layer-wise scheme make blocks independent);
* the weight increments are stitched together with an allgather whose
  volume is O(N) -- tiny next to the O(sum N_b^2) work that was sharded.

With the paper's blocks {1350, 10240, 9810, 5151} the P work is dominated
by the 10240 block, so the achievable parallel speedup is bounded by the
largest block (~2.1x at 4 ranks) -- exactly the kind of imbalance the
paper's "P decoupling strategy needs to be adjusted" remark anticipates.
``shard_blocks`` therefore balances blocks across ranks by quadratic cost.
"""

from __future__ import annotations

import numpy as np

from ..optim.blocks import Block
from ..optim.kalman import KalmanConfig, KalmanState
from .comm import CostModel, SimCommunicator


def shard_blocks(blocks: list[Block], world_size: int) -> list[list[int]]:
    """Assign block indices to ranks, balancing sum(N_b^2) per rank
    (longest-processing-time greedy)."""
    order = sorted(range(len(blocks)), key=lambda i: -blocks[i].size ** 2)
    loads = [0] * world_size
    shards: list[list[int]] = [[] for _ in range(world_size)]
    for i in order:
        r = int(np.argmin(loads))
        shards[r].append(i)
        loads[r] += blocks[i].size ** 2
    return [sorted(s) for s in shards]


class ModelParallelKalman:
    """A KalmanState whose per-block updates are sharded over ranks.

    Executes every rank deterministically in-process (like the rest of
    :mod:`repro.parallel`) and accounts the allgather traffic of the
    weight increments.  Numerically identical to the serial
    :class:`~repro.optim.kalman.KalmanState` with per-block gains
    (asserted by the tests).
    """

    def __init__(
        self,
        num_params: int,
        layer_sizes: list[tuple[int, int]],
        cfg: KalmanConfig,
        world_size: int,
        cost_model: CostModel | None = None,
    ):
        if cfg.coupled_gain:
            raise ValueError(
                "model-parallel sharding requires independent per-block "
                "gains (coupled_gain=False)"
            )
        self.world_size = int(world_size)
        self.comm = SimCommunicator(self.world_size, cost_model)
        # one full state object holds the math; sharding controls which
        # blocks each simulated rank touches
        self._state = KalmanState(num_params, layer_sizes, cfg)
        self.shards = shard_blocks(self._state.blocks, self.world_size)

    # ------------------------------------------------------------------
    @property
    def blocks(self) -> list[Block]:
        return self._state.blocks

    @property
    def lam(self) -> float:
        return self._state.lam

    @property
    def updates(self) -> int:
        return self._state.updates

    def p_memory_bytes_per_rank(self) -> list[int]:
        return [
            sum(self._state.p_mats[i].nbytes for i in shard) for shard in self.shards
        ]

    def parallel_efficiency(self) -> float:
        """sum(N_b^2) balance across ranks: 1.0 = perfectly even."""
        loads = [
            sum(self._state.blocks[i].size ** 2 for i in shard)
            for shard in self.shards
        ]
        total = sum(loads)
        return total / (self.world_size * max(loads)) if total else 1.0

    # ------------------------------------------------------------------
    def update(self, g_flat: np.ndarray, error: float, scale: float) -> np.ndarray:
        """One sharded Kalman update; returns the stitched increment."""
        state = self._state
        if g_flat.shape != (state.num_params,):
            raise ValueError("gradient shape mismatch")
        dw = np.zeros(state.num_params)
        # each simulated rank processes only its own blocks
        for shard in self.shards:
            for i in shard:
                blk = state.blocks[i]
                g = g_flat[blk.slice()]
                pg = state._pg(i, g)
                a = 1.0 / (state.lam + float(g @ pg))
                state._downdate(i, pg, a)
                dw[blk.slice()] = (scale * error * a) * pg
        state._guard()
        state.advance_lambda()
        state.updates += 1
        norm = float(np.linalg.norm(dw))
        if norm > state.cfg.max_step_norm:
            dw *= state.cfg.max_step_norm / norm

        # stitch the increment shards together: an allgather modeled as a
        # ring-allreduce over the sparse per-rank contributions
        contributions = []
        for shard in self.shards:
            part = np.zeros(state.num_params)
            for i in shard:
                blk = state.blocks[i]
                part[blk.slice()] = dw[blk.slice()]
            contributions.append(part)
        stitched = self.comm.ring_allreduce(contributions)[0]
        if not np.allclose(stitched, dw, atol=1e-12):  # pragma: no cover
            raise AssertionError("model-parallel stitch mismatch")
        return stitched

    def checksum(self) -> float:
        return self._state.checksum()
