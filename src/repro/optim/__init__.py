"""repro.optim -- optimizers: Adam/SGD baselines and the EKF family."""

from .checkpoint import load_checkpoint, save_checkpoint
from .blocks import Block, block_shapes, p_memory_bytes, split_blocks, validate_blocks
from .ekf import FEKF, NaiveEKF, RLEKF, UpdateStats
from .first_order import SGD, Adam, ExponentialDecay, FirstOrderOptimizer, LossConfig
from .kalman import KalmanConfig, KalmanState

__all__ = [
    "Block",
    "split_blocks",
    "block_shapes",
    "validate_blocks",
    "p_memory_bytes",
    "KalmanConfig",
    "KalmanState",
    "FEKF",
    "RLEKF",
    "NaiveEKF",
    "UpdateStats",
    "Adam",
    "SGD",
    "FirstOrderOptimizer",
    "ExponentialDecay",
    "LossConfig",
    "save_checkpoint",
    "load_checkpoint",
]
