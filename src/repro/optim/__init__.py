"""repro.optim -- optimizers: Adam/SGD baselines and the EKF family.

Construct by name through the single factory surface::

    from repro.optim import make_optimizer
    opt = make_optimizer("fekf", model, blocksize=2048, fused_update=True)

Every optimizer satisfies the :class:`Optimizer` protocol
(``step_batch`` / ``state_dict`` / ``load_state_dict`` / ``hyperparams``).
"""

from .base import (
    OPTIMIZER_NAMES,
    Optimizer,
    load_ensemble_state,
    load_state,
    make_optimizer,
    save_ensemble_state,
    save_state,
)
from .blocks import Block, block_shapes, p_memory_bytes, split_blocks, validate_blocks
from .ekf import FEKF, NaiveEKF, RLEKF, UpdateStats
from .first_order import SGD, Adam, ExponentialDecay, FirstOrderOptimizer, LossConfig
from .kalman import KalmanConfig, KalmanState
from .worker import (
    FaultInjector,
    GradientWorker,
    ShardResult,
    TaskResult,
    WorkerSpec,
    WorkerTelemetry,
    error_signs,
)

__all__ = [
    "Optimizer",
    "OPTIMIZER_NAMES",
    "make_optimizer",
    "Block",
    "split_blocks",
    "block_shapes",
    "validate_blocks",
    "p_memory_bytes",
    "KalmanConfig",
    "KalmanState",
    "FEKF",
    "RLEKF",
    "NaiveEKF",
    "UpdateStats",
    "GradientWorker",
    "WorkerSpec",
    "ShardResult",
    "TaskResult",
    "WorkerTelemetry",
    "FaultInjector",
    "error_signs",
    "Adam",
    "SGD",
    "FirstOrderOptimizer",
    "ExponentialDecay",
    "LossConfig",
    "save_state",
    "load_state",
    "save_ensemble_state",
    "load_ensemble_state",
]
