"""Compiled FEKF step engine: trace once, replay every step.

The FEKF inner loop is shape-static -- every step runs the same op
sequence over same-shaped buffers -- which is exactly the contract
:mod:`repro.autograd.compile` exploits.  :class:`CompiledStepEngine`
owns the plan lifecycle for one :class:`~repro.optim.worker.GradientWorker`:

* **Trace epoch.**  The first step at a given batch signature runs the
  worker's exact gradient math under a :class:`TraceSession`, carving the
  tape into replayable sections: ``E_fwd`` / ``E_bwd`` around the energy
  update's numpy glue (sign-aligned error weights, Algorithm 1 lines
  3-5), ``F_fwd`` for the force graph, and per-group-size
  ``F_gather[s]`` / ``F_gbwd[s]`` pairs for the force-group updates.
* **Compile.**  Lazily, at the start of the next step, the tape is fused
  into a :class:`~repro.autograd.compile.Program` (elementwise-chain
  fusion, buffer arena, precomputed strides) and cached by batch
  signature (and, inside the plan, by tape CRC + feed signature).
* **Replay.**  Subsequent steps rebind feeds (current weights, batch
  arrays, per-step atom groups and error weights) and replay --
  bit-identical to eager, since every replay step mirrors the eager
  numpy expression.

Whenever reality diverges from the traced world the engine counts a
fallback and returns ``None`` so the caller runs the eager path:
shape/dtype divergence (:class:`PlanMismatch`, triggering a re-trace at
the new signature), an op-stream observer that needs real tensors (tape
recorder / sanitizer), an unknown force-group size, or a configuration
the compiler cannot trace (``fused_env`` bakes closures; ``type_aware``
builds batch-dependent constants) -- the latter disables the engine for
good.

Nothing here persists in checkpoints: after ``load_state_dict`` the
engine simply re-traces on the next step, and the replayed trajectory is
bit-identical to the eager one it replaced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, grad, ops
from ..autograd.compile import (
    PlanMismatch,
    Program,
    TraceSession,
    UnsupportedTrace,
    compile_tape,
)
from ..autograd.instrument import tensors_wanted
from ..model.environment import DescriptorBatch
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span

__all__ = ["CompiledForceGraph", "CompiledStepEngine"]


class CompiledForceGraph:
    """Stand-in for the eager ``(f_pred, params)`` force graph when the
    forward was replayed from a plan.  Carries the replayed force buffer
    and the feed bindings the group sections will reuse (the stale-graph
    protocol: group updates read the weights the forward bound)."""

    compiled_marker = True

    def __init__(self, engine: "CompiledStepEngine", sig, prog: Program,
                 feeds: dict, f_pred: np.ndarray):
        self.engine = engine
        self.sig = sig
        self.prog = prog
        self.feeds = feeds
        self.f_pred = f_pred


class _TraceState:
    """One in-progress trace epoch (a single training step run under a
    :class:`TraceSession`)."""

    __slots__ = ("sig", "session", "energy_done", "f_graph", "sizes")

    def __init__(self, sig, session: TraceSession):
        self.sig = sig
        self.session = session
        self.energy_done = False
        #: live (f_pred, params) tensors of the traced force forward
        self.f_graph = None
        #: group sizes whose gather/backward sections are already traced
        self.sizes: set[int] = set()


class CompiledStepEngine:
    """Plan lifecycle + replay dispatch for one gradient worker.

    Every public method returns the eager method's result tuple, or
    ``None`` to signal "run the eager path" (counted as a fallback).
    """

    def __init__(self, worker):
        self.worker = worker
        self.plans: dict[tuple, Program] = {}
        self.broken: set[tuple] = set()
        self._trace: Optional[_TraceState] = None
        self._names = list(worker.model.params.names())
        self.traces = 0
        self.compiles = 0
        self.fallbacks = 0
        self.disabled_reason: Optional[str] = None
        if worker.fused_env:
            # environment_fused runs a hand-derived kernel whose backward
            # bakes batch closures -- untraceable by design (it IS the
            # paper's Opt1 fusion; the compiler is the Opt2/Opt3 analog)
            self.disabled_reason = "fused_env"
        elif getattr(worker.model.cfg, "type_aware", False):
            # the species-channel constant is rebuilt per batch from
            # integer data; baking it would pin the trace-time batch
            self.disabled_reason = "type_aware"

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _batch_sig(self, batch: DescriptorBatch) -> tuple:
        return (
            batch.coords.shape,
            batch.idx_flat.shape,
            batch.mask.shape,
            batch.shift.shape,
            self.worker.model.num_params,
        )

    def _fallback(self, reason: str) -> None:
        self.fallbacks += 1
        _metrics.REGISTRY.counter("compile.fallbacks", reason=reason).inc()

    def _bail(self, batch: DescriptorBatch) -> "tuple | None":
        """Common gate for every entry point: returns the signature to
        proceed with, or ``None`` after counting the fallback."""
        if self.disabled_reason is not None:
            self._fallback(self.disabled_reason)
            return None
        if tensors_wanted():
            # a tape recorder or sanitizer is observing: replay emits no
            # tensors, so hand the step to eager for full fidelity
            self._fallback("observer")
            return None
        return self._batch_sig(batch)

    def _finalize_trace(self) -> None:
        """Compile the pending trace epoch into a cached plan."""
        tr, self._trace = self._trace, None
        if tr is None:
            return
        try:
            with _span("compile.plan", sections=len(tr.session.sections)):
                prog = compile_tape(tr.session)
        except UnsupportedTrace:
            self.broken.add(tr.sig)
            self._fallback("unsupported_trace")
            return
        self.plans[tr.sig] = prog
        self.compiles += 1
        _metrics.REGISTRY.counter("compile.plans").inc()

    def _batch_feeds(self, batch: DescriptorBatch) -> dict:
        model = self.worker.model
        feeds = {f"param:{n}": model.params[n] for n in self._names}
        feeds["coords"] = batch.coords
        feeds["shift"] = batch.shift
        feeds["mask"] = batch.mask
        feeds["mask3"] = batch.mask[..., None]
        feeds["idx_flat"] = batch.idx_flat
        return feeds

    def _flatten(self, bufs) -> np.ndarray:
        return self.worker.model.params.flatten_grads(
            {name: g for name, g in zip(self._names, bufs)}
        )

    # ------------------------------------------------------------------
    # energy update
    # ------------------------------------------------------------------
    def energy_gradient(self, batch: DescriptorBatch):
        sig = self._bail(batch)
        if sig is None:
            return None
        if self._trace is not None:
            # a new step is starting: freeze and compile the trace epoch
            self._finalize_trace()
        prog = self.plans.get(sig)
        if prog is not None:
            try:
                return self._replay_energy(prog, batch)
            except PlanMismatch:
                self._fallback("plan_mismatch")
                return None
        if sig in self.broken:
            self._fallback("broken_sig")
            return None
        return self._trace_energy(sig, batch)

    def _replay_energy(self, prog: Program, batch: DescriptorBatch):
        feeds = self._batch_feeds(batch)
        with _span("fekf.forward", compiled=1):
            (e,) = prog.run("E_fwd", feeds)
            n = batch.n_atoms
            err = (batch.energies - e) / n
            abe = float(np.mean(np.abs(err)))
        with _span("fekf.gradient", compiled=1):
            feeds["e.weights"] = error_signs(err) / (n * batch.batch_size)
            g_flat = self._flatten(prog.run("E_bwd", feeds))
        _metrics.REGISTRY.counter("compile.replays", section="energy").inc()
        return g_flat, abe

    def _trace_energy(self, sig, batch: DescriptorBatch):
        model = self.worker.model
        sess = TraceSession(candidates={
            "coords": batch.coords,
            "shift": batch.shift,
            "mask": batch.mask,
            "mask3": batch.mask[..., None],
            "idx_flat": batch.idx_flat,
        })
        self._trace = _TraceState(sig, sess)
        self.traces += 1
        with _span("fekf.forward", tracing=1):
            with sess:
                p = model.param_tensors()
                coords = Tensor(batch.coords)
                inputs = {f"param:{n}": p[n] for n in self._names}
                inputs["coords"] = coords
                with sess.section("E_fwd", inputs=inputs) as sec:
                    e = model.energy_graph(
                        coords, batch, p=p, fused_env=self.worker.fused_env
                    )
                    sec.outputs = [e]
            n = batch.n_atoms
            err = (batch.energies - e.data) / n
            abe = float(np.mean(np.abs(err)))
        with _span("fekf.gradient", tracing=1):
            weights = error_signs(err) / (n * batch.batch_size)
            with sess:
                wt = Tensor(weights)
                with sess.section("E_bwd", inputs={"e.weights": wt}) as sec:
                    scalar = ops.tsum(ops.mul(e, wt))
                    gs = grad(scalar, [p[name] for name in self._names])
                    sec.outputs = list(gs)
            g_flat = self._flatten([g.data for g in gs])
        self._trace.energy_done = True
        return g_flat, abe

    # ------------------------------------------------------------------
    # force updates
    # ------------------------------------------------------------------
    def force_graph(self, batch: DescriptorBatch):
        sig = self._bail(batch)
        if sig is None:
            return None
        prog = self.plans.get(sig)
        if prog is not None:
            try:
                return self._replay_force_graph(sig, prog, batch)
            except PlanMismatch:
                self._fallback("plan_mismatch")
                return None
        tr = self._trace
        if tr is None or tr.sig != sig or tr.f_graph is not None:
            # at most one force graph is traced per epoch; a second
            # request (the fresh-forward protocol) runs eager
            return None
        return self._trace_force_graph(batch)

    def _replay_force_graph(self, sig, prog: Program, batch: DescriptorBatch):
        if "F_fwd" not in prog.section_names():
            self._fallback("no_force_sections")
            return None
        feeds = self._batch_feeds(batch)
        with _span("fekf.forward", compiled=1):
            (f_pred,) = prog.run("F_fwd", feeds)
        _metrics.REGISTRY.counter("compile.replays", section="force_fwd").inc()
        return CompiledForceGraph(self, sig, prog, feeds, f_pred), None

    def _trace_force_graph(self, batch: DescriptorBatch):
        model = self.worker.model
        sess = self._trace.session
        with _span("fekf.forward", tracing=1):
            with sess:
                p = model.param_tensors()
                coords = Tensor(batch.coords, requires_grad=True)
                inputs = {f"param:{n}": p[n] for n in self._names}
                inputs["coords"] = coords
                with sess.section("F_fwd", inputs=inputs) as sec:
                    e = model.energy_graph(
                        coords, batch, p=p, fused_env=self.worker.fused_env
                    )
                    (gc,) = grad(ops.tsum(e), [coords], create_graph=True)
                    f_pred = ops.neg(gc)
                    sec.outputs = [f_pred]
        self._trace.f_graph = (f_pred, p)
        return f_pred, p

    def force_group_gradient(self, marker: CompiledForceGraph,
                             batch: DescriptorBatch, atom_group: np.ndarray):
        """Replay one group update against a replayed force graph."""
        if tensors_wanted():
            self._fallback("observer")
            return None
        s = len(atom_group)
        prog = marker.prog
        if f"F_gather[{s}]" not in prog.section_names():
            self._fallback("unknown_group_size")
            return None
        feeds = marker.feeds
        try:
            with _span("fekf.forward", compiled=1):
                feeds[f"group[{s}]"] = np.asarray(atom_group)
                (f_group,) = prog.run(f"F_gather[{s}]", feeds)
                sel = (slice(None), atom_group, slice(None))
                err = batch.forces[sel] - f_group
                abe = float(np.mean(np.abs(err)))
            with _span("fekf.gradient", compiled=1):
                feeds[f"f.weights[{s}]"] = error_signs(err) / err.size
                g_flat = self._flatten(prog.run(f"F_gbwd[{s}]", feeds))
        except PlanMismatch:
            self._fallback("plan_mismatch")
            return None
        _metrics.REGISTRY.counter("compile.replays", section="force_group").inc()
        return g_flat, abe

    def trace_force_group(self, f_pred, p, batch: DescriptorBatch,
                          atom_group: np.ndarray):
        """During the trace epoch: record gather/backward sections for a
        group size seen for the first time.  Returns ``None`` for repeat
        sizes (the caller's eager math runs on the live traced graph)."""
        tr = self._trace
        if (
            tr is None
            or tr.f_graph is None
            or f_pred is not tr.f_graph[0]
            or tensors_wanted()
        ):
            return None
        s = len(atom_group)
        if s in tr.sizes:
            return None  # eager repeat inside the trace step (not recorded)
        sess = tr.session
        group = np.asarray(atom_group)
        with _span("fekf.forward", tracing=1):
            with sess:
                sess.add_candidates({f"group[{s}]": group})
                with sess.section(f"F_gather[{s}]") as sec:
                    f_group = f_pred[(slice(None), group, slice(None))]
                    sec.outputs = [f_group]
            err = batch.forces[(slice(None), group, slice(None))] - f_group.data
            abe = float(np.mean(np.abs(err)))
        with _span("fekf.gradient", tracing=1):
            weights = error_signs(err) / err.size
            with sess:
                wt = Tensor(weights)
                with sess.section(f"F_gbwd[{s}]",
                                  inputs={f"f.weights[{s}]": wt}) as sec:
                    scalar = ops.tsum(ops.mul(f_group, wt))
                    gs = grad(scalar, [p[name] for name in self._names])
                    sec.outputs = list(gs)
            g_flat = self._flatten([g.data for g in gs])
        tr.sizes.add(s)
        return g_flat, abe

    def force_gradient(self, batch: DescriptorBatch, atom_group: np.ndarray):
        """The paper-exact fresh-forward protocol: replay ``F_fwd`` at
        the current weights, then the group sections."""
        sig = self._bail(batch)
        if sig is None:
            return None
        prog = self.plans.get(sig)
        if prog is None:
            tr = self._trace
            if tr is None or tr.sig != sig:
                return None
            if tr.f_graph is None:
                graph = self._trace_force_graph(batch)
                return self.trace_force_group(*graph, batch, atom_group)
            # later fresh updates of the trace step run eager (the caller
            # rebuilds its own graph at the current weights).  A size not
            # seen yet still gets its sections traced against the frozen
            # graph -- values are stale so the result is discarded, but
            # the sections replay correctly once feeds rebind.
            if len(atom_group) not in tr.sizes:
                self.trace_force_group(*tr.f_graph, batch, atom_group)
            return None
        try:
            shared = self._replay_force_graph(sig, prog, batch)
        except PlanMismatch:
            self._fallback("plan_mismatch")
            return None
        if shared is None:
            return None
        return self.force_group_gradient(shared[0], batch, atom_group)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Engine-level telemetry, merged into optimizer ``stats()``."""
        plans = {
            "x".join(map(str, k[0])): p.stats.as_dict()
            for k, p in self.plans.items()
        }
        out = {
            "enabled": self.disabled_reason is None,
            "traces": self.traces,
            "compiles": self.compiles,
            "replays": sum(p.stats.replays for p in self.plans.values()),
            "fallbacks": self.fallbacks,
            "compile_time_s": sum(
                p.stats.compile_time_s for p in self.plans.values()
            ),
            "plans": plans,
        }
        if self.disabled_reason is not None:
            out["disabled_reason"] = self.disabled_reason
        return out


# placed at the bottom to avoid a circular import at module load
from .worker import error_signs  # noqa: E402
