"""The one optimizer surface: protocol + ``make_optimizer`` factory.

Every optimizer in the repo -- the EKF family, the first-order baselines,
and the simulated data-parallel trainer -- satisfies one protocol:

* ``step_batch(batch) -> dict`` -- one training step on a minibatch;
* ``state_dict() / load_state_dict(state)`` -- full resumable state as a
  flat ``{key: ndarray}`` mapping (what :func:`save_state` serializes);
* ``hyperparams`` -- a readable dict of the knobs that define the run.

:func:`save_state` / :func:`load_state` are the protocol's one-file npz
persistence: ``model/<key>`` entries plus whatever flat arrays the
optimizer's ``state_dict`` reports.  They subsume the retired
``repro.optim.checkpoint`` helpers (same on-disk layout, so old
checkpoint files remain loadable).

``make_optimizer(name, model, **overrides)`` is the single construction
entry point: experiment code names the algorithm and passes flat keyword
overrides; the factory routes each override to the right place
(``KalmanConfig`` field, learning-rate schedule, constructor keyword)::

    opt = make_optimizer("fekf", model, blocksize=2048,
                         fused_update=True, fused_env=True)
    opt = make_optimizer("adam", model, lr0=1e-3, decay_steps=500)

Overrides that fit nowhere raise ``TypeError`` up front, so a typo'd
hyperparameter fails loudly instead of silently training the default.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..model.network import DeePMD
from .ekf import FEKF, NaiveEKF, RLEKF
from .first_order import SGD, Adam, ExponentialDecay, LossConfig
from .kalman import KalmanConfig

__all__ = [
    "Optimizer",
    "OPTIMIZER_NAMES",
    "make_optimizer",
    "save_state",
    "load_state",
    "save_ensemble_state",
    "load_ensemble_state",
]


@runtime_checkable
class Optimizer(Protocol):
    """What every repro optimizer provides (structural, not nominal)."""

    name: str

    def step_batch(self, batch) -> dict[str, float]: ...

    def state_dict(self) -> dict[str, np.ndarray]: ...

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None: ...

    @property
    def hyperparams(self) -> dict: ...


# ---------------------------------------------------------------------------
# one-file persistence over the protocol (online learning across sessions)
# ---------------------------------------------------------------------------
def save_state(path: str, model: DeePMD, optimizer: "Optional[Optimizer]" = None) -> None:
    """Write model weights (+ stats/bias) and, optionally, the full
    optimizer state (via its ``state_dict()``) to one npz at ``path``.

    FEKF's power comes from its filter state (P, lambda): resuming a
    retraining session must restore the *optimizer*, not just the
    weights, which is why this persists both in one file.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for k, v in model.state_dict().items():
        payload[f"model/{k}"] = v
    if optimizer is not None:
        opt_state = optimizer.state_dict()
        clash = [k for k in opt_state if k.startswith("model/")]
        if clash:
            raise ValueError(f"optimizer state keys collide with model/: {clash}")
        payload.update(opt_state)
    np.savez_compressed(path, **payload)


def load_state(path: str, model: DeePMD, optimizer: "Optional[Optimizer]" = None) -> None:
    """Restore a file written by :func:`save_state` into an
    already-constructed model (and optimizer, when present in the file).

    The optimizer's structure must match the checkpoint (same network and
    configuration); its ``load_state_dict`` raises on mismatches.
    """
    with np.load(path, allow_pickle=False) as z:
        model.load_state_dict(
            {k[len("model/"):]: z[k] for k in z.files if k.startswith("model/")}
        )
        if optimizer is None:
            return
        opt_state = {k: z[k] for k in z.files if not k.startswith("model/")}
        if not opt_state:
            raise KeyError(f"{path} holds no optimizer state")
        optimizer.load_state_dict(opt_state)


def save_ensemble_state(
    path: str,
    models: "Sequence[DeePMD]",
    optimizers: "Optional[Sequence[Optimizer]]" = None,
) -> None:
    """One-file npz persistence for a whole committee: every member's
    model weights and (optionally) its persistent optimizer state, under
    ``member<k>/`` key prefixes.

    This is the checkpoint surface of the online-learning loop: each
    ensemble member trains under its *own* persistent FEKF filter, and a
    resumed loop must restore every (weights, P, lambda, RNG) tuple --
    the filter state is where the fast convergence lives.
    """
    if optimizers is not None and len(optimizers) != len(models):
        raise ValueError(
            f"{len(optimizers)} optimizer states for {len(models)} models"
        )
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload: dict[str, np.ndarray] = {"__members__": np.array(len(models))}
    for k, model in enumerate(models):
        for key, value in model.state_dict().items():
            payload[f"member{k}/model/{key}"] = value
        if optimizers is not None:
            for key, value in optimizers[k].state_dict().items():
                payload[f"member{k}/{key}"] = value
    np.savez_compressed(path, **payload)


def load_ensemble_state(
    path: str,
    models: "Sequence[DeePMD]",
    optimizers: "Optional[Sequence[Optimizer]]" = None,
) -> None:
    """Restore a file written by :func:`save_ensemble_state` into
    already-constructed members (and their optimizers, when given)."""
    with np.load(path, allow_pickle=False) as z:
        n = int(z["__members__"]) if "__members__" in z.files else 0
        if n != len(models):
            raise ValueError(
                f"checkpoint holds {n} members for {len(models)} models"
            )
        for k, model in enumerate(models):
            prefix = f"member{k}/"
            member = {
                key[len(prefix):]: z[key]
                for key in z.files
                if key.startswith(prefix)
            }
            model.load_state_dict(
                {
                    key[len("model/"):]: value
                    for key, value in member.items()
                    if key.startswith("model/")
                }
            )
            if optimizers is None:
                continue
            opt_state = {
                key: value
                for key, value in member.items()
                if not key.startswith("model/")
            }
            if not opt_state:
                raise KeyError(f"{path} holds no optimizer state for member {k}")
            optimizers[k].load_state_dict(opt_state)


_KALMAN_FIELDS = {f.name for f in dataclasses.fields(KalmanConfig)}
_LOSS_FIELDS = {f.name for f in dataclasses.fields(LossConfig)}
_SCHEDULE_ALIASES = {"lr0": "lr0", "decay_rate": "rate", "decay_steps": "steps"}

_EKF_CLASSES = {"fekf": FEKF, "rlekf": RLEKF, "naive_ekf": NaiveEKF}
_EKF_CTOR_KEYS = {
    "n_force_splits", "fused_env", "reuse_force_graph", "step_scale",
    "seed", "compiled",
}
_FIRST_ORDER_CLASSES = {"adam": Adam, "sgd": SGD}
_FIRST_ORDER_CTOR_KEYS = {
    "adam": {"beta1", "beta2", "eps", "batch_scale_lr", "fused_env"},
    "sgd": {"momentum", "batch_scale_lr", "fused_env"},
}

#: canonical algorithm names accepted by :func:`make_optimizer`
OPTIMIZER_NAMES = ("fekf", "rlekf", "naive_ekf", "adam", "sgd", "distributed_fekf")

_ALIASES = {
    "naive": "naive_ekf",
    "naiveekf": "naive_ekf",
    "dist_fekf": "distributed_fekf",
    "distributed": "distributed_fekf",
}


def _reject_unknown(name: str, leftover: dict) -> None:
    if leftover:
        raise TypeError(
            f"make_optimizer({name!r}): unknown override(s) {sorted(leftover)}"
        )


def _make_ekf(key: str, model: DeePMD, overrides: dict):
    cls = _EKF_CLASSES[key]
    kalman_cfg = overrides.pop("kalman_cfg", None)
    kalman_overrides = {
        k: overrides.pop(k) for k in list(overrides) if k in _KALMAN_FIELDS
    }
    if kalman_cfg is None:
        batch_size = overrides.pop("batch_size", None)
        if batch_size is not None:
            kalman_cfg = KalmanConfig.for_batch_size(batch_size, **kalman_overrides)
        else:
            kalman_cfg = KalmanConfig(**kalman_overrides)
    elif kalman_overrides:
        raise TypeError(
            "pass either kalman_cfg or flat KalmanConfig fields, not both: "
            f"{sorted(kalman_overrides)}"
        )
    ctor = {k: overrides.pop(k) for k in list(overrides) if k in _EKF_CTOR_KEYS}
    _reject_unknown(key, overrides)
    return cls(model, kalman_cfg=kalman_cfg, **ctor)


def _make_first_order(key: str, model: DeePMD, overrides: dict):
    cls = _FIRST_ORDER_CLASSES[key]
    schedule = overrides.pop("schedule", None)
    sched_overrides = {
        alias: overrides.pop(alias)
        for alias in list(_SCHEDULE_ALIASES)
        if alias in overrides
    }
    if schedule is None:
        schedule = ExponentialDecay(
            **{_SCHEDULE_ALIASES[k]: v for k, v in sched_overrides.items()}
        )
    elif sched_overrides:
        raise TypeError(
            "pass either schedule or flat schedule fields, not both: "
            f"{sorted(sched_overrides)}"
        )
    loss_cfg = overrides.pop("loss_cfg", None)
    loss_overrides = {
        k: overrides.pop(k) for k in list(overrides) if k in _LOSS_FIELDS
    }
    if loss_cfg is None:
        loss_cfg = LossConfig(**loss_overrides)
    elif loss_overrides:
        raise TypeError(
            "pass either loss_cfg or flat LossConfig fields, not both: "
            f"{sorted(loss_overrides)}"
        )
    ctor = {
        k: overrides.pop(k)
        for k in list(overrides)
        if k in _FIRST_ORDER_CTOR_KEYS[key]
    }
    _reject_unknown(key, overrides)
    return cls(model, schedule=schedule, loss_cfg=loss_cfg, **ctor)


def make_optimizer(name: str, model: DeePMD, **overrides) -> Optimizer:
    """Construct any repro optimizer by algorithm name.

    Parameters
    ----------
    name:
        One of :data:`OPTIMIZER_NAMES` (case-insensitive; a few aliases
        like ``"naive"`` are accepted).
    model:
        The :class:`DeePMD` model the optimizer trains.
    overrides:
        Flat keyword overrides, routed automatically:

        * EKF family -- ``KalmanConfig`` fields (``lambda0``, ``nu``,
          ``blocksize``, ``fused_update``, ...), constructor keywords
          (``n_force_splits``, ``fused_env``, ``reuse_force_graph``,
          ``step_scale``, ``seed``), a pre-built ``kalman_cfg``, or
          ``batch_size=...`` to apply the paper's large-batch tuning
          guidance;
        * first-order -- schedule fields (``lr0``, ``decay_rate``,
          ``decay_steps``), ``LossConfig`` fields, or class keywords
          (``beta1``, ``momentum``, ``batch_scale_lr``, ...);
        * ``distributed_fekf`` -- ``world_size`` (required) plus the
          FEKF keywords above.
    """
    key = _ALIASES.get(name.lower().replace("-", "_"), name.lower().replace("-", "_"))
    if key in _EKF_CLASSES:
        return _make_ekf(key, model, dict(overrides))
    if key in _FIRST_ORDER_CLASSES:
        return _make_first_order(key, model, dict(overrides))
    if key == "distributed_fekf":
        from ..parallel.trainer import DistributedFEKF  # avoid import cycle

        overrides = dict(overrides)
        if "world_size" not in overrides:
            raise TypeError("make_optimizer('distributed_fekf') requires world_size=")
        world_size = overrides.pop("world_size")
        kalman_cfg = overrides.pop("kalman_cfg", None)
        kalman_overrides = {
            k: overrides.pop(k) for k in list(overrides) if k in _KALMAN_FIELDS
        }
        if kalman_cfg is None and kalman_overrides:
            kalman_cfg = KalmanConfig(**kalman_overrides)
        ctor_keys = {
            "n_force_splits", "fused_env", "reuse_force_graph",
            "verify_replicas", "cost_model", "seed", "executor", "compiled",
        }
        ctor = {k: overrides.pop(k) for k in list(overrides) if k in ctor_keys}
        _reject_unknown(key, overrides)
        return DistributedFEKF(model, world_size, kalman_cfg=kalman_cfg, **ctor)
    raise KeyError(
        f"unknown optimizer {name!r}; available: {', '.join(OPTIMIZER_NAMES)}"
    )
