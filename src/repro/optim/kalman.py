"""The shared Kalman-filter core used by RLEKF, Naive-EKF and FEKF.

Implements Algorithm 1 of the paper over a block-diagonal P:

    A  = 1 / (lambda + g^T P g)
    K  = A * P g
    P <- (P - A * (Pg)(Pg)^T) / lambda,  symmetrized
    lambda <- lambda * nu + 1 - nu
    w <- w + scale * ABE * K

Two P-update kernels are provided, mirroring the paper's Opt3 ("rewrite P
updating" + "cache intermediate results"):

* ``naive``  -- one dense temporary per algebraic step, exactly how a
  framework-level implementation (``torch.matmul``/``torch.outer``)
  executes it; every step records a kernel launch and allocates an
  N_b x N_b temporary -- the memory behaviour Sec. 5.3 attributes to the
  PyTorch implementation.
* ``fused``  -- the handwritten-kernel analog: the cached P g product is
  reused for K (and for A), the rank-1 downdate runs in-place on a single
  triangle via BLAS ``dsyr`` (symmetry by construction, no explicit
  symmetrization pass), and the 1/lambda rescaling is *folded into a
  scalar* carried next to the block, so no full-matrix pass happens at
  all.  One kernel launch, ~20x faster at the paper's blocksize, and
  numerically identical to the naive kernel (pinned by the tests).

Scale-stabilization (documented deviations, see DESIGN.md): the 1/lambda
forgetting inflates P exponentially along directions the data never
excites ("covariance wind-up").  At the paper's scale -- tens of thousands
of updates per epoch over rich datasets -- excitation is persistent and
this is harmless; at laptop-scale datasets it is not, so the core applies
two standard RLS/EKF safeguards: a cap on the mean diagonal of each P
block and a trust-region clip on each weight increment.  Both default on
and can be disabled (``inf``) to recover the unguarded Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import blas as _blas

from ..autograd.instrument import record_launch, register_op
from .blocks import Block, split_blocks

# the Kalman-core kernels live outside the autograd graph (plain BLAS on
# P); registered so the launch accounting and the project lint know them
for _name in (
    "p_symv_fused", "p_gemv", "p_update_fused", "k_scale", "kkT_outer",
    "p_sub", "p_scale", "p_symmetrize",
):
    register_op(_name, kind="optim", second_order=False)
del _name


@dataclass
class KalmanConfig:
    """Hyperparameters of the Kalman core (paper Sec. 3.2 defaults)."""

    lambda0: float = 0.98
    nu: float = 0.9987
    blocksize: int = 10240
    #: per-block scalar gains (RLEKF layerwise behaviour) vs one coupled
    #: global gain across blocks (the literal Algorithm 1 reading).
    coupled_gain: bool = False
    #: use the fused triangular-BLAS P update kernel (paper Opt3).
    fused_update: bool = False
    #: anti-windup bound on mean(diag(P_i)); ``inf`` disables.
    p_trace_cap: float = 2.0
    #: trust-region clip on |dw| per update; ``inf`` disables.
    max_step_norm: float = 0.1

    @staticmethod
    def for_batch_size(batch_size: int, **overrides) -> "KalmanConfig":
        """The paper's tuning guidance: lambda0=0.98/nu=0.9987 by default,
        lambda0=0.90/nu=0.996 once the batch size exceeds 1024."""
        if batch_size > 1024:
            base = KalmanConfig(lambda0=0.90, nu=0.996)
        else:
            base = KalmanConfig()
        for k, v in overrides.items():
            setattr(base, k, v)
        return base


class KalmanState:
    """Block-diagonal P, the memory factor lambda, and update kernels.

    Internally each block is stored as a full square array.  The naive
    backend keeps it dense-symmetric; the fused backend uses only the
    upper triangle (Fortran order for BLAS) plus a folded scalar
    ``p_scale`` absorbing the accumulated 1/lambda factors.
    """

    def __init__(self, num_params: int, layer_sizes: list[tuple[int, int]], cfg: KalmanConfig):
        self.cfg = cfg
        self.num_params = num_params
        self.blocks: list[Block] = split_blocks(layer_sizes, cfg.blocksize)
        total = sum(b.size for b in self.blocks)
        if total != num_params:
            raise ValueError(f"blocks cover {total} of {num_params} weights")
        order = "F" if cfg.fused_update else "C"
        self.p_mats: list[np.ndarray] = [
            np.eye(b.size, order=order) for b in self.blocks
        ]
        self.p_scales: list[float] = [1.0 for _ in self.blocks]
        self.lam = float(cfg.lambda0)
        self.updates = 0

    # ------------------------------------------------------------------
    def p_memory_bytes(self) -> int:
        return sum(p.nbytes for p in self.p_mats)

    def advance_lambda(self) -> None:
        self.lam = self.lam * self.cfg.nu + 1.0 - self.cfg.nu

    def p_dense(self, i: int) -> np.ndarray:
        """Reconstruct the full dense P block (test/diagnostic helper)."""
        p = self.p_mats[i]
        if self.cfg.fused_update:
            full = np.triu(p) + np.triu(p, 1).T
            return self.p_scales[i] * full
        return p.copy()

    # ------------------------------------------------------------------
    # kernels: each returns (pg, cached quadratic form g.pg)
    # ------------------------------------------------------------------
    def _pg(self, i: int, g: np.ndarray) -> np.ndarray:
        """P g for block i (the cached intermediate of the paper's Opt3)."""
        if self.cfg.fused_update:
            pg = _blas.dsymv(self.p_scales[i], self.p_mats[i], g, lower=0)
            record_launch("p_symv_fused", pg.nbytes)
        else:
            pg = self.p_mats[i] @ g
            record_launch("p_gemv", pg.nbytes)
        return pg

    def _downdate(self, i: int, pg: np.ndarray, a: float) -> None:
        """P_i <- (P_i - a * pg pg^T) / lambda."""
        if self.cfg.fused_update:
            # single triangular rank-1 BLAS kernel; 1/lambda folded into
            # the block scale so no full-matrix pass is needed.
            c = self.p_scales[i]
            self.p_mats[i] = _blas.dsyr(
                -a / c, pg, a=self.p_mats[i], lower=0, overwrite_a=1
            )
            self.p_scales[i] = c / self.lam
            record_launch("p_update_fused", self.p_mats[i].nbytes)
        else:
            p = self.p_mats[i]
            k = a * pg
            record_launch("k_scale", k.nbytes)
            kkt = np.outer(k, k / a)  # the N_b x N_b temporary
            record_launch("kkT_outer", kkt.nbytes)
            p1 = p - kkt
            record_launch("p_sub", p1.nbytes)
            p1 = p1 / self.lam
            record_launch("p_scale", p1.nbytes)
            p1 = (p1 + p1.T) / 2.0
            record_launch("p_symmetrize", p1.nbytes)
            self.p_mats[i] = p1

    # ------------------------------------------------------------------
    def update(self, g_flat: np.ndarray, error: float, scale: float) -> np.ndarray:
        """One Kalman update; returns the weight increment (flat vector).

        ``error`` is the (sign-aligned) mean absolute error ABE, ``scale``
        the sqrt(batch-size) quasi-learning-rate factor of Eq. 2.
        """
        if g_flat.shape != (self.num_params,):
            raise ValueError(f"gradient shape {g_flat.shape} != ({self.num_params},)")
        dw = np.zeros(self.num_params)

        pgs = [self._pg(i, g_flat[blk.slice()]) for i, blk in enumerate(self.blocks)]
        quads = [
            float(g_flat[blk.slice()] @ pg) for blk, pg in zip(self.blocks, pgs)
        ]

        if self.cfg.coupled_gain:
            a = 1.0 / (self.lam + sum(quads))
            gains = [a] * len(self.blocks)
        else:
            gains = [1.0 / (self.lam + q) for q in quads]

        for i, blk in enumerate(self.blocks):
            self._downdate(i, pgs[i], gains[i])
            dw[blk.slice()] = (scale * error * gains[i]) * pgs[i]

        self._guard()
        self.advance_lambda()
        self.updates += 1
        norm = float(np.linalg.norm(dw))
        if norm > self.cfg.max_step_norm:
            dw *= self.cfg.max_step_norm / norm
        return dw

    def _guard(self) -> None:
        """Anti-windup: rescale any P block whose mean diagonal exceeds
        the configured cap (no-op when the cap is inf)."""
        cap = self.cfg.p_trace_cap
        if not np.isfinite(cap):
            return
        for i, p in enumerate(self.p_mats):
            mean_diag = self.p_scales[i] * np.trace(p) / p.shape[0]
            if mean_diag > cap:
                if self.cfg.fused_update:
                    self.p_scales[i] *= cap / mean_diag
                else:
                    p *= cap / mean_diag

    # ------------------------------------------------------------------
    def clone(self) -> "KalmanState":
        """Deep copy (used to fork per-sample P replicas in Naive-EKF)."""
        other = KalmanState.__new__(KalmanState)
        other.cfg = self.cfg
        other.num_params = self.num_params
        other.blocks = self.blocks
        other.p_mats = [p.copy(order="K") for p in self.p_mats]
        other.p_scales = list(self.p_scales)
        other.lam = self.lam
        other.updates = self.updates
        return other

    def checksum(self) -> float:
        """Cheap fingerprint for replica-consistency assertions."""
        total = sum(c * np.trace(p) for c, p in zip(self.p_scales, self.p_mats))
        return float(total) + self.lam
