"""The RLEKF gather-and-split block strategy for the P matrix.

The error-covariance matrix P of a full EKF would be N x N (N = number of
weights); RLEKF [23] makes it block diagonal by walking the layers in
order and

* **gathering** consecutive small layers until adding the next one would
  exceed ``blocksize``;
* **splitting** any single layer larger than ``blocksize`` into chunks of
  at most ``blocksize`` (each chunk becomes its own block).

With the paper's network (26.5k params) and blocksize 10240 this yields
the block shapes reported in Sec. 5.3 ({1350, 10240, ~9800, ~5200}), which
the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Block:
    """A contiguous slice [start, stop) of the flat weight vector."""

    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start

    def slice(self) -> slice:
        return slice(self.start, self.stop)


def split_blocks(layer_sizes: list[tuple[int, int]], blocksize: int) -> list[Block]:
    """Partition the flat weight vector into EKF blocks.

    ``layer_sizes`` is the ordered [(layer_id, size)] list from
    :meth:`repro.model.params.ParamStore.layer_sizes`; a layer is the
    smallest unit gathered (weights and bias stay together).
    """
    if blocksize < 1:
        raise ValueError("blocksize must be >= 1")
    blocks: list[Block] = []
    offset = 0
    acc_start = offset
    acc = 0
    for _, size in layer_sizes:
        if size > blocksize:
            # flush any gathered prefix
            if acc > 0:
                blocks.append(Block(acc_start, acc_start + acc))
            # split the big layer into chunks
            lo = offset
            while lo < offset + size:
                hi = min(lo + blocksize, offset + size)
                blocks.append(Block(lo, hi))
                lo = hi
            offset += size
            acc_start = offset
            acc = 0
            continue
        if acc + size > blocksize:
            blocks.append(Block(acc_start, acc_start + acc))
            acc_start = offset
            acc = 0
        acc += size
        offset += size
    if acc > 0:
        blocks.append(Block(acc_start, acc_start + acc))
    return blocks


def block_shapes(blocks: list[Block]) -> list[int]:
    return [b.size for b in blocks]


def validate_blocks(blocks: list[Block], total: int) -> None:
    """Assert the blocks exactly tile [0, total) (used by tests)."""
    pos = 0
    for b in blocks:
        if b.start != pos or b.stop <= b.start:
            raise AssertionError(f"blocks do not tile the weight vector at {pos}: {b}")
        pos = b.stop
    if pos != total:
        raise AssertionError(f"blocks cover {pos} of {total} weights")


def p_memory_bytes(blocks: list[Block], dtype_size: int = 8) -> int:
    """Total bytes of the block-diagonal P (the Sec. 5.3 accounting)."""
    return sum(b.size * b.size * dtype_size for b in blocks)
