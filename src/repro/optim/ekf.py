"""Extended-Kalman-Filter optimizers: FEKF (the paper), RLEKF, Naive-EKF.

All three share the per-batch training protocol of the paper (Sec. 4
"Model parameters"): each minibatch triggers **one** Kalman update driven
by the total energy and **four** updates driven by the forces of disjoint
atom groups, with the sign-alignment trick of Algorithm 1 lines 3-5 (flip
the prediction wherever it exceeds the label so the Kalman step always
moves predictions toward labels, and use the mean *absolute* error ABE as
the innovation).

They differ in how a multi-sample minibatch is digested:

* :class:`FEKF` (funnel, "aggregation-then-computing"): per-sample
  gradients and absolute errors are reduced *first*; a single Kalman
  update per (energy / force-group) follows, with the increment scaled by
  sqrt(batch size) (Eq. 2).  One shared P -- the memory and communication
  win of Sec. 3.3.
* :class:`NaiveEKF` (fusiform, "computing-then-aggregation"): every sample
  runs its own full Kalman update against its own P replica; the weight
  increments are averaged.  Memory grows as batch_size x |P| and every P
  replica diverges, which is exactly why the paper rejects it.
* :class:`RLEKF`: the instance-by-instance predecessor [23]; equivalent to
  FEKF with batch size 1 and unit scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..autograd.config import config as _autograd_config
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span
from .kalman import KalmanConfig, KalmanState
from .worker import GradientWorker, error_signs


@dataclass
class UpdateStats:
    """Per-batch diagnostics returned by ``step_batch``."""

    energy_abe: float
    force_abe: float
    lam: float
    updates: int

    def as_dict(self) -> dict[str, float]:
        return {
            "energy_abe": self.energy_abe,
            "force_abe": self.force_abe,
            "lambda": self.lam,
            "updates": float(self.updates),
        }


#: back-compat alias; the implementation moved to :mod:`repro.optim.worker`
_signs = error_signs


class FEKF:
    """Fast Extended Kalman Filter (paper Algorithm 1, funnel dataflow).

    Parameters
    ----------
    model:
        The DeePMD model whose flat weight vector is filtered.
    kalman_cfg:
        Kalman hyperparameters; defaults follow Sec. 3.2 (lambda0=0.98,
        nu=0.9987, blocksize 10240).  Use
        ``KalmanConfig.for_batch_size(bs)`` for the large-batch guidance.
    n_force_splits:
        Number of force-group updates per batch (paper: 4).
    fused_env:
        Route the descriptor through the hand-derived Opt1 kernel.
    """

    name = "FEKF"

    def __init__(
        self,
        model: DeePMD,
        kalman_cfg: KalmanConfig | None = None,
        n_force_splits: int = 4,
        fused_env: bool = False,
        reuse_force_graph: bool = True,
        step_scale: float | None = None,
        seed: int = 0,
        compiled: bool | None = None,
    ):
        self.model = model
        cfg = kalman_cfg or KalmanConfig()
        self.kalman = KalmanState(model.num_params, model.params.layer_sizes(), cfg)
        self.n_force_splits = int(n_force_splits)
        #: tape-compiled step replay (repro.optim.compiled); None defers
        #: to the global autograd config flag (env var REPRO_COMPILE)
        if compiled is None:
            compiled = _autograd_config.compiled
        #: the per-shard gradient math, shared (same model object) with the
        #: rank workers of the data-parallel trainer
        self.worker = GradientWorker(model, fused_env=fused_env, compiled=compiled)
        #: when True, the n_force_splits group updates share one force
        #: graph (H evaluated at the weights before the first group update)
        #: instead of a fresh forward per group -- a large CPU saving with
        #: negligible convergence impact (see the ablation bench).  Set
        #: False for the paper-exact per-update protocol.
        self.reuse_force_graph = reuse_force_graph
        #: quasi-learning-rate factor of Eq. 2; None selects the paper's
        #: sqrt(batch size).  The Figure 4 experiment sweeps this.
        self.step_scale = step_scale
        self._rng = np.random.default_rng(seed)
        self.step_count = 0

    # ------------------------------------------------------------------
    # gradient building blocks (implementation lives in GradientWorker;
    # the underscore wrappers are kept for in-package/back-compat use)
    # ------------------------------------------------------------------
    @property
    def fused_env(self) -> bool:
        """Route the descriptor through the hand-derived Opt1 kernel."""
        return self.worker.fused_env

    @fused_env.setter
    def fused_env(self, value: bool) -> None:
        self.worker.fused_env = value

    @property
    def compiled(self) -> bool:
        """Whether steps replay through tape-compiled plans."""
        return self.worker.compiled

    def stats(self) -> dict:
        """Optimizer-level diagnostics: filter state plus (when compiled)
        the plan-cache telemetry -- compiles, replays, fallback counts,
        per-plan fusion/arena numbers."""
        out: dict = {
            "step_count": self.step_count,
            "lambda": self.kalman.lam,
            "updates": self.kalman.updates,
        }
        if self.worker._engine is not None:
            out["compiled"] = self.worker._engine.stats()
        elif self.worker.compiled:
            out["compiled"] = {"enabled": True, "traces": 0, "compiles": 0,
                               "replays": 0, "fallbacks": 0}
        return out

    def _energy_gradient(self, batch: DescriptorBatch) -> tuple[np.ndarray, float]:
        return self.worker.energy_gradient(batch)

    def _force_graph(self, batch: DescriptorBatch):
        return self.worker.force_graph(batch)

    def _force_group_gradient(self, f_pred, p, batch, atom_group):
        return self.worker.force_group_gradient(f_pred, p, batch, atom_group)

    def _force_gradient(self, batch: DescriptorBatch, atom_group: np.ndarray):
        return self.worker.force_gradient(batch, atom_group)

    def force_groups(self, n_atoms: int) -> list[np.ndarray]:
        """The per-batch disjoint atom groups driving the force updates
        (consumes one RNG draw -- call exactly once per step)."""
        perm = self._rng.permutation(n_atoms)
        return [np.sort(g) for g in np.array_split(perm, self.n_force_splits) if g.size]

    # back-compat private name
    _force_groups = force_groups

    def apply_increment(self, dw: np.ndarray) -> None:
        """w <- w + dw (the shared weight-update step of Algorithm 1)."""
        self.worker.apply_increment(dw)

    # back-compat private name
    _apply_increment = apply_increment

    # ------------------------------------------------------------------
    # optimizer protocol: state + hyperparameters
    # ------------------------------------------------------------------
    @property
    def hyperparams(self) -> dict:
        """Readable hyperparameter summary (the ``Optimizer`` protocol)."""
        cfg = self.kalman.cfg
        return {
            "name": self.name,
            "lambda0": cfg.lambda0,
            "nu": cfg.nu,
            "blocksize": cfg.blocksize,
            "coupled_gain": cfg.coupled_gain,
            "fused_update": cfg.fused_update,
            "p_trace_cap": cfg.p_trace_cap,
            "max_step_norm": cfg.max_step_norm,
            "n_force_splits": self.n_force_splits,
            "fused_env": self.fused_env,
            "reuse_force_graph": self.reuse_force_graph,
            "step_scale": self.step_scale,
            "compiled": self.compiled,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        """Full filter state as flat arrays (same keys the npz checkpoints
        have always used, so old checkpoint files stay loadable)."""
        k = self.kalman
        out: dict[str, np.ndarray] = {
            "kalman/lam": np.array(k.lam),
            "kalman/updates": np.array(k.updates),
            "kalman/p_scales": np.array(k.p_scales),
            "kalman/fused": np.array(int(k.cfg.fused_update)),
            "kalman/step_count": np.array(self.step_count),
        }
        st = self._rng.bit_generator.state
        if st.get("bit_generator") == "PCG64":
            # the group-shuffle RNG advances one draw per step; carrying
            # its 128-bit PCG64 state (as uint64 quads) makes a resumed
            # run continue bit-identically to the uninterrupted one
            m = (1 << 64) - 1
            s, inc = st["state"]["state"], st["state"]["inc"]
            out["kalman/rng"] = np.array(
                [s & m, (s >> 64) & m, inc & m, (inc >> 64) & m,
                 st["has_uint32"], st["uinteger"]],
                dtype=np.uint64,
            )
        for i, p in enumerate(k.p_mats):
            out[f"kalman/p{i}"] = p.copy(order="K")
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore filter state produced by :meth:`state_dict`.

        The block structure and fused/naive storage layout must match
        this optimizer's ``KalmanConfig``; mismatches raise.
        """
        if "kalman/lam" not in state:
            raise KeyError("state holds no EKF optimizer state ('kalman/lam' missing)")
        k = self.kalman
        if bool(state["kalman/fused"]) != k.cfg.fused_update:
            raise ValueError(
                "checkpoint P storage layout (fused vs naive) does not match "
                "the optimizer's KalmanConfig"
            )
        n_blocks = len(k.p_mats)
        for i in range(n_blocks):
            key = f"kalman/p{i}"
            if key not in state or state[key].shape != k.p_mats[i].shape:
                raise ValueError("checkpoint block structure does not match")
        for i in range(n_blocks):
            arr = np.asarray(state[f"kalman/p{i}"])
            k.p_mats[i] = (
                np.asfortranarray(arr) if k.cfg.fused_update else np.array(arr)
            )
        k.p_scales = [float(c) for c in np.asarray(state["kalman/p_scales"])]
        k.lam = float(state["kalman/lam"])
        k.updates = int(state["kalman/updates"])
        if "kalman/step_count" in state:  # absent in pre-telemetry files
            self.step_count = int(state["kalman/step_count"])
        if "kalman/rng" in state:  # absent in older checkpoints
            r = np.asarray(state["kalman/rng"], dtype=np.uint64)
            st = self._rng.bit_generator.state
            if st.get("bit_generator") == "PCG64":
                st["state"]["state"] = int(r[0]) | (int(r[1]) << 64)
                st["state"]["inc"] = int(r[2]) | (int(r[3]) << 64)
                st["has_uint32"] = int(r[4])
                st["uinteger"] = int(r[5])
                self._rng.bit_generator.state = st

    # ------------------------------------------------------------------
    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        """One training step: 1 energy update + n_force_splits force updates."""
        scale = (
            float(np.sqrt(batch.batch_size))
            if self.step_scale is None
            else float(self.step_scale)
        )
        with _span("fekf.update", kind="energy", step=self.step_count):
            g, e_abe = self._energy_gradient(batch)
            with _span("fekf.kalman"):
                dw = self.kalman.update(g, e_abe, scale)
        self._apply_increment(dw)

        f_abes = []
        shared = self._force_graph(batch) if self.reuse_force_graph else None
        for gi, group in enumerate(self._force_groups(batch.n_atoms)):
            with _span("fekf.update", kind="force", group=gi, step=self.step_count):
                if shared is not None:
                    g, f_abe = self._force_group_gradient(*shared, batch, group)
                else:
                    g, f_abe = self._force_gradient(batch, group)
                with _span("fekf.kalman"):
                    dw = self.kalman.update(g, f_abe, scale)
            self._apply_increment(dw)
            f_abes.append(f_abe)
        self.step_count += 1
        _metrics.REGISTRY.counter("optim.steps", optimizer=self.name).inc()
        _metrics.REGISTRY.gauge("kalman.lambda").set(self.kalman.lam)
        _metrics.REGISTRY.counter("kalman.updates").inc(1 + len(f_abes))
        return UpdateStats(
            energy_abe=e_abe,
            force_abe=float(np.mean(f_abes)) if f_abes else 0.0,
            lam=self.kalman.lam,
            updates=self.kalman.updates,
        ).as_dict()


class RLEKF(FEKF):
    """Reorganized Layer-wise EKF [23]: instance-by-instance updating.

    The single-sample degenerate case of the funnel dataflow (scale
    sqrt(1) = 1); enforced batch size 1 reproduces its wall-clock profile.
    """

    name = "RLEKF"

    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        if batch.batch_size != 1:
            raise ValueError(
                "RLEKF updates instance-by-instance; feed batches of size 1 "
                "(use FEKF for multi-sample minibatches)"
            )
        return super().step_batch(batch)


class NaiveEKF(FEKF):
    """Fusiform ("computing-then-aggregation") multi-sample EKF.

    Statistically averages per-sample Kalman increments E(K * ABE), each
    sample filtering against its own P replica (Table 2, row 3).  Kept as
    the paper's strawman: its P memory scales with the batch size and its
    replicas would all need to be communicated in data-parallel training.
    """

    name = "NaiveEKF"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._replicas: list[KalmanState] | None = None

    def _ensure_replicas(self, batch_size: int) -> list[KalmanState]:
        if self._replicas is None:
            self._replicas = [self.kalman] + [
                self.kalman.clone() for _ in range(batch_size - 1)
            ]
        if len(self._replicas) < batch_size:
            self._replicas += [
                self.kalman.clone() for _ in range(batch_size - len(self._replicas))
            ]
        return self._replicas[:batch_size]

    def p_memory_bytes(self) -> int:
        """Total P footprint across replicas (the Sec. 3.3 blow-up)."""
        reps = self._replicas or [self.kalman]
        return sum(state.p_memory_bytes() for state in reps)

    def _single_frame(self, batch: DescriptorBatch, i: int) -> DescriptorBatch:
        return batch.frame_slice(i, i + 1)

    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        bs = batch.batch_size
        replicas = self._ensure_replicas(bs)
        base = self.model.params.flatten()

        # energy phase: per-sample KF update from the same starting weights
        increments = np.zeros_like(base)
        e_abes = []
        for i in range(bs):
            fb = self._single_frame(batch, i)
            g, abe = self._energy_gradient(fb)
            increments += replicas[i].update(g, abe, 1.0)
            e_abes.append(abe)
        self.model.params.unflatten(base + increments / bs)

        # force phases
        f_abes = []
        for group in self._force_groups(batch.n_atoms):
            base = self.model.params.flatten()
            increments = np.zeros_like(base)
            for i in range(bs):
                fb = self._single_frame(batch, i)
                g, abe = self._force_gradient(fb, group)
                increments += replicas[i].update(g, abe, 1.0)
                f_abes.append(abe)
            self.model.params.unflatten(base + increments / bs)
        self.step_count += 1
        return UpdateStats(
            energy_abe=float(np.mean(e_abes)),
            force_abe=float(np.mean(f_abes)) if f_abes else 0.0,
            lam=self.kalman.lam,
            updates=self.kalman.updates,
        ).as_dict()
