"""Per-rank shard compute for (data-parallel) FEKF: the rank-worker layer.

The funnel dataflow of the paper (Sec. 3.1) reduces per-sample gradients
and absolute errors *before* any Kalman algebra, which makes the per-rank
work a pure function of (weight vector, :class:`DescriptorBatch` shard).
:class:`GradientWorker` packages exactly that function -- the reduced
energy / force-group gradients and ABEs that used to be private methods
of :class:`~repro.optim.ekf.FEKF` -- behind a public, picklable surface
so it can run

* in-process (the serial FEKF path delegates here),
* on worker threads (BLAS releases the GIL), or
* in persistent worker processes, each holding its own model replica and
  receiving only the per-update weight *delta* -- the paper's "gradients
  travel, P never does" argument applied to the weights as well.

Task protocol
-------------
Executors (see :mod:`repro.parallel.executor`) drive a worker exclusively
through :meth:`GradientWorker.run`, which dispatches a whitelisted method
name, times it, optionally captures telemetry spans locally, and wraps
the outcome in a :class:`TaskResult` envelope for the parent to merge.
State mutations (``set_shard`` / ``set_weights`` / ``apply_delta``) and
compute tasks (``energy_task`` / ``graph_task`` / ``force_task``) are the
whole vocabulary; everything is picklable so the same protocol works over
a pipe.

Fault injection for robustness tests is first-class: install a
:class:`FaultInjector` (itself picklable, via the ``set_fault`` task) and
the targeted task raises for its first ``times`` invocations -- the
executor's retry/fallback machinery is exercised without monkeypatching.
"""

from __future__ import annotations

import contextlib
import copy
import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..autograd import Tensor, grad, ops
from ..autograd.capture import capture as _capture
from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..telemetry.trace import Tracer, span as _span

__all__ = [
    "error_signs",
    "ShardResult",
    "WorkerTelemetry",
    "TaskResult",
    "FaultInjector",
    "GradientWorker",
    "WorkerSpec",
    "TASK_METHODS",
    "PrefetchWorker",
    "PrefetchSpec",
    "PREFETCH_TASKS",
]


def error_signs(errors: np.ndarray) -> np.ndarray:
    """+1 where the prediction is below the label, -1 otherwise
    (Algorithm 1 lines 3-5: flip Y_hat when Y_hat >= Y)."""
    return np.where(errors > 0.0, 1.0, -1.0)


# ---------------------------------------------------------------------------
# result envelopes (all picklable)
# ---------------------------------------------------------------------------
@dataclass
class ShardResult:
    """One rank's reduced contribution to a global update.

    ``grad`` is the count-weighted *mean* gradient over the shard,
    ``abe_sum`` the summed absolute errors and ``count`` the number of
    components they cover (0 for an empty shard -- the count-weighted
    reduction then ignores the rank).
    """

    grad: np.ndarray
    abe_sum: float
    count: int


@dataclass
class WorkerTelemetry:
    """Telemetry captured locally by a worker for one task.

    Workers never touch the parent's tracer or metric registry (threads
    would race on it, processes cannot see it); they measure locally and
    the parent merges via :meth:`repro.telemetry.Tracer.emit_foreign` and
    :meth:`repro.telemetry.MetricRegistry.merge_counters`.
    """

    rank: int = 0
    #: OS pid of the worker (distinguishes process-executor tracks from
    #: in-process ranks in the merged Chrome trace)
    pid: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    counters: dict = field(default_factory=dict)
    #: ``SpanEvent.as_dict()`` payloads captured under a worker-local
    #: tracer (empty unless the parent asked for capture)
    spans: list = field(default_factory=list)
    #: ``OpEvent.as_dict()`` payloads from a worker-local profiler
    #: (empty unless the parent asked for ``capture="profile"``)
    ops: list = field(default_factory=list)
    #: ``{name: Histogram.as_dict()}`` distributions observed locally
    #: (e.g. per-task latency); the parent folds them in losslessly via
    #: :meth:`repro.telemetry.MetricRegistry.merge_histograms`
    histograms: dict = field(default_factory=dict)


@dataclass
class TaskResult:
    """Envelope returned by :meth:`GradientWorker.run` for every task."""

    payload: Any
    telemetry: WorkerTelemetry


@dataclass
class FaultInjector:
    """Picklable test hook: degrade ``method`` for its next ``times`` calls.

    The default is a hard failure (``raises=True``); ``stall_s`` sleeps
    inside the task first, and with ``raises=False`` the task then
    *succeeds slowly* -- a wedged-but-alive worker, which is what the
    watchdog / latency-SLO tests need to provoke (a crash is caught by
    the executor's heal path long before any deadline fires).
    """

    method: str
    times: int = 1
    message: str = "injected worker fault"
    #: seconds to block inside the targeted task before (maybe) raising
    stall_s: float = 0.0
    #: when False the fault only stalls -- no exception
    raises: bool = True

    def check(self, method: str, rank: int) -> None:
        if self.times > 0 and method == self.method:
            self.times -= 1
            if self.stall_s > 0.0:
                time.sleep(self.stall_s)
            if self.raises:
                raise RuntimeError(f"{self.message} (rank {rank}, {method})")


#: methods dispatchable through :meth:`GradientWorker.run`
TASK_METHODS = frozenset(
    {
        "set_shard",
        "set_weights",
        "get_weights",
        "apply_delta",
        "set_fault",
        "energy_task",
        "graph_task",
        "force_task",
    }
)

#: compute tasks wrapped in a ``worker.task`` span under capture, and the
#: update kind each contributes to (phase attribution for the profiler;
#: ``graph_task`` has no kind -- it is the shared force-graph build)
_COMPUTE_TASKS = frozenset({"energy_task", "graph_task", "force_task"})
_TASK_KIND = {"energy_task": "energy", "force_task": "force"}


class GradientWorker:
    """Reduced-gradient compute over one model replica.

    The low-level methods (:meth:`energy_gradient`, :meth:`force_graph`,
    :meth:`force_group_gradient`, :meth:`force_gradient`) are the single
    implementation of FEKF's per-shard math -- the serial optimizer calls
    them directly on its own model.  The ``*_task`` methods add the
    rank-local state an executor round needs: the current shard, a cached
    force graph, and empty-shard short-circuits.
    """

    def __init__(
        self,
        model: DeePMD,
        fused_env: bool = False,
        rank: int = 0,
        compiled: bool = False,
    ):
        self.model = model
        self.fused_env = fused_env
        self.rank = int(rank)
        self.shard: Optional[DescriptorBatch] = None
        #: cached (f_pred, params) force graph for the current shard;
        #: deliberately *kept* across ``apply_delta`` (the shared-graph
        #: protocol evaluates all force groups on one stale graph) and
        #: dropped on ``set_shard`` / ``set_weights``.
        self.graph = None
        self.fault: Optional[FaultInjector] = None
        #: opt-in tape-compiled step replay (see repro.optim.compiled);
        #: the engine is built lazily on the first gradient call
        self.compiled = bool(compiled)
        self._engine = None

    def _compile_engine(self):
        if not self.compiled:
            return None
        if self._engine is None:
            from .compiled import CompiledStepEngine

            self._engine = CompiledStepEngine(self)
        return self._engine

    # ------------------------------------------------------------------
    # gradient math (shared with the serial FEKF path)
    # ------------------------------------------------------------------
    def _param_list(self, p: dict[str, Tensor]) -> list[Tensor]:
        return [p[name] for name in self.model.params.names()]

    def energy_gradient(self, batch: DescriptorBatch) -> tuple[np.ndarray, float]:
        """Reduced per-atom-energy gradient E(g) and ABE for the batch."""
        engine = self._compile_engine()
        if engine is not None:
            out = engine.energy_gradient(batch)
            if out is not None:
                return out
        model = self.model
        with _span("fekf.forward"):
            p = model.param_tensors()
            e = model.energy_graph(
                Tensor(batch.coords), batch, p=p, fused_env=self.fused_env
            )
            n = batch.n_atoms
            err = (batch.energies - e.data) / n
            abe = float(np.mean(np.abs(err)))
        with _span("fekf.gradient"):
            weights = error_signs(err) / (n * batch.batch_size)
            scalar = ops.tsum(ops.mul(e, Tensor(weights)))
            gs = grad(scalar, self._param_list(p))
            g_flat = model.params.flatten_grads(
                {name: g.data for name, g in zip(model.params.names(), gs)}
            )
        return g_flat, abe

    def force_graph(self, batch: DescriptorBatch):
        """Build the differentiable force predictions F = -dE/dr.

        Under the compiled engine this may return a
        :class:`~repro.optim.compiled.CompiledForceGraph` marker in place
        of the live ``(f_pred, params)`` pair; ``force_group_gradient``
        understands both."""
        engine = self._compile_engine()
        if engine is not None:
            out = engine.force_graph(batch)
            if out is not None:
                return out
        model = self.model
        with _span("fekf.forward"):
            p = model.param_tensors()
            coords = Tensor(batch.coords, requires_grad=True)
            e = model.energy_graph(coords, batch, p=p, fused_env=self.fused_env)
            (gc,) = grad(ops.tsum(e), [coords], create_graph=True)
            f_pred = ops.neg(gc)
        return f_pred, p

    def force_group_gradient(
        self,
        f_pred: Tensor,
        p: dict[str, Tensor],
        batch: DescriptorBatch,
        atom_group: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Reduced gradient and ABE of one atom group's force components."""
        if getattr(f_pred, "compiled_marker", False):
            out = f_pred.engine.force_group_gradient(f_pred, batch, atom_group)
            if out is not None:
                return out
            # the plan cannot serve this group (unseen size, observer
            # active): fall back to a fresh eager forward
            return self.force_gradient(batch, atom_group)
        if self._engine is not None:
            out = self._engine.trace_force_group(f_pred, p, batch, atom_group)
            if out is not None:
                return out
        with _span("fekf.forward"):
            sel = (slice(None), atom_group, slice(None))
            f_group = f_pred[sel]
            err = batch.forces[sel] - f_group.data
            abe = float(np.mean(np.abs(err)))
        with _span("fekf.gradient"):
            weights = error_signs(err) / err.size
            scalar = ops.tsum(ops.mul(f_group, Tensor(weights)))
            gs = grad(scalar, self._param_list(p))
            g_flat = self.model.params.flatten_grads(
                {name: g.data for name, g in zip(self.model.params.names(), gs)}
            )
        return g_flat, abe

    def force_gradient(
        self, batch: DescriptorBatch, atom_group: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Fresh forward at the current weights + one group's gradient
        (the paper-exact per-update protocol)."""
        engine = self._compile_engine()
        if engine is not None:
            out = engine.force_gradient(batch, atom_group)
            if out is not None:
                return out
        f_pred, p = self.force_graph(batch)
        return self.force_group_gradient(f_pred, p, batch, atom_group)

    def apply_increment(self, dw: np.ndarray) -> None:
        """w <- w + dw on this replica (bit-identical on every rank)."""
        self.model.params.unflatten(self.model.params.flatten() + dw)

    # ------------------------------------------------------------------
    # rank-local task state
    # ------------------------------------------------------------------
    def set_shard(self, shard: DescriptorBatch) -> None:
        self.shard = shard
        self.graph = None

    def set_weights(self, w: np.ndarray) -> None:
        self.model.params.unflatten(np.asarray(w, dtype=np.float64))
        self.graph = None

    def get_weights(self) -> np.ndarray:
        return self.model.params.flatten()

    def apply_delta(self, dw: np.ndarray) -> None:
        # graph cache intentionally survives (shared-graph protocol)
        self.apply_increment(np.asarray(dw, dtype=np.float64))

    def set_fault(self, fault: Optional[FaultInjector]) -> None:
        self.fault = fault

    def _zero_result(self) -> ShardResult:
        return ShardResult(np.zeros(self.model.num_params), 0.0, 0)

    def _require_shard(self) -> DescriptorBatch:
        if self.shard is None:
            raise RuntimeError("no shard assigned (dispatch set_shard first)")
        return self.shard

    # ------------------------------------------------------------------
    # compute tasks
    # ------------------------------------------------------------------
    def energy_task(self) -> ShardResult:
        shard = self._require_shard()
        if shard.batch_size == 0:
            return self._zero_result()
        g, abe = self.energy_gradient(shard)
        return ShardResult(g, abe * shard.batch_size, shard.batch_size)

    def graph_task(self) -> None:
        """Build and cache the force graph for the current shard."""
        shard = self._require_shard()
        self.graph = self.force_graph(shard) if shard.batch_size else None

    def force_task(self, atom_group: np.ndarray, fresh: bool) -> ShardResult:
        shard = self._require_shard()
        if shard.batch_size == 0:
            return self._zero_result()
        if fresh:
            g, abe = self.force_gradient(shard, atom_group)
        else:
            if self.graph is None:
                raise RuntimeError(
                    "shared-graph force task without a cached graph "
                    "(dispatch graph_task first)"
                )
            g, abe = self.force_group_gradient(*self.graph, shard, atom_group)
        n_comp = shard.batch_size * len(atom_group) * 3
        return ShardResult(g, abe * n_comp, n_comp)

    # ------------------------------------------------------------------
    # executor entry point
    # ------------------------------------------------------------------
    def run(
        self, method: str, args: tuple = (), capture: "bool | str" = False
    ) -> TaskResult:
        """Dispatch one task, measuring wall/CPU time and (optionally)
        capturing telemetry spans under a worker-local tracer.

        ``capture="profile"`` additionally attaches a worker-local
        op-level profiler, so the task's primitive-op timeline rides back
        in :attr:`WorkerTelemetry.ops` for the parent to merge into its
        own profiler (one rank-tagged track per worker in the exported
        Chrome trace)."""
        if method not in TASK_METHODS:
            raise ValueError(f"unknown worker task {method!r}")
        if self.fault is not None:
            self.fault.check(method, self.rank)
        t0 = time.perf_counter()
        c0 = time.process_time()
        if capture:
            with contextlib.ExitStack() as stack:
                tracer = stack.enter_context(Tracer(keep_events=True))
                if capture == "profile":
                    # the unified observer surface: installs a worker-local
                    # Profiler attached to this tracer (autograd.capture)
                    stack.enter_context(_capture("profile", tracer=tracer))
                if method in _COMPUTE_TASKS:
                    attrs = {"method": method}
                    kind = _TASK_KIND.get(method)
                    if kind is not None:
                        attrs["kind"] = kind
                    with tracer.span("worker.task", **attrs):
                        payload = getattr(self, method)(*args)
                else:
                    payload = getattr(self, method)(*args)
            spans = [e.as_dict() for e in tracer.events]
            ops = (
                [o.as_dict() for o in tracer.profiler.events]
                if tracer.profiler is not None
                else []
            )
        else:
            payload = getattr(self, method)(*args)
            spans = []
            ops = []
        wall = time.perf_counter() - t0
        cpu = time.process_time() - c0
        telemetry = WorkerTelemetry(
            rank=self.rank,
            pid=os.getpid(),
            wall_s=wall,
            cpu_s=cpu,
            counters={"parallel.worker_tasks": 1.0},
            spans=spans,
            ops=ops,
        )
        return TaskResult(payload=payload, telemetry=telemetry)


#: methods dispatchable through :meth:`PrefetchWorker.run`
PREFETCH_TASKS = frozenset({"make_batch", "noop"})


class PrefetchWorker:
    """Batch-construction compute for the streaming data loader.

    The descriptor-input half of a training step -- fetch frames, build
    neighbor tables, assemble the :class:`DescriptorBatch` -- is a pure
    function of (frame source, index array, descriptor config), exactly
    the shape the rank-worker protocol wants.  The
    :class:`~repro.data.loader.StreamingLoader` runs these workers on an
    executor so batch construction overlaps the optimizer's Kalman
    algebra (thread backend: the table/gather kernels are numpy and BLAS
    releases the GIL; process backend: a picklable store *handle*
    travels, never frame data).

    Same envelope as :class:`GradientWorker`: drive exclusively through
    :meth:`run`, which returns a :class:`TaskResult` whose telemetry the
    parent merges; under capture the batch build is wrapped in a
    ``data.prefetch`` span so prefetch overlap is visible in the trace.
    """

    def __init__(self, source, cfg, rank: int = 0):
        self.source = source
        self.cfg = cfg
        self.rank = int(rank)

    # ------------------------------------------------------------------
    def make_batch(self, indices: np.ndarray) -> DescriptorBatch:
        from ..model.environment import make_batch

        return make_batch(self.source, indices, self.cfg)

    def noop(self) -> None:
        """Padding task for partial final groups (world_size alignment)."""

    # ------------------------------------------------------------------
    def run(
        self, method: str, args: tuple = (), capture: "bool | str" = False
    ) -> TaskResult:
        if method not in PREFETCH_TASKS:
            raise ValueError(f"unknown prefetch task {method!r}")
        t0 = time.perf_counter()
        c0 = time.process_time()
        if capture:
            with Tracer(keep_events=True) as tracer:
                if method == "make_batch":
                    with tracer.span(
                        "data.prefetch", rank=self.rank, frames=len(args[0])
                    ):
                        payload = getattr(self, method)(*args)
                else:
                    payload = getattr(self, method)(*args)
            spans = [e.as_dict() for e in tracer.events]
        else:
            payload = getattr(self, method)(*args)
            spans = []
        telemetry = WorkerTelemetry(
            rank=self.rank,
            pid=os.getpid(),
            wall_s=time.perf_counter() - t0,
            cpu_s=time.process_time() - c0,
            counters={"data.prefetch_tasks": 1.0},
            spans=spans,
        )
        return TaskResult(payload=payload, telemetry=telemetry)


@dataclass
class PrefetchSpec:
    """Picklable recipe for building prefetch ranks.

    ``source`` must be picklable for the process backend -- an in-memory
    :class:`~repro.data.dataset.Dataset` ships its arrays once at start;
    a :class:`~repro.data.framestore.ShardedFrameStore` ships only its
    path handle and re-opens (mmap) inside the worker.
    """

    source: Any
    cfg: Any

    def build(self, rank: int = 0) -> PrefetchWorker:
        return PrefetchWorker(self.source, self.cfg, rank=rank)


@dataclass
class WorkerSpec:
    """Picklable recipe for building rank workers.

    ``build`` deep-copies the model so every rank owns an independent,
    bit-identical replica of the weights at build time; executors that
    respawn a worker afterwards must re-sync with ``set_weights``.
    """

    model: DeePMD
    fused_env: bool = False
    compiled: bool = False

    def build(self, rank: int = 0) -> GradientWorker:
        return GradientWorker(
            copy.deepcopy(self.model),
            fused_env=self.fused_env,
            rank=rank,
            compiled=self.compiled,
        )
