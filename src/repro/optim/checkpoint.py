"""Deprecated aliases for :func:`repro.optim.save_state` / ``load_state``.

The checkpoint helpers moved onto the optimizer protocol surface in
:mod:`repro.optim.base` (same one-npz on-disk layout, so existing
checkpoint files remain loadable).  These re-exports emit a
``DeprecationWarning`` and will be removed one release after the move --
call ``repro.optim.save_state`` / ``load_state`` instead.
"""

from __future__ import annotations

import warnings

from .base import load_state, save_state


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.optim.checkpoint.{old} is deprecated; "
        f"use repro.optim.{new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def save_checkpoint(path, model, optimizer=None) -> None:
    """Deprecated: use :func:`repro.optim.save_state`."""
    _warn("save_checkpoint", "save_state")
    save_state(path, model, optimizer)


def load_checkpoint(path, model, optimizer=None) -> None:
    """Deprecated: use :func:`repro.optim.load_state`."""
    _warn("load_checkpoint", "load_state")
    load_state(path, model, optimizer)
