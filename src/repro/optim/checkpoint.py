"""Checkpointing for online learning across sessions.

The online-learning workflow of Figure 1 retrains the same model dozens of
times as new configurations arrive.  Because FEKF's power comes from its
filter state (P, lambda), resuming a retraining session must restore the
*optimizer*, not just the weights.

These helpers are now thin shims over the ``Optimizer`` protocol's
``state_dict()`` / ``load_state_dict()`` (see :mod:`repro.optim.base`):
one npz file holds ``model/<key>`` entries plus whatever flat arrays the
optimizer reports.  The on-disk keys for FEKF are unchanged from the
pre-protocol era, so old checkpoint files remain loadable.  New code that
wants custom storage should call ``optimizer.state_dict()`` directly.
"""

from __future__ import annotations

import os

import numpy as np

from ..model.network import DeePMD


def save_checkpoint(path: str, model: DeePMD, optimizer=None) -> None:
    """Write model weights (+ stats/bias) and, optionally, the full
    optimizer state (via its ``state_dict()``) to ``path``."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for k, v in model.state_dict().items():
        payload[f"model/{k}"] = v
    if optimizer is not None:
        opt_state = optimizer.state_dict()
        clash = [k for k in opt_state if k.startswith("model/")]
        if clash:
            raise ValueError(f"optimizer state keys collide with model/: {clash}")
        payload.update(opt_state)
    np.savez_compressed(path, **payload)


def load_checkpoint(path: str, model: DeePMD, optimizer=None) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint` into an
    already-constructed model (and optimizer, when present in the file).

    The optimizer's structure must match the checkpoint (same network and
    configuration); its ``load_state_dict`` raises on mismatches.
    """
    with np.load(path, allow_pickle=False) as z:
        model.load_state_dict(
            {k[len("model/"):]: z[k] for k in z.files if k.startswith("model/")}
        )
        if optimizer is None:
            return
        opt_state = {k: z[k] for k in z.files if not k.startswith("model/")}
        if not opt_state:
            raise KeyError(f"{path} holds no optimizer state")
        optimizer.load_state_dict(opt_state)
