"""Checkpointing for online learning across sessions.

The online-learning workflow of Figure 1 retrains the same model dozens of
times as new configurations arrive.  Because FEKF's power comes from its
filter state (P, lambda), resuming a retraining session must restore the
*optimizer*, not just the weights.  These helpers serialize model +
optimizer together in one npz file.
"""

from __future__ import annotations

import os

import numpy as np

from ..model.network import DeePMD
from .ekf import FEKF
from .kalman import KalmanState


def save_checkpoint(path: str, model: DeePMD, optimizer: FEKF | None = None) -> None:
    """Write model weights (+ stats/bias) and, optionally, the full Kalman
    filter state to ``path``."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for k, v in model.state_dict().items():
        payload[f"model/{k}"] = v
    if optimizer is not None:
        k_state = optimizer.kalman
        payload["kalman/lam"] = np.array(k_state.lam)
        payload["kalman/updates"] = np.array(k_state.updates)
        payload["kalman/p_scales"] = np.array(k_state.p_scales)
        payload["kalman/fused"] = np.array(int(k_state.cfg.fused_update))
        for i, p in enumerate(k_state.p_mats):
            payload[f"kalman/p{i}"] = p
    np.savez_compressed(path, **payload)


def load_checkpoint(path: str, model: DeePMD, optimizer: FEKF | None = None) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint` into an
    already-constructed model (and optimizer, when present in the file).

    The optimizer's block structure and fused/naive storage layout must
    match the checkpoint (same network and KalmanConfig); mismatches raise.
    """
    with np.load(path, allow_pickle=False) as z:
        model.load_state_dict(
            {k[len("model/"):]: z[k] for k in z.files if k.startswith("model/")}
        )
        if optimizer is None:
            return
        if "kalman/lam" not in z.files:
            raise KeyError(f"{path} holds no optimizer state")
        k_state: KalmanState = optimizer.kalman
        if bool(z["kalman/fused"]) != k_state.cfg.fused_update:
            raise ValueError(
                "checkpoint P storage layout (fused vs naive) does not match "
                "the optimizer's KalmanConfig"
            )
        n_blocks = len(k_state.p_mats)
        for i in range(n_blocks):
            key = f"kalman/p{i}"
            if key not in z.files or z[key].shape != k_state.p_mats[i].shape:
                raise ValueError("checkpoint block structure does not match")
        for i in range(n_blocks):
            arr = z[f"kalman/p{i}"]
            k_state.p_mats[i] = (
                np.asfortranarray(arr) if k_state.cfg.fused_update else np.array(arr)
            )
        k_state.p_scales = [float(c) for c in z["kalman/p_scales"]]
        k_state.lam = float(z["kalman/lam"])
        k_state.updates = int(z["kalman/updates"])
