"""First-order baselines: Adam and SGD with the DeePMD loss schedule.

The loss is the standard DeePMD energy+force objective

    L = p_e * mean_b((dE_b / N)^2) + p_f * mean(dF^2)

with prefactors interpolated between start and limit values as the
learning rate decays (the DeePMD-kit convention):

    p(t) = p_limit * (1 - lr/lr0) + p_start * (lr/lr0).

Adam follows the paper's Table 1 protocol: base lr 1e-3 with exponential
(staircase) decay x0.95 every 5000 optimizer steps, and -- for batch sizes
above one -- the "default setting" readjustment of multiplying the learning
rate by sqrt(batch size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, grad, ops
from ..model.environment import DescriptorBatch
from ..model.network import DeePMD


@dataclass
class LossConfig:
    """Energy/force prefactor schedule (DeePMD defaults)."""

    pe_start: float = 0.02
    pe_limit: float = 1.0
    pf_start: float = 1000.0
    pf_limit: float = 1.0

    def prefactors(self, lr_fraction: float) -> tuple[float, float]:
        """(p_e, p_f) at the given lr/lr0 fraction."""
        f = float(np.clip(lr_fraction, 0.0, 1.0))
        pe = self.pe_limit * (1.0 - f) + self.pe_start * f
        pf = self.pf_limit * (1.0 - f) + self.pf_start * f
        return pe, pf


@dataclass
class ExponentialDecay:
    """Staircase exponential decay: lr(t) = lr0 * rate^(t // steps)."""

    lr0: float = 1e-3
    rate: float = 0.95
    steps: int = 5000

    def lr(self, step: int) -> float:
        return self.lr0 * self.rate ** (step // self.steps)


class FirstOrderOptimizer:
    """Base: computes the DeePMD loss gradient and delegates the update.

    Subclasses implement ``_apply(name, grad_array, lr)``.
    """

    def __init__(
        self,
        model: DeePMD,
        schedule: ExponentialDecay | None = None,
        loss_cfg: LossConfig | None = None,
        batch_scale_lr: bool = True,
        fused_env: bool = False,
    ):
        self.model = model
        self.schedule = schedule or ExponentialDecay()
        self.loss_cfg = loss_cfg or LossConfig()
        self.batch_scale_lr = batch_scale_lr
        self.fused_env = fused_env
        self.step_count = 0

    # ------------------------------------------------------------------
    def loss_and_grads(
        self, batch: DescriptorBatch
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        """DeePMD loss and its parameter gradients for one batch."""
        model = self.model
        p = model.param_tensors()
        names = model.params.names()
        coords = Tensor(batch.coords, requires_grad=True)
        e = model.energy_graph(coords, batch, p=p, fused_env=self.fused_env)
        (gc,) = grad(ops.tsum(e), [coords], create_graph=True)
        n = batch.n_atoms
        de = ops.mul(ops.sub(e, Tensor(batch.energies)), 1.0 / n)
        df = ops.sub(ops.neg(gc), Tensor(batch.forces))
        lr_frac = self.schedule.lr(self.step_count) / self.schedule.lr0
        pe, pf = self.loss_cfg.prefactors(lr_frac)
        loss = ops.add(
            ops.mul(ops.tmean(ops.mul(de, de)), pe),
            ops.mul(ops.tmean(ops.mul(df, df)), pf),
        )
        grads = grad(loss, [p[name] for name in names])
        stats = {
            "loss": loss.item(),
            "energy_rmse": float(np.sqrt(np.mean(de.data**2))),
            "force_rmse": float(np.sqrt(np.mean(df.data**2))),
            "pe": pe,
            "pf": pf,
        }
        return loss.item(), {n_: g.data for n_, g in zip(names, grads)}, stats

    # ------------------------------------------------------------------
    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        """One optimizer step on a minibatch; returns step statistics."""
        _, grads, stats = self.loss_and_grads(batch)
        lr = self.schedule.lr(self.step_count)
        if self.batch_scale_lr and batch.batch_size > 1:
            lr *= np.sqrt(batch.batch_size)
        for name, g in grads.items():
            self._apply(name, g, lr)
        self.step_count += 1
        stats["lr"] = lr
        return stats

    def _apply(self, name: str, g: np.ndarray, lr: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # optimizer protocol: state + hyperparameters
    # ------------------------------------------------------------------
    @property
    def hyperparams(self) -> dict:
        """Readable hyperparameter summary (the ``Optimizer`` protocol)."""
        return {
            "name": getattr(self, "name", type(self).__name__),
            "lr0": self.schedule.lr0,
            "decay_rate": self.schedule.rate,
            "decay_steps": self.schedule.steps,
            "pe_start": self.loss_cfg.pe_start,
            "pe_limit": self.loss_cfg.pe_limit,
            "pf_start": self.loss_cfg.pf_start,
            "pf_limit": self.loss_cfg.pf_limit,
            "batch_scale_lr": self.batch_scale_lr,
            "fused_env": self.fused_env,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"step_count": np.array(self.step_count)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "step_count" not in state:
            raise KeyError("state holds no optimizer state ('step_count' missing)")
        self.step_count = int(state["step_count"])


class SGD(FirstOrderOptimizer):
    """Plain stochastic gradient descent (optional momentum)."""

    name = "SGD"

    def __init__(self, model: DeePMD, momentum: float = 0.0, **kw):
        super().__init__(model, **kw)
        self.momentum = float(momentum)
        self._velocity: dict[str, np.ndarray] = {}

    def _apply(self, name: str, g: np.ndarray, lr: float) -> None:
        if self.momentum > 0.0:
            v = self._velocity.get(name)
            v = self.momentum * v + g if v is not None else g.copy()
            self._velocity[name] = v
            g = v
        self.model.params[name] = self.model.params[name] - lr * g

    @property
    def hyperparams(self) -> dict:
        return {**super().hyperparams, "momentum": self.momentum}

    def state_dict(self) -> dict[str, np.ndarray]:
        out = super().state_dict()
        for name, v in self._velocity.items():
            out[f"sgd/velocity/{name}"] = v.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        prefix = "sgd/velocity/"
        self._velocity = {
            k[len(prefix):]: np.array(state[k]) for k in state if k.startswith(prefix)
        }


class Adam(FirstOrderOptimizer):
    """Adam (Kingma & Ba) -- the stock DeePMD optimizer (paper baseline)."""

    name = "Adam"

    def __init__(
        self,
        model: DeePMD,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        **kw,
    ):
        super().__init__(model, **kw)
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step_batch(self, batch: DescriptorBatch) -> dict[str, float]:
        self._t += 1
        return super().step_batch(batch)

    @property
    def hyperparams(self) -> dict:
        return {
            **super().hyperparams,
            "beta1": self.beta1,
            "beta2": self.beta2,
            "eps": self.eps,
        }

    def state_dict(self) -> dict[str, np.ndarray]:
        out = super().state_dict()
        out["adam/t"] = np.array(self._t)
        for name, m in self._m.items():
            out[f"adam/m/{name}"] = m.copy()
        for name, v in self._v.items():
            out[f"adam/v/{name}"] = v.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._t = int(state.get("adam/t", 0))
        self._m = {
            k[len("adam/m/"):]: np.array(state[k])
            for k in state
            if k.startswith("adam/m/")
        }
        self._v = {
            k[len("adam/v/"):]: np.array(state[k])
            for k in state
            if k.startswith("adam/v/")
        }

    def _apply(self, name: str, g: np.ndarray, lr: float) -> None:
        m = self._m.get(name)
        v = self._v.get(name)
        m = self.beta1 * m + (1 - self.beta1) * g if m is not None else (1 - self.beta1) * g
        v = self.beta2 * v + (1 - self.beta2) * g * g if v is not None else (1 - self.beta2) * g * g
        self._m[name], self._v[name] = m, v
        mhat = m / (1 - self.beta1**self._t)
        vhat = v / (1 - self.beta2**self._t)
        self.model.params[name] = self.model.params[name] - lr * mhat / (
            np.sqrt(vhat) + self.eps
        )
