"""Memory-footprint accounting (the Sec. 5.3 "Memory reduction" analysis).

Reproduces the paper's arithmetic for the full-size network:

* P block shapes from the gather-and-split strategy at blocksize 10240;
* the resident footprint of P (paper: 1755 MB at their parameter count);
* the peak under the framework-style ("naive") P update, which
  materializes an extra N_b x N_b outer product + subtraction temporary
  for the largest block (paper: ~3405 MB theoretical, 3380 MB measured);
* the peak under the fused kernel, which streams the rank-1 downdate and
  keeps only one transient (paper: 1805 MB, i.e. P + weights + small
  intermediates, bounded by 2x the largest block).

``measured_update_peak`` backs the theory with a tracemalloc measurement
of the two kernels on a real (optionally scaled) block set.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass

import numpy as np

from ..optim.blocks import Block, split_blocks
from ..optim.kalman import KalmanConfig, KalmanState
from ..telemetry import metrics as _metrics
from ..telemetry.trace import span as _span

MB = 1024 * 1024


def process_rss_bytes() -> int:
    """Resident set size of this process, in bytes.

    Reads ``VmRSS`` from ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` -- whose ``ru_maxrss`` is the *peak*, not the
    current residency -- on platforms without procfs.  Used by the
    out-of-core streaming benchmark to certify that sweeping a
    larger-than-RAM-bound corpus keeps residency flat.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


@dataclass
class MemoryReport:
    """Footprint breakdown for one network/blocksize configuration."""

    num_params: int
    blocksize: int
    block_shapes: list[int]
    p_resident_mb: float
    weights_mb: float
    naive_peak_mb: float
    fused_peak_mb: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("P resident", self.p_resident_mb),
            ("weights + gradients", self.weights_mb),
            ("peak, framework P update", self.naive_peak_mb),
            ("peak, fused P update", self.fused_peak_mb),
        ]


def footprint_report(
    layer_sizes: list[tuple[int, int]], blocksize: int = 10240, dtype_size: int = 8
) -> MemoryReport:
    """Analytic footprint for a network given its layer sizes."""
    blocks = split_blocks(layer_sizes, blocksize)
    shapes = [b.size for b in blocks]
    num_params = sum(shapes)
    p_resident = sum(s * s for s in shapes) * dtype_size / MB
    weights = 2 * num_params * dtype_size / MB  # weights + one flat gradient
    largest = max(shapes)
    # naive: P + (K K^T outer) + (P - ...) subtraction result live together
    naive_extra = 2 * largest * largest * dtype_size / MB
    # fused: the triangular rank-1 downdate runs in place; only O(N_b)
    # vectors (P g, K) are transient (confirmed by measured_update_peak)
    fused_extra = 4 * largest * dtype_size / MB
    return MemoryReport(
        num_params=num_params,
        blocksize=blocksize,
        block_shapes=shapes,
        p_resident_mb=p_resident,
        weights_mb=weights,
        naive_peak_mb=p_resident + weights + naive_extra,
        fused_peak_mb=p_resident + weights + fused_extra,
    )


def paper_layer_sizes() -> list[tuple[int, int]]:
    """Layer sizes of the paper's network (embedding [25,25,25], M<=16,
    fitting [400,50,50,50,1]); total parameter count ~26.5k."""
    emb = [(0, 1 * 25 + 25), (1, 25 * 25 + 25), (2, 25 * 25 + 25)]
    fit = [(3, 400 * 50 + 50), (4, 50 * 50 + 50), (5, 50 * 50 + 50), (6, 50 + 1)]
    return emb + fit


def measured_update_peak(
    layer_sizes: list[tuple[int, int]], blocksize: int, fused: bool, n_updates: int = 3
) -> float:
    """tracemalloc peak (MB) of running Kalman updates with either kernel.

    Only allocations made *during* the updates are counted (the resident P
    is allocated before tracing starts), matching how the paper separates
    resident footprint from update transients.
    """
    cfg = KalmanConfig(blocksize=blocksize, fused_update=fused)
    num = sum(s for _, s in layer_sizes)
    state = KalmanState(num, layer_sizes, cfg)
    rng = np.random.default_rng(0)
    g = rng.normal(size=num) * 0.1
    state.update(g, 0.1, 1.0)  # warm any lazy allocations
    with _span("perf.memory_peak", fused=fused, blocksize=blocksize):
        tracemalloc.start()
        for _ in range(n_updates):
            state.update(rng.normal(size=num) * 0.1, 0.1, 1.0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    peak_mb = peak / MB
    _metrics.REGISTRY.gauge("perf.update_peak_mb", fused=fused).set(peak_mb)
    return peak_mb
