"""repro.perf -- optimization presets, memory accounting, phase profiling."""

from .memory import MB, MemoryReport, footprint_report, measured_update_peak, paper_layer_sizes, process_rss_bytes
from .presets import BASELINE, OPT1, OPT2, OPT3, PRESET_ORDER, PRESETS, Preset
from .timer import PhaseProfile, UpdateProfile, profile_from_events, profile_update

__all__ = [
    "Preset",
    "PRESETS",
    "PRESET_ORDER",
    "BASELINE",
    "OPT1",
    "OPT2",
    "OPT3",
    "MemoryReport",
    "footprint_report",
    "measured_update_peak",
    "paper_layer_sizes",
    "process_rss_bytes",
    "MB",
    "PhaseProfile",
    "UpdateProfile",
    "profile_update",
    "profile_from_events",
]
