"""The step-by-step optimization presets of Figure 7.

===========  ======================================================
preset       enables
===========  ======================================================
baseline     eager primitives everywhere, framework-style P update
opt1         + hand-derived descriptor/environment kernel
             (``fused_env``, the paper's "substitute Autograd with
             handwritten kernels")
opt2         + fused elementwise layer kernels (the ``torch.compile``
             analog)
opt3         + fused P-update kernel with cached P g reuse
===========  ======================================================

``apply(preset)`` yields a context in which model calls pick up the layer
fusion automatically; the boolean fields parameterize model/optimizer
construction.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from ..autograd import fused_kernels
from ..optim.kalman import KalmanConfig


@dataclass(frozen=True)
class Preset:
    """One optimization level."""

    name: str
    fused_env: bool
    fused_layers: bool
    fused_p_update: bool

    @contextlib.contextmanager
    def context(self):
        """Activate the layer-fusion flag for the duration."""
        with fused_kernels(self.fused_layers):
            yield

    def kalman_config(self, **overrides) -> KalmanConfig:
        cfg = KalmanConfig(fused_update=self.fused_p_update)
        for k, v in overrides.items():
            setattr(cfg, k, v)
        return cfg


BASELINE = Preset("baseline", fused_env=False, fused_layers=False, fused_p_update=False)
OPT1 = Preset("opt1", fused_env=True, fused_layers=False, fused_p_update=False)
OPT2 = Preset("opt2", fused_env=True, fused_layers=True, fused_p_update=False)
OPT3 = Preset("opt3", fused_env=True, fused_layers=True, fused_p_update=True)

PRESETS: dict[str, Preset] = {p.name: p for p in (BASELINE, OPT1, OPT2, OPT3)}
PRESET_ORDER = ["baseline", "opt1", "opt2", "opt3"]
