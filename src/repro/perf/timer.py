"""Figure 7 phase profiles, derived from the telemetry event stream.

``profile_update`` used to re-implement the Figure 7(c) dissection with
its own ``perf_counter`` pairs and ``KernelCounter`` blocks.  The hot
paths are now instrumented end-to-end with :mod:`repro.telemetry` spans
(``fekf.update`` wrapping ``fekf.forward`` / ``fekf.gradient`` /
``fekf.kalman``), so the profiler simply runs one real optimizer step
under a kernel-capturing tracer and *queries the events*:

1. forward pass (predictions and errors),
2. gradient acquisition (the backward pass(es)),
3. the Kalman-filter calculation flow,

per update flavour (energy-driven vs force-driven), with kernel launches
per phase for Figure 7(b).  The step runs with ``reuse_force_graph``
disabled -- the paper-exact protocol where every force update performs
its own fresh forward -- so one ``step_batch`` yields one energy update
and ``n_force_splits`` identical force updates; the first of each
flavour becomes the reported profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..optim.ekf import FEKF
from ..telemetry.trace import SpanEvent, Tracer
from .presets import Preset


@dataclass
class PhaseProfile:
    """Per-phase seconds and kernel launches for one update flavour."""

    forward_s: float
    gradient_s: float
    kalman_s: float
    forward_kernels: int
    gradient_kernels: int
    kalman_kernels: int

    @property
    def total_s(self) -> float:
        return self.forward_s + self.gradient_s + self.kalman_s

    @property
    def total_kernels(self) -> int:
        return self.forward_kernels + self.gradient_kernels + self.kalman_kernels


@dataclass
class UpdateProfile:
    """Energy-update and force-update profiles for one preset."""

    preset: str
    energy: PhaseProfile
    force: PhaseProfile
    #: live per-phase launch counts from the op-level profiler
    #: (:meth:`repro.telemetry.Profiler.phase_kernel_counts`) over the
    #: whole profiled step; empty when the step ran without a profiler.
    #: Reconciles with the span-derived counts above: ``forward_energy``
    #: equals ``energy.forward_kernels`` and the step total equals
    #: :meth:`total_iteration_kernels` (see the telemetry tests).
    phase_kernels: dict = field(default_factory=dict)

    def total_iteration_kernels(self, n_force_splits: int = 4) -> int:
        """Paper convention: one energy update + four force updates."""
        return self.energy.total_kernels + n_force_splits * self.force.total_kernels

    def total_iteration_s(self, n_force_splits: int = 4) -> float:
        return self.energy.total_s + n_force_splits * self.force.total_s


#: phase span name -> PhaseProfile field prefix
_PHASES = {"fekf.forward": "forward", "fekf.gradient": "gradient", "fekf.kalman": "kalman"}


def _phase_profile(events: list[SpanEvent], update: SpanEvent) -> PhaseProfile:
    """Fold the child phase spans of one ``fekf.update`` into a profile."""
    acc = {
        "forward_s": 0.0, "gradient_s": 0.0, "kalman_s": 0.0,
        "forward_kernels": 0, "gradient_kernels": 0, "kalman_kernels": 0,
    }
    for ev in events:
        if ev.parent_id != update.span_id:
            continue
        phase = _PHASES.get(ev.name)
        if phase is None:
            continue
        acc[f"{phase}_s"] += ev.wall_s
        acc[f"{phase}_kernels"] += int(ev.counters.get("kernels", 0))
    return PhaseProfile(**acc)


def profile_from_events(
    events: Iterable[SpanEvent], preset: str = ""
) -> UpdateProfile:
    """Build an :class:`UpdateProfile` from a traced FEKF step's events.

    This is the Figure 7 query: take the first energy-driven and the
    first force-driven ``fekf.update`` span, and attribute their child
    ``fekf.forward`` / ``fekf.gradient`` / ``fekf.kalman`` spans'
    wall seconds and captured kernel counts to the three phases.
    """
    events = list(events)
    energy = force = None
    for ev in events:
        if ev.name != "fekf.update":
            continue
        kind = ev.attrs.get("kind")
        if kind == "energy" and energy is None:
            energy = ev
        elif kind == "force" and force is None:
            force = ev
    if energy is None or force is None:
        raise ValueError(
            "event stream holds no complete FEKF step (expected 'fekf.update' "
            "spans of kind 'energy' and 'force'; was the step traced?)"
        )
    return UpdateProfile(
        preset=preset,
        energy=_phase_profile(events, energy),
        force=_phase_profile(events, force),
    )


def profile_update(
    model: DeePMD, opt: FEKF, batch: DescriptorBatch, preset: Preset
) -> UpdateProfile:
    """Measure one energy-driven and one force-driven FEKF update under
    the given optimization preset.

    Runs a real ``opt.step_batch`` (paper-exact per-update protocol:
    force-graph reuse disabled for the duration) inside a
    kernel-capturing, op-profiling tracer and derives the profile from
    the span events via :func:`profile_from_events`; the op timeline's
    live per-phase launch counts ride along as ``phase_kernels``.
    """
    old_reuse = opt.reuse_force_graph
    opt.reuse_force_graph = False
    try:
        with preset.context():
            with Tracer(capture_kernels=True, profile=True) as tracer:
                opt.step_batch(batch)
    finally:
        opt.reuse_force_graph = old_reuse
    profile = profile_from_events(tracer.events, preset=preset.name)
    profile.phase_kernels = tracer.profiler.phase_kernel_counts()
    return profile
