"""Iteration-phase timing and kernel counting for the Figure 7 experiments.

``profile_update`` dissects one EKF update the way Figure 7(c) does:

1. forward pass (predictions and errors),
2. gradient acquisition (the backward pass(es)),
3. the Kalman-filter calculation flow,

and simultaneously counts kernel launches per phase for Figure 7(b),
separately for the energy-driven and force-driven updates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..autograd import KernelCounter, Tensor, grad, ops
from ..model.environment import DescriptorBatch
from ..model.network import DeePMD
from ..optim.ekf import FEKF, _signs
from .presets import Preset


@dataclass
class PhaseProfile:
    """Per-phase seconds and kernel launches for one update flavour."""

    forward_s: float
    gradient_s: float
    kalman_s: float
    forward_kernels: int
    gradient_kernels: int
    kalman_kernels: int

    @property
    def total_s(self) -> float:
        return self.forward_s + self.gradient_s + self.kalman_s

    @property
    def total_kernels(self) -> int:
        return self.forward_kernels + self.gradient_kernels + self.kalman_kernels


@dataclass
class UpdateProfile:
    """Energy-update and force-update profiles for one preset."""

    preset: str
    energy: PhaseProfile
    force: PhaseProfile

    def total_iteration_kernels(self, n_force_splits: int = 4) -> int:
        """Paper convention: one energy update + four force updates."""
        return self.energy.total_kernels + n_force_splits * self.force.total_kernels

    def total_iteration_s(self, n_force_splits: int = 4) -> float:
        return self.energy.total_s + n_force_splits * self.force.total_s


def profile_update(
    model: DeePMD, opt: FEKF, batch: DescriptorBatch, preset: Preset
) -> UpdateProfile:
    """Measure one energy-driven and one force-driven FEKF update under
    the given optimization preset."""
    n = batch.n_atoms
    bs = batch.batch_size
    with preset.context():
        # ---------------- energy update ------------------------------
        with KernelCounter() as kc_f:
            t0 = time.perf_counter()
            p = model.param_tensors()
            e = model.energy_graph(
                Tensor(batch.coords), batch, p=p, fused_env=preset.fused_env
            )
            err = (batch.energies - e.data) / n
            abe = float(np.mean(np.abs(err)))
            t_forward = time.perf_counter() - t0
        with KernelCounter() as kc_g:
            t0 = time.perf_counter()
            weights = _signs(err) / (n * bs)
            scalar = ops.tsum(ops.mul(e, Tensor(weights)))
            gs = grad(scalar, [p[nm] for nm in model.params.names()])
            g_flat = model.params.flatten_grads(
                {nm: g.data for nm, g in zip(model.params.names(), gs)}
            )
            t_grad = time.perf_counter() - t0
        with KernelCounter() as kc_k:
            t0 = time.perf_counter()
            opt.kalman.update(g_flat, abe, float(np.sqrt(bs)))
            t_kalman = time.perf_counter() - t0
        energy_profile = PhaseProfile(
            t_forward, t_grad, t_kalman,
            kc_f.total_launches, kc_g.total_launches, kc_k.total_launches,
        )

        # ---------------- force update -------------------------------
        group = np.arange(n)[: max(n // opt.n_force_splits, 1)]
        with KernelCounter() as kc_f:
            t0 = time.perf_counter()
            p = model.param_tensors()
            coords = Tensor(batch.coords, requires_grad=True)
            e = model.energy_graph(coords, batch, p=p, fused_env=preset.fused_env)
            (gc,) = grad(ops.tsum(e), [coords], create_graph=True)
            f_pred = ops.neg(gc)
            sel = (slice(None), group, slice(None))
            f_group = f_pred[sel]
            err = batch.forces[sel] - f_group.data
            abe = float(np.mean(np.abs(err)))
            t_forward = time.perf_counter() - t0
        with KernelCounter() as kc_g:
            t0 = time.perf_counter()
            weights = _signs(err) / err.size
            scalar = ops.tsum(ops.mul(f_group, Tensor(weights)))
            gs = grad(scalar, [p[nm] for nm in model.params.names()])
            g_flat = model.params.flatten_grads(
                {nm: g.data for nm, g in zip(model.params.names(), gs)}
            )
            t_grad = time.perf_counter() - t0
        with KernelCounter() as kc_k:
            t0 = time.perf_counter()
            opt.kalman.update(g_flat, abe, float(np.sqrt(bs)))
            t_kalman = time.perf_counter() - t0
        force_profile = PhaseProfile(
            t_forward, t_grad, t_kalman,
            kc_f.total_launches, kc_g.total_launches, kc_k.total_launches,
        )

    return UpdateProfile(preset=preset.name, energy=energy_profile, force=force_profile)
