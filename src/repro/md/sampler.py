"""Trajectory sampling: turn MD runs into labeled snapshot datasets.

Mirrors the paper's data-generation protocol (Sec. 4, Table 3): for each
system, run thermostatted MD at every listed temperature with a small time
step, discard an equilibration prefix, and keep every ``stride``-th frame.
Labels (total energy, per-atom forces) come from the classical potential --
our stand-in for the ab-initio calculator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .cell import Cell
from .integrator import LangevinIntegrator
from .potentials import Potential


@dataclass
class Frame:
    """A labeled configuration: positions + energy + forces (+ metadata)."""

    positions: np.ndarray
    energy: float
    forces: np.ndarray
    temperature: float


@dataclass
class Trajectory:
    """All frames sampled for one system, plus the static description."""

    cell: Cell
    species: np.ndarray
    frames: list[Frame] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.frames)

    def positions_array(self) -> np.ndarray:
        return np.stack([f.positions for f in self.frames])

    def energies_array(self) -> np.ndarray:
        return np.array([f.energy for f in self.frames])

    def forces_array(self) -> np.ndarray:
        return np.stack([f.forces for f in self.frames])


def sample_trajectory(
    potential: Potential,
    positions: np.ndarray,
    cell: Cell,
    species: np.ndarray,
    masses: np.ndarray,
    temperatures: Sequence[float],
    n_frames_per_temperature: int,
    timestep: float = 2.0,
    stride: int = 5,
    equilibration_steps: int = 50,
    friction: float = 0.02,
    seed: int = 0,
) -> Trajectory:
    """Generate a labeled trajectory across the given temperature ladder.

    Each temperature contributes ``n_frames_per_temperature`` frames taken
    every ``stride`` MD steps after ``equilibration_steps`` of thermalizing;
    the final configuration of one temperature seeds the next, mimicking
    the mixed-temperature sampling described in the paper.
    """
    rng = np.random.default_rng(seed)
    traj = Trajectory(cell=cell, species=np.asarray(species, dtype=np.int64))
    current = np.array(positions, dtype=np.float64)
    for temp in temperatures:
        integ = LangevinIntegrator(
            potential,
            masses,
            cell,
            timestep=timestep,
            temperature=float(temp),
            friction=friction,
            rng=rng,
        )
        state = integ.initialize(current, temp=float(temp))
        state = integ.run(state, equilibration_steps)
        for _ in range(n_frames_per_temperature):
            state = integ.run(state, stride)
            traj.frames.append(
                Frame(
                    positions=np.array(state.positions),
                    energy=float(state.potential_energy),
                    forces=np.array(state.forces),
                    temperature=float(temp),
                )
            )
        current = state.positions
    return traj
