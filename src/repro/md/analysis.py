"""Trajectory analysis: RDF, mean-squared displacement, drift checks.

Used by the NNMD validation path: after training a surrogate in minutes,
the practical question is whether MD driven by it samples the same
structure as the reference potential.  The radial distribution function
and mean-squared displacement are the standard observables for that
comparison (the examples and tests compare NN-driven vs reference-driven
trajectories with them).
"""

from __future__ import annotations

import numpy as np

from .cell import Cell


def radial_distribution(
    frames: np.ndarray,
    cell: Cell,
    r_max: float | None = None,
    n_bins: int = 60,
) -> tuple[np.ndarray, np.ndarray]:
    """g(r) averaged over ``frames`` (F, N, 3).

    Returns (bin centers, g) normalized so that an ideal gas gives
    g(r) = 1.  ``r_max`` defaults to the minimum-image radius.
    """
    frames = np.asarray(frames)
    if frames.ndim == 2:
        frames = frames[None]
    f, n, _ = frames.shape
    if r_max is None:
        r_max = cell.max_cutoff()
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts = np.zeros(n_bins)
    for t in range(f):
        dr = frames[t][None, :, :] - frames[t][:, None, :]
        dr = cell.minimum_image(dr)
        r = np.sqrt(np.sum(dr * dr, axis=-1))
        iu = np.triu_indices(n, k=1)
        h, _ = np.histogram(r[iu], bins=edges)
        counts += h
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / cell.volume
    ideal = shell_vol * density * n / 2.0  # expected pair counts per frame
    g = counts / (f * ideal)
    return centers, g


def mean_squared_displacement(
    frames: np.ndarray, cell: Cell | None = None
) -> np.ndarray:
    """MSD(t) relative to the first frame, averaged over atoms.

    If a cell is given, displacements between *consecutive* frames are
    minimum-imaged and accumulated (unwrapping), so wrapped trajectories
    produce the physical MSD.
    """
    frames = np.asarray(frames)
    f = frames.shape[0]
    if cell is not None:
        unwrapped = np.empty_like(frames)
        unwrapped[0] = frames[0]
        for t in range(1, f):
            step = cell.minimum_image(frames[t] - frames[t - 1])
            unwrapped[t] = unwrapped[t - 1] + step
        frames = unwrapped
    disp = frames - frames[0]
    return np.mean(np.sum(disp * disp, axis=-1), axis=-1)


def rdf_similarity(g1: np.ndarray, g2: np.ndarray) -> float:
    """A [0, 1] overlap score between two RDFs (1 = identical structure):
    1 - |g1-g2|_1 / (|g1|_1 + |g2|_1)."""
    g1, g2 = np.asarray(g1), np.asarray(g2)
    denom = np.abs(g1).sum() + np.abs(g2).sum()
    if denom == 0:
        return 1.0
    return float(1.0 - np.abs(g1 - g2).sum() / denom)
