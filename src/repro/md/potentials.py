"""Classical interatomic potentials with analytic forces.

These play the role of the paper's ab-initio (PWmat DFT) labeler: they
produce smooth, mutually consistent energy/force labels for the eight bulk
systems of Table 3.  Every potential implements::

    energy_forces(positions, cell) -> (energy: float, forces: (N, 3))

and the test suite verifies forces against central differences of the
energy for each one.

Provided potentials:

* :class:`LennardJones`, :class:`Morse` -- metals (Cu, Al, Mg analogs);
* :class:`Buckingham` + :class:`WolfCoulomb` -- ionic oxides and halides
  (NaCl, CuO, HfO2 analogs);
* :class:`StillingerWeber` -- covalent Si with an explicit 3-body term;
* :class:`FlexibleWater` -- intramolecular harmonic bonds/angles plus
  O-O Lennard-Jones and Wolf-summed Coulomb between molecules;
* :class:`Composite` -- sums any of the above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.special import erfc

from .cell import Cell
from .neighbor import PairList, pair_list

TypePair = tuple[int, int]


def _canon(t1: int, t2: int) -> TypePair:
    return (t1, t2) if t1 <= t2 else (t2, t1)


class Potential:
    """Base class: accumulate pairwise/many-body energies and forces."""

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        raise NotImplementedError

    def energy(self, positions: np.ndarray, cell: Cell) -> float:
        return self.energy_forces(positions, cell)[0]

    def forces(self, positions: np.ndarray, cell: Cell) -> np.ndarray:
        return self.energy_forces(positions, cell)[1]


# ---------------------------------------------------------------------------
# generic pair potential machinery
# ---------------------------------------------------------------------------
class PairPotential(Potential):
    """Shared machinery for potentials of the form sum_{i<j} phi_{titj}(r).

    Subclasses provide per-type-pair ``(phi, dphi)`` callables via
    ``_phi_dphi``.  Energies are shifted so phi(rcut) = 0 (continuous
    energy across the cutoff; forces keep their analytic form).
    """

    def __init__(self, species: np.ndarray, rcut: float):
        self.species = np.asarray(species, dtype=np.int64)
        self.rcut = float(rcut)

    def _phi_dphi(self, pair: TypePair, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        n = positions.shape[0]
        pl = pair_list(positions, cell, self.rcut)
        forces = np.zeros((n, 3))
        energy = 0.0
        if len(pl) == 0:
            return energy, forces
        t1 = self.species[pl.i]
        t2 = self.species[pl.j]
        lo = np.minimum(t1, t2)
        hi = np.maximum(t1, t2)
        for pair in {(int(a), int(b)) for a, b in zip(lo, hi)}:
            sel = (lo == pair[0]) & (hi == pair[1])
            r = pl.r[sel]
            phi, dphi = self._phi_dphi(pair, r)
            phi_cut, _ = self._phi_dphi(pair, np.array([self.rcut]))
            energy += float(np.sum(phi - phi_cut[0]))
            # force on j along +rij is -dphi * unit(rij)
            fvec = (-dphi / r)[:, None] * pl.rij[sel]
            np.add.at(forces, pl.j[sel], fvec)
            np.add.at(forces, pl.i[sel], -fvec)
        return energy, forces


class LennardJones(PairPotential):
    """12-6 Lennard-Jones with per-type-pair (epsilon, sigma)."""

    def __init__(
        self,
        species: np.ndarray,
        params: Mapping[TypePair, tuple[float, float]],
        rcut: float,
    ):
        super().__init__(species, rcut)
        self.params = {_canon(*k): tuple(map(float, v)) for k, v in params.items()}

    def _phi_dphi(self, pair, r):
        eps, sigma = self.params[pair]
        sr6 = (sigma / r) ** 6
        sr12 = sr6 * sr6
        phi = 4.0 * eps * (sr12 - sr6)
        dphi = 4.0 * eps * (-12.0 * sr12 + 6.0 * sr6) / r
        return phi, dphi


class Morse(PairPotential):
    """Morse potential D(1 - exp(-a(r - r0)))^2 - D per type pair."""

    def __init__(
        self,
        species: np.ndarray,
        params: Mapping[TypePair, tuple[float, float, float]],
        rcut: float,
    ):
        super().__init__(species, rcut)
        self.params = {_canon(*k): tuple(map(float, v)) for k, v in params.items()}

    def _phi_dphi(self, pair, r):
        d, a, r0 = self.params[pair]
        e = np.exp(-a * (r - r0))
        phi = d * (1.0 - e) ** 2 - d
        dphi = 2.0 * d * a * e * (1.0 - e)
        return phi, dphi


class Buckingham(PairPotential):
    """Buckingham A exp(-r/rho) - C/r^6 per type pair (ionic short range)."""

    def __init__(
        self,
        species: np.ndarray,
        params: Mapping[TypePair, tuple[float, float, float]],
        rcut: float,
    ):
        super().__init__(species, rcut)
        self.params = {_canon(*k): tuple(map(float, v)) for k, v in params.items()}

    def _phi_dphi(self, pair, r):
        a, rho, c = self.params[pair]
        e = a * np.exp(-r / rho)
        phi = e - c / r**6
        dphi = -e / rho + 6.0 * c / r**7
        return phi, dphi


#: Coulomb constant in eV * Angstrom / e^2.
COULOMB_K = 14.399645351950543


class WolfCoulomb(Potential):
    """Wolf-summed damped-shifted Coulomb interaction.

    E = k q_i q_j [erfc(alpha r)/r - erfc(alpha Rc)/Rc] for r < Rc.
    A practical PME substitute for small periodic ionic systems; energies
    are continuous at the cutoff and forces are analytic.
    """

    def __init__(
        self,
        charges: np.ndarray,
        alpha: float = 0.25,
        rcut: float = 8.0,
        exclude: set[TypePair] | None = None,
    ):
        self.charges = np.asarray(charges, dtype=np.float64)
        self.alpha = float(alpha)
        self.rcut = float(rcut)
        #: pairs of *atom indices* (i < j) excluded (e.g. intramolecular)
        self.exclude = exclude or set()

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        n = positions.shape[0]
        pl = pair_list(positions, cell, self.rcut)
        forces = np.zeros((n, 3))
        if len(pl) == 0:
            return 0.0, forces
        if self.exclude:
            keep = np.array(
                [(int(a), int(b)) not in self.exclude for a, b in zip(pl.i, pl.j)]
            )
            pl = PairList(pl.i[keep], pl.j[keep], pl.rij[keep], pl.r[keep])
        qq = COULOMB_K * self.charges[pl.i] * self.charges[pl.j]
        a, r, rc = self.alpha, pl.r, self.rcut
        shift = erfc(a * rc) / rc
        phi = qq * (erfc(a * r) / r - shift)
        dphi = -qq * (
            erfc(a * r) / r**2 + 2.0 * a / np.sqrt(np.pi) * np.exp(-(a * r) ** 2) / r
        )
        fvec = (-dphi / r)[:, None] * pl.rij
        np.add.at(forces, pl.j, fvec)
        np.add.at(forces, pl.i, -fvec)
        return float(np.sum(phi)), forces


# ---------------------------------------------------------------------------
# Stillinger-Weber (covalent Si)
# ---------------------------------------------------------------------------
@dataclass
class SWParams:
    """Stillinger-Weber parameters; defaults are the original Si set."""

    epsilon: float = 2.1683
    sigma: float = 2.0951
    a: float = 1.80
    lam: float = 21.0
    gamma: float = 1.20
    cos_theta0: float = -1.0 / 3.0
    A: float = 7.049556277
    B: float = 0.6022245584
    p: float = 4.0
    q: float = 0.0

    @property
    def rcut(self) -> float:
        return self.a * self.sigma


class StillingerWeber(Potential):
    """Stillinger-Weber: 2-body bond + 3-body angular term.

    The 3-body force derivation (forces on the two neighbors j, k and the
    reaction on the center i) is checked numerically in the tests.
    """

    def __init__(self, params: SWParams | None = None):
        self.p = params or SWParams()

    # -- two-body ----------------------------------------------------------
    def _two_body(self, pl: PairList, forces: np.ndarray) -> float:
        p = self.p
        rc = p.rcut
        mask = pl.r < rc
        r = pl.r[mask]
        if r.size == 0:
            return 0.0
        sr = p.sigma / r
        expo = np.exp(p.sigma / (r - rc))
        poly = p.B * sr**p.p - sr**p.q
        phi = p.A * p.epsilon * poly * expo
        dpoly = (-p.p * p.B * sr**p.p + p.q * sr**p.q) / r
        dexpo = -p.sigma / (r - rc) ** 2 * expo
        dphi = p.A * p.epsilon * (dpoly * expo + poly * dexpo)
        fvec = (-dphi / r)[:, None] * pl.rij[mask]
        np.add.at(forces, pl.j[mask], fvec)
        np.add.at(forces, pl.i[mask], -fvec)
        return float(np.sum(phi))

    # -- three-body ---------------------------------------------------------
    def _triplets(self, pl: PairList, n: int):
        """(center, u, v) arrays: for each atom, all neighbor pairs (j<k)
        with both bonds inside the 3-body cutoff."""
        src = np.concatenate([pl.i, pl.j])
        dst = np.concatenate([pl.j, pl.i])
        vec = np.concatenate([pl.rij, -pl.rij])
        r = np.concatenate([pl.r, pl.r])
        keep = r < self.p.rcut
        src, dst, vec, r = src[keep], dst[keep], vec[keep], r[keep]
        order = np.argsort(src, kind="stable")
        src, dst, vec, r = src[order], dst[order], vec[order], r[order]
        starts = np.searchsorted(src, np.arange(n + 1))
        centers, j_idx, k_idx, uvec, vvec, ru, rv = [], [], [], [], [], [], []
        for atom in range(n):
            lo, hi = starts[atom], starts[atom + 1]
            m = hi - lo
            if m < 2:
                continue
            jj, kk = np.triu_indices(m, k=1)
            centers.append(np.full(jj.size, atom))
            j_idx.append(dst[lo + jj])
            k_idx.append(dst[lo + kk])
            uvec.append(vec[lo + jj])
            vvec.append(vec[lo + kk])
            ru.append(r[lo + jj])
            rv.append(r[lo + kk])
        if not centers:
            z = np.zeros(0, dtype=np.int64)
            return z, z, z, np.zeros((0, 3)), np.zeros((0, 3)), np.zeros(0), np.zeros(0)
        return (
            np.concatenate(centers),
            np.concatenate(j_idx),
            np.concatenate(k_idx),
            np.concatenate(uvec),
            np.concatenate(vvec),
            np.concatenate(ru),
            np.concatenate(rv),
        )

    def _three_body(self, pl: PairList, n: int, forces: np.ndarray) -> float:
        p = self.p
        rc = p.rcut
        ci, ji, ki, u, v, ru, rv = self._triplets(pl, n)
        if ru.size == 0:
            return 0.0
        gs = p.gamma * p.sigma
        gu = np.exp(gs / (ru - rc))
        gv = np.exp(gs / (rv - rc))
        cos = np.sum(u * v, axis=1) / (ru * rv)
        dcos = cos - p.cos_theta0
        pref = p.lam * p.epsilon
        e = pref * dcos**2 * gu * gv

        # d/d(cos) and radial derivatives
        de_dcos = 2.0 * pref * dcos * gu * gv
        dgu = -gs / (ru - rc) ** 2 * gu
        dgv = -gs / (rv - rc) ** 2 * gv
        de_dru = pref * dcos**2 * dgu * gv
        de_drv = pref * dcos**2 * gu * dgv

        uhat = u / ru[:, None]
        vhat = v / rv[:, None]
        # dcos/du = v/(ru rv) - cos * uhat / ru  (and symmetrically for v)
        dcos_du = v / (ru * rv)[:, None] - (cos / ru)[:, None] * uhat
        dcos_dv = u / (ru * rv)[:, None] - (cos / rv)[:, None] * vhat

        de_du = de_dcos[:, None] * dcos_du + de_dru[:, None] * uhat
        de_dv = de_dcos[:, None] * dcos_dv + de_drv[:, None] * vhat

        np.add.at(forces, ji, -de_du)
        np.add.at(forces, ki, -de_dv)
        np.add.at(forces, ci, de_du + de_dv)
        return float(np.sum(e))

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        n = positions.shape[0]
        forces = np.zeros((n, 3))
        pl = pair_list(positions, cell, self.p.rcut)
        e2 = self._two_body(pl, forces)
        e3 = self._three_body(pl, n, forces)
        return e2 + e3, forces


# ---------------------------------------------------------------------------
# flexible water
# ---------------------------------------------------------------------------
class FlexibleWater(Potential):
    """Flexible SPC-like water: harmonic OH bonds, harmonic HOH angle
    (in cos(theta)), O-O Lennard-Jones and Wolf Coulomb between molecules."""

    def __init__(
        self,
        species: np.ndarray,
        molecules: np.ndarray,
        k_bond: float = 22.0,
        r0: float = 1.0,
        k_angle: float = 3.5,
        cos_theta0: float = np.cos(np.deg2rad(109.47)),
        lj_eps: float = 0.006736,
        lj_sigma: float = 3.166,
        q_o: float = -0.8476,
        rcut: float = 6.0,
    ):
        self.species = np.asarray(species, dtype=np.int64)
        self.molecules = np.asarray(molecules, dtype=np.int64)
        self.k_bond, self.r0 = float(k_bond), float(r0)
        self.k_angle, self.cos_theta0 = float(k_angle), float(cos_theta0)
        self.rcut = float(rcut)
        charges = np.where(self.species == 0, q_o, -q_o / 2.0)
        exclude: set[TypePair] = set()
        for o, h1, h2 in self.molecules:
            for a, b in ((o, h1), (o, h2), (h1, h2)):
                exclude.add(_canon(int(a), int(b)))
        self._coulomb = WolfCoulomb(charges, alpha=0.3, rcut=rcut, exclude=exclude)
        self._lj = LennardJones(
            self.species, {(0, 0): (lj_eps, lj_sigma)}, rcut=rcut
        )
        # silence LJ for pairs involving H by giving them zero epsilon
        self._lj.params[(0, 1)] = (0.0, 1.0)
        self._lj.params[(1, 1)] = (0.0, 1.0)

    def _intramolecular(self, positions: np.ndarray, cell: Cell, forces: np.ndarray) -> float:
        e = 0.0
        mol = self.molecules
        o, h1, h2 = mol[:, 0], mol[:, 1], mol[:, 2]
        for h in (h1, h2):
            d = cell.minimum_image(positions[h] - positions[o])
            r = np.linalg.norm(d, axis=1)
            e += float(np.sum(self.k_bond * (r - self.r0) ** 2))
            f = (-2.0 * self.k_bond * (r - self.r0) / r)[:, None] * d
            np.add.at(forces, h, f)
            np.add.at(forces, o, -f)
        u = cell.minimum_image(positions[h1] - positions[o])
        v = cell.minimum_image(positions[h2] - positions[o])
        ru = np.linalg.norm(u, axis=1)
        rv = np.linalg.norm(v, axis=1)
        cos = np.sum(u * v, axis=1) / (ru * rv)
        dc = cos - self.cos_theta0
        e += float(np.sum(self.k_angle * dc**2))
        de_dcos = 2.0 * self.k_angle * dc
        uhat = u / ru[:, None]
        vhat = v / rv[:, None]
        dcos_du = v / (ru * rv)[:, None] - (cos / ru)[:, None] * uhat
        dcos_dv = u / (ru * rv)[:, None] - (cos / rv)[:, None] * vhat
        np.add.at(forces, h1, -de_dcos[:, None] * dcos_du)
        np.add.at(forces, h2, -de_dcos[:, None] * dcos_dv)
        np.add.at(forces, o, de_dcos[:, None] * (dcos_du + dcos_dv))
        return e

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        n = positions.shape[0]
        forces = np.zeros((n, 3))
        e = self._intramolecular(positions, cell, forces)
        e_lj, f_lj = self._lj.energy_forces(positions, cell)
        e_c, f_c = self._coulomb.energy_forces(positions, cell)
        return e + e_lj + e_c, forces + f_lj + f_c


# ---------------------------------------------------------------------------
# composition
# ---------------------------------------------------------------------------
@dataclass
class Composite(Potential):
    """Sum of potentials (e.g. Buckingham + WolfCoulomb for ionic systems)."""

    parts: Sequence[Potential] = field(default_factory=list)

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        energy = 0.0
        forces = np.zeros_like(positions)
        for part in self.parts:
            e, f = part.energy_forces(positions, cell)
            energy += e
            forces += f
        return energy, forces
