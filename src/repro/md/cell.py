"""Periodic simulation cells (orthorhombic).

The paper's eight datasets are all bulk crystals in periodic boxes.  We
support orthorhombic cells, which covers every lattice we generate (fcc,
bcc, hcp-as-ortho, diamond, rocksalt, fluorite, water boxes) and keeps the
minimum-image convention a cheap vectorized round.

Units across :mod:`repro.md`: lengths in Angstrom, energies in eV, masses
in amu, time in fs, temperatures in Kelvin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Boltzmann constant in eV / K.
KB = 8.617333262e-5

#: acceleration conversion: (eV/Angstrom)/amu -> Angstrom/fs^2.
ACC_CONV = 9.64853329e-3

#: kinetic-energy conversion: amu * (Angstrom/fs)^2 -> eV.
KE_CONV = 1.0364269e2


@dataclass(frozen=True)
class Cell:
    """An orthorhombic periodic box with edge lengths ``lengths`` (3,)."""

    lengths: np.ndarray

    def __post_init__(self):
        arr = np.asarray(self.lengths, dtype=np.float64).reshape(3)
        if np.any(arr <= 0):
            raise ValueError(f"cell lengths must be positive, got {arr}")
        object.__setattr__(self, "lengths", arr)

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into [0, L) along each axis.

        ``np.mod(-eps, L)`` can round to exactly ``L`` for tiny negative
        inputs; fold that boundary case back to 0 so the interval stays
        half-open.
        """
        out = np.mod(positions, self.lengths)
        return np.where(out >= self.lengths, 0.0, out)

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        return dr - self.lengths * np.round(dr / self.lengths)

    def image_shifts(self, dr: np.ndarray) -> np.ndarray:
        """The lattice translation (in Angstrom) that minimum-imaging adds
        to ``dr``; useful for building *constant* shift tables so that
        d(r_ij)/d(position) stays exact inside an autograd graph."""
        return -self.lengths * np.round(dr / self.lengths)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distance(s) between position arrays ``a``, ``b``."""
        dr = self.minimum_image(np.asarray(a) - np.asarray(b))
        return np.sqrt(np.sum(dr * dr, axis=-1))

    def max_cutoff(self) -> float:
        """Largest cutoff for which minimum image is unambiguous (L_min/2)."""
        return float(self.lengths.min()) / 2.0


def kinetic_energy(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Total kinetic energy in eV (velocities Angstrom/fs, masses amu)."""
    return float(0.5 * KE_CONV * np.sum(masses[:, None] * velocities**2))


def temperature(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Instantaneous temperature in K via equipartition (3N dof)."""
    n = velocities.shape[0]
    if n == 0:
        return 0.0
    ke = kinetic_energy(velocities, masses)
    return 2.0 * ke / (3.0 * n * KB)


def maxwell_boltzmann_velocities(
    masses: np.ndarray, temp: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw velocities (Angstrom/fs) at temperature ``temp`` with zero
    total momentum."""
    n = masses.shape[0]
    sigma = np.sqrt(KB * max(temp, 0.0) / (KE_CONV * masses))[:, None]
    v = rng.normal(size=(n, 3)) * sigma
    # remove centre-of-mass drift
    p = (masses[:, None] * v).sum(axis=0)
    v -= p / masses.sum()
    return v
