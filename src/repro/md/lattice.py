"""Crystal lattice builders for the eight paper systems.

Each builder returns ``(positions (N,3), cell, species (N,) int array)``
with species indices into the system's element list.  Supercell sizes are
chosen by the callers in :mod:`repro.data.systems` to land near the paper's
atom counts (Table 3: 32--108 atoms per snapshot).
"""

from __future__ import annotations

import numpy as np

from .cell import Cell


def _supercell(
    base_frac: np.ndarray,
    base_species: np.ndarray,
    a: np.ndarray,
    reps: tuple[int, int, int],
) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Tile a fractional-coordinate basis ``reps`` times along each axis of
    the orthorhombic conventional cell with edge lengths ``a`` (3,)."""
    nx, ny, nz = reps
    shifts = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    frac = (base_frac[None, :, :] + shifts[:, None, :]).reshape(-1, 3)
    lengths = np.asarray(a, dtype=np.float64) * np.array(reps, dtype=np.float64)
    pos = frac * np.asarray(a, dtype=np.float64)
    species = np.tile(base_species, len(shifts))
    return pos, Cell(lengths), species


def fcc(a: float, reps: tuple[int, int, int] = (3, 3, 3)) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Face-centred cubic (4 atoms per conventional cell).  Cu, Al."""
    basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    return _supercell(basis, np.zeros(4, dtype=np.int64), np.full(3, a), reps)


def bcc(a: float, reps: tuple[int, int, int] = (3, 3, 3)) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Body-centred cubic (2 atoms per conventional cell)."""
    basis = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])
    return _supercell(basis, np.zeros(2, dtype=np.int64), np.full(3, a), reps)


def hcp(a: float, c: float, reps: tuple[int, int, int] = (3, 3, 2)) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Hexagonal close packed in its orthorhombic representation
    (4 atoms per ortho cell, edges a, a*sqrt(3), c).  Mg."""
    basis = np.array(
        [
            [0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.5, 5.0 / 6.0, 0.5],
            [0.0, 1.0 / 3.0, 0.5],
        ]
    )
    edges = np.array([a, a * np.sqrt(3.0), c])
    return _supercell(basis, np.zeros(4, dtype=np.int64), edges, reps)


def diamond(a: float, reps: tuple[int, int, int] = (2, 2, 2)) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Diamond cubic (8 atoms per conventional cell).  Si."""
    fcc_basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    basis = np.concatenate([fcc_basis, fcc_basis + 0.25])
    return _supercell(basis, np.zeros(8, dtype=np.int64), np.full(3, a), reps)


def rocksalt(a: float, reps: tuple[int, int, int] = (2, 2, 2)) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Rocksalt AB (8 atoms per conventional cell: 4 A + 4 B).
    NaCl (Na=0, Cl=1); also used as the CuO analog structure."""
    a_sites = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    b_sites = a_sites + np.array([0.5, 0.0, 0.0])
    basis = np.concatenate([a_sites, b_sites])
    species = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)
    return _supercell(basis, species, np.full(3, a), reps)


def fluorite(a: float, reps: tuple[int, int, int] = (2, 2, 2)) -> tuple[np.ndarray, Cell, np.ndarray]:
    """Fluorite AB2 (12 atoms per conventional cell: 4 A + 8 B).
    HfO2 analog (Hf=0, O=1)."""
    a_sites = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    b_sites = np.concatenate([a_sites + 0.25, a_sites + 0.75]) % 1.0
    basis = np.concatenate([a_sites, b_sites])
    species = np.array([0] * 4 + [1] * 8, dtype=np.int64)
    return _supercell(basis, species, np.full(3, a), reps)


def water_box(
    n_molecules: int,
    density_factor: float = 1.0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, Cell, np.ndarray, np.ndarray]:
    """A box of rigid-geometry water molecules on a jittered cubic grid.

    Returns ``(positions, cell, species, molecules)`` where species are
    O=0, H=1 and ``molecules`` is an (n_molecules, 3) index table
    (O, H1, H2) consumed by the flexible-water potential.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    # ~29.9 A^3 per molecule at 1 g/cm^3
    vol_per_mol = 29.9 / density_factor
    n_side = int(np.ceil(n_molecules ** (1.0 / 3.0)))
    spacing = vol_per_mol ** (1.0 / 3.0)
    box = n_side * spacing
    r_oh, theta = 0.9572, np.deg2rad(104.52)

    positions, species, molecules = [], [], []
    count = 0
    for ix in range(n_side):
        for iy in range(n_side):
            for iz in range(n_side):
                if count >= n_molecules:
                    break
                o = (np.array([ix, iy, iz]) + 0.5) * spacing
                o = o + rng.normal(scale=0.05, size=3)
                # random molecular orientation
                axis = rng.normal(size=3)
                axis /= np.linalg.norm(axis)
                perp = np.cross(axis, rng.normal(size=3))
                perp /= np.linalg.norm(perp)
                h1 = o + r_oh * (np.cos(theta / 2) * axis + np.sin(theta / 2) * perp)
                h2 = o + r_oh * (np.cos(theta / 2) * axis - np.sin(theta / 2) * perp)
                base = len(positions)
                positions.extend([o, h1, h2])
                species.extend([0, 1, 1])
                molecules.append([base, base + 1, base + 2])
                count += 1
    pos = np.array(positions)
    return (
        np.mod(pos, box),
        Cell(np.full(3, box)),
        np.array(species, dtype=np.int64),
        np.array(molecules, dtype=np.int64),
    )
