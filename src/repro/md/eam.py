"""Embedded-atom-method (EAM) potential for metals.

The paper's Cu/Al/Mg datasets come from DFT; our pair-potential stand-ins
miss the many-body character of metallic bonding.  This module adds a
proper many-body labeler in the Finnis–Sinclair / Sutton–Chen family:

    E = sum_i [ eps * sum_j (a/r_ij)^n / 2  -  eps * c * sqrt(rho_i) ],
    rho_i = sum_j (a/r_ij)^m,

whose embedding term F(rho) = -eps c sqrt(rho) makes the energy genuinely
non-pairwise.  Forces are analytic (checked against central differences in
the tests):

    dE/dr_ij = eps * [ -n (a/r)^n / r ] (pair part)
               + [F'(rho_i) + F'(rho_j)] * [-m (a/r)^m / r] (embedding part)

Default parameters are the Sutton–Chen copper set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cell import Cell
from .neighbor import pair_list
from .potentials import Potential


@dataclass(frozen=True)
class SuttonChenParams:
    """Sutton-Chen parameters; defaults are the Cu set (n=9, m=6)."""

    epsilon: float = 1.2382e-2  # eV
    a: float = 3.615  # Angstrom (lattice constant)
    n: float = 9.0
    m: float = 6.0
    c: float = 39.432

    @staticmethod
    def copper() -> "SuttonChenParams":
        return SuttonChenParams()

    @staticmethod
    def aluminium() -> "SuttonChenParams":
        return SuttonChenParams(epsilon=3.3147e-2, a=4.05, n=7.0, m=6.0, c=16.399)


class SuttonChenEAM(Potential):
    """Many-body Sutton-Chen EAM with analytic forces.

    The density rho_i couples all of atom i's neighbors, so unlike the
    pair potentials the force on a bond depends on *both* endpoint
    densities -- the many-body behaviour DeePMD's descriptor is built to
    capture.
    """

    def __init__(self, params: SuttonChenParams | None = None, rcut: float = 6.0):
        self.p = params or SuttonChenParams()
        self.rcut = float(rcut)

    def energy_forces(self, positions: np.ndarray, cell: Cell) -> tuple[float, np.ndarray]:
        p = self.p
        n_atoms = positions.shape[0]
        forces = np.zeros((n_atoms, 3))
        pl = pair_list(positions, cell, self.rcut)
        if len(pl) == 0:
            return 0.0, forces

        ar = p.a / pl.r
        pair_term = ar**p.n  # (a/r)^n per half-pair
        dens_term = ar**p.m

        # densities: each half-pair contributes to both endpoints
        rho = np.zeros(n_atoms)
        np.add.at(rho, pl.i, dens_term)
        np.add.at(rho, pl.j, dens_term)
        rho = np.maximum(rho, 1e-300)  # isolated atoms

        e_pair = p.epsilon * float(pair_term.sum())  # sum over half pairs == eps/2 * full sum
        e_embed = -p.epsilon * p.c * float(np.sqrt(rho).sum())
        energy = e_pair + e_embed

        # dF/drho = -eps c / (2 sqrt(rho))
        dF = -p.epsilon * p.c / (2.0 * np.sqrt(rho))
        # d(pair)/dr for the half-list (the full pair energy is
        # eps * sum_halfpairs (a/r)^n counted once -> derivative direct)
        dpair_dr = -p.n * p.epsilon * pair_term / pl.r
        ddens_dr = -p.m * dens_term / pl.r
        dembed_dr = (dF[pl.i] + dF[pl.j]) * ddens_dr
        de_dr = dpair_dr + dembed_dr

        fvec = (-de_dr / pl.r)[:, None] * pl.rij
        np.add.at(forces, pl.j, fvec)
        np.add.at(forces, pl.i, -fvec)
        return energy, forces
