"""Time integration: velocity Verlet with a Langevin (BAOAB) thermostat.

Used by the trajectory sampler to generate the snapshot datasets: the paper
samples ab-initio MD at several temperatures per system (Table 3); we run
thermostatted classical MD with the substitute potentials instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .cell import ACC_CONV, KB, KE_CONV, Cell, maxwell_boltzmann_velocities, temperature
from .potentials import Potential


@dataclass
class MDState:
    """Instantaneous MD state.  positions Angstrom, velocities Angstrom/fs."""

    positions: np.ndarray
    velocities: np.ndarray
    forces: np.ndarray
    potential_energy: float
    step: int = 0

    def temperature(self, masses: np.ndarray) -> float:
        return temperature(self.velocities, masses)


class LangevinIntegrator:
    """BAOAB-split Langevin dynamics.

    B: half kick, A: half drift, O: Ornstein-Uhlenbeck velocity update,
    A: half drift, B: half kick.  ``friction`` is in 1/fs; ``friction=0``
    recovers plain (NVE) velocity Verlet, which the energy-conservation
    tests exercise.
    """

    def __init__(
        self,
        potential: Potential,
        masses: np.ndarray,
        cell: Cell,
        timestep: float = 1.0,
        temperature: float = 300.0,
        friction: float = 0.01,
        rng: Optional[np.random.Generator] = None,
    ):
        self.potential = potential
        self.masses = np.asarray(masses, dtype=np.float64)
        self.cell = cell
        self.dt = float(timestep)
        self.temp = float(temperature)
        self.friction = float(friction)
        self.rng = rng or np.random.default_rng(0)

    def initialize(self, positions: np.ndarray, temp: Optional[float] = None) -> MDState:
        t = self.temp if temp is None else temp
        v = maxwell_boltzmann_velocities(self.masses, t, self.rng)
        e, f = self.potential.energy_forces(positions, self.cell)
        return MDState(positions=np.array(positions), velocities=v, forces=f, potential_energy=e)

    def _kick(self, state: MDState, half_dt: float) -> None:
        state.velocities += half_dt * ACC_CONV * state.forces / self.masses[:, None]

    def _drift(self, state: MDState, half_dt: float) -> None:
        state.positions = self.cell.wrap(state.positions + half_dt * state.velocities)

    def _ou(self, state: MDState) -> None:
        if self.friction <= 0.0:
            return
        c1 = np.exp(-self.friction * self.dt)
        sigma = np.sqrt((1.0 - c1 * c1) * KB * self.temp / (KE_CONV * self.masses))
        state.velocities = c1 * state.velocities + sigma[:, None] * self.rng.normal(
            size=state.velocities.shape
        )

    def step(self, state: MDState) -> MDState:
        half = 0.5 * self.dt
        self._kick(state, half)
        self._drift(state, half)
        self._ou(state)
        self._drift(state, half)
        e, f = self.potential.energy_forces(state.positions, self.cell)
        state.potential_energy = e
        state.forces = f
        self._kick(state, half)
        state.step += 1
        return state

    def run(
        self,
        state: MDState,
        n_steps: int,
        callback: Optional[Callable[[MDState], None]] = None,
        callback_every: int = 1,
    ) -> MDState:
        for _ in range(n_steps):
            state = self.step(state)
            if callback is not None and state.step % callback_every == 0:
                callback(state)
        return state

    def sample_frames(
        self, state: MDState, n_steps: int, sample_every: int
    ) -> tuple[MDState, np.ndarray]:
        """Run ``n_steps`` (rounded down to whole ``sample_every`` chunks),
        snapshotting positions after each chunk.

        Returns the advanced state plus the sampled frames as a
        ``(n_steps // sample_every, N, 3)`` array -- the exploration
        segment shape the active/online learning loops consume.
        """
        frames = []
        for _ in range(n_steps // sample_every):
            state = self.run(state, sample_every)
            frames.append(state.positions.copy())
        if not frames:
            return state, np.empty((0,) + state.positions.shape)
        return state, np.stack(frames)
