"""Neighbor searching: pair lists for potentials, padded tables for DeePMD.

Two interchangeable pair-list backends are provided:

* :func:`pair_list_bruteforce` -- O(N^2) minimum-image scan, the reference
  implementation for the paper-scale systems (32--108 atoms).
* :func:`pair_list_cells` -- linked-cell algorithm, O(N) for big boxes;
  validated against brute force in the tests and used automatically by
  :func:`pair_list` when the box is large enough to pay off.

:func:`neighbor_table` builds the fixed-width (N, Nm) padded neighbor table
with *constant* periodic shift vectors that the DeePMD descriptor consumes;
keeping shifts constant is what makes forces F = -dE/dr exact through the
autograd graph (the round() in minimum imaging is piecewise constant).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cell import Cell


@dataclass
class PairList:
    """Half pair list: each i<j pair within the cutoff appears once.

    ``rij`` holds the minimum-image displacement r_j - r_i, ``r`` its norm.
    """

    i: np.ndarray
    j: np.ndarray
    rij: np.ndarray
    r: np.ndarray

    def __len__(self) -> int:
        return len(self.i)


def pair_list_bruteforce(positions: np.ndarray, cell: Cell, rcut: float) -> PairList:
    """All-pairs minimum-image search; exact for rcut <= min(L)/2."""
    n = positions.shape[0]
    dr = positions[None, :, :] - positions[:, None, :]
    dr = cell.minimum_image(dr)
    r2 = np.sum(dr * dr, axis=-1)
    iu, ju = np.triu_indices(n, k=1)
    mask = r2[iu, ju] < rcut * rcut
    i, j = iu[mask], ju[mask]
    rij = dr[i, j]
    return PairList(i=i, j=j, rij=rij, r=np.sqrt(r2[i, j]))


def pair_list_cells(positions: np.ndarray, cell: Cell, rcut: float) -> PairList:
    """Linked-cell pair search.

    The box is divided into bins of edge >= rcut; only the 27-neighborhood
    of each bin is scanned.  Falls back to brute force when fewer than 3
    bins fit along any axis (the neighborhood would cover the whole box).
    """
    lengths = cell.lengths
    nbins = np.maximum(np.floor(lengths / rcut).astype(int), 1)
    if np.any(nbins < 3):
        return pair_list_bruteforce(positions, cell, rcut)

    wrapped = cell.wrap(positions)
    bin_of = np.minimum((wrapped / (lengths / nbins)).astype(int), nbins - 1)
    flat = (bin_of[:, 0] * nbins[1] + bin_of[:, 1]) * nbins[2] + bin_of[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    # start offsets of each bin in `order`
    nbins_total = int(np.prod(nbins))
    starts = np.searchsorted(sorted_flat, np.arange(nbins_total + 1))

    offsets = np.array(
        [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    )
    i_out, j_out = [], []
    for bx in range(nbins[0]):
        for by in range(nbins[1]):
            for bz in range(nbins[2]):
                b = (bx * nbins[1] + by) * nbins[2] + bz
                atoms_b = order[starts[b] : starts[b + 1]]
                if atoms_b.size == 0:
                    continue
                for dx, dy, dz in offsets:
                    nb = (
                        ((bx + dx) % nbins[0]) * nbins[1] + ((by + dy) % nbins[1])
                    ) * nbins[2] + ((bz + dz) % nbins[2])
                    if nb < b:
                        continue  # each bin pair handled once
                    atoms_n = order[starts[nb] : starts[nb + 1]]
                    if atoms_n.size == 0:
                        continue
                    if nb == b:
                        ii, jj = np.triu_indices(atoms_b.size, k=1)
                        i_out.append(atoms_b[ii])
                        j_out.append(atoms_b[jj])
                    else:
                        ii, jj = np.meshgrid(atoms_b, atoms_n, indexing="ij")
                        i_out.append(ii.ravel())
                        j_out.append(jj.ravel())
    if not i_out:
        empty = np.zeros(0, dtype=np.int64)
        return PairList(empty, empty, np.zeros((0, 3)), np.zeros(0))
    i = np.concatenate(i_out)
    j = np.concatenate(j_out)
    dr = cell.minimum_image(positions[j] - positions[i])
    r2 = np.sum(dr * dr, axis=-1)
    keep = r2 < rcut * rcut
    i, j, dr = i[keep], j[keep], dr[keep]
    # canonical ordering (i < j) so backends agree exactly
    swap = i > j
    i2 = np.where(swap, j, i)
    j2 = np.where(swap, i, j)
    dr = np.where(swap[:, None], -dr, dr)
    key = np.lexsort((j2, i2))
    return PairList(i=i2[key], j=j2[key], rij=dr[key], r=np.sqrt(r2[keep][key]))


def pair_list(positions: np.ndarray, cell: Cell, rcut: float) -> PairList:
    """Pick the cell-list backend when it can win, else brute force."""
    if positions.shape[0] > 256 and np.all(cell.lengths / rcut >= 3.0):
        return pair_list_cells(positions, cell, rcut)
    return pair_list_bruteforce(positions, cell, rcut)


@dataclass
class NeighborTable:
    """Fixed-width padded neighbor table for the DeePMD descriptor.

    ``idx[i, k]`` is the k-th neighbor of atom i (self-index when padded),
    ``shift[i, k]`` the constant lattice translation such that
    ``r_neighbor = positions[idx] + shift - positions[i]`` reproduces the
    minimum-image displacement, and ``mask[i, k]`` marks real neighbors.
    Neighbors are sorted by distance (DeePMD convention), truncated or
    padded to ``nmax``.
    """

    idx: np.ndarray
    shift: np.ndarray
    mask: np.ndarray

    @property
    def nmax(self) -> int:
        return self.idx.shape[1]


def neighbor_table(
    positions: np.ndarray, cell: Cell, rcut: float, nmax: int
) -> NeighborTable:
    """Build the padded per-atom neighbor table (see :class:`NeighborTable`)."""
    n = positions.shape[0]
    pl = pair_list(positions, cell, rcut)
    # expand half list to full list
    src = np.concatenate([pl.i, pl.j])
    dst = np.concatenate([pl.j, pl.i])
    vec = np.concatenate([pl.rij, -pl.rij])
    dist = np.concatenate([pl.r, pl.r])

    idx = np.tile(np.arange(n)[:, None], (1, nmax))
    shift = np.zeros((n, nmax, 3))
    mask = np.zeros((n, nmax), dtype=bool)

    order = np.lexsort((dist, src))
    src, dst, vec, dist = src[order], dst[order], vec[order], dist[order]
    starts = np.searchsorted(src, np.arange(n + 1))
    for a in range(n):
        lo, hi = starts[a], starts[a + 1]
        k = min(hi - lo, nmax)
        if k == 0:
            continue
        sel = slice(lo, lo + k)
        idx[a, :k] = dst[sel]
        # shift = rij_min_image - (r_j - r_i) so that pos[j] + shift - pos[i] = rij
        shift[a, :k] = vec[sel] - (positions[dst[sel]] - positions[a])
        mask[a, :k] = True
    return NeighborTable(idx=idx, shift=shift, mask=mask)


def max_neighbor_count(positions: np.ndarray, cell: Cell, rcut: float) -> int:
    """Largest per-atom neighbor count (used to size Nm for a dataset)."""
    pl = pair_list(positions, cell, rcut)
    counts = np.bincount(
        np.concatenate([pl.i, pl.j]), minlength=positions.shape[0]
    )
    return int(counts.max()) if counts.size else 0
