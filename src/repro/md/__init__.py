"""repro.md -- classical MD substrate (the "ab initio" labeler substitute).

Provides periodic cells, lattice builders, neighbor search, analytic-force
potentials (pair, Stillinger-Weber, ionic, water, many-body Sutton-Chen
EAM), Langevin/Berendsen/velocity-rescale integrators, RDF/MSD trajectory
analysis, and the sampler used to generate the Table 3 analog datasets.
"""

from .analysis import mean_squared_displacement, radial_distribution, rdf_similarity
from .cell import ACC_CONV, KB, KE_CONV, Cell, kinetic_energy, maxwell_boltzmann_velocities, temperature
from .eam import SuttonChenEAM, SuttonChenParams
from .integrator import LangevinIntegrator, MDState
from .lattice import bcc, diamond, fcc, fluorite, hcp, rocksalt, water_box
from .neighbor import (
    NeighborTable,
    PairList,
    max_neighbor_count,
    neighbor_table,
    pair_list,
    pair_list_bruteforce,
    pair_list_cells,
)
from .potentials import (
    Buckingham,
    Composite,
    FlexibleWater,
    LennardJones,
    Morse,
    Potential,
    SWParams,
    StillingerWeber,
    WolfCoulomb,
)
from .sampler import Frame, Trajectory, sample_trajectory
from .thermostats import ThermostattedIntegrator, kinetic_target_ev

__all__ = [
    "Cell",
    "KB",
    "ACC_CONV",
    "KE_CONV",
    "kinetic_energy",
    "temperature",
    "maxwell_boltzmann_velocities",
    "LangevinIntegrator",
    "MDState",
    "fcc",
    "bcc",
    "hcp",
    "diamond",
    "rocksalt",
    "fluorite",
    "water_box",
    "PairList",
    "NeighborTable",
    "pair_list",
    "pair_list_bruteforce",
    "pair_list_cells",
    "neighbor_table",
    "max_neighbor_count",
    "Potential",
    "LennardJones",
    "Morse",
    "Buckingham",
    "WolfCoulomb",
    "StillingerWeber",
    "SWParams",
    "FlexibleWater",
    "Composite",
    "SuttonChenEAM",
    "SuttonChenParams",
    "radial_distribution",
    "mean_squared_displacement",
    "rdf_similarity",
    "Frame",
    "Trajectory",
    "sample_trajectory",
    "ThermostattedIntegrator",
    "kinetic_target_ev",
]
