"""Additional thermostats: Berendsen and velocity rescale.

The Langevin integrator is the default sampler, but thermostat choice
affects the configuration distributions a dataset captures, so the MD
substrate offers the standard alternatives.  Both plug into
:class:`~repro.md.integrator.LangevinIntegrator` as drop-in O-step
replacements via :class:`ThermostattedIntegrator`.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .cell import KB, KE_CONV, Cell, temperature
from .integrator import LangevinIntegrator, MDState
from .potentials import Potential


class ThermostattedIntegrator(LangevinIntegrator):
    """Velocity-Verlet with a Berendsen or velocity-rescale thermostat.

    * ``berendsen`` -- weak coupling: velocities scaled by
      sqrt(1 + dt/tau (T0/T - 1)) each step; gentle, does not produce a
      strict canonical ensemble but equilibrates smoothly.
    * ``rescale``  -- hard isokinetic rescale to the target every
      ``rescale_every`` steps.
    """

    def __init__(
        self,
        potential: Potential,
        masses: np.ndarray,
        cell: Cell,
        timestep: float = 1.0,
        temperature: float = 300.0,
        mode: Literal["berendsen", "rescale"] = "berendsen",
        tau_fs: float = 100.0,
        rescale_every: int = 10,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(
            potential, masses, cell, timestep=timestep,
            temperature=temperature, friction=0.0, rng=rng,
        )
        if mode not in ("berendsen", "rescale"):
            raise ValueError(f"unknown thermostat mode {mode!r}")
        self.mode = mode
        self.tau_fs = float(tau_fs)
        self.rescale_every = int(rescale_every)

    def _ou(self, state: MDState) -> None:  # replaces the Langevin O-step
        t_now = temperature(state.velocities, self.masses)
        if t_now <= 0:
            return
        if self.mode == "berendsen":
            factor = np.sqrt(
                max(1.0 + self.dt / self.tau_fs * (self.temp / t_now - 1.0), 0.0)
            )
            state.velocities *= factor
        elif state.step % self.rescale_every == self.rescale_every - 1:
            state.velocities *= np.sqrt(self.temp / t_now)


def kinetic_target_ev(n_atoms: int, temp: float) -> float:
    """Target kinetic energy (eV) for 3N degrees of freedom at ``temp``."""
    return 1.5 * n_atoms * KB * temp
