"""Tape compiler: fuse a recorded op tape into a replayable execution plan.

The FEKF step is shape-static: every iteration runs the *same* op
sequence over buffers of the same shapes (the JAX ``jit`` observation --
trace once, specialize, replay).  This module turns a tape recorded
through ``autograd.capture("tape", graph=True)`` into a
:class:`Program`:

* **No per-op allocation.**  Every op output gets a buffer from a
  reusable arena, allocated once at compile time; replay writes results
  with ``out=`` / ``np.copyto`` into stable buffers, so the thousands of
  temporaries an eager step allocates disappear.
* **View elision.**  ``reshape``/``transpose`` results that numpy serves
  as views are materialized *once* at compile time as views of the stable
  parent buffer -- zero work at replay.
* **Elementwise-chain fusion.**  Runs of elementwise kernels collapse
  into one ``fused_chain`` launch (the per-layer ``fuse.py`` kernels fuse
  within a layer; the chain fusion spans whatever the tape shows, e.g.
  the switching-function polynomial or a backward closure cascade).
* **Precomputed broadcast/reduction geometry.**  Reduction axes, index
  tuples, broadcast targets and operand shapes are resolved at compile
  time; replay does no shape inference.

Replay is **bit-identical** to eager execution: every step mirrors the
exact numpy expression the eager op dispatch would run (same ufunc, same
reduction axis normalization, same pairwise summation), merely redirected
into preallocated buffers.  Selection ops (``where``/``maximum``) copy
bits rather than recompute, so not even sign-of-zero differs.

Inputs are rebound per replay through named *feeds*.  Leaves of the
traced graph resolve in three tiers:

1. tensors declared as section inputs (matched by identity),
2. arrays value-matched against named candidate feeds the caller
   supplies (batch masks, neighbor indices, shift vectors ...),
3. everything else is baked into the plan as a constant.

If a replay's feed shapes/dtypes diverge from the traced signature the
plan refuses with :class:`PlanMismatch` and the caller falls back to
eager (and may re-trace for the new signature; plans are cached by
tape CRC + shape signature via :meth:`Program.key`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from . import instrument as _instrument
from .capture import TapeRecorder, capture
from .instrument import record_launch, register_op
from .tensor import Tensor

__all__ = [
    "TraceSession",
    "Program",
    "PlanMismatch",
    "UnsupportedTrace",
    "compile_tape",
]

#: a run of these ops is collapsed into a single ``fused_chain`` launch
ELEMENTWISE_OPS = frozenset({
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "tanh",
    "sqrt", "abs", "sign", "cmp_mask", "maximum", "minimum", "where",
})

register_op("fused_chain", kind="fused")


class PlanMismatch(RuntimeError):
    """A replay's inputs diverge from the traced signature (shape/dtype
    changed, or a feed is missing).  The caller falls back to eager."""


class UnsupportedTrace(RuntimeError):
    """The tape contains structure the compiler cannot replay (an
    unknown op, or a parent produced outside any traced section)."""


# ---------------------------------------------------------------------------
# trace session: tape + section/input/output declarations
# ---------------------------------------------------------------------------
@dataclass
class Section:
    """One replayable slice of the tape.

    Sections share a single slot space (a later section may read buffers
    a former one produced -- the backward sweep reads forward
    activations), but replay independently: each ``Program.run`` call
    executes one section's steps after rebinding that section's feeds.
    """

    name: str
    inputs: dict = field(default_factory=dict)   # feed name -> input Tensor
    outputs: list = field(default_factory=list)  # output Tensors (set in-block)
    start: int = 0
    end: int = 0


class TraceSession:
    """Record a tape with full graph wiring plus section annotations.

    Usage::

        sess = TraceSession(candidates={"mask": batch.mask, ...})
        with sess:
            with sess.section("fwd", inputs={"w": w_tensor}) as sec:
                e = model.energy_graph(batch, ...)
                sec.outputs = [e]
            ...
        program = compile_tape(sess)

    ``candidates`` are named arrays that recur every step (neighbor
    indices, masks, shift vectors): any leaf constant on the tape whose
    value matches a candidate becomes a rebindable feed instead of a
    baked constant.
    """

    def __init__(self, candidates: Optional[dict] = None):
        self._cap = capture("tape", graph=True)
        self.tape: Optional[TapeRecorder] = None
        self.sections: list[Section] = []
        self.candidates: dict[str, np.ndarray] = {}
        self.add_candidates(candidates or {})

    def add_candidates(self, more: dict) -> None:
        for k, v in more.items():
            arr = np.asarray(v)
            self.candidates[k] = arr
            if arr.dtype == bool:
                # boolean masks recur on the tape as float {0,1} arrays
                # (the ``where`` backward mask); register the float view
                # under a derived name that ``Program.run`` knows how to
                # rebuild from the base feed
                self.candidates[k + ".f64"] = arr.astype(np.float64)

    def __enter__(self) -> "TraceSession":
        self.tape = self._cap.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._cap.__exit__(*exc)

    @contextmanager
    def section(self, name: str, inputs: Optional[dict] = None):
        if self.tape is None:
            raise RuntimeError("section() outside the recording context")
        sec = Section(name=name, inputs=dict(inputs or {}),
                      start=len(self.tape.entries))
        self.sections.append(sec)
        try:
            yield sec
        finally:
            sec.end = len(self.tape.entries)


# ---------------------------------------------------------------------------
# compiled program
# ---------------------------------------------------------------------------
class _Step:
    """One replay action: a closure writing into a stable buffer, plus
    the static launch metadata (mirroring what eager ``make_op`` would
    report to the instrumentation sinks)."""

    __slots__ = ("fn", "launch_name", "nbytes", "out_shape", "in_shapes", "fused")

    def __init__(self, fn, launch_name, nbytes, out_shape, in_shapes, fused=1):
        self.fn = fn
        self.launch_name = launch_name
        self.nbytes = nbytes
        self.out_shape = out_shape
        self.in_shapes = in_shapes
        self.fused = fused  # eager ops this launch replaces


@dataclass
class _CompiledSection:
    name: str
    steps: list = field(default_factory=list)
    #: feed names this section binds before executing (first read here)
    bind_names: tuple = ()
    #: output buffers, in declared order (views into the arena: valid
    #: until the next run touching their slots)
    out_bufs: tuple = ()


@dataclass
class PlanStats:
    """Per-plan telemetry, surfaced through optimizer ``stats()`` and the
    span pipeline."""

    compile_time_s: float = 0.0
    replays: int = 0
    traced_ops: int = 0
    steps: int = 0
    fused_ops: int = 0
    view_elisions: int = 0
    baked_consts: int = 0
    arena_bytes: int = 0
    #: bytes of per-op output allocation an eager execution would do per
    #: replay of the full program (the arena amortizes all of it)
    eager_alloc_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "compile_time_s": self.compile_time_s,
            "replays": self.replays,
            "traced_ops": self.traced_ops,
            "steps": self.steps,
            "fused_ops": self.fused_ops,
            "view_elisions": self.view_elisions,
            "baked_consts": self.baked_consts,
            "arena_bytes": self.arena_bytes,
            "eager_alloc_bytes": self.eager_alloc_bytes,
        }


class Program:
    """A compiled, replayable execution plan over a fixed-shape tape."""

    def __init__(self, sections, feed_sig, tape_crc, stats):
        self._sections: dict[str, _CompiledSection] = sections
        #: feed name -> (shape, dtype) signature the plan was traced at
        self.feed_sig: dict[str, tuple] = feed_sig
        self.tape_crc = tape_crc
        self.stats = stats

    def key(self) -> tuple:
        """Plan-cache key: tape CRC + the full shape signature."""
        return (self.tape_crc, tuple(sorted(
            (n, s, str(d)) for n, (s, d) in self.feed_sig.items()
        )))

    def section_names(self) -> tuple:
        return tuple(self._sections)

    def signature_of(self, section: str) -> dict:
        cs = self._sections[section]
        return {n: self.feed_sig[n] for n in cs.bind_names}

    def run(self, section: str, feeds: dict) -> list:
        """Replay one section, rebinding its feeds.

        Returns the section's output buffers *by reference*: they are
        owned by the plan's arena and stay valid until the next ``run``
        touching their slots -- copy anything that must survive.
        """
        cs = self._sections.get(section)
        if cs is None:
            raise PlanMismatch(f"program has no section {section!r}")
        for name in cs.bind_names:
            arr = feeds.get(name)
            if arr is None and name.endswith(".f64") and name[:-4] in feeds:
                arr = feeds[name[:-4]].astype(np.float64)
                feeds[name] = arr  # derived once, shared by later sections
            if arr is None:
                raise PlanMismatch(f"missing feed {name!r} for section {section!r}")
            shape, dtype = self.feed_sig[name]
            if arr.shape != shape or arr.dtype != dtype:
                raise PlanMismatch(
                    f"feed {name!r} diverged from traced signature: got "
                    f"{arr.shape}/{arr.dtype}, traced {shape}/{dtype}"
                )
        # all-or-nothing: validate every feed before mutating any buffer
        for name in cs.bind_names:
            np.copyto(self._feed_bufs[name], feeds[name], casting="no")
        want_shapes = _instrument._WANT_SHAPES > 0
        for st in cs.steps:
            st.fn(feeds)
            if want_shapes:
                record_launch(st.launch_name, st.nbytes, st.out_shape, st.in_shapes)
            else:
                record_launch(st.launch_name, st.nbytes)
        self.stats.replays += 1
        return list(cs.out_bufs)

    # populated by the compiler
    _feed_bufs: dict


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------
def _is_uniform(arr: np.ndarray) -> bool:
    """True for constant-valued arrays (all-zeros masks, ones_like fills):
    too degenerate to value-match safely."""
    if arr.size == 0:
        return True
    flat = arr.reshape(-1)
    return bool((flat == flat[0]).all())


def _match_candidate(arr: np.ndarray, candidates: dict) -> Optional[str]:
    """Name of the candidate feed ``arr`` corresponds to.

    Two passes.  *Strong*: the candidate IS the array (or a same-layout
    view over the same memory) -- always a match.  *Value*: bitwise-equal
    values of the same shape/dtype -- but uniform (constant-valued)
    arrays are excluded, because an all-True mask at trace time is
    indistinguishable from a programmatic ``ones_like`` constant, and
    binding the constant to a feed would corrupt later replays.
    """
    for name, cand in candidates.items():
        if cand.shape != arr.shape or cand.dtype != arr.dtype:
            continue
        if cand is arr or (
            np.shares_memory(cand, arr) and np.array_equal(cand, arr)
        ):
            return name
    if _is_uniform(arr):
        return None
    for name, cand in candidates.items():
        if cand.dtype == arr.dtype and cand.shape == arr.shape and np.array_equal(cand, arr):
            return name
    return None


class _Compiler:
    def __init__(self, session: TraceSession):
        if session.tape is None:
            raise UnsupportedTrace("session was never entered (no tape)")
        self.session = session
        self.entries = session.tape.entries
        self.stats = PlanStats(traced_ops=len(self.entries))
        # tensor id -> stable buffer (the slot space)
        self.buf: dict[int, np.ndarray] = {}
        # buffer id -> allocation root buffer id (views share their root)
        self.root: dict[int, int] = {}
        self.feed_bufs: dict[str, np.ndarray] = {}
        self.feed_sig: dict[str, tuple] = {}
        #: feed name -> section indices that (re)bind it before running.
        #: Declared inputs bind at the section that *declares* them -- so
        #: a backward section reads the same values its forward bound,
        #: and a later forward (e.g. the force graph after a weight
        #: update) rebinds fresh values.  Candidate feeds bind at every
        #: reading section (idempotent copies; always-correct values).
        self.feed_binder: dict[str, set] = {}
        # arena free-list: (shape, dtype) -> [root buffers]
        self.free: dict[tuple, list] = {}
        self.arena_roots: set[int] = set()
        # id(tensor) -> index of the last step (global order) reading it,
        # and the section that produced it (cross-section reads pin slots)
        self.last_use: dict[int, int] = {}
        self.producer_section: dict[int, int] = {}

    # -- feed/const registration ---------------------------------------
    def _register_feed(self, name: str, arr: np.ndarray, sec_idx: int) -> np.ndarray:
        buf = self.feed_bufs.get(name)
        if buf is None:
            buf = np.empty(arr.shape, dtype=arr.dtype)
            np.copyto(buf, arr)
            self.feed_bufs[name] = buf
            self.feed_sig[name] = (arr.shape, arr.dtype)
            self.root[id(buf)] = id(buf)
        elif self.feed_sig[name] != (arr.shape, arr.dtype):
            raise UnsupportedTrace(
                f"feed {name!r} bound at two signatures: "
                f"{self.feed_sig[name]} vs {(arr.shape, arr.dtype)}"
            )
        self.feed_binder.setdefault(name, set()).add(sec_idx)
        return buf

    def _resolve_leaf(self, t: Tensor, sec: Section, sec_idx: int) -> np.ndarray:
        # tier 1: declared section input (identity) -- binds at the
        # DECLARING section, so e.g. a stale-graph backward replays with
        # the weights its forward bound, not freshly rebound ones
        for dsi, s in enumerate(self.session.sections[: sec_idx + 1]):
            for name, inp in s.inputs.items():
                if inp is t:
                    return self._register_feed(name, t.data, dsi)
        # tier 2: value-matched candidate (binds at the reading section)
        name = _match_candidate(t.data, self.session.candidates)
        if name is not None:
            return self._register_feed(name, t.data, sec_idx)
        # tier 3: baked constant
        self.stats.baked_consts += 1
        buf = np.array(t.data, copy=True)
        self.root[id(buf)] = id(buf)
        return buf

    def _resolve_fmask(self, t: Tensor, cond, sec: Section, sec_idx: int) -> np.ndarray:
        """The float {0,1} mask leaf a ``where`` op records as its third
        parent.  Tie it to whatever feed its boolean ``cond`` resolves to
        (as ``<name>.f64``, derived per replay from the base bool feed)
        even when the trace-time mask is degenerate (all-True) and a
        value match alone could not distinguish it from a constant."""
        cond = np.asarray(cond)
        name = _match_candidate(cond, self.session.candidates)
        if name is not None:
            return self._register_feed(name + ".f64", t.data, sec_idx)
        return self._resolve_leaf(t, sec, sec_idx)

    def _resolve_array(self, arr, sec_idx: int):
        """Resolve an attr-embedded array (index array, where-cond):
        candidate-matched arrays become dynamic (resolved per replay from
        the feeds dict), everything else is baked.  Returns
        ``(getter, static_value_or_None)``."""
        arr = np.asarray(arr)
        name = _match_candidate(arr, self.session.candidates)
        if name is not None:
            self._register_feed(name, arr, sec_idx)
            shape, dtype = arr.shape, arr.dtype

            def get(feeds, _n=name, _s=shape, _d=dtype):
                a = feeds.get(_n)
                if a is None or a.shape != _s or a.dtype != _d:
                    raise PlanMismatch(f"dynamic index feed {_n!r} diverged")
                return a

            return get, None
        frozen = np.array(arr, copy=True)
        return (lambda feeds, _a=frozen: _a), frozen

    def _resolve_idx(self, idx, sec_idx: int):
        """An index expression (int/slice/array or a tuple of them) ->
        a per-replay getter.  Static when no component is a feed."""
        items = idx if isinstance(idx, tuple) else (idx,)
        getters = []
        dynamic = False
        for it in items:
            if isinstance(it, np.ndarray):
                g, frozen = self._resolve_array(it, sec_idx)
                getters.append(g)
                dynamic = dynamic or frozen is None
            else:
                getters.append(lambda feeds, _v=it: _v)
        if not isinstance(idx, tuple):
            single = getters[0]
            if not dynamic:
                static = single(None)
                return lambda feeds, _v=static: _v
            return single
        if not dynamic:
            static = tuple(g(None) for g in getters)
            return lambda feeds, _v=static: _v
        return lambda feeds, _gs=tuple(getters): tuple(g(feeds) for g in _gs)

    # -- arena ----------------------------------------------------------
    def _acquire(self, shape, dtype, in_bufs) -> np.ndarray:
        """A buffer for an op output: reused from the free-list when one
        is available that does not alias any input of the op."""
        key = (shape, np.dtype(dtype))
        forbidden = {self.root[id(b)] for b in in_bufs}
        pool = self.free.get(key, [])
        for i, cand in enumerate(pool):
            if id(cand) not in forbidden:
                pool.pop(i)
                return cand
        buf = np.empty(shape, dtype=dtype)
        self.root[id(buf)] = id(buf)
        self.root_buf[id(buf)] = buf
        self.arena_roots.add(id(buf))
        self.stats.arena_bytes += buf.nbytes
        return buf

    def _claim(self, t: Tensor, in_bufs) -> np.ndarray:
        """Acquire the output buffer for tape tensor ``t`` and register
        slot/root liveness."""
        out = self._acquire(t.data.shape, t.data.dtype, in_bufs)
        self.buf[id(t)] = out
        rid = self.root[id(out)]
        self.live_per_root[rid] = self.live_per_root.get(rid, 0) + 1
        return out

    def _release_dead(self, step_idx: int, persistent: set) -> None:
        """Return to the free-list every buffer whose tape tensor dies at
        ``step_idx``.  Reuse is strictly intra-section: buffers read by a
        later section -- or views of them -- never re-enter the pool,
        because sections replay independently and a cross-section slot
        must hold its value across replays."""
        for tid, last in self.dying.get(step_idx, ()):
            if tid in persistent:
                continue
            buf = self.buf.get(tid)
            if buf is None:
                continue
            rid = self.root[id(buf)]
            if rid not in self.arena_roots:
                continue  # feed or baked const: not arena-managed
            live = self.live_per_root.get(rid, 0) - 1
            self.live_per_root[rid] = live
            if live <= 0:
                rbuf = self.root_buf[rid]
                self.free.setdefault((rbuf.shape, rbuf.dtype), []).append(rbuf)

    # -- kernels ---------------------------------------------------------
    def _kernel(self, op: str, out: np.ndarray, ins, attrs, sec_idx: int):
        """The replay closure for one op: mirrors the eager numpy
        expression exactly, writing into ``out``."""
        a = ins[0] if ins else None
        b = ins[1] if len(ins) > 1 else None
        if op == "add":
            return lambda f: np.add(a, b, out=out)
        if op == "sub":
            return lambda f: np.subtract(a, b, out=out)
        if op == "mul":
            return lambda f: np.multiply(a, b, out=out)
        if op == "div":
            return lambda f: np.divide(a, b, out=out)
        if op == "neg":
            return lambda f: np.negative(a, out=out)
        if op == "exp":
            return lambda f: np.exp(a, out=out)
        if op == "log":
            return lambda f: np.log(a, out=out)
        if op == "tanh":
            return lambda f: np.tanh(a, out=out)
        if op == "sqrt":
            return lambda f: np.sqrt(a, out=out)
        if op == "abs":
            return lambda f: np.absolute(a, out=out)
        if op == "sign":
            return lambda f: np.sign(a, out=out)
        if op == "pow":
            p = float(attrs["p"])
            return lambda f: np.power(a, p, out=out)
        if op == "cmp_mask":
            # eager: (a >= b).astype(float64); comparison ufuncs cast
            # bool -> float64 into out directly (a safe cast)
            if attrs["cmp"] == "ge":
                return lambda f: np.greater_equal(a, b, out=out)
            return lambda f: np.less_equal(a, b, out=out)
        if op in ("maximum", "minimum"):
            # eager: np.where(a >= b, a, b) -- replay as bitwise copy
            # selection into the stable buffer
            cmp = np.greater_equal if op == "maximum" else np.less_equal
            mask = np.empty(np.broadcast_shapes(a.shape, b.shape), dtype=bool)

            def run(f, a=a, b=b, out=out, mask=mask, cmp=cmp):
                cmp(a, b, out=mask)
                np.copyto(out, b)
                np.copyto(out, a, where=mask)
            return run
        if op == "where":
            get_cond = self._resolve_idx(attrs["cond"], sec_idx)

            def run(f, a=a, b=b, out=out, get_cond=get_cond):
                np.copyto(out, b)
                np.copyto(out, a, where=get_cond(f))
            return run
        if op == "sum":
            axis = attrs["axis"]
            axis = tuple(axis) if isinstance(axis, (list, tuple)) else axis
            keepdims = attrs["keepdims"]
            # np.add.reduce IS np.sum's reduction (same pairwise order,
            # bit-identical) minus the fromnumeric dispatch wrapper
            return lambda f: np.add.reduce(
                a, axis=axis, keepdims=keepdims, out=out
            )
        if op == "broadcast":
            # eager: np.broadcast_to(...).copy()
            return lambda f: np.copyto(out, a)
        if op == "concat":
            axis = attrs["axis"]
            srcs = tuple(ins)
            return lambda f: np.concatenate(srcs, axis=axis, out=out)
        if op == "matmul":
            return lambda f: np.matmul(a, b, out=out)
        if op == "gather":
            get_idx = self._resolve_idx(attrs["idx"], sec_idx)
            return lambda f: np.copyto(out, a[get_idx(f)])
        if op == "scatter_add":
            get_idx = self._resolve_idx(attrs["idx"], sec_idx)

            def run(f, a=a, out=out, get_idx=get_idx):
                out.fill(0.0)
                np.add.at(out, get_idx(f), a)
            return run
        raise UnsupportedTrace(f"op {op!r} has no replay kernel")

    # -- main pass -------------------------------------------------------
    def build(self) -> Program:
        t0 = time.perf_counter()
        sections = self.session.sections
        if not sections:
            raise UnsupportedTrace("trace has no sections")

        # global step order = concatenated section ranges; precompute
        # last-use and cross-section reads for the arena liveness scan
        order: list[tuple[int, int]] = []   # (section idx, entry idx)
        for si, sec in enumerate(sections):
            for ei in range(sec.start, sec.end):
                order.append((si, ei))
        entry_step = {ei: k for k, (si, ei) in enumerate(order)}
        read_sections: dict[int, set] = {}
        for k, (si, ei) in enumerate(order):
            e = self.entries[ei]
            for p in e.tensor._parents:
                self.last_use[id(p)] = k
                read_sections.setdefault(id(p), set()).add(si)
        for si, sec in enumerate(sections):
            for t in sec.outputs:
                self.last_use[id(t)] = len(order) + 1  # outputs never die
                read_sections.setdefault(id(t), set()).add(-1)

        # dying[step] -> [(tensor id, last step)]
        self.dying: dict[int, list] = {}
        for tid, last in self.last_use.items():
            self.dying.setdefault(last, []).append((tid, last))
        self.live_per_root: dict[int, int] = {}
        self.root_buf: dict[int, np.ndarray] = {}

        compiled: dict[str, _CompiledSection] = {}
        # the FULL tape, gaps included: a parent recorded outside every
        # section is a *computed* value we must not bake as a constant
        on_tape = {id(e.tensor) for e in self.entries}
        in_sections = {id(self.entries[ei].tensor) for _, ei in order}
        persistent: set[int] = set()

        for si, sec in enumerate(sections):
            if sec.name in compiled:
                raise UnsupportedTrace(f"duplicate section name {sec.name!r}")
            cs = _CompiledSection(name=sec.name)
            pending: list[_Step] = []        # elementwise run being fused

            def flush():
                if not pending:
                    return
                if len(pending) == 1:
                    cs.steps.append(pending[0])
                else:
                    subs = tuple(st.fn for st in pending)

                    def chain(f, _subs=subs):
                        for fn in _subs:
                            fn(f)
                    total_nb = sum(st.nbytes for st in pending)
                    cs.steps.append(_Step(
                        chain, "fused_chain", total_nb,
                        pending[-1].out_shape,
                        tuple(st.out_shape for st in pending),
                        fused=len(pending),
                    ))
                    self.stats.fused_ops += len(pending)
                pending.clear()

            for ei in range(sec.start, sec.end):
                e = self.entries[ei]
                t = e.tensor
                step_idx = entry_step[ei]
                # resolve parents
                in_bufs = []
                for p in t._parents:
                    pb = self.buf.get(id(p))
                    if pb is None:
                        if id(p) in on_tape and id(p) not in in_sections:
                            raise UnsupportedTrace(
                                f"parent of op {e.op!r} produced outside any "
                                f"section (tape #{e.seq})"
                            )
                        if e.op == "where" and p is t._parents[2]:
                            pb = self._resolve_fmask(p, t._attrs["cond"], sec, si)
                        else:
                            pb = self._resolve_leaf(p, sec, si)
                        self.buf[id(p)] = pb
                    in_bufs.append(pb)
                # cross-section consumers pin the slot out of the arena pool
                rs = read_sections.get(id(t), set())
                if rs - {si}:
                    persistent.add(id(t))
                self.producer_section[id(t)] = si

                if e.op in ("reshape", "transpose"):
                    src = in_bufs[0]
                    if e.op == "reshape":
                        view = src.reshape(t.data.shape)
                    else:
                        view = np.transpose(src, t._attrs["axes"])
                    if np.shares_memory(view, src):
                        # pure view of a stable buffer: materialize once,
                        # nothing to do at replay.  The view slot joins
                        # its root's liveness group so the root buffer is
                        # not reused while any view of it is still read.
                        self.buf[id(t)] = view
                        rid = self.root[id(src)]
                        self.root[id(view)] = rid
                        self.live_per_root[rid] = self.live_per_root.get(rid, 0) + 1
                        self.stats.view_elisions += 1
                        self._release_dead(step_idx, persistent)
                        continue
                    # reshape of a non-contiguous source copies in eager;
                    # mirror with an explicit copy step
                    out = self._claim(t, in_bufs)
                    fn = (lambda f, _s=src, _o=out, _sh=t.data.shape:
                          np.copyto(_o, _s.reshape(_sh)))
                    flush()
                    cs.steps.append(_Step(
                        fn, e.op, t.data.nbytes, t.data.shape,
                        tuple(p.data.shape for p in t._parents),
                    ))
                    self.stats.eager_alloc_bytes += t.data.nbytes
                    self._release_dead(step_idx, persistent)
                    continue

                out = self._claim(t, in_bufs)
                fn = self._kernel(e.op, out, in_bufs, t._attrs, si)
                st = _Step(fn, e.op, t.data.nbytes, t.data.shape,
                           tuple(p.data.shape for p in t._parents))
                self.stats.eager_alloc_bytes += t.data.nbytes
                if e.op in ELEMENTWISE_OPS:
                    pending.append(st)
                else:
                    flush()
                    cs.steps.append(st)
                self._release_dead(step_idx, persistent)
            flush()
            # intra-section-only reuse: drain the pool at the boundary
            self.free.clear()

            out_bufs = []
            for t in sec.outputs:
                buf = self.buf.get(id(t))
                if buf is None:
                    # an output that is not an op on the tape: a leaf the
                    # caller handed through unchanged (e.g. the zeros an
                    # unused parameter gets from grad()) -- bake it
                    buf = self._resolve_leaf(t, sec, si)
                    self.buf[id(t)] = buf
                out_bufs.append(buf)
            cs.out_bufs = tuple(out_bufs)
            compiled[sec.name] = cs

        for name, sis in self.feed_binder.items():
            for si in sorted(sis):
                cs = compiled[sections[si].name]
                cs.bind_names = cs.bind_names + (name,)

        self.stats.steps = sum(len(c.steps) for c in compiled.values())
        self.stats.compile_time_s = time.perf_counter() - t0
        prog = Program(compiled, self.feed_sig, self.session.tape.crc(), self.stats)
        prog._feed_bufs = self.feed_bufs
        return prog


def compile_tape(session: TraceSession) -> Program:
    """Compile a completed :class:`TraceSession` into a :class:`Program`."""
    return _Compiler(session).build()
