"""Kernel-launch instrumentation.

On a GPU every primitive tensor operation becomes (at least) one CUDA kernel
launch; the paper's Figure 7(b) counts those launches under successive
optimizations.  Our numpy engine plays the same game at op granularity:
every primitive op executed by :mod:`repro.autograd.ops` reports itself to
the active :class:`KernelCounter` (if any), which records

* the number of "launches" per op name,
* the bytes allocated for op outputs (a proxy for device-memory traffic).

Fused kernels (``linear_tanh``, the fused P-update in the optimizer, the
hand-written symmetry-descriptor derivative) count as a *single* launch, so
the baseline/opt1/opt2/opt3 presets show the same qualitative reduction the
paper reports (397 -> 174 kernels for an energy update, 846 -> 281 for a
force update).

Sink stacks are **thread-local** (mirroring the tracer stacks of
:mod:`repro.telemetry.trace`): a counter opened on the main thread does not
see ops executed by rank-worker threads, and a worker's counter never
contaminates the parent's tally.  Workers that want their ops counted open
their own sink locally and ship the result back for an explicit merge.

Richer sinks (the op-level profiler of :mod:`repro.telemetry.profile`) can
additionally receive the output shape and operand shapes of each primitive
op -- the inputs of a FLOP estimate.  Shape forwarding is gated on
:data:`_WANT_SHAPES` so the common no-profiler path never builds the shape
tuples.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

#: number of installed sinks (across all threads) that want operand shapes;
#: checked by ``make_op`` before building shape tuples
_WANT_SHAPES = 0
#: number of installed sinks (across all threads) that want the *output
#: tensor* of every op (graph-lint tape recorders, NaN/Inf sanitizers);
#: checked by ``make_op`` after constructing the result tensor
_WANT_TENSORS = 0
#: number of installed sinks (across all threads) that additionally want
#: graph edges (``_parents`` / ``_backward_fn``) wired on *every* op
#: output, including ops whose inputs do not require grad.  The tape
#: compiler needs full parentage to reconstruct the forward dataflow;
#: normal execution never pays for the extra wiring.
_WANT_GRAPH = 0
_WANT_SHAPES_LOCK = threading.Lock()


# ---------------------------------------------------------------------------
# the op table: every kernel name the engine may launch, with the static
# properties the analysis subsystem checks against (repro.analysis)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OpInfo:
    """Static properties of one registered kernel name.

    ``kind`` classifies the launch site: ``primitive`` (autograd ops),
    ``fused`` (composite forward kernels), ``backward`` (raw fused
    backward kernels that only run with grad mode off), ``optim`` (the
    Kalman-core BLAS kernels, outside the autograd graph).

    ``second_order`` declares that differentiating *through* the op's
    backward closure is exact (the closure is composed of primitives, or
    the op is linear with an exact adjoint).  The graph linter flags ops
    used under ``create_graph=True`` whose entry says otherwise.

    ``may_view`` declares that the op's output may legitimately alias an
    input buffer (numpy view semantics: reshape/transpose/basic slicing).
    Output/input aliasing on any *other* op is reported as an in-place
    hazard.
    """

    name: str
    kind: str = "primitive"
    second_order: bool = True
    may_view: bool = False


_OP_TABLE: dict[str, OpInfo] = {}


def register_op(
    name: str,
    kind: str = "primitive",
    second_order: bool = True,
    may_view: bool = False,
) -> OpInfo:
    """Register a kernel name in the instrument table (idempotent;
    re-registering overwrites).  Modules that create ops with
    :func:`repro.autograd.tensor.make_op` or report launches with
    :func:`record_launch` register their names at import time; the AST
    project lint rejects op-name literals absent from this table."""
    info = OpInfo(name=name, kind=kind, second_order=second_order, may_view=may_view)
    _OP_TABLE[name] = info
    return info


def op_info(name: str) -> Optional[OpInfo]:
    """The :class:`OpInfo` registered under ``name``, or ``None``."""
    return _OP_TABLE.get(name)


def registered_ops() -> dict[str, OpInfo]:
    """Snapshot of the op table (name -> :class:`OpInfo`)."""
    return dict(_OP_TABLE)


class _SinkStack(threading.local):
    """Per-thread stack of active launch sinks.

    Thread-locality is load-bearing: under the thread executor every rank
    runs ops concurrently, and a process-wide list would interleave every
    rank's launches into whichever counter the parent happened to open
    (corrupting the Figure 7(b) accounting).  Each thread counts only what
    it executes; cross-thread aggregation is an explicit merge.
    """

    def __init__(self):
        self.sinks: list = []


_TLS = _SinkStack()


def push_sink(
    sink,
    wants_shapes: bool = False,
    wants_tensors: bool = False,
    wants_graph: bool = False,
) -> None:
    """Install ``sink`` (anything with a ``record`` method) on the calling
    thread's stack.  ``wants_shapes=True`` additionally turns on operand
    shape forwarding for the duration; ``wants_tensors=True`` turns on
    output-tensor forwarding to the sink's ``record_tensor`` method (the
    graph-lint tape recorder and the NaN/Inf sanitizer hooks);
    ``wants_graph=True`` forces graph edges onto every op output so a
    tape compiler can walk the full forward dataflow."""
    global _WANT_SHAPES, _WANT_TENSORS, _WANT_GRAPH
    _TLS.sinks.append(sink)
    if wants_shapes or wants_tensors or wants_graph:
        with _WANT_SHAPES_LOCK:
            if wants_shapes:
                _WANT_SHAPES += 1
            if wants_tensors:
                _WANT_TENSORS += 1
            if wants_graph:
                _WANT_GRAPH += 1


def remove_sink(
    sink,
    wants_shapes: bool = False,
    wants_tensors: bool = False,
    wants_graph: bool = False,
) -> None:
    """Remove the innermost occurrence of ``sink`` from the calling
    thread's stack (no-op if absent)."""
    global _WANT_SHAPES, _WANT_TENSORS, _WANT_GRAPH
    sinks = _TLS.sinks
    for i in range(len(sinks) - 1, -1, -1):
        if sinks[i] is sink:
            del sinks[i]
            if wants_shapes or wants_tensors or wants_graph:
                with _WANT_SHAPES_LOCK:
                    if wants_shapes:
                        _WANT_SHAPES = max(_WANT_SHAPES - 1, 0)
                    if wants_tensors:
                        _WANT_TENSORS = max(_WANT_TENSORS - 1, 0)
                    if wants_graph:
                        _WANT_GRAPH = max(_WANT_GRAPH - 1, 0)
            break


def shapes_wanted() -> bool:
    """Whether any installed sink (on any thread) wants operand shapes."""
    return _WANT_SHAPES > 0


def tensors_wanted() -> bool:
    """Whether any installed sink (on any thread) wants output tensors."""
    return _WANT_TENSORS > 0


def graph_wanted() -> bool:
    """Whether any installed sink (on any thread) forces graph wiring."""
    return _WANT_GRAPH > 0


@dataclass(eq=False)
class KernelCounter:
    """Counts primitive op executions ("kernel launches") and output bytes.

    Identity (not value) equality: counters are mutable accumulators and
    may nest -- two counters opened back-to-back hold identical tallies,
    and the sink-stack bookkeeping must never confuse them.

    Use as a context manager::

        with KernelCounter() as kc:
            loss = model(batch)
            loss.backward()
        print(kc.total_launches, kc.total_bytes)
    """

    launches: Counter = field(default_factory=Counter)
    bytes_allocated: int = 0

    def record(self, op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
        self.launches[op_name] += 1
        self.bytes_allocated += int(nbytes)

    @property
    def total_launches(self) -> int:
        return sum(self.launches.values())

    @property
    def total_bytes(self) -> int:
        return self.bytes_allocated

    def reset(self) -> None:
        self.launches.clear()
        self.bytes_allocated = 0

    def __enter__(self) -> "KernelCounter":
        push_sink(self)
        return self

    def __exit__(self, *exc) -> None:
        remove_sink(self)

    def breakdown(self, top: int = 10) -> list[tuple[str, int]]:
        """The ``top`` most-launched op names, descending."""
        return self.launches.most_common(top)


def record_launch(op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
    """Report one kernel launch to every sink active on this thread.

    ``out_shape`` / ``in_shapes`` are only supplied by the op dispatch when
    a shape-hungry sink (the profiler) is installed; plain counters ignore
    them.
    """
    for sink in _TLS.sinks:
        sink.record(op_name, nbytes, out_shape, in_shapes)


def record_tensor(tensor) -> None:
    """Forward an op's freshly built output tensor to every sink on this
    thread that exposes a ``record_tensor`` method.

    Called by ``make_op`` only while a tensor-hungry sink is installed
    (the :data:`_WANT_TENSORS` gate), so the common path pays one global
    check.  Sinks may raise -- the NaN/Inf sanitizer aborts the op that
    produced a non-finite buffer by doing exactly that."""
    for sink in _TLS.sinks:
        cb = getattr(sink, "record_tensor", None)
        if cb is not None:
            cb(tensor)


def active_counter() -> Optional[KernelCounter]:
    """The innermost active :class:`KernelCounter` on this thread, or
    ``None`` (profiler/metric sinks are skipped)."""
    for sink in reversed(_TLS.sinks):
        if isinstance(sink, KernelCounter):
            return sink
    return None
