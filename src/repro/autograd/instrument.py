"""Kernel-launch instrumentation.

On a GPU every primitive tensor operation becomes (at least) one CUDA kernel
launch; the paper's Figure 7(b) counts those launches under successive
optimizations.  Our numpy engine plays the same game at op granularity:
every primitive op executed by :mod:`repro.autograd.ops` reports itself to
the active :class:`KernelCounter` (if any), which records

* the number of "launches" per op name,
* the bytes allocated for op outputs (a proxy for device-memory traffic).

Fused kernels (``linear_tanh``, the fused P-update in the optimizer, the
hand-written symmetry-descriptor derivative) count as a *single* launch, so
the baseline/opt1/opt2/opt3 presets show the same qualitative reduction the
paper reports (397 -> 174 kernels for an energy update, 846 -> 281 for a
force update).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

_ACTIVE: list["KernelCounter"] = []


@dataclass(eq=False)
class KernelCounter:
    """Counts primitive op executions ("kernel launches") and output bytes.

    Identity (not value) equality: counters are mutable accumulators and
    may nest -- two counters opened back-to-back hold identical tallies,
    and the ``_ACTIVE`` bookkeeping must never confuse them.

    Use as a context manager::

        with KernelCounter() as kc:
            loss = model(batch)
            loss.backward()
        print(kc.total_launches, kc.total_bytes)
    """

    launches: Counter = field(default_factory=Counter)
    bytes_allocated: int = 0

    def record(self, op_name: str, nbytes: int = 0) -> None:
        self.launches[op_name] += 1
        self.bytes_allocated += int(nbytes)

    @property
    def total_launches(self) -> int:
        return sum(self.launches.values())

    @property
    def total_bytes(self) -> int:
        return self.bytes_allocated

    def reset(self) -> None:
        self.launches.clear()
        self.bytes_allocated = 0

    def __enter__(self) -> "KernelCounter":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> None:
        for i in range(len(_ACTIVE) - 1, -1, -1):
            if _ACTIVE[i] is self:
                del _ACTIVE[i]
                break

    def breakdown(self, top: int = 10) -> list[tuple[str, int]]:
        """The ``top`` most-launched op names, descending."""
        return self.launches.most_common(top)


def record_launch(op_name: str, nbytes: int = 0) -> None:
    """Report one kernel launch to every active counter (nestable)."""
    for counter in _ACTIVE:
        counter.record(op_name, nbytes)


def active_counter() -> Optional[KernelCounter]:
    """The innermost active counter, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None
