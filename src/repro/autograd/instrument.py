"""Kernel-launch instrumentation.

On a GPU every primitive tensor operation becomes (at least) one CUDA kernel
launch; the paper's Figure 7(b) counts those launches under successive
optimizations.  Our numpy engine plays the same game at op granularity:
every primitive op executed by :mod:`repro.autograd.ops` reports itself to
the active :class:`KernelCounter` (if any), which records

* the number of "launches" per op name,
* the bytes allocated for op outputs (a proxy for device-memory traffic).

Fused kernels (``linear_tanh``, the fused P-update in the optimizer, the
hand-written symmetry-descriptor derivative) count as a *single* launch, so
the baseline/opt1/opt2/opt3 presets show the same qualitative reduction the
paper reports (397 -> 174 kernels for an energy update, 846 -> 281 for a
force update).

Sink stacks are **thread-local** (mirroring the tracer stacks of
:mod:`repro.telemetry.trace`): a counter opened on the main thread does not
see ops executed by rank-worker threads, and a worker's counter never
contaminates the parent's tally.  Workers that want their ops counted open
their own sink locally and ship the result back for an explicit merge.

Richer sinks (the op-level profiler of :mod:`repro.telemetry.profile`) can
additionally receive the output shape and operand shapes of each primitive
op -- the inputs of a FLOP estimate.  Shape forwarding is gated on
:data:`_WANT_SHAPES` so the common no-profiler path never builds the shape
tuples.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

#: number of installed sinks (across all threads) that want operand shapes;
#: checked by ``make_op`` before building shape tuples
_WANT_SHAPES = 0
_WANT_SHAPES_LOCK = threading.Lock()


class _SinkStack(threading.local):
    """Per-thread stack of active launch sinks.

    Thread-locality is load-bearing: under the thread executor every rank
    runs ops concurrently, and a process-wide list would interleave every
    rank's launches into whichever counter the parent happened to open
    (corrupting the Figure 7(b) accounting).  Each thread counts only what
    it executes; cross-thread aggregation is an explicit merge.
    """

    def __init__(self):
        self.sinks: list = []


_TLS = _SinkStack()


def push_sink(sink, wants_shapes: bool = False) -> None:
    """Install ``sink`` (anything with a ``record`` method) on the calling
    thread's stack.  ``wants_shapes=True`` additionally turns on operand
    shape forwarding for the duration."""
    global _WANT_SHAPES
    _TLS.sinks.append(sink)
    if wants_shapes:
        with _WANT_SHAPES_LOCK:
            _WANT_SHAPES += 1


def remove_sink(sink, wants_shapes: bool = False) -> None:
    """Remove the innermost occurrence of ``sink`` from the calling
    thread's stack (no-op if absent)."""
    global _WANT_SHAPES
    sinks = _TLS.sinks
    for i in range(len(sinks) - 1, -1, -1):
        if sinks[i] is sink:
            del sinks[i]
            if wants_shapes:
                with _WANT_SHAPES_LOCK:
                    _WANT_SHAPES = max(_WANT_SHAPES - 1, 0)
            break


def shapes_wanted() -> bool:
    """Whether any installed sink (on any thread) wants operand shapes."""
    return _WANT_SHAPES > 0


@dataclass(eq=False)
class KernelCounter:
    """Counts primitive op executions ("kernel launches") and output bytes.

    Identity (not value) equality: counters are mutable accumulators and
    may nest -- two counters opened back-to-back hold identical tallies,
    and the sink-stack bookkeeping must never confuse them.

    Use as a context manager::

        with KernelCounter() as kc:
            loss = model(batch)
            loss.backward()
        print(kc.total_launches, kc.total_bytes)
    """

    launches: Counter = field(default_factory=Counter)
    bytes_allocated: int = 0

    def record(self, op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
        self.launches[op_name] += 1
        self.bytes_allocated += int(nbytes)

    @property
    def total_launches(self) -> int:
        return sum(self.launches.values())

    @property
    def total_bytes(self) -> int:
        return self.bytes_allocated

    def reset(self) -> None:
        self.launches.clear()
        self.bytes_allocated = 0

    def __enter__(self) -> "KernelCounter":
        push_sink(self)
        return self

    def __exit__(self, *exc) -> None:
        remove_sink(self)

    def breakdown(self, top: int = 10) -> list[tuple[str, int]]:
        """The ``top`` most-launched op names, descending."""
        return self.launches.most_common(top)


def record_launch(op_name: str, nbytes: int = 0, out_shape=None, in_shapes=None) -> None:
    """Report one kernel launch to every sink active on this thread.

    ``out_shape`` / ``in_shapes`` are only supplied by the op dispatch when
    a shape-hungry sink (the profiler) is installed; plain counters ignore
    them.
    """
    for sink in _TLS.sinks:
        sink.record(op_name, nbytes, out_shape, in_shapes)


def active_counter() -> Optional[KernelCounter]:
    """The innermost active :class:`KernelCounter` on this thread, or
    ``None`` (profiler/metric sinks are skipped)."""
    for sink in reversed(_TLS.sinks):
        if isinstance(sink, KernelCounter):
            return sink
    return None
