"""Global autograd configuration flags.

The engine has two global toggles:

* ``grad_enabled`` -- when ``False`` (inside :func:`no_grad`), newly created
  tensors record no graph edges.  This mirrors ``torch.no_grad`` and is what
  makes plain ``backward()`` (``create_graph=False``) cheap: the backward
  closures still run tensor ops, but those ops do not themselves build a
  second-order graph.
* ``fused_elementwise`` -- when ``True``, composite layers (``linear_tanh``
  and friends in :mod:`repro.autograd.fuse`) execute as single fused kernels
  instead of chains of primitive kernels.  This is the repo's analog of
  ``torch.compile`` kernel fusion (paper Opt2).
* ``compiled`` -- the default for the optimizers' tape-compiled step
  replay (:mod:`repro.autograd.compile`); seeded from the
  ``REPRO_COMPILE`` environment variable so whole runs opt in without
  code changes.
"""

from __future__ import annotations

import contextlib
import os
import threading

#: truthy spellings accepted by REPRO_COMPILE (read once at import)
_COMPILE_DEFAULT = os.environ.get("REPRO_COMPILE", "").strip().lower() in (
    "1", "true", "on", "yes",
)


class _AutogradConfig(threading.local):
    """Per-thread engine flags.

    Thread-locality matters for the parallel rank executors: a
    ``no_grad()`` block entered by one worker thread's backward pass must
    not switch off graph construction in a sibling thread's forward pass
    mid-flight.  Each thread starts from the defaults below; a flag set
    on the main thread is deliberately NOT inherited by worker threads.
    """

    def __init__(self):
        self.grad_enabled: bool = True
        self.fused_elementwise: bool = False
        #: default for optimizer-level ``compiled=None`` (tape-compiled
        #: FEKF step replay); per-thread like every other engine flag
        self.compiled: bool = _COMPILE_DEFAULT


config = _AutogradConfig()


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the ``with`` block."""
    prev = config.grad_enabled
    config.grad_enabled = False
    try:
        yield
    finally:
        config.grad_enabled = prev


@contextlib.contextmanager
def enable_grad():
    """Re-enable graph construction (used inside backward closures when
    ``create_graph=True``)."""
    prev = config.grad_enabled
    config.grad_enabled = True
    try:
        yield
    finally:
        config.grad_enabled = prev


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Toggle fused composite kernels inside the ``with`` block."""
    prev = config.fused_elementwise
    config.fused_elementwise = enabled
    try:
        yield
    finally:
        config.fused_elementwise = prev
